# Convenience targets for the OASIS reproduction (stdlib-only Go module).

GO ?= go

.PHONY: all build vet test race bench tables examples cover clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per experiment row (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/scenario table from the paper reproduction and
# the machine-readable parallel-scaling rows (BENCH_parallel.json).
tables:
	$(GO) run ./cmd/benchtab -json BENCH_parallel.json

# Run all six runnable paper scenarios.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/visitingdoctor
	$(GO) run ./examples/anonymousclinic
	$(GO) run ./examples/weboftrust
	$(GO) run ./examples/delegation

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
