# Convenience targets for the OASIS reproduction (stdlib-only Go module).

GO ?= go

.PHONY: all build vet lint test race bench tables obs recover wire capacity capacity-quick gw edgecache replication seqcore examples cover clean

all: build vet test race capacity-quick

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: vet always; golangci-lint when installed (CI installs
# it, local runs degrade gracefully).
lint: vet
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per experiment row (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/scenario table from the paper reproduction and
# the machine-readable rows (BENCH_parallel.json, BENCH_faults.json).
tables:
	$(GO) run ./cmd/benchtab -json BENCH_parallel.json -faults-json BENCH_faults.json

# E13: measure the observability layer's overhead on the hot paths and
# write the machine-readable rows (BENCH_obs.json).
obs:
	$(GO) run ./cmd/benchtab -exp obs -obs-json BENCH_obs.json

# E14: measure steady-state journaling overhead on the hot paths and the
# recovery time as a function of journal size (BENCH_recover.json).
recover:
	$(GO) run ./cmd/benchtab -exp recover -recover-json BENCH_recover.json

# E15: wire hot path — framing latency, batched callback validation
# under fan-in, and binary-vs-JSON codec rows (BENCH_wire.json).
wire:
	$(GO) run ./cmd/benchtab -exp wire -wire-json BENCH_wire.json

# E16: million-principal capacity — resident bytes per principal
# (compact vs pre-capacity baseline), p99 validation latency under churn,
# and cascade-collapse latency for a 100k-cert dependency tree
# (BENCH_capacity.json). The full run holds two million-principal worlds
# in memory; use capacity-quick on small machines.
capacity:
	$(GO) run ./cmd/benchtab -exp capacity -capacity-json BENCH_capacity.json

# Same harness at smoke scale (20k principals): exercises both variants,
# eviction, expiry waves and the cascade without the memory footprint.
capacity-quick:
	$(GO) run ./cmd/benchtab -exp capacity -quick

# E17: HTTP edge gateway — per-call edge tax vs raw OW2, batched HTTP
# fan-in in free-CPU and issuer-bound regimes, and the overload rows
# showing admission (429/503) holding accepted p99 (BENCH_gateway.json).
gw:
	$(GO) run ./cmd/benchtab -exp gateway -gateway-json BENCH_gateway.json

# E18: event-fed edge verdict cache — cached-edge hit latency vs local
# and uncached-edge validation, the kill-the-cert run proving verdicts
# die by revocation event (zero issuer calls), and the severed-feed run
# proving fail-closed behavior (BENCH_edgecache.json).
edgecache:
	$(GO) run ./cmd/benchtab -exp edgecache -edgecache-json BENCH_edgecache.json

# E19: journal replication — a replica killed mid-revocation-burst loses
# nothing once the replacement converges, aggregate validation reads
# scale with replica count (3-node floor 2x single), and a severed
# follower fails closed on reads (staleness bound) and writes (lease)
# (BENCH_replication.json).
replication:
	$(GO) run ./cmd/benchtab -exp replication -replication-json BENCH_replication.json

# E20: per-shard sequencer core — sustained mixed issue/revoke pair
# throughput against a real journal, sequenced apply loop vs the direct
# inline write path, plus revoke-latency percentiles (the revocation
# publish-latency bound) (BENCH_seqcore.json).
seqcore:
	$(GO) run ./cmd/benchtab -exp seqcore -seqcore-json BENCH_seqcore.json

# Run all six runnable paper scenarios.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/visitingdoctor
	$(GO) run ./examples/anonymousclinic
	$(GO) run ./examples/weboftrust
	$(GO) run ./examples/delegation

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
