package oasis

// Benchmarks regenerating every figure/scenario experiment of the paper
// (see DESIGN.md Sect. 3 and EXPERIMENTS.md). Each benchmark measures the
// per-operation core of one experiment; cmd/benchtab prints the full
// paper-style tables using the same code in internal/experiments.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cert"
	"repro/internal/civ"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/names"
	"repro/internal/sign"
	"repro/internal/trust"
)

// ---------------------------------------------------------------------------
// E1 / Fig. 1 — prerequisite chains.
// ---------------------------------------------------------------------------

func BenchmarkFig1PrerequisiteChain(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			w := experiments.NewWorld()
			defer w.Close()
			services := make([]*core.Service, depth)
			for layer := 0; layer < depth; layer++ {
				name := fmt.Sprintf("s%d", layer)
				pol := fmt.Sprintf("%s.r <- env ok.", name)
				if layer > 0 {
					pol = fmt.Sprintf("%s.r <- s%d.r keep [1].", name, layer-1)
				}
				svc, err := w.Service(name, pol, false)
				if err != nil {
					b.Fatal(err)
				}
				if layer == 0 {
					experiments.AlwaysTrue(svc, "ok")
				}
				services[layer] = svc
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := experiments.NewSession()
				for layer := 0; layer < depth; layer++ {
					rmc, err := services[layer].Activate(sess.PrincipalID(),
						experiments.Role(fmt.Sprintf("s%d", layer), "r"), sess.Credentials())
					if err != nil {
						b.Fatal(err)
					}
					sess.AddRMC(rmc)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E2 / Fig. 2 — role entry and service use, callback vs cached validation.
// ---------------------------------------------------------------------------

func benchFig2Invoke(b *testing.B, cached bool) {
	w := experiments.NewWorld()
	defer w.Close()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		b.Fatal(err)
	}
	experiments.AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `auth enter <- login.user.`, cached)
	if err != nil {
		b.Fatal(err)
	}
	sess := experiments.NewSession()
	rmc, err := login.Activate(sess.PrincipalID(), experiments.Role("login", "user"), core.Presented{})
	if err != nil {
		b.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2InvokeCallback(b *testing.B) { benchFig2Invoke(b, false) }

func BenchmarkFig2InvokeCached(b *testing.B) { benchFig2Invoke(b, true) }

func BenchmarkFig2RoleEntry(b *testing.B) {
	w := experiments.NewWorld()
	defer w.Close()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		b.Fatal(err)
	}
	experiments.AlwaysTrue(login, "ok")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := experiments.NewSession()
		if _, err := login.Activate(sess.PrincipalID(),
			experiments.Role("login", "user"), core.Presented{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E3 / Fig. 3 — cross-domain EHR operations.
// ---------------------------------------------------------------------------

func BenchmarkFig3CrossDomainEHR(b *testing.B) {
	// Measure steady-state request/append throughput at a fixed scale;
	// the full sweep lives in cmd/benchtab -exp fig3.
	row, err := experiments.RunFig3(4, 1000, b.N+1)
	if err != nil {
		b.Fatal(err)
	}
	if !row.AuditOK {
		b.Fatal("audit incomplete")
	}
	b.ReportMetric(float64(row.PerOp.Nanoseconds()), "ns/op-measured")
}

// ---------------------------------------------------------------------------
// E4 / Fig. 4 — certificate cryptography.
// ---------------------------------------------------------------------------

func BenchmarkFig4RMCIssue(b *testing.B) {
	for _, params := range []int{0, 4, 8} {
		b.Run(fmt.Sprintf("params=%d", params), func(b *testing.B) {
			ring, err := sign.NewKeyRing(2, nil)
			if err != nil {
				b.Fatal(err)
			}
			terms := make([]names.Term, params)
			for i := range terms {
				terms[i] = names.Atom(fmt.Sprintf("p%d", i))
			}
			role := names.MustRole(names.MustRoleName("svc", "r", params), terms...)
			ref := cert.CRR{Issuer: "svc", Serial: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cert.IssueRMC(ring, "principal", role, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4RMCValidate(b *testing.B) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	role := names.MustRole(names.MustRoleName("svc", "r", 2),
		names.Atom("d1"), names.Int(42))
	rmc, err := cert.IssueRMC(ring, "principal", role, cert.CRR{Issuer: "svc", Serial: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rmc.Verify(ring, "principal"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E5 / Fig. 5 — revocation cascade.
// ---------------------------------------------------------------------------

func BenchmarkFig5RevocationCascade(b *testing.B) {
	for _, cfg := range []struct {
		shape string
		n     int
	}{
		{"star", 100}, {"star", 1000}, {"chain", 100},
	} {
		b.Run(fmt.Sprintf("%s-%d", cfg.shape, cfg.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunFig5(cfg.n, cfg.shape)
				if err != nil {
					b.Fatal(err)
				}
				if !row.AllCollapsed {
					b.Fatal("cascade incomplete")
				}
				b.ReportMetric(float64(row.RevokeLatency.Nanoseconds()), "collapse-ns")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E6 / Sect. 4.1 — challenge-response.
// ---------------------------------------------------------------------------

func BenchmarkChallengeResponse(b *testing.B) {
	key, err := sign.NewSessionKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	challenger := sign.NewChallenger(time.Minute, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := challenger.Issue(key.Public)
		if err != nil {
			b.Fatal(err)
		}
		if err := challenger.Check(key.Respond(ch)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 / Sect. 5 — visiting doctor across domains.
// ---------------------------------------------------------------------------

func BenchmarkVisitingDoctor(b *testing.B) {
	row, err := experiments.RunSect5(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if row.Activated != b.N {
		b.Fatalf("activated %d of %d", row.Activated, b.N)
	}
	b.ReportMetric(float64(row.PerActivation.Nanoseconds()), "ns/activation-measured")
}

// ---------------------------------------------------------------------------
// E8 / Sect. 6 — trust decisions.
// ---------------------------------------------------------------------------

func BenchmarkTrustDecision(b *testing.B) {
	for _, histLen := range []int{10, 100} {
		b.Run(fmt.Sprintf("history=%d", histLen), func(b *testing.B) {
			sim, err := trust.NewSimulation(3)
			if err != nil {
				b.Fatal(err)
			}
			engine := trust.NewEngine(trust.DomainAwarePolicy(0.1), sim.Directory.Validate)
			hist := sim.HonestHistory("alice", histLen, 0.9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Decide("alice", hist)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — baselines.
// ---------------------------------------------------------------------------

func BenchmarkBaselineACLCheck(b *testing.B) {
	acl := baseline.NewACLService()
	for d := 0; d < 100; d++ {
		for p := 0; p < 100; p++ {
			acl.Grant(fmt.Sprintf("record_%d", p), fmt.Sprintf("dr_%d", d), baseline.RightRead)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !acl.Check("record_50", "dr_50", baseline.RightRead) {
			b.Fatal("acl check failed")
		}
	}
}

func BenchmarkBaselineRBAC0Check(b *testing.B) {
	registrations := make(map[string][]string)
	for d := 0; d < 100; d++ {
		for p := 0; p < 100; p++ {
			registrations[fmt.Sprintf("dr_%d", d)] = append(
				registrations[fmt.Sprintf("dr_%d", d)], fmt.Sprintf("p_%d_%d", d, p))
		}
	}
	rbac := baseline.BuildPatientAccess(registrations)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rbac.Check("dr_50", "read_record_p_50_50") {
			b.Fatal("rbac check failed")
		}
	}
}

func BenchmarkOASISParametrisedAuthorize(b *testing.B) {
	// The OASIS counterpart of the two baseline checks: one parametrised
	// auth rule over a fact store, any number of doctors/patients.
	w := experiments.NewWorld()
	defer w.Close()
	svc, err := w.Service("h", `
h.doctor(D) <- env is_doctor(D).
auth read_record(D, P) <- h.doctor(D), env registered(D, P).
`, false)
	if err != nil {
		b.Fatal(err)
	}
	db := newRegistrationStore(b, 100, 100)
	svc.Env().RegisterStore("registered", db.store, "registered")
	svc.Env().Register("is_doctor", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	sess := experiments.NewSession()
	rmc, err := svc.Activate(sess.PrincipalID(),
		experiments.Role("h", "doctor", names.Atom("dr_50")), core.Presented{})
	if err != nil {
		b.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	args := []names.Term{names.Atom("dr_50"), names.Atom("p_50_50")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Invoke(sess.PrincipalID(), "read_record", args, creds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevocationActiveVsPolling(b *testing.B) {
	// Reported via custom metrics: active collapse latency in ns per run
	// against the analytic polling latency for a 10s interval.
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunRevocationComparison(100, 10*time.Second, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.ActiveLatency.Nanoseconds()), "active-ns")
		b.ReportMetric(float64(row.PollingLatency.Nanoseconds()), "polling-ns")
	}
}

// Ablation: cost of delegating credential records to a replicated CIV
// cluster (paper ref [10]) versus service-local records, by replica count.
func BenchmarkCIVRecordsActivate(b *testing.B) {
	for _, replicas := range []int{0, 1, 3, 5} {
		name := fmt.Sprintf("replicas=%d", replicas)
		if replicas == 0 {
			name = "local"
		}
		b.Run(name, func(b *testing.B) {
			w := experiments.NewWorld()
			defer w.Close()
			cfg := core.Config{
				Name:   "login",
				Policy: MustParsePolicy(`login.user <- env ok.`),
				Broker: w.Broker,
				Caller: w.Bus,
				Clock:  w.Clock,
			}
			if replicas > 0 {
				cluster, err := civ.NewCluster(replicas)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Records = domain.NewCIVRecords(cluster)
			}
			svc, err := core.NewService(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			experiments.AlwaysTrue(svc, "ok")
			sess := experiments.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Activate(sess.PrincipalID(),
					experiments.Role("login", "user"), core.Presented{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Soak: per-op cost of the churn workload, invariants checked throughout.
func BenchmarkSoakWorkload(b *testing.B) {
	row, err := experiments.RunSoak(5, 50, b.N+100, 42)
	if err != nil {
		b.Fatal(err)
	}
	if row.Violations != 0 {
		b.Fatalf("%d invariant violations", row.Violations)
	}
	b.ReportMetric(float64(row.PerOp.Nanoseconds()), "ns/op-measured")
}

// Ablation: end-to-end sealing cost on callback validation (Sect. 4.1
// encrypted communication vs in-clear local traffic).
func BenchmarkSealedCallbackValidation(b *testing.B) {
	for _, sealed := range []bool{false, true} {
		name := "clear"
		if sealed {
			name = "sealed"
		}
		b.Run(name, func(b *testing.B) {
			broker := NewBroker()
			defer broker.Close()
			bus := NewBus()
			var loginCaller, guardCaller interface {
				Call(service, method string, body []byte) ([]byte, error)
			} = bus, bus
			var loginWrap func(h func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error)
			guardWrap := func(h func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error) {
				return h
			}
			loginWrap = guardWrap
			if sealed {
				loginID, err := NewSealIdentity(nil)
				if err != nil {
					b.Fatal(err)
				}
				guardID, err := NewSealIdentity(nil)
				if err != nil {
					b.Fatal(err)
				}
				dir := NewSealDirectory()
				dir.Add("login", loginID.PublicKey())
				dir.Add("guard", guardID.PublicKey())
				loginCaller = NewSealedCaller(loginID, bus, dir)
				guardCaller = NewSealedCaller(guardID, bus, dir)
				loginWrap = func(h func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error) {
					return SealedHandler(loginID, h)
				}
				guardWrap = func(h func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error) {
					return SealedHandler(guardID, h)
				}
			}
			login, err := NewService(Config{
				Name:   "login",
				Policy: MustParsePolicy(`login.user <- env ok.`),
				Broker: broker,
				Caller: loginCaller,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer login.Close()
			experiments.AlwaysTrue(login, "ok")
			bus.Register("login", loginWrap(login.Handler()))
			guard, err := NewService(Config{
				Name:   "guard",
				Policy: MustParsePolicy(`auth enter <- login.user.`),
				Broker: broker,
				Caller: guardCaller,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer guard.Close()
			bus.Register("guard", guardWrap(guard.Handler()))

			sess := experiments.NewSession()
			rmc, err := login.Activate(sess.PrincipalID(),
				experiments.Role("login", "user"), Presented{})
			if err != nil {
				b.Fatal(err)
			}
			sess.AddRMC(rmc)
			creds := sess.Credentials()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E11 — multi-core scaling of the authorization hot path (run with
// -cpu 1,4,8). The parallel variants drive the same operations as their
// serial counterparts from every GOMAXPROCS worker at once, measuring how
// the engine behaves when many sessions hit one service concurrently.
// ---------------------------------------------------------------------------

func BenchmarkFig2InvokeCachedParallel(b *testing.B) {
	w := experiments.NewWorld()
	defer w.Close()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		b.Fatal(err)
	}
	experiments.AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `auth enter <- login.user.`, true)
	if err != nil {
		b.Fatal(err)
	}
	sess := experiments.NewSession()
	rmc, err := login.Activate(sess.PrincipalID(), experiments.Role("login", "user"), core.Presented{})
	if err != nil {
		b.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	// Warm the ECR cache so the steady state is measured.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig4RMCValidateParallel(b *testing.B) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	role := names.MustRole(names.MustRoleName("svc", "r", 2),
		names.Atom("d1"), names.Int(42))
	rmc, err := cert.IssueRMC(ring, "principal", role, cert.CRR{Issuer: "svc", Serial: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := rmc.Verify(ring, "principal"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOASISParametrisedAuthorizeParallel(b *testing.B) {
	w := experiments.NewWorld()
	defer w.Close()
	svc, err := w.Service("h", `
h.doctor(D) <- env is_doctor(D).
auth read_record(D, P) <- h.doctor(D), env registered(D, P).
`, false)
	if err != nil {
		b.Fatal(err)
	}
	db := newRegistrationStore(b, 100, 100)
	svc.Env().RegisterStore("registered", db.store, "registered")
	svc.Env().Register("is_doctor", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	sess := experiments.NewSession()
	rmc, err := svc.Activate(sess.PrincipalID(),
		experiments.Role("h", "doctor", names.Atom("dr_50")), core.Presented{})
	if err != nil {
		b.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	args := []names.Term{names.Atom("dr_50"), names.Atom("p_50_50")}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Invoke(sess.PrincipalID(), "read_record", args, creds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMixedSessionChurnParallel is the contention workload: every
// worker runs full session lifecycles (activate at login, a burst of
// cached invocations at the guard, then logout via revocation) against the
// same pair of services, so activation writes, validation-cache fills,
// revocation fan-out and invoke reads all race.
func BenchmarkMixedSessionChurnParallel(b *testing.B) {
	w := experiments.NewWorld()
	defer w.Close()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		b.Fatal(err)
	}
	experiments.AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `auth enter <- login.user.`, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := experiments.NewSession()
		principal := sess.PrincipalID()
		roleUser := experiments.Role("login", "user")
		for pb.Next() {
			rmc, err := login.Activate(principal, roleUser, core.Presented{})
			if err != nil {
				b.Fatal(err)
			}
			creds := core.Presented{RMCs: []cert.RMC{rmc}}
			for k := 0; k < 4; k++ {
				if _, err := guard.Invoke(principal, "enter", nil, creds); err != nil {
					b.Fatal(err)
				}
			}
			login.Deactivate(rmc.Ref.Serial, "logout")
		}
	})
}

// BenchmarkEndSessionManyPrincipals measures session teardown while many
// other principals hold live roles at the same service: each iteration
// activates one role for a fresh principal and immediately ends its
// session, against a background population of n live credential records.
func BenchmarkEndSessionManyPrincipals(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("principals=%d", n), func(b *testing.B) {
			w := experiments.NewWorld()
			defer w.Close()
			login, err := w.Service("login", `login.user <- env ok.`, false)
			if err != nil {
				b.Fatal(err)
			}
			experiments.AlwaysTrue(login, "ok")
			roleUser := experiments.Role("login", "user")
			for i := 0; i < n; i++ {
				if _, err := login.Activate(fmt.Sprintf("resident_%d", i), roleUser, core.Presented{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := fmt.Sprintf("visitor_%d", i)
				if _, err := login.Activate(p, roleUser, core.Presented{}); err != nil {
					b.Fatal(err)
				}
				if got := login.EndSession(p); got != 1 {
					b.Fatalf("ended %d sessions for %s, want 1", got, p)
				}
			}
		})
	}
}

func BenchmarkPollingTick(b *testing.B) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	p := baseline.NewPollingRevoker(clk, time.Second)
	for i := 0; i < 1000; i++ {
		p.Watch(fmt.Sprintf("cert%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		p.Tick()
	}
}

// newRegistrationStore populates doctors x patients registrations.
type registrationStore struct{ store *storeAlias }

type storeAlias = FactStore

func newRegistrationStore(b *testing.B, doctors, patients int) registrationStore {
	b.Helper()
	db := NewFactStore()
	for d := 0; d < doctors; d++ {
		for p := 0; p < patients; p++ {
			if _, err := db.Assert("registered",
				names.Atom(fmt.Sprintf("dr_%d", d)),
				names.Atom(fmt.Sprintf("p_%d_%d", d, p))); err != nil {
				b.Fatal(err)
			}
		}
	}
	return registrationStore{store: db}
}

// ---------------------------------------------------------------------------
// E20 — sequencer write path: pure mutation throughput.
// Run with -cpu 1,4,8 to see the per-shard apply loop coalesce concurrent
// issue/revoke traffic (cmd/benchtab -exp seqcore prints the full table).
// ---------------------------------------------------------------------------

// writeWorld builds a single-service world for write-path benchmarks,
// optionally journaled into a real durable log (NoSync, so the benchmark
// measures batching and ordering, not the disk).
func writeWorld(b *testing.B, journaled bool) (*experiments.World, *core.Service) {
	b.Helper()
	w := experiments.NewWorld()
	if journaled {
		dlog, err := durable.Open(durable.Options{Dir: b.TempDir(), NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		w.Journal = dlog
		w.OnClose = append(w.OnClose, func() { dlog.Close() }) //nolint:errcheck
	}
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		b.Fatal(err)
	}
	experiments.AlwaysTrue(login, "ok")
	return w, login
}

// BenchmarkWritePathIssue measures pure credential issue throughput: every
// iteration is one Activate routed through the per-shard sequencer.
func BenchmarkWritePathIssue(b *testing.B) {
	w, login := writeWorld(b, false)
	defer w.Close()
	roleUser := experiments.Role("login", "user")
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		principal := fmt.Sprintf("p%d", worker.Add(1))
		for pb.Next() {
			if _, err := login.Activate(principal, roleUser, core.Presented{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWritePathIssueRevoke measures the issue+revoke pair — the
// sequencer's mixed mutation stream, including revocation event publish.
func BenchmarkWritePathIssueRevoke(b *testing.B) {
	w, login := writeWorld(b, false)
	defer w.Close()
	roleUser := experiments.Role("login", "user")
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		principal := fmt.Sprintf("p%d", worker.Add(1))
		for pb.Next() {
			rmc, err := login.Activate(principal, roleUser, core.Presented{})
			if err != nil {
				b.Fatal(err)
			}
			login.Deactivate(rmc.Ref.Serial, "logout")
		}
	})
}

// BenchmarkWritePathIssueRevokeJournaled is the same pair against a real
// durable log: concurrent mutations on one shard commit as one multi-record
// frame group instead of one group-commit window each.
func BenchmarkWritePathIssueRevokeJournaled(b *testing.B) {
	w, login := writeWorld(b, true)
	defer w.Close()
	roleUser := experiments.Role("login", "user")
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		principal := fmt.Sprintf("p%d", worker.Add(1))
		for pb.Next() {
			rmc, err := login.Activate(principal, roleUser, core.Presented{})
			if err != nil {
				b.Fatal(err)
			}
			login.Deactivate(rmc.Ref.Serial, "logout")
		}
	})
}
