// Command benchtab regenerates every figure/scenario experiment of the
// paper (see DESIGN.md's experiment index) and prints paper-style rows.
//
// Usage:
//
//	benchtab                 # run every experiment
//	benchtab -exp fig5       # run one experiment
//	benchtab -list           # list experiment ids
//	benchtab -json out.json  # also write machine-readable rows (parallel)
//
// Experiment ids: fig1 fig2 fig3 fig4 fig5 auth sect5 sect6 baselines
// soak parallel faults obs recover wire capacity gateway edgecache
// replication seqcore
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/experiments"
)

// jsonPath, when set, receives the parallel-scaling rows as a JSON array
// (one row per benchmark x GOMAXPROCS point) — the BENCH_*.json seed.
// faultsJSONPath does the same for the E12 fault-injection rows, and
// obsJSONPath for the E13 observability-overhead rows.
var (
	jsonPath            string
	faultsJSONPath      string
	obsJSONPath         string
	recoverJSONPath     string
	wireJSONPath        string
	capacityJSONPath    string
	gatewayJSONPath     string
	edgecacheJSONPath   string
	replicationJSONPath string
	seqcoreJSONPath     string
	quick               bool
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.StringVar(&jsonPath, "json", "", "write parallel-scaling rows to this JSON file")
	flag.StringVar(&faultsJSONPath, "faults-json", "", "write fault-injection rows to this JSON file")
	flag.StringVar(&obsJSONPath, "obs-json", "", "write observability-overhead rows to this JSON file")
	flag.StringVar(&recoverJSONPath, "recover-json", "", "write durability overhead + recovery-time rows to this JSON file")
	flag.StringVar(&wireJSONPath, "wire-json", "", "write wire hot-path rows to this JSON file")
	flag.StringVar(&capacityJSONPath, "capacity-json", "", "write million-principal capacity rows to this JSON file")
	flag.StringVar(&gatewayJSONPath, "gateway-json", "", "write HTTP edge gateway rows to this JSON file")
	flag.StringVar(&edgecacheJSONPath, "edgecache-json", "", "write edge verdict cache rows to this JSON file")
	flag.StringVar(&replicationJSONPath, "replication-json", "", "write journal replication rows to this JSON file")
	flag.StringVar(&seqcoreJSONPath, "seqcore-json", "", "write sequencer-core write-path rows to this JSON file")
	flag.BoolVar(&quick, "quick", false, "shrink sample counts and windows (CI smoke, not for published numbers)")
	flag.Parse()
	if err := run(*exp, *list); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

var experimentsTable = map[string]func(*tabwriter.Writer) error{
	"fig1":        runFig1,
	"fig2":        runFig2,
	"fig3":        runFig3,
	"fig4":        runFig4,
	"fig5":        runFig5,
	"auth":        runAuth,
	"sect5":       runSect5,
	"sect6":       runSect6,
	"baselines":   runBaselines,
	"soak":        runSoak,
	"parallel":    runParallelScaling,
	"faults":      runFaults,
	"obs":         runObs,
	"recover":     runRecover,
	"wire":        runWire,
	"capacity":    runCapacity,
	"gateway":     runGateway,
	"edgecache":   runEdgecache,
	"replication": runReplication,
	"seqcore":     runSeqcore,
}

func run(exp string, list bool) error {
	ids := make([]string, 0, len(experimentsTable))
	for id := range experimentsTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush() //nolint:errcheck
	if exp != "" {
		f, ok := experimentsTable[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", exp)
		}
		return f(w)
	}
	for _, id := range ids {
		if err := experimentsTable[id](w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig1(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E1 / Fig. 1: role dependency through prerequisite roles ==")
	fmt.Fprintln(w, "depth\tsessions\tcerts\tcallback validations\ttotal activate time")
	for _, depth := range []int{1, 2, 4, 8} {
		for _, fanout := range []int{1, 4} {
			row, err := experiments.RunFig1(depth, fanout)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\n",
				row.Depth, row.Fanout, row.CertsIssued, row.Validations, row.ActivateTime.Round(time.Microsecond))
		}
	}
	return nil
}

func runFig2(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E2 / Fig. 2: role entry + service use, callback vs cached validation ==")
	fmt.Fprintln(w, "mode\tinvocations\tcallbacks\tcache hits\tper-invoke")
	for _, cached := range []bool{false, true} {
		row, err := experiments.RunFig2(1000, cached)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n",
			row.Mode, row.Invocations, row.Callbacks, row.CacheHits, row.PerInvoke.Round(100*time.Nanosecond))
	}
	return nil
}

func runFig3(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E3 / Fig. 3: cross-domain EHR session ==")
	fmt.Fprintln(w, "hospitals\tpatients\trequests\tappends\taudit records\taudit complete\tper-op")
	for _, cfg := range []struct{ h, p, ops int }{
		{1, 100, 500},
		{4, 1000, 2000},
		{16, 10000, 4000},
	} {
		row, err := experiments.RunFig3(cfg.h, cfg.p, cfg.ops)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%v\n",
			row.Hospitals, row.Patients, row.Requests, row.Appends,
			row.AuditRecords, row.AuditOK, row.PerOp.Round(100*time.Nanosecond))
	}
	return nil
}

func runFig4(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E4 / Fig. 4: RMC issue/validate cost by parameter count ==")
	fmt.Fprintln(w, "params\tissue\tvalidate")
	for _, p := range []int{0, 2, 4, 8} {
		row, err := experiments.RunFig4(p, 5000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%v\t%v\n", row.Params, row.IssueNs, row.ValidateNs)
	}
	adv, err := experiments.RunFig4Adversarial(2000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "attack\ttrials\taccepted (must be 0)")
	fmt.Fprintf(w, "tamper\t%d\t%d\n", adv.Trials, adv.TamperAccepted)
	fmt.Fprintf(w, "theft\t%d\t%d\n", adv.Trials, adv.TheftAccepted)
	fmt.Fprintf(w, "forgery\t%d\t%d\n", adv.Trials, adv.ForgeryAccepted)
	fmt.Fprintf(w, "appt theft\t%d\t%d\n", adv.Trials, adv.ApptTheftAccepted)
	return nil
}

func runFig5(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E5 / Fig. 5: active revocation cascade ==")
	fmt.Fprintln(w, "shape\ttarget\troles\tcollapse latency\tevents\tcorrect subtree")
	for _, cfg := range []struct {
		shape  string
		n      int
		target string
	}{
		{"chain", 10, "root"}, {"chain", 100, "root"}, {"chain", 100, "leaf"},
		{"star", 10, "root"}, {"star", 100, "root"}, {"star", 1000, "root"},
		{"star", 1000, "leaf"},
	} {
		row, err := experiments.RunFig5Target(cfg.n, cfg.shape, cfg.target)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%d\t%v\n",
			row.Shape, row.Target, row.Roles, row.RevokeLatency.Round(time.Microsecond),
			row.EventsDelivered, row.AllCollapsed)
	}
	return nil
}

func runAuth(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E6 / Sect. 4.1: ISO/9798 challenge-response session binding ==")
	row, err := experiments.RunAuth(500)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "rounds\tper round\tall honest passed\twrong-key accepted (must be 0)")
	fmt.Fprintf(w, "%d\t%v\t%v\t%d\n", row.Rounds, row.PerRound.Round(time.Microsecond),
		row.AllPassed, row.WrongKeyOK)
	return nil
}

func runSect5(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E7 / Sect. 5: visiting doctor across domains ==")
	fmt.Fprintln(w, "doctors\trefused without SLA\tactivated under SLA\tper activation")
	for _, n := range []int{10, 100, 500} {
		row, err := experiments.RunSect5(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\n",
			row.Doctors, row.RefusedNoSLA, row.Activated, row.PerActivation.Round(100*time.Nanosecond))
	}
	return nil
}

func runSect6(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E8 / Sect. 6: web of trust under byzantine minorities ==")
	fmt.Fprintln(w, "population\tbyz frac\tnaive accepts bad\twary accepts bad\thonest accepted\tdecide time")
	for _, frac := range []float64{0, 0.1, 0.2, 0.4} {
		row, err := experiments.RunSect6(100, frac, 20)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.0f%%\t%d/%d\t%d/%d\t%d/%d\t%v\n",
			row.Population, row.ByzantineFrac*100,
			row.NaiveAcceptBad, row.BadTotal,
			row.WaryAcceptBad, row.BadTotal,
			row.HonestAcceptedOK, row.HonestTotal,
			row.DecideTime.Round(time.Millisecond))
	}
	return nil
}

func runSoak(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== Soak: healthcare workload with continuous churn, invariant-checked ==")
	fmt.Fprintln(w, "doctors\tpatients\tops\treads\tdenied\trevocations\tchurns\tviolations (must be 0)\tper-op")
	for _, cfg := range []struct{ d, p, ops int }{
		{3, 20, 1000},
		{10, 200, 5000},
		{20, 1000, 10000},
	} {
		row, err := experiments.RunSoak(cfg.d, cfg.p, cfg.ops, 42)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			row.Doctors, row.Patients, row.Ops, row.Reads, row.Denied,
			row.Revocations, row.Churns, row.Violations, row.PerOp.Round(100*time.Nanosecond))
	}
	return nil
}

func runParallelScaling(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E11: hot-path throughput under concurrent load (goroutines = GOMAXPROCS) ==")
	fmt.Fprintln(w, "benchmark\tprocs\tops\tns/op\tops/sec")
	rows, err := experiments.RunParallelScaling([]int{1, 4, 8}, 150*time.Millisecond)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\n",
			row.Benchmark, row.Procs, row.Ops, row.NsPerOp, row.OpsPerSec)
	}
	if jsonPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", jsonPath)
	return nil
}

func runFaults(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E12: fault injection — retry, circuit breaker, degraded validation ==")
	fmt.Fprintln(w, "scenario\tauthorized\twire calls\tretries\tfast fails\tbreaker\tdegraded hits\tnote")
	rows, err := experiments.RunFaults()
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%s\t%d\t%s\n",
			row.Scenario, row.Authorized, row.TransportCalls, row.Retries,
			row.FastFails, row.Breaker, row.DegradedHits, row.Note)
	}
	if faultsJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(faultsJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", faultsJSONPath)
	return nil
}

func runObs(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E13: observability overhead — hot paths with metrics + tracing attached ==")
	fmt.Fprintln(w, "benchmark\tprocs\tbase ns/op\tobs ns/op\toverhead\ttrace events")
	rows, err := experiments.RunObsOverhead([]int{1, 8}, 150*time.Millisecond, 3)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%+.2f%%\t%d\n",
			row.Benchmark, row.Procs, row.BaseNsPerOp, row.ObsNsPerOp,
			row.OverheadPct, row.TraceEvents)
	}
	if obsJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(obsJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", obsJSONPath)
	return nil
}

func runRecover(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E14: durability — journaling overhead on hot paths, recovery time vs journal size ==")
	fmt.Fprintln(w, "benchmark\tprocs\tbase ns/op\tdurable ns/op\toverhead\tappended")
	// Overhead is defined on the hot path with a core available for the
	// background committer (procs >= 2): at GOMAXPROCS=1 the measurement
	// would conflate the foreground issue path with the deliberately
	// offloaded encode/write/fsync work sharing the only core.
	overhead, err := experiments.RunRecoverOverhead([]int{2, 8}, 120*time.Millisecond, 8)
	if err != nil {
		return err
	}
	for _, row := range overhead {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%+.2f%%\t%d\n",
			row.Benchmark, row.Procs, row.BaseNsPerOp, row.DurableNsPerOp,
			row.OverheadPct, row.Appended)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nrecords\tcompacted\tbytes read at boot\treplayed\trecovery")
	recovery, err := experiments.RunRecoverTime([]int{1_000, 10_000, 100_000})
	if err != nil {
		return err
	}
	for _, row := range recovery {
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%.2fms\n",
			row.Records, row.Compacted, row.JournalBytes, row.Replayed, row.RecoverMs)
	}
	if recoverJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(experiments.RecoverResult{Overhead: overhead, Recovery: recovery}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(recoverJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", recoverJSONPath)
	return nil
}

func runWire(w *tabwriter.Writer) error {
	// Fan-in windows are long enough to ride out scheduler and GC noise;
	// a storm cycles in ~1ms, so 2s covers thousands of herd round trips.
	latencyOps, window := 2000, 2*time.Second
	if quick {
		latencyOps, window = 200, 80*time.Millisecond
	}
	res, err := experiments.RunWire([]int{2, 8}, latencyOps, window)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E15: wire hot path — framing, batched validation, binary codecs ==")
	fmt.Fprintln(w, "protocol\tops\tmedian\tp99")
	for _, row := range res.Latency {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\n", row.Mode, row.Ops,
			time.Duration(row.MedianNs).Round(100*time.Nanosecond),
			time.Duration(row.P99Ns).Round(100*time.Nanosecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nmode\tprocs\tworkers\tinvocations\tops/sec\tbatches\tbatched validations\tbytes sent/op")
	for _, row := range res.Fanin {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%d\t%d\t%.0f\n",
			row.Mode, row.Procs, row.Workers, row.Invocations, row.OpsPerSec,
			row.BatchesSent, row.BatchedValidations, row.BytesSentPerOp)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\ncodec\tpayload\tbytes/op\tallocs/op\tns/op")
	for _, row := range res.Codec {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.0f\n",
			row.Codec, row.Payload, row.BytesPerOp, row.AllocsPerOp, row.NsPerOp)
	}
	if wireJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(wireJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", wireJSONPath)
	return nil
}

func runGateway(w *tabwriter.Writer) error {
	// 24 workers is far past the serialized overload backend's ~500
	// verdicts/sec capacity, so the admission comparison always saturates;
	// quick mode only proves the machinery end to end.
	latencyOps, window, workers := 1000, 2*time.Second, 24
	if quick {
		latencyOps, window, workers = 100, 80*time.Millisecond, 8
	}
	res, err := experiments.RunGateway(latencyOps, window, workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E17: HTTP edge gateway — edge tax, batched fan-in, overload admission ==")
	fmt.Fprintln(w, "mode\tops\tmedian\tp99")
	for _, row := range res.Latency {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\n", row.Mode, row.Ops,
			time.Duration(row.MedianNs).Round(100*time.Nanosecond),
			time.Duration(row.P99Ns).Round(100*time.Nanosecond))
	}
	fmt.Fprintf(w, "edge tax (median)\t%v\n", time.Duration(res.EdgeTaxNs).Round(100*time.Nanosecond))
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nmode\tissuer µs/call\tworkers\trequests\tops/sec\tbatches\tbatched validations")
	for _, row := range res.Fanin {
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%.0f\t%d\t%d\n",
			row.Mode, row.IssuerUs, row.Workers, row.Requests, row.OpsPerSec,
			row.BatchesSent, row.BatchedValidations)
	}
	fmt.Fprintf(w, "http_batched / raw_per_call (issuer-bound)\t%.2fx\n", res.FaninHTTPOverRaw)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nadmission\tworkers\taccepted\tshed 503\tshed 429\taccepted p50\taccepted p99")
	for _, row := range res.Overload {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\t%v\n",
			row.Admission, row.Workers, row.Accepted, row.Shed503, row.Shed429,
			time.Duration(row.AcceptedP50Ns).Round(100*time.Nanosecond),
			time.Duration(row.AcceptedP99Ns).Round(100*time.Nanosecond))
	}
	if gatewayJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(gatewayJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", gatewayJSONPath)
	return nil
}

func runEdgecache(w *tabwriter.Writer) error {
	// The latency rows are sequential verdicts; the kill-the-cert and
	// severed sections are event-driven and need no scaling — quick mode
	// only shrinks the measured sample.
	latencyOps := 1000
	if quick {
		latencyOps = 100
	}
	res, err := experiments.RunEdgecache(latencyOps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E18: event-fed edge verdict cache — hit latency, event-bound invalidation, fail-closed feed loss ==")
	fmt.Fprintln(w, "mode\tops\tmedian\tp99")
	for _, row := range res.Latency {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\n", row.Mode, row.Ops,
			time.Duration(row.MedianNs).Round(100*time.Nanosecond),
			time.Duration(row.P99Ns).Round(100*time.Nanosecond))
	}
	fmt.Fprintf(w, "edge_cached / local_inproc (median)\t%.2fx (ceiling 2x)\n", res.CachedOverLocal)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nkill-the-cert\trevoke -> invalidation\tissuer calls (must be 0)\trefused after")
	fmt.Fprintf(w, "\t%v\t%d\t%v\n",
		time.Duration(res.Kill.InvalidateNs).Round(time.Microsecond),
		res.Kill.IssuerCallsDuringKill, res.Kill.RefusedAfter)
	fmt.Fprintln(w, "\nsevered feed\tsever -> detach\tbypassed\tstale positive (must be false)\tresumed hits")
	fmt.Fprintf(w, "\t%v\t%d\t%v\t%d\n",
		time.Duration(res.Severed.DetachNs).Round(time.Microsecond),
		res.Severed.BypassedDuringOutage, res.Severed.StalePositive, res.Severed.ResumedHits)
	if len(res.Violations) > 0 {
		return fmt.Errorf("edgecache violations: %v", res.Violations)
	}
	if edgecacheJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(edgecacheJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", edgecacheJSONPath)
	return nil
}

func runCapacity(w *tabwriter.Writer) error {
	// The published numbers run at a million resident principals; quick
	// mode shrinks the population for CI smoke, where only the machinery
	// (both variants, eviction, expiry waves, cascade) is under test.
	principals, ops, cascade := 1_000_000, 200_000, 100_000
	if quick {
		principals, ops, cascade = 20_000, 20_000, 5_000
	}
	res, err := experiments.RunCapacity(principals, ops, cascade)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E16: million-principal capacity — compact resident state under churn ==")
	fmt.Fprintln(w, "variant\tprincipals\tresident MB\tbytes/principal\tresident CRs\tcached validations\tintern entries\tpopulate")
	for _, row := range res.Resident {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.0f\t%d\t%d\t%d\t%.0fms\n",
			row.Variant, row.Principals, float64(row.ResidentBytes)/(1<<20),
			row.BytesPerPrincipal, row.ResidentCRs, row.CachedValidations,
			row.InternEntries, row.PopulateMs)
	}
	fmt.Fprintf(w, "bytes/principal improvement\t%+.1f%%\n", res.ImprovementPct)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nvariant\tops\tp50\tp99\tallocs/op\tauthorized\tdenied\trevocations\tappts expired")
	for _, row := range res.Churn {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%.1f\t%d\t%d\t%d\t%d\n",
			row.Variant, row.Ops,
			time.Duration(row.P50Ns).Round(100*time.Nanosecond),
			time.Duration(row.P99Ns).Round(100*time.Nanosecond),
			row.AllocsPerOp, row.Authorized, row.Denied, row.Revocations, row.ApptExpired)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nvariant\tcascade certs\tcollapse\tfully collapsed")
	for _, row := range res.Cascade {
		fmt.Fprintf(w, "%s\t%d\t%.2fms\t%v\n", row.Variant, row.Certs, row.CollapseMs, row.Collapsed)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("capacity violations: %v", res.Violations)
	}
	if capacityJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(capacityJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", capacityJSONPath)
	return nil
}

func runReplication(w *tabwriter.Writer) error {
	// The failover burst and throughput windows shrink in quick mode;
	// the staleness bound stays real time either way (it is the thing
	// under test, not a sample count).
	cfg := experiments.ReplicationConfig{
		Credentials: 400,
		Window:      1500 * time.Millisecond,
		PerCall:     400 * time.Microsecond,
		Workers:     6,
	}
	if quick {
		cfg.Credentials, cfg.Window = 60, 200*time.Millisecond
	}
	res, err := experiments.RunReplication(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E19: journal replication — replica kill mid-burst, read scaling, fail-closed staleness ==")
	fmt.Fprintln(w, "failover\tissued\trevoked\tkilled after\tlost (must be 0)\tfalse denials\treconverge\thash converged")
	fmt.Fprintf(w, "\t%d\t%d\t%d\t%d\t%d\t%.1fms\t%v\n",
		res.Failover.Issued, res.Failover.Revoked, res.Failover.KillAfter,
		res.Failover.LostRevocations, res.Failover.FalseDenials,
		res.Failover.ReconvergeMs, res.Failover.HashConverged)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nnodes\tper-call µs\tworkers\tops\tops/sec")
	for _, row := range res.Throughput {
		fmt.Fprintf(w, "%d\t%.0f\t%d\t%d\t%.0f\n",
			row.Nodes, row.PerCallUs, row.Workers, row.Ops, row.OpsPerSec)
	}
	fmt.Fprintf(w, "3-node / 1-node aggregate\t%.2fx (floor 2x)\n", res.ScaleX)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nstaleness\tbound\tserved fresh\tsever -> refused\treads closed\twrites closed")
	fmt.Fprintf(w, "\t%.0fms\t%d\t%.1fms\t%v\t%v\n",
		res.Staleness.StaleAfterMs, res.Staleness.ServedFresh,
		res.Staleness.SeverToStaleMs, res.Staleness.ReadFailClosed,
		res.Staleness.WriteFailClosed)
	if len(res.Violations) > 0 {
		return fmt.Errorf("replication violations: %v", res.Violations)
	}
	if replicationJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(replicationJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", replicationJSONPath)
	return nil
}

func runBaselines(w *tabwriter.Writer) error {
	fmt.Fprintln(w, "== E9a: policy size — OASIS parametrised rules vs RBAC0 vs ACLs ==")
	fmt.Fprintln(w, "doctors\tpatients/doctor\tOASIS rules\tRBAC0 roles\tRBAC0 assignments\tACL entries")
	for _, cfg := range []struct{ d, p int }{{10, 10}, {50, 50}, {200, 100}} {
		row := experiments.RunPolicySize(cfg.d, cfg.p)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Doctors, row.PatientsPerDoctor, row.OASISRules,
			row.RBAC0Roles, row.RBAC0Assignments, row.ACLEntries)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== E9b: revocation — active event channels vs polling ==")
	fmt.Fprintln(w, "certs\tpoll interval\tactive latency\tpolling latency\tpoll msgs/hr\tactive events")
	for _, cfg := range []struct {
		certs    int
		interval time.Duration
	}{
		{100, time.Second}, {100, 10 * time.Second}, {100, time.Minute},
	} {
		row, err := experiments.RunRevocationComparison(cfg.certs, cfg.interval, 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%d\t%d\n",
			row.Certificates, row.PollInterval,
			row.ActiveLatency.Round(time.Microsecond), row.PollingLatency,
			row.PollMessages, row.ActiveEvents)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== E9c: stand-in via appointment vs delegation chains ==")
	fmt.Fprintln(w, "chain length\tappointment revokes\tdelegation cascade ops\tdangling without cascade")
	for _, n := range []int{1, 5, 20} {
		row := experiments.RunDelegationComparison(n)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n",
			row.ChainLen, row.AppointmentRevokes,
			row.DelegationCascadeOps, row.DanglingWithoutCascade)
	}
	return nil
}

func runSeqcore(w *tabwriter.Writer) error {
	// The published numbers use a long enough window for the group-commit
	// amortisation to reach steady state; quick mode only proves the
	// machinery (and the ordering/loss invariants) end to end.
	cfg := experiments.SeqcoreConfig{
		Procs:  []int{1, 8},
		Window: 1500 * time.Millisecond,
	}
	if quick {
		cfg.Window = 150 * time.Millisecond
	}
	res, err := experiments.RunSeqcore(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== E20: per-shard sequencer core — mixed issue/revoke write path, journaled ==")
	fmt.Fprintln(w, "variant\tprocs\tpairs\tns/op\tops/sec\trevoke p50\trevoke p99")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.2fms\t%.2fms\n",
			row.Variant, row.Procs, row.Ops, row.NsPerOp, row.OpsPerSec,
			row.RevokeP50Ms, row.RevokeP99Ms)
	}
	fmt.Fprintf(w, "sequencer / direct at 8 procs\t%.2fx (floor 1.3x)\trevoke p99 %.2fms vs %.2fms direct\n",
		res.SpeedupAtMax, res.SeqP99Ms, res.DirectP99Ms)
	if len(res.Violations) > 0 {
		return fmt.Errorf("seqcore violations: %v", res.Violations)
	}
	if seqcoreJSONPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(seqcoreJSONPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(rows written to %s)\n", seqcoreJSONPath)
	return nil
}
