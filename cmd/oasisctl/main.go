// Command oasisctl is the client for oasisd: it manages a session wallet
// on disk and performs role activation, method invocation, and appointment
// requests against OASIS services over TCP.
//
//	oasisctl new-session -wallet w.json
//	oasisctl activate    -wallet w.json -addr :7070 -role 'login.user(alice)'
//	oasisctl invoke      -wallet w.json -addr :7070 -service files -method read -args 'report'
//	oasisctl appoint     -wallet w.json -addr :7070 -service admin -kind employed_as_doctor \
//	                     -holder dr-jones-key -params 'st_marys'
//	oasisctl show        -wallet w.json
//
// It also verifies a daemon's durable state directory offline (checksums,
// torn tails, replayable totals) without touching the files:
//
//	oasisctl state verify -state-dir /var/lib/oasisd
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/cmdutil"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/rpc"
)

// wallet is the on-disk session state. The principal id stands in for the
// session key; the daemon deployment relies on issuer-side principal
// checks rather than interactive challenge-response.
type wallet struct {
	Principal    string                        `json:"principal"`
	RMCs         []cert.RMC                    `json:"rmcs,omitempty"`
	Appointments []cert.AppointmentCertificate `json:"appointments,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oasisctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: oasisctl <new-session|activate|invoke|appoint|logout|show|state> [flags]")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "state" {
		return stateCmd(rest)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		walletPath = fs.String("wallet", "oasis-wallet.json", "session wallet file")
		addr       = fs.String("addr", "127.0.0.1:7070", "oasisd address")
		service    = fs.String("service", "", "target service name")
		roleSpec   = fs.String("role", "", "role instance, e.g. 'login.user(alice)'")
		method     = fs.String("method", "", "method name")
		argList    = fs.String("args", "", "comma-separated ground terms")
		kind       = fs.String("kind", "", "appointment kind")
		holder     = fs.String("holder", "", "appointment holder principal")
		params     = fs.String("params", "", "appointment parameters")
		expires    = fs.Duration("expires", 0, "appointment validity (0 = no expiry)")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}

	switch cmd {
	case "new-session":
		return newSession(*walletPath)
	case "show":
		return show(*walletPath)
	case "logout":
		return logout(*walletPath, *addr, *service)
	case "activate":
		return activate(*walletPath, *addr, *roleSpec)
	case "invoke":
		return invoke(*walletPath, *addr, *service, *method, *argList)
	case "appoint":
		return appoint(*walletPath, *addr, *service, *kind, *holder, *params, *expires)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// stateCmd handles the offline `state` subcommands; only `verify` exists
// today. It reads the directory without modifying it, so it is safe to run
// against a live daemon's state dir.
func stateCmd(args []string) error {
	if len(args) == 0 || args[0] != "verify" {
		return fmt.Errorf("usage: oasisctl state verify -state-dir <dir> [-json]")
	}
	fs := flag.NewFlagSet("state verify", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "daemon state directory to verify")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *stateDir == "" {
		return fmt.Errorf("-state-dir is required")
	}
	rep, err := durable.Verify(*stateDir)
	if err != nil {
		return err
	}
	if *asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", b)
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.OK {
		return fmt.Errorf("state verification failed")
	}
	return nil
}

func loadWallet(path string) (*wallet, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read wallet (run new-session first?): %w", err)
	}
	var w wallet
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("decode wallet: %w", err)
	}
	return &w, nil
}

func saveWallet(path string, w *wallet) error {
	b, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return fmt.Errorf("write wallet: %w", err)
	}
	return nil
}

// client dials the daemon and wraps the connection in the resilient
// caller: per-call deadlines, retries for idempotent methods, and a
// circuit breaker, so a flaky daemon yields a quick typed error instead
// of a hung CLI.
func client(addr string) (*core.Client, func(), error) {
	conn, err := rpc.DialTCP(addr, 10*time.Second)
	if err != nil {
		return nil, nil, err
	}
	rc := rpc.NewResilientCaller(conn, rpc.ResilientConfig{CallTimeout: 15 * time.Second})
	return core.NewClient(rc), func() { conn.Close() }, nil //nolint:errcheck
}

func newSession(path string) error {
	sess, err := core.NewSession(nil)
	if err != nil {
		return err
	}
	w := &wallet{Principal: sess.PrincipalID()}
	if err := saveWallet(path, w); err != nil {
		return err
	}
	fmt.Printf("new session %s (wallet %s)\n", w.Principal[:16]+"...", path)
	return nil
}

func show(path string) error {
	w, err := loadWallet(path)
	if err != nil {
		return err
	}
	fmt.Printf("principal: %s\n", w.Principal)
	for _, r := range w.RMCs {
		fmt.Printf("rmc: %s issued by %s\n", r.Role, r.Ref)
	}
	for _, a := range w.Appointments {
		fmt.Printf("appointment: %s.%s holder=%s\n", a.Issuer, a.Kind, a.Holder)
	}
	return nil
}

func activate(path, addr, roleSpec string) error {
	if roleSpec == "" {
		return fmt.Errorf("-role is required")
	}
	w, err := loadWallet(path)
	if err != nil {
		return err
	}
	role, err := cmdutil.ParseRoleInstance(roleSpec)
	if err != nil {
		return err
	}
	cli, done, err := client(addr)
	if err != nil {
		return err
	}
	defer done()
	rmc, err := cli.Activate(role.Name.Service, w.Principal, role,
		core.Presented{RMCs: w.RMCs, Appointments: w.Appointments})
	if err != nil {
		return err
	}
	w.RMCs = append(w.RMCs, rmc)
	if err := saveWallet(path, w); err != nil {
		return err
	}
	fmt.Printf("activated %s (RMC %s)\n", rmc.Role, rmc.Ref)
	return nil
}

func invoke(path, addr, service, method, argList string) error {
	if service == "" || method == "" {
		return fmt.Errorf("-service and -method are required")
	}
	w, err := loadWallet(path)
	if err != nil {
		return err
	}
	args, err := cmdutil.ParseTerms(argList)
	if err != nil {
		return err
	}
	cli, done, err := client(addr)
	if err != nil {
		return err
	}
	defer done()
	out, err := cli.Invoke(service, w.Principal, method, args,
		core.Presented{RMCs: w.RMCs, Appointments: w.Appointments})
	if err != nil {
		return err
	}
	if len(out) == 0 {
		fmt.Println("ok (authorized; the service bound no output for this method)")
		return nil
	}
	fmt.Printf("%s\n", out)
	return nil
}

// logout ends the session at the named service: the service deactivates
// every credential record issued to this principal, and the revocation
// events collapse dependent roles everywhere.
func logout(path, addr, service string) error {
	if service == "" {
		return fmt.Errorf("-service is required (the service holding the initial role)")
	}
	w, err := loadWallet(path)
	if err != nil {
		return err
	}
	conn, err := rpc.DialTCP(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close() //nolint:errcheck
	body, err := json.Marshal(map[string]string{"principal": w.Principal})
	if err != nil {
		return err
	}
	// end_session is idempotent, so the resilient caller may retry it.
	rc := rpc.NewResilientCaller(conn, rpc.ResilientConfig{CallTimeout: 15 * time.Second})
	out, err := rc.Call(service, "end_session", body)
	if err != nil {
		return err
	}
	// Drop the now-dead certificates from the wallet.
	var kept []cert.RMC
	for _, r := range w.RMCs {
		if r.Ref.Issuer != service {
			kept = append(kept, r)
		}
	}
	w.RMCs = kept
	if err := saveWallet(path, w); err != nil {
		return err
	}
	fmt.Printf("logged out at %s: %s\n", service, out)
	return nil
}

func appoint(path, addr, service, kind, holder, params string, expires time.Duration) error {
	if service == "" || kind == "" || holder == "" {
		return fmt.Errorf("-service, -kind and -holder are required")
	}
	w, err := loadWallet(path)
	if err != nil {
		return err
	}
	terms, err := cmdutil.ParseTerms(params)
	if err != nil {
		return err
	}
	var expiresAt time.Time
	if expires > 0 {
		expiresAt = time.Now().Add(expires)
	}
	cli, done, err := client(addr)
	if err != nil {
		return err
	}
	defer done()
	appt, err := cli.Appoint(service, w.Principal, core.AppointmentRequest{
		Kind:      kind,
		Holder:    holder,
		Params:    terms,
		ExpiresAt: expiresAt,
	}, core.Presented{RMCs: w.RMCs, Appointments: w.Appointments})
	if err != nil {
		return err
	}
	b, err := cert.MarshalAppointment(appt)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", b)
	return nil
}
