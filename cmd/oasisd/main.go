// Command oasisd hosts one or more OASIS-secured services over TCP.
//
// Each -svc flag names a service and its policy file; -facts loads ground
// facts into a shared store whose relations become environmental
// predicates on every hosted service; -peer registers the address of a
// service hosted by another oasisd process so that callback validation of
// its certificates works across processes.
//
//	oasisd -addr :7070 \
//	    -svc login=login.policy -svc files=files.policy \
//	    -facts facts.txt \
//	    -peer national=10.0.0.7:7070
//
// Policy files use the syntax documented in the policy package; fact files
// hold one fact per line: `relation arg1 arg2 ...` (arguments are atoms,
// integers, or "quoted strings"; blank lines and #-comments are ignored).
//
// Within one process, hosted services share an event broker, so active
// revocation (membership monitoring, session-tree collapse) is immediate.
// Across processes, certificates are validated by callback, and -relay-peer
// bridges the event brokers so revocations propagate actively between
// daemons too:
//
//	oasisd -addr :7070 -node A -svc login=login.policy \
//	    -relay-peer B=10.0.0.8:7070
//	oasisd -addr :7070 -node B -svc files=files.policy \
//	    -peer login=10.0.0.7:7070 -relay-peer A=10.0.0.7:7070
//
// Peer calls go through a resilient caller (per-call deadlines, retries
// for idempotent methods, per-service circuit breaker). -revalidate,
// -stale-grace and -heartbeat bound degraded validation while a peer is
// unreachable (see DESIGN.md Sect. 8).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/civ"
	"repro/internal/clock"
	"repro/internal/cmdutil"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/sign"
	"repro/internal/store"
)

// The durable log is the daemon's journal implementation.
var _ core.Journal = (*durable.Log)(nil)

// heartbeatDeadlineFactor is how many heartbeat periods of silence declare
// an issuer dead: the monitor's timeout, the startup log line, and the
// documentation all derive from this one constant (an earlier version
// hard-coded the multiplier in two places, and the log drifted from the
// behaviour when one of them changed).
const heartbeatDeadlineFactor = 3

// relayQueueCapacity bounds the per-peer relay dispatch queue; overflow
// drops the oldest events (counted in relay_dropped_total) rather than
// growing without bound while a peer is partitioned.
const relayQueueCapacity = 256

// defaultShutdownGrace bounds the drain after the first shutdown signal;
// past it (or on a second signal) the daemon stops waiting and forces the
// exit instead of hanging around half-dead.
const defaultShutdownGrace = 15 * time.Second

// httpMaxInflight is the admission cap of the in-process -http-addr
// gateway. A convenience endpoint gets a fixed sane bound; deployments
// that need to tune edge admission run cmd/oasisgw, which exposes every
// knob.
const httpMaxInflight = 256

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		facts      = flag.String("facts", "", "facts file (relation arg1 arg2 per line)")
		civCount   = flag.Int("civ", 0, "share a replicated CIV record store of N replicas across hosted services (0 = service-local records)")
		node       = flag.String("node", "", "node name for cross-process event relaying (default: the listen address)")
		revalidate = flag.Duration("revalidate", 0, "re-confirm cached foreign certificates after this age (0 = cache until revoked)")
		batchWin   = flag.Duration("batch-window", 0, "coalesce concurrent callback validations per issuer for up to this long (0 = default window, negative = disable batching)")
		staleGrace = flag.Duration("stale-grace", 0, "serve previously-confirmed certificates for this long when the issuer is unreachable (0 = fail closed immediately)")
		heartbeat  = flag.Duration("heartbeat", 0, fmt.Sprintf(
			"emit and sweep liveness heartbeats at this period; silence past %dx the period synthetically revokes (0 = off)",
			heartbeatDeadlineFactor))
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
		httpAddr  = flag.String("http-addr", "", "serve the HTTP/JSON edge gateway (POST /validate, /activate, /appoint, /revoke) on this address (empty = off)")
		httpCache = flag.Bool("http-cache", false, "cache /validate verdicts in the embedded gateway, invalidated by this broker's revocation events (peer revocations invalidate only when bridged with -relay-peer)")
		httpCMax  = flag.Int("http-cache-max", 65536, "bound the embedded gateway's verdict cache to this many entries (0 = unbounded)")
		shutGr   = flag.Duration("shutdown-grace", defaultShutdownGrace, "force exit if shutdown has not drained within this long of the first signal")
		stateDir = flag.String("state-dir", "", "journal issued credentials, appointments, facts and signing keys here; recovered on restart (empty = ephemeral)")
		follow    = flag.String("follow", "", "run as a read replica of the oasisd at this address: replicate its journal, serve validation locally, proxy writes (excludes -svc and -state-dir)")
		replStale = flag.Duration("repl-stale", 10*time.Second, "with -follow: refuse validation reads once the leader has been silent this long (fail closed)")
		replLease = flag.Duration("repl-lease", 3*time.Second, "with -state-dir: write-proxy lease TTL granted to followers")
		ecrMax   = flag.Int("ecr-cache-max", 0, "bound each service's ECR validation cache to this many entries, evicting cold verdicts (0 = unbounded)")
		acBytes  = flag.Int64("auto-compact-bytes", 0, "live-compact the journal when the active generation exceeds this many bytes (0 = compact only at shutdown)")
		acGarb   = flag.Int("auto-compact-garbage", 0, "live-compact the journal after this many superseding records (revocations, retractions; 0 = off)")
		svcs     multiFlag
		peers    multiFlag
		relayTo  multiFlag
	)
	flag.Var(&svcs, "svc", "service to host: name=policyfile (repeatable)")
	flag.Var(&peers, "peer", "remote service address: name=host:port (repeatable)")
	flag.Var(&relayTo, "relay-peer", "relay revocation events to another oasisd: node=host:port (repeatable)")
	flag.Parse()
	if *node == "" {
		*node = *addr
	}

	cfg := daemonConfig{
		addr: *addr, factsPath: *facts, civCount: *civCount, node: *node,
		revalidate: *revalidate, staleGrace: *staleGrace, heartbeat: *heartbeat,
		batchWindow: *batchWin,
		obsAddr:     *obsAddr, httpAddr: *httpAddr, stateDir: *stateDir,
		follow: *follow, replStale: *replStale, replLease: *replLease,
		httpCache: *httpCache, httpCacheMax: *httpCMax,
		shutdownGrace: *shutGr,
		ecrCacheMax:   *ecrMax, autoCompactBytes: *acBytes, autoCompactGarbage: *acGarb,
		svcs: svcs, peers: peers, relayTo: relayTo,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oasisd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr        string
	factsPath   string
	civCount    int
	node        string
	revalidate  time.Duration
	staleGrace  time.Duration
	heartbeat   time.Duration
	batchWindow time.Duration
	obsAddr     string
	httpAddr    string
	stateDir    string

	// follow runs this daemon as a read replica of the named leader;
	// replStale bounds how stale its validation reads may get, and
	// replLease is the write-proxy lease TTL a journaling daemon grants
	// to its own followers.
	follow    string
	replStale time.Duration
	replLease time.Duration

	// httpCache enables the embedded gateway's event-invalidated verdict
	// cache, fed by a direct tap on the local broker (always "attached":
	// an in-process subscription cannot be lost short of process death).
	httpCache    bool
	httpCacheMax int

	// shutdownGrace bounds the drain after the first shutdown signal
	// (0 selects defaultShutdownGrace).
	shutdownGrace time.Duration

	// Capacity knobs (E16): bound the resident footprint of a long-lived
	// daemon — the per-service validation cache and the on-disk journal.
	ecrCacheMax        int
	autoCompactBytes   int64
	autoCompactGarbage int

	svcs    []string
	peers   []string
	relayTo []string
}

func run(cfg daemonConfig) error {
	addr, factsPath, civCount, node := cfg.addr, cfg.factsPath, cfg.civCount, cfg.node
	svcs, peers, relayTo := cfg.svcs, cfg.peers, cfg.relayTo
	if cfg.follow != "" {
		// A follower's services come from the leader's journal, and its
		// durable state IS the leader's journal: hosting or journaling
		// locally would fork the history it replicates.
		if len(svcs) > 0 {
			return fmt.Errorf("-follow cannot be combined with -svc: a replica's services come from the leader")
		}
		if cfg.stateDir != "" {
			return fmt.Errorf("-follow cannot be combined with -state-dir: a replica's durable state is the leader's journal")
		}
	} else if len(svcs) == 0 {
		return fmt.Errorf("at least one -svc name=policyfile is required (or -follow a leader)")
	}
	var records core.RecordStore
	if civCount > 0 {
		cluster, err := civ.NewCluster(civCount)
		if err != nil {
			return err
		}
		records = domain.NewCIVRecords(cluster)
		fmt.Printf("credential records on a %d-replica CIV cluster\n", civCount)
	}

	// Observability: the registry and tracer always exist (recording is
	// cheap and nil-safe throughout the stack); the HTTP exposition below
	// only starts when -obs-addr is set. Liveness trace events are echoed
	// to stdout so issuer deaths stay visible in the daemon log.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4096)
	tracer.Echo(os.Stdout, "liveness")
	// Process-level resident-memory gauges: together with the per-service
	// core_resident_crs and core_ecr_cache_entries gauges they answer the
	// capacity question (bytes per resident principal) on a live daemon.
	obs.RegisterRuntimeMetrics(reg)

	broker := event.NewBroker()
	defer broker.Close()
	reg.Func("event_published_total", func() uint64 { p, _ := broker.Stats(); return p })
	reg.Func("event_delivered_total", func() uint64 { _, d := broker.Stats(); return d })
	reg.Func("event_pending", func() uint64 { return uint64(max(broker.Pending(), 0)) })

	// The caller used for callback validation: local services are
	// reached in-process; peers over TCP through a small connection pool
	// (no head-of-line blocking across concurrent validations). The
	// resilient wrapper adds per-call deadlines, retries for idempotent
	// methods, and a per-service circuit breaker so a dead peer fails
	// fast instead of stalling every validation.
	local := rpc.NewLoopback()
	directory := rpc.NewDirectoryPool(10*time.Second, 4)
	directory.Instrument(reg)
	defer directory.Close()
	for _, p := range peers {
		name, peerAddr, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -peer %q, want name=host:port", p)
		}
		directory.Add(name, peerAddr)
	}
	// localNames is filled as services are created — at startup on a
	// leader, at replication time on a follower (which is why it is a
	// lock-guarded set rather than a bare map).
	localNames := newNameSet()
	caller := rpc.NewResilientCaller(
		splitCaller{local: local, remote: directory, localNames: localNames},
		rpc.ResilientConfig{CallTimeout: 10 * time.Second, Obs: reg, Trace: tracer},
	)

	// Durable state: recover the journal before anything issues or
	// validates, so pre-crash certificates keep answering authoritatively
	// the moment the listener opens.
	var dlog *durable.Log
	recovered := durable.NewState()
	if cfg.stateDir != "" {
		var err error
		dlog, err = durable.Open(durable.Options{
			Dir:                cfg.stateDir,
			Obs:                reg,
			AutoCompactBytes:   cfg.autoCompactBytes,
			AutoCompactGarbage: cfg.autoCompactGarbage,
		})
		if err != nil {
			return fmt.Errorf("recover state from %s: %w", cfg.stateDir, err)
		}
		defer func() {
			// Clean shutdown: seal the journal behind a snapshot so the
			// next start replays one file instead of the whole history.
			if err := dlog.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "oasisd: compact state:", err)
			}
			if err := dlog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "oasisd: close state:", err)
			}
		}()
		recovered, err = dlog.Recovered()
		if err != nil {
			return fmt.Errorf("decode recovered state: %w", err)
		}
		rs := dlog.ReplayStats()
		fmt.Printf("durable state in %s: replayed %d records (snapshot gen %d loaded=%v, %d torn bytes discarded) in %v\n",
			cfg.stateDir, rs.Records, rs.SnapshotGen, rs.SnapshotLoaded, rs.TruncatedBytes, rs.Elapsed)
	}

	db := store.New()
	var relations []string
	seenRel := make(map[string]bool)
	// Journal-recovered facts first, silently: no observer is registered
	// yet, so replay does not re-journal or trigger membership checks.
	for _, f := range recovered.Facts {
		if _, err := db.Assert(f.Relation, f.Tuple...); err != nil {
			return fmt.Errorf("replay fact %s: %w", f.Relation, err)
		}
		if !seenRel[f.Relation] {
			seenRel[f.Relation] = true
			relations = append(relations, f.Relation)
		}
	}
	if dlog != nil {
		// From here on, every fact mutation is journaled.
		db.Observe(dlog.FactChanged)
	}
	if factsPath != "" {
		text, err := os.ReadFile(factsPath)
		if err != nil {
			return fmt.Errorf("read facts: %w", err)
		}
		loaded, err := cmdutil.LoadFacts(db, string(text))
		if err != nil {
			return fmt.Errorf("load facts: %w", err)
		}
		for _, rel := range loaded {
			if !seenRel[rel] {
				seenRel[rel] = true
				relations = append(relations, rel)
			}
		}
	}

	// Liveness monitoring for degraded validation: hosted services emit
	// heartbeats every period, and validated foreign certificates are
	// watched — an issuer silent past 3x the period is treated as revoked,
	// cutting any stale-grace window short.
	var hb *event.HeartbeatMonitor
	if cfg.heartbeat > 0 {
		hb = event.NewHeartbeatMonitor(broker, clock.Real{}, heartbeatDeadlineFactor*cfg.heartbeat)
		hb.Instrument(reg, tracer)
		defer hb.Close()
	}

	server := rpc.NewTCPServer()
	server.Instrument(reg)
	if dlog != nil {
		// Every journaling daemon is a potential leader: serve the
		// journal as a replication stream and grant write-proxy leases.
		ship := replica.NewShipper(replica.ShipperConfig{
			Log: dlog, Node: node, LeaseTTL: cfg.replLease, Obs: reg,
		})
		ship.Register(server)
		fmt.Printf("serving journal replication (%s/%s, lease %v)\n",
			replica.Service, replica.MethodSubscribe, ship.LeaseTTL())
	}
	if cfg.follow != "" {
		// Follower mode: replicate the leader's journal into local
		// read-only services. Writes (and the replicated services' own
		// callback validations to third parties) go through a caller
		// that never loops back into this process.
		directory.Add(replica.Service, cfg.follow)
		leaderCaller := rpc.NewResilientCaller(directory,
			rpc.ResilientConfig{CallTimeout: 10 * time.Second, Obs: reg, Trace: tracer})
		follower, err := replica.NewFollower(replica.FollowerConfig{
			Leader: cfg.follow,
			Broker: broker,
			Store:  db,
			Caller: leaderCaller,
			Register: func(name string, h rpc.Handler) {
				directory.Add(name, cfg.follow)
				local.Register(name, h)
				server.Register(name, h)
				localNames.add(name)
				fmt.Printf("replicating service %s (validation local, writes proxied)\n", name)
			},
			StaleAfter:  cfg.replStale,
			ECRCacheMax: cfg.ecrCacheMax,
			Obs:         reg,
		})
		if err != nil {
			return err
		}
		follower.Run()
		defer follower.Close()
		fmt.Printf("following leader %s (reads fail closed after %v of silence)\n", cfg.follow, cfg.replStale)
	}
	var hosted []*core.Service
	for _, s := range svcs {
		name, policyPath, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("bad -svc %q, want name=policyfile", s)
		}
		text, err := os.ReadFile(policyPath)
		if err != nil {
			return fmt.Errorf("read policy for %s: %w", name, err)
		}
		pol, err := policy.Parse(string(text))
		if err != nil {
			return fmt.Errorf("policy for %s: %w", name, err)
		}
		svcCfg := core.Config{
			Name:             name,
			Policy:           pol,
			Broker:           broker,
			Caller:           caller,
			CacheValidations: true,
			CacheMaxEntries:  cfg.ecrCacheMax,
			Records:          records,
			RevalidateAfter:  cfg.revalidate,
			StaleGrace:       cfg.staleGrace,
			BatchWindow:      cfg.batchWindow,
			Heartbeats:       hb,
			Obs:              reg,
			Trace:            tracer,
		}
		ss := recovered.Services[name]
		if dlog != nil {
			svcCfg.Journal = dlog
			if ss != nil && len(ss.Secrets) > 0 {
				// Restore the signing ring so certificates issued before
				// the crash still verify.
				ring, err := sign.NewKeyRingFromSecrets(ss.Secrets, ss.Retain, nil)
				if err != nil {
					return fmt.Errorf("restore keys for %s: %w", name, err)
				}
				svcCfg.KeyRing = ring
			}
		}
		svc, err := core.NewService(svcCfg)
		if err != nil {
			return err
		}
		defer svc.Close()
		if dlog != nil {
			if svcCfg.KeyRing == nil {
				// First boot for this service: make its fresh secrets
				// durable before it signs anything with them. The
				// install flows through the mutation sequencer so it
				// shares the journal stream with the certificates the
				// keys will sign.
				if err := svc.InstallKeys(); err != nil {
					return fmt.Errorf("journal keys for %s: %w", name, err)
				}
			}
			if ss != nil {
				nCR, nAppt := 0, 0
				for serial, cr := range ss.CRs {
					if err := svc.RestoreCR(serial, cr.Subject, cr.Holder, cr.Revoked, cr.Reason); err != nil {
						// A shared CIV record store survives by
						// replication instead; skip, don't fail.
						fmt.Fprintf(os.Stderr, "oasisd: %s: skipping CR restore: %v\n", name, err)
						break
					}
					nCR++
				}
				for _, a := range ss.Appts {
					svc.RestoreAppointment(a.Cert, a.Revoked)
					nAppt++
				}
				if nCR > 0 || nAppt > 0 {
					fmt.Printf("restored %s: %d credential records, %d appointments\n", name, nCR, nAppt)
				}
			}
		}
		mapping := make(map[string]string, len(relations))
		for _, rel := range relations {
			svc.Env().RegisterStore(rel, db, rel)
			mapping[rel] = rel
		}
		if len(mapping) > 0 {
			svc.WatchStore(db, mapping)
		}
		h := svc.Handler()
		local.Register(name, h)
		server.Register(name, h)
		hosted = append(hosted, svc)
		localNames.add(name)
		fmt.Printf("hosting service %s (policy %s)\n", name, policyPath)
	}

	// Cross-process event relaying: revocation events published by the
	// local broker travel to the configured peer daemons, so active
	// revocation spans processes.
	relay := event.NewRelay(broker, node)
	relay.Instrument(reg)
	defer relay.Close()
	server.Register(eventsService(node), func(method string, body []byte) ([]byte, error) {
		ev, err := event.UnmarshalEvent(body)
		if err != nil {
			return nil, err
		}
		return nil, relay.Receive(ev)
	})
	for _, rp := range relayTo {
		peerNode, peerAddr, ok := strings.Cut(rp, "=")
		if !ok {
			return fmt.Errorf("bad -relay-peer %q, want node=host:port", rp)
		}
		directory.Add(eventsService(peerNode), peerAddr)
		target := eventsService(peerNode)
		// Bounded async delivery: one worker goroutine per peer drains a
		// drop-oldest queue, so a slow or partitioned peer neither stalls
		// local publication nor leaks a goroutine per event (the previous
		// `go caller.Call(...)` per event accumulated one goroutine per
		// publication inside retry/backoff while a peer was down). The
		// resilient caller still retries transient drops (publish is
		// idempotent) and fast-fails while the breaker is open; overflow
		// losses are counted, and peers re-validate by callback anyway.
		q := event.NewPeerQueue(relayQueueCapacity, func(ev event.Event) error {
			body, err := event.MarshalEvent(ev)
			if err != nil {
				return err
			}
			_, err = caller.Call(target, "publish", body)
			return err
		})
		q.Instrument(reg, peerNode)
		defer q.Close()
		relay.AddPeer(peerNode, func(ev event.Event) error {
			if !q.Enqueue(ev) {
				// Queue already closed (shutdown ordering): surface it so
				// the relay's failure counter sees the drop instead of
				// reporting a clean send.
				return event.ErrClosed
			}
			return nil
		})
		fmt.Printf("relaying events to node %s at %s (queue %d, drop-oldest)\n",
			peerNode, peerAddr, relayQueueCapacity)
	}

	// Edge revocation feed: oasisgw instances running a verdict cache
	// subscribe here and receive every local revocation (including the
	// heartbeat monitor's synthetic ones) as stream events. Each
	// subscriber is decoupled through its own bounded drop-oldest queue,
	// so a slow edge can never stall Publish.
	feed := event.NewFeed(broker, relayQueueCapacity)
	feed.Instrument(reg)
	defer feed.Close()
	server.RegisterStream(event.FeedService, event.FeedMethod,
		func(method string, body []byte, send func([]byte) error) (func(), error) {
			return feed.Subscribe(send)
		})

	// Heartbeat loop: every period, each hosted service announces the
	// certificates it issued and the monitor sweeps for silent issuers.
	stopHB := make(chan struct{})
	defer close(stopHB)
	if hb != nil {
		go func() {
			ticker := time.NewTicker(cfg.heartbeat)
			defer ticker.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-ticker.C:
					for _, svc := range hosted {
						svc.EmitHeartbeats()
					}
					// Deaths surface through the monitor's liveness
					// trace events, echoed to stdout above.
					hb.Sweep()
				}
			}
		}()
		fmt.Printf("heartbeats every %v (deadline %v)\n",
			cfg.heartbeat, heartbeatDeadlineFactor*cfg.heartbeat)
	}

	// Static policy consistency check across everything hosted here
	// (peer services are unknown to this process, so cross-process
	// references surface as warnings, not errors).
	checker := policy.NewChecker()
	for _, svc := range hosted {
		checker.AddService(svc.Name(), svc.Policy(), svc.Env().Names())
	}
	for _, p := range peers {
		if name, _, ok := strings.Cut(p, "="); ok {
			checker.AddExternal(name)
		}
	}
	for _, issue := range checker.Check() {
		fmt.Printf("policy check %s\n", issue)
	}

	grace := cfg.shutdownGrace
	if grace <= 0 {
		grace = defaultShutdownGrace
	}

	if cfg.obsAddr != "" {
		obsLn, err := net.Listen("tcp", cfg.obsAddr)
		if err != nil {
			return fmt.Errorf("listen obs %s: %w", cfg.obsAddr, err)
		}
		// A hardened server, not a bare http.Serve: the obs port faces the
		// same slow clients as any other, and it must drain on exit instead
		// of dropping scrapes mid-response.
		obsSrv := httpx.NewServer(obs.Handler(reg, tracer))
		go obsSrv.Serve(obsLn)              //nolint:errcheck // dies with the daemon
		defer httpx.Shutdown(obsSrv, grace) //nolint:errcheck // best-effort drain on the way out
		fmt.Printf("observability on http://%s/ (/metrics, /trace, /debug/pprof)\n", obsLn.Addr())
	}

	// In-process HTTP edge: the same gateway cmd/oasisgw serves standalone,
	// mounted over this daemon's resilient caller so /validate coalesces
	// into validate_batch flights and local services are reached in-process.
	if cfg.httpAddr != "" {
		fronted := localNames.names()
		for _, p := range peers {
			if name, _, ok := strings.Cut(p, "="); ok {
				fronted = append(fronted, name)
			}
		}
		sort.Strings(fronted)
		validator := core.NewRemoteValidator("oasisd", caller, cfg.batchWindow, reg)
		var cache *core.EdgeCache
		if cfg.httpCache {
			// In-process feed: a direct broker tap. It cannot be severed
			// short of process death, so the cache attaches once and stays
			// live — the fail-closed reconnect dance is for cmd/oasisgw.
			cache = core.NewEdgeCache(validator, cfg.httpCacheMax)
			cancelTap := broker.Tap(cache.HandleEvent)
			defer cancelTap()
			cache.Attach()
			fmt.Printf("http gateway verdict cache on (max %d entries)\n", cfg.httpCacheMax)
		}
		gw, err := gateway.New(gateway.Config{
			Caller:      caller,
			Validator:   validator,
			Cache:       cache,
			Services:    fronted,
			Breaker:     caller,
			MaxInflight: httpMaxInflight,
			Obs:         reg,
		})
		if err != nil {
			return fmt.Errorf("http gateway: %w", err)
		}
		httpLn, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("listen http %s: %w", cfg.httpAddr, err)
		}
		httpSrv := httpx.NewServer(gw.Handler())
		go httpSrv.Serve(httpLn)             //nolint:errcheck // dies with the daemon
		defer httpx.Shutdown(httpSrv, grace) //nolint:errcheck // best-effort drain on the way out
		fmt.Printf("http gateway on http://%s/ (POST /validate, /activate, /appoint, /revoke)\n", httpLn.Addr())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	fmt.Printf("oasisd listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	// Capacity 2: the buffer must hold a second signal arriving while the
	// drain select is busy — the previous version stopped draining sig
	// after the first one, so repeated Ctrl-C was swallowed and a wedged
	// drain could only be ended with SIGKILL.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	err = awaitShutdown(sig, serveErr, func() { server.Close() }, grace)
	if errors.Is(err, errForcedShutdown) {
		// Deferred cleanup (journal compaction, service close) still gets a
		// bounded chance; if it wedges too, the process dies regardless.
		time.AfterFunc(grace, func() { os.Exit(1) })
	}
	return err
}

// errForcedShutdown reports an exit that did not finish draining: a
// second signal or a blown shutdown deadline.
var errForcedShutdown = errors.New("forced shutdown before drain completed")

// awaitShutdown runs the daemon's termination protocol: block until the
// first signal (or until the listener dies on its own — an accept error
// must surface and end the daemon, not leave it running deaf), then stop
// the server and wait for the drain, bounded by a second signal or the
// grace deadline. It is deliberately free of daemon state so the
// protocol is testable with plain channels.
func awaitShutdown(sig <-chan os.Signal, serveErr <-chan error, stop func(), grace time.Duration) error {
	select {
	case err := <-serveErr:
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return errors.New("rpc listener closed unexpectedly")
	case <-sig:
	}
	fmt.Println("shutting down")
	go stop()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case err := <-serveErr:
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case <-sig:
		fmt.Fprintln(os.Stderr, "oasisd: second signal, forcing exit")
		return fmt.Errorf("%w: second signal", errForcedShutdown)
	case <-timer.C:
		fmt.Fprintf(os.Stderr, "oasisd: drain exceeded %v, forcing exit\n", grace)
		return fmt.Errorf("%w: drain exceeded %v", errForcedShutdown, grace)
	}
}

// eventsService names the relay endpoint a node exposes on its rpc server.
func eventsService(node string) string { return "_events:" + node }

// nameSet is a concurrency-safe string set: follower daemons add service
// names as the replication stream materialises them, racing the callers
// that consult the set.
type nameSet struct {
	mu sync.RWMutex
	m  map[string]bool
}

func newNameSet() *nameSet { return &nameSet{m: make(map[string]bool)} }

func (s *nameSet) add(name string) {
	s.mu.Lock()
	s.m[name] = true
	s.mu.Unlock()
}

func (s *nameSet) has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[name]
}

func (s *nameSet) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	return out
}

// splitCaller routes calls to in-process services via the loopback and to
// everything else via the TCP directory.
type splitCaller struct {
	local      *rpc.Loopback
	remote     *rpc.Directory
	localNames *nameSet
}

func (c splitCaller) Call(service, method string, body []byte) ([]byte, error) {
	if c.localNames.has(service) {
		return c.local.Call(service, method, body)
	}
	return c.remote.Call(service, method, body)
}
