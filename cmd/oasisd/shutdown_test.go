package main

// Regression tests for the daemon termination protocol. The original
// loop had two lifecycle bugs: after the first signal it stopped
// draining the signal channel (a second Ctrl-C was swallowed, so a
// wedged drain could only be ended with SIGKILL), and the rpc server's
// accept error was discarded (a dead listener left the daemon running
// deaf). awaitShutdown is driven here with plain channels so every path
// is exercised without spawning a process.

import (
	"errors"
	"os"
	"syscall"
	"testing"
	"time"
)

// runAwait drives awaitShutdown in a goroutine and returns its result,
// failing the test if it does not return within the deadline — the
// hang-forever outcome is exactly the bug class under test.
func runAwait(t *testing.T, sig chan os.Signal, serveErr chan error, stop func(), grace time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- awaitShutdown(sig, serveErr, stop, grace) }()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("awaitShutdown did not return")
		return nil
	}
}

func TestShutdownCleanDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	serveErr := make(chan error, 1)
	stopped := false
	sig <- syscall.SIGTERM
	err := runAwait(t, sig, serveErr, func() {
		stopped = true
		serveErr <- nil // Serve returns nil on Close
	}, time.Minute)
	if err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !stopped {
		t.Fatal("stop was never called")
	}
}

func TestShutdownSecondSignalForcesExit(t *testing.T) {
	sig := make(chan os.Signal, 2)
	serveErr := make(chan error, 1)
	// The drain wedges forever; the second signal must still force the
	// exit well inside the (long) grace window.
	sig <- syscall.SIGTERM
	sig <- syscall.SIGTERM
	start := time.Now()
	err := runAwait(t, sig, serveErr, func() { select {} }, time.Minute)
	if !errors.Is(err, errForcedShutdown) {
		t.Fatalf("second signal returned %v, want errForcedShutdown", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("forced exit took %v", elapsed)
	}
}

func TestShutdownGraceDeadlineForcesExit(t *testing.T) {
	sig := make(chan os.Signal, 2)
	serveErr := make(chan error, 1)
	sig <- syscall.SIGTERM
	start := time.Now()
	err := runAwait(t, sig, serveErr, func() { select {} }, 50*time.Millisecond)
	if !errors.Is(err, errForcedShutdown) {
		t.Fatalf("blown deadline returned %v, want errForcedShutdown", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline exit took %v, want ~the 50ms grace", elapsed)
	}
}

func TestShutdownSurfacesServeError(t *testing.T) {
	sig := make(chan os.Signal, 2)
	serveErr := make(chan error, 1)
	serveErr <- errors.New("accept tcp: too many open files")
	err := runAwait(t, sig, serveErr, func() { t.Error("stop called for a listener that died on its own") }, time.Minute)
	if err == nil {
		t.Fatal("serve error not surfaced")
	}
	if got := err.Error(); got != "serve: accept tcp: too many open files" {
		t.Errorf("surfaced error = %q", got)
	}
}

func TestShutdownSurfacesServeErrorDuringDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	serveErr := make(chan error, 1)
	sig <- syscall.SIGTERM
	err := runAwait(t, sig, serveErr, func() {
		serveErr <- errors.New("close tcp: use of closed network connection")
	}, time.Minute)
	if err == nil {
		t.Fatal("drain-time serve error swallowed")
	}
}
