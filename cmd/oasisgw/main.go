// Command oasisgw is the standalone HTTP/JSON edge gateway for OASIS
// services: a warden-style validation API that fronts one or more oasisd
// backends over the pooled binary protocol, so HTTP clients get
// authoritative certificate verdicts without speaking OW2.
//
//	oasisgw -addr :8080 \
//	    -backend login=10.0.0.7:7070 -backend files=10.0.0.8:7070 \
//	    -rate 100 -burst 200 -max-inflight 256
//
// Endpoints: POST /validate, /activate, /appoint, /revoke; GET /healthz
// (liveness + per-backend circuit state) and /metrics (the obs
// registry). Concurrent /validate requests for the same issuer coalesce
// into validate_batch flights, so an HTTP herd costs a backend about one
// wire call per round trip instead of one per request.
//
// Admission is layered: -max-conns caps accepted TCP connections at the
// listener, -max-inflight sheds requests with 503 before any backend
// work, and -rate/-burst is a per-principal token bucket answering 429.
// Backend calls ride a resilient caller (per-call deadline, idempotent
// retries, per-service circuit breaker), so a dead backend fails fast as
// 502 instead of stalling the edge.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/rpc"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		pool        = flag.Int("pool", 4, "TCP connections per backend")
		batchWin    = flag.Duration("batch-window", 0, "coalesce concurrent validations per issuer for up to this long (0 = default window, negative = disable batching)")
		rate        = flag.Float64("rate", 0, "per-principal sustained requests/second (0 = no rate limit)")
		burst       = flag.Int("burst", 0, "per-principal burst size (default: the rate, at least 1)")
		maxInflight = flag.Int("max-inflight", 256, "shed requests with 503 beyond this many in flight (0 = unbounded)")
		maxConns    = flag.Int("max-conns", 1024, "cap concurrently accepted TCP connections (0 = unbounded)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-call deadline for backend traffic")
		shutGrace   = flag.Duration("shutdown-grace", 15*time.Second, "drain window after the first shutdown signal")
		cache       = flag.Bool("cache", false, "cache /validate verdicts, invalidated by revocation events streamed from every backend (fails closed to uncached while any subscription is down)")
		cacheMax    = flag.Int("cache-max", 65536, "bound the verdict cache to this many entries (0 = unbounded)")
		backends    multiFlag
	)
	flag.Var(&backends, "backend", "backend service address: name=host:port (repeatable)")
	flag.Parse()
	if err := run(*addr, backends, *pool, *batchWin, *rate, *burst,
		*maxInflight, *maxConns, *reqTimeout, *shutGrace, *cache, *cacheMax); err != nil {
		fmt.Fprintln(os.Stderr, "oasisgw:", err)
		os.Exit(1)
	}
}

func run(addr string, backends []string, pool int, batchWin time.Duration,
	rate float64, burst, maxInflight, maxConns int, reqTimeout, shutGrace time.Duration,
	cacheOn bool, cacheMax int) error {
	if len(backends) == 0 {
		return fmt.Errorf("at least one -backend name=host:port is required")
	}
	if burst <= 0 && rate > 0 {
		burst = int(rate)
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	dir := rpc.NewDirectoryPool(reqTimeout, pool)
	defer dir.Close()
	dir.Instrument(reg)
	var services []string
	var backendAddrs []string
	seenAddr := make(map[string]bool)
	for _, b := range backends {
		name, backendAddr, ok := strings.Cut(b, "=")
		if !ok {
			return fmt.Errorf("bad -backend %q, want name=host:port", b)
		}
		dir.Add(name, backendAddr)
		services = append(services, name)
		if !seenAddr[backendAddr] {
			seenAddr[backendAddr] = true
			backendAddrs = append(backendAddrs, backendAddr)
		}
		fmt.Printf("backend %s at %s\n", name, backendAddr)
	}
	caller := rpc.NewResilientCaller(dir, rpc.ResilientConfig{
		CallTimeout: reqTimeout,
		Obs:         reg,
	})

	validator := core.NewRemoteValidator("oasisgw", caller, batchWin, reg)
	var verdictCache *core.EdgeCache
	if cacheOn {
		// One revocation subscription per distinct backend daemon; the
		// cache serves hits only while every one of them is live and
		// flushes on any disturbance (DESIGN.md §14). A backend restart
		// degrades this edge to uncached (PR 7) behavior, then caching
		// resumes by itself once the feed loop resubscribes.
		verdictCache = core.NewEdgeCache(validator, cacheMax)
		feed := gateway.NewEdgeFeed(verdictCache, backendAddrs, reqTimeout, reg)
		feed.Run()
		defer feed.Close()
		fmt.Printf("verdict cache on (max %d entries), revocation feeds from %s\n",
			cacheMax, strings.Join(backendAddrs, ", "))
	}

	gw, err := gateway.New(gateway.Config{
		Caller:      caller,
		Validator:   validator,
		Cache:       verdictCache,
		Services:    services,
		Breaker:     caller,
		RatePerSec:  rate,
		Burst:       burst,
		MaxInflight: maxInflight,
		Obs:         reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	if maxConns > 0 {
		ln = httpx.LimitListener(ln, maxConns)
	}
	srv := httpx.NewServer(gw.Handler())
	serveErr := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		serveErr <- err
	}()
	fmt.Printf("oasisgw listening on http://%s/ (POST /validate, /activate, /appoint, /revoke)\n", ln.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return fmt.Errorf("listener closed unexpectedly")
	case <-sig:
	}
	fmt.Println("shutting down")
	// A second signal during the drain forces the exit immediately;
	// httpx.Shutdown itself force-closes once the grace window blows.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "oasisgw: second signal, forcing exit")
		os.Exit(1)
	}()
	if err := httpx.Shutdown(srv, shutGrace); err != nil {
		fmt.Fprintln(os.Stderr, "oasisgw: drain incomplete:", err)
	}
	return nil
}
