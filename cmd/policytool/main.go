// Command policytool is the administrator's workbench for OASIS policy
// files: parse/consistency checking, canonical formatting, and activation
// tracing.
//
//	policytool check  policy.txt [-pred registered -pred excluded]
//	policytool fmt    policy.txt              # prints canonical form
//	policytool explain policy.txt -role 'hospital.treating_doctor(D, P)' \
//	       -facts facts.txt -held 'hospital.doctor_on_duty(dr_ann)' \
//	       [-appt 'admin.allocated_patient(dr_ann, joe)']
//
// explain reports, per activation rule for the role, whether it fires with
// the given credentials and facts, the bindings when it does, and the
// first failing condition when it does not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ptool"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "policytool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: policytool <check|fmt|explain> <policyfile> [flags]")
	}
	cmd, path := args[0], args[1]
	text, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read policy: %w", err)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		preds, held, appts multiFlag
		roleSpec           = fs.String("role", "", "role instance to explain")
		factsPath          = fs.String("facts", "", "facts file feeding env predicates")
	)
	fs.Var(&preds, "pred", "environmental predicate known to be registered (repeatable)")
	fs.Var(&held, "held", "held role credential, e.g. 'hospital.doctor(dr_ann)' (repeatable)")
	fs.Var(&appts, "appt", "held appointment, e.g. 'admin.badge(gate3)' (repeatable)")
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}

	switch cmd {
	case "check":
		res, err := ptool.Check(string(text), preds)
		if err != nil {
			return err
		}
		fmt.Printf("%d activation rules, %d authorization rules\n", res.Rules, res.AuthRules)
		errorCount := 0
		for _, issue := range res.Issues {
			fmt.Println(issue)
			if issue.Severity == "error" {
				errorCount++
			}
		}
		if errorCount > 0 {
			return fmt.Errorf("%d errors", errorCount)
		}
		fmt.Println("ok")
		return nil
	case "fmt":
		out, err := ptool.Format(string(text))
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case "explain":
		if *roleSpec == "" {
			return fmt.Errorf("-role is required")
		}
		var facts string
		if *factsPath != "" {
			b, err := os.ReadFile(*factsPath)
			if err != nil {
				return fmt.Errorf("read facts: %w", err)
			}
			facts = string(b)
		}
		traces, err := ptool.Explain(ptool.EvalRequest{
			PolicyText:   string(text),
			FactsText:    facts,
			Role:         *roleSpec,
			HeldRoles:    held,
			Appointments: appts,
		})
		if err != nil {
			return err
		}
		fired := false
		for _, tr := range traces {
			fmt.Printf("rule %d: %s\n", tr.RuleIndex, tr.Rule)
			if tr.Fired {
				fired = true
				fmt.Printf("  FIRES with bindings %s\n", tr.Bindings)
				continue
			}
			fmt.Printf("  fails at condition %d of %d: %s\n",
				tr.Satisfied+1, tr.Conditions, tr.FailedCond)
		}
		if !fired {
			return fmt.Errorf("no rule fires for %s", *roleSpec)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
