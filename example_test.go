package oasis_test

import (
	"fmt"
	"log"

	oasis "repro"
)

// Example walks the Fig. 2 flow: a principal activates an initial role,
// uses the returned certificate to invoke an access-controlled method, and
// loses access the instant the role is deactivated.
func Example() {
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()

	login, err := oasis.NewService(oasis.Config{
		Name:   "login",
		Policy: oasis.MustParsePolicy(`login.user <- env password_ok.`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer login.Close()
	bus.Register("login", login.Handler())
	login.Env().Register("password_ok",
		func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
			return []oasis.Substitution{s.Clone()}
		})

	files, err := oasis.NewService(oasis.Config{
		Name:   "files",
		Policy: oasis.MustParsePolicy(`auth read <- login.user.`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer files.Close()
	files.Bind("read", func(args []oasis.Term) ([]byte, error) {
		return []byte("contents"), nil
	})

	session, err := oasis.NewSession(nil)
	if err != nil {
		log.Fatal(err)
	}
	rmc, err := login.Activate(session.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 0)), oasis.Presented{})
	if err != nil {
		log.Fatal(err)
	}
	session.AddRMC(rmc)

	out, err := files.Invoke(session.PrincipalID(), "read", nil, session.Credentials())
	fmt.Printf("read while active: %s (err=%v)\n", out, err)

	login.Deactivate(rmc.Ref.Serial, "logout")
	broker.Quiesce()
	_, err = files.Invoke(session.PrincipalID(), "read", nil, session.Credentials())
	fmt.Printf("read after logout denied: %v\n", err != nil)

	// Output:
	// read while active: contents (err=<nil>)
	// read after logout denied: true
}

// ExampleParsePolicy shows the policy language: an activation rule with a
// membership clause and an authorization rule.
func ExampleParsePolicy() {
	pol, err := oasis.ParsePolicy(`
hospital.treating_doctor(D, P) <-
    hospital.doctor_on_duty(D),
    env registered(D, P),
    !env excluded(D, P)
    keep [1, 2].
auth read_record(P) <- hospital.treating_doctor(D, P).
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pol.Rules[0])
	fmt.Println(pol.Auth[0])
	// Output:
	// hospital.treating_doctor(D, P) <- hospital.doctor_on_duty(D), env registered(D, P), !env excluded(D, P) keep [1, 2].
	// auth read_record(P) <- hospital.treating_doctor(D, P).
}

// ExampleNewPolicyChecker statically audits a federation's policies for
// the referential drift the paper warns about.
func ExampleNewPolicyChecker() {
	checker := oasis.NewPolicyChecker()
	checker.AddService("login", oasis.MustParsePolicy(`login.user <- env password_ok.`),
		[]string{"password_ok"})
	checker.AddService("files",
		oasis.MustParsePolicy(`files.reader <- login.user, ghost.role keep [1].`), nil)
	for _, issue := range oasis.PolicyErrors(checker.Check()) {
		fmt.Println(issue)
	}
	// Output:
	// [error] files: files.reader: prerequisite role ghost.role/0 is not defined by any registered service
}
