// Command anonymousclinic reproduces the anonymity scenario of Sect. 5 of
// the paper: privacy legislation lets someone with medical insurance take
// genetic tests anonymously. The insurance company issues a
// computer-readable membership card (an appointment certificate carrying
// only the scheme expiry) bound to a fresh pseudonymous session key. The
// clinic's paid_up_patient role requires the card plus an environmental
// constraint that the test date precedes the expiry; the card is validated
// by callback to the insurer (the trusted third party), but the clinic
// never learns who the member is — and the insurer never learns that a
// test took place, since the clinic performs no calls that name it.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()
	fed := oasis.NewFederation()
	clk := oasis.NewSimClock(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC))

	// --- The insurance company: membership officers issue cards. ---
	insurer, err := oasis.NewService(oasis.Config{
		Name: "insurer",
		Policy: oasis.MustParsePolicy(`
insurer.membership_officer(O) <- env is_officer(O).
auth appoint_paid_up_member(E) <- insurer.membership_officer(O).
`),
		Broker: broker,
		Caller: bus,
		Clock:  clk,
	})
	if err != nil {
		return err
	}
	defer insurer.Close()
	staff := oasis.NewFactStore()
	if _, err := staff.Assert("is_officer", oasis.Atom("clerk_7")); err != nil {
		return err
	}
	insurer.Env().RegisterStore("is_officer", staff, "is_officer")

	// --- The genetic clinic. E is the expiry (days since epoch); the
	// activation rule checks the test date against it. ---
	clinic, err := oasis.NewService(oasis.Config{
		Name: "clinic",
		Policy: oasis.MustParsePolicy(`
clinic.paid_up_patient <- appt insurer.paid_up_member(E), env test_date_before(E) keep [1].
auth take_genetic_test <- clinic.paid_up_patient.
`),
		Broker: broker,
		Caller: bus,
		Clock:  clk,
	})
	if err != nil {
		return err
	}
	defer clinic.Close()
	clinic.Env().Register("test_date_before",
		func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
			if len(args) != 1 {
				return nil
			}
			e := s.Apply(args[0])
			if e.Kind != oasis.KindInt {
				return nil
			}
			today := int64(clk.Now().Sub(time.Unix(0, 0)).Hours() / 24)
			if today <= e.Num {
				return []oasis.Substitution{s.Clone()}
			}
			return nil
		})
	var testsTaken int
	clinic.Bind("take_genetic_test", func(args []oasis.Term) ([]byte, error) {
		testsTaken++
		return []byte("sample taken; results by sealed post"), nil
	})

	bus.Register("insurer", insurer.Handler())
	bus.Register("clinic", clinic.Handler())
	fed.AddDomain("insurance_domain")
	fed.AddDomain("clinic_domain")
	if err := fed.AddService("insurance_domain", insurer); err != nil {
		return err
	}
	if err := fed.AddService("clinic_domain", clinic); err != nil {
		return err
	}
	if err := fed.Agree(oasis.SLA{
		IssuerDomain:   "insurance_domain",
		ConsumerDomain: "clinic_domain",
		Appointments:   []oasis.ApptRef{{Issuer: "insurer", Kind: "paid_up_member"}},
	}); err != nil {
		return err
	}

	// --- A member obtains an anonymised card. The officer knows the
	// member (billing), but the card is bound to a fresh pseudonym. ---
	officer, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	officerRMC, err := insurer.Activate(officer.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("insurer", "membership_officer", 1),
			oasis.Atom("clerk_7")),
		oasis.Presented{})
	if err != nil {
		return err
	}
	officer.AddRMC(officerRMC)

	expiryDay := int64(clk.Now().Sub(time.Unix(0, 0)).Hours()/24) + 365
	anon, err := oasis.NewAnonymousSession(insurer, officer.PrincipalID(), officer.Credentials(),
		"paid_up_member", oasis.AppointmentRequest{
			Params:    []oasis.Term{oasis.Int(expiryDay)},
			ExpiresAt: clk.Now().AddDate(1, 0, 0),
		})
	if err != nil {
		return err
	}
	fmt.Printf("membership card issued to pseudonym %.16s... (expiry day %d)\n",
		anon.Card.Holder, expiryDay)
	if anon.Card.Holder != anon.Session.PrincipalID() {
		return errors.New("BUG: card not bound to the pseudonym")
	}

	// --- At the clinic: activate paid_up_patient, take the test. ---
	patientRMC, err := fed.Activate("clinic", anon.Session.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("clinic", "paid_up_patient", 0)),
		anon.Session.Credentials())
	if err != nil {
		return fmt.Errorf("activate paid_up_patient: %w", err)
	}
	anon.Session.AddRMC(patientRMC)
	out, err := fed.Invoke("clinic", anon.Session.PrincipalID(), "take_genetic_test", nil,
		anon.Session.Credentials())
	if err != nil {
		return fmt.Errorf("take test: %w", err)
	}
	fmt.Printf("test authorized anonymously: %s\n", out)
	fmt.Printf("clinic knows only the pseudonym; card parameters: %v (no personal details)\n",
		anon.Card.Params)

	// --- After the scheme expires, the constraint refuses a new test
	// session. ---
	clk.Advance(366 * 24 * time.Hour)
	fresh, err := oasis.NewSession(nil)
	_ = fresh
	if err != nil {
		return err
	}
	_, err = fed.Activate("clinic", anon.Session.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("clinic", "paid_up_patient", 0)),
		oasis.Presented{Appointments: anon.Session.Appointments()})
	if err == nil {
		return errors.New("BUG: expired membership still activates")
	}
	fmt.Printf("one year later, activation refused: %v\n", err)
	return nil
}
