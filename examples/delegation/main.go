// Command delegation reproduces the paper's claim (Sect. 2) that OASIS
// needs no privilege-delegation mechanism because "if an application
// requires delegation then it can be built using appointment. The role of
// the delegator must be granted the privilege of issuing appointment
// certificates, and a role must be established to hold the privileges to
// be assigned. Finally an activation rule must be defined to ensure that
// the appointment certificate is presented in an appropriate context."
//
// The scenario is the paper's A&E hand-over: a doctor on duty is called
// away and appoints a colleague to stand in for her. The stand-in role
// carries exactly the defined privileges; the moment the duty doctor
// returns and revokes the appointment, the stand-in's role collapses —
// and, unlike Barka–Sandhu delegation chains, there is no delegation
// bookkeeping to walk and nothing left dangling.
package main

import (
	"errors"
	"fmt"
	"log"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()

	ward, err := oasis.NewService(oasis.Config{
		Name: "ward",
		Policy: oasis.MustParsePolicy(`
# The duty doctor role, driven by the rota.
ward.duty_doctor(D) <- env on_rota(D) keep [1].

# The delegator's privilege: a duty doctor may appoint a stand-in for
# HER OWN duties only (the rule binds the appointment to the appointing
# doctor's identity).
auth appoint_stand_in(For, Who) <- ward.duty_doctor(For).

# The role holding the assigned privileges, activated by presenting the
# appointment in the appropriate context; it lives and dies with the
# appointment certificate.
ward.stand_in_doctor(For, Who) <- appt ward.stand_in(For, Who) keep [1].

# The privileges themselves.
auth prescribe(P) <- ward.duty_doctor(D).
auth prescribe(P) <- ward.stand_in_doctor(For, Who).
`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		return err
	}
	defer ward.Close()
	bus.Register("ward", ward.Handler())

	rota := oasis.NewFactStore()
	if _, err := rota.Assert("on_rota", oasis.Atom("dr_ann")); err != nil {
		return err
	}
	ward.Env().RegisterStore("on_rota", rota, "on_rota")
	ward.WatchStore(rota, map[string]string{"on_rota": "on_rota"})

	// Dr Ann is on duty.
	ann, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	dutyRMC, err := ward.Activate(ann.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("ward", "duty_doctor", 1), oasis.Atom("dr_ann")),
		oasis.Presented{})
	if err != nil {
		return err
	}
	ann.AddRMC(dutyRMC)
	if _, err := ward.Invoke(ann.PrincipalID(), "prescribe",
		[]oasis.Term{oasis.Atom("patient_7")}, ann.Credentials()); err != nil {
		return err
	}
	fmt.Println("dr_ann (duty doctor) prescribed for patient_7")

	// She is called away and appoints Dr Bob to stand in. The appointer
	// rule only lets her delegate her OWN duties: trying to appoint on
	// behalf of another doctor fails.
	const bobKey = "dr_bob_persistent_key"
	if _, err := ward.Appoint(ann.PrincipalID(), oasis.AppointmentRequest{
		Kind:   "stand_in",
		Holder: bobKey,
		Params: []oasis.Term{oasis.Atom("dr_zack"), oasis.Atom("dr_bob")},
	}, ann.Credentials()); !errors.Is(err, oasis.ErrAppointmentDenied) {
		return fmt.Errorf("BUG: delegating someone else's duties: %v", err)
	}
	fmt.Println("appointing a stand-in for ANOTHER doctor's duties: correctly refused")

	standIn, err := ward.Appoint(ann.PrincipalID(), oasis.AppointmentRequest{
		Kind:   "stand_in",
		Holder: bobKey,
		Params: []oasis.Term{oasis.Atom("dr_ann"), oasis.Atom("dr_bob")},
	}, ann.Credentials())
	if err != nil {
		return err
	}
	fmt.Println("dr_ann appointed dr_bob to stand in for her")

	// Dr Bob activates the stand-in role with the appointment and works.
	bobRMC, err := ward.Activate(bobKey,
		oasis.MustRole(oasis.MustRoleName("ward", "stand_in_doctor", 2),
			oasis.Var("For"), oasis.Var("Who")),
		oasis.Presented{Appointments: []oasis.AppointmentCertificate{standIn}})
	if err != nil {
		return err
	}
	bobCreds := oasis.Presented{RMCs: []oasis.RMC{bobRMC}}
	if _, err := ward.Invoke(bobKey, "prescribe",
		[]oasis.Term{oasis.Atom("patient_7")}, bobCreds); err != nil {
		return err
	}
	fmt.Printf("dr_bob active as %s and prescribing\n", bobRMC.Role)

	// Dr Ann returns: ONE revocation ends the stand-in everywhere.
	ward.RevokeAppointment(standIn.Serial, "dr_ann returned")
	broker.Quiesce()
	if valid, _ := ward.CRStatus(bobRMC.Ref.Serial); valid {
		return errors.New("BUG: stand-in survived revocation")
	}
	if _, err := ward.Invoke(bobKey, "prescribe",
		[]oasis.Term{oasis.Atom("patient_7")}, bobCreds); err == nil {
		return errors.New("BUG: revoked stand-in still prescribing")
	}
	fmt.Println("one revocation ended the stand-in: role collapsed, no dangling privileges")

	// Contrast with the delegation baseline: revoking the delegator
	// without cascading leaves the delegatee privileged.
	d := oasis.NewDelegationBaseline()
	d.AddMember("duty_doctor", "dr_ann")
	if err := d.Delegate("duty_doctor", "dr_ann", "dr_bob"); err != nil {
		return err
	}
	d.RevokeMember("duty_doctor", "dr_ann", false /* no cascade */)
	fmt.Printf("delegation baseline, no cascade: dr_bob still holds the role? %v (the hazard OASIS avoids)\n",
		d.Holds("duty_doctor", "dr_bob"))
	return nil
}
