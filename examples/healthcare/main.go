// Command healthcare reproduces the cross-domain electronic health record
// session of Fig. 3 of the paper. A doctor, active in the parametrised
// role treating_doctor(doctor_id, patient_id) at her hospital, asks the
// hospital's EHR management service for components of a patient's record.
// The hospital service holds an accreditation appointment from the
// national health authority, activates the role hospital(hospital_id) at
// the national patient record management service, and performs the four
// numbered paths of the figure: request-EHR (1), copy of EHR returned (2),
// append-to-EHR (3), done (4). Every national-service invocation is
// audited with the original requester's doctor and patient identifiers,
// and per-patient exclusions ("Fred Smith may not access my record") are
// enforced at the national service.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type ehrWorld struct {
	broker *oasis.Broker
	bus    *oasis.Bus
	fed    *oasis.Federation

	hospital    *oasis.Service // defines treating_doctor
	hospitalEHR *oasis.Service // local EHR management (Fig. 3 left box)
	authority   *oasis.Service // national health authority (accreditation)
	national    *oasis.Service // national patient record management

	hospitalDB *oasis.FactStore
	nationalDB *oasis.FactStore
	records    map[string][]string // patient -> EHR components

	auditAuthority *oasis.AuditAuthority
	auditLedger    *oasis.AuditLedger
}

func run() error {
	w, err := buildWorld()
	if err != nil {
		return err
	}
	defer w.broker.Close()

	// --- The hospital is accredited by the national health authority. ---
	nhaOfficer, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	officerRMC, err := w.authority.Activate(nhaOfficer.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("nha", "registrar", 0)), oasis.Presented{})
	if err != nil {
		return fmt.Errorf("nha registrar: %w", err)
	}
	nhaOfficer.AddRMC(officerRMC)

	// The hospital EHR service acts under its own long-lived principal.
	const hospitalPrincipal = "st_marys_ehr_service_key"
	accreditation, err := w.authority.Appoint(nhaOfficer.PrincipalID(), oasis.AppointmentRequest{
		Kind:   "accredited_hospital",
		Holder: hospitalPrincipal,
		Params: []oasis.Term{oasis.Atom("st_marys")},
	}, nhaOfficer.Credentials())
	if err != nil {
		return fmt.Errorf("accredit: %w", err)
	}
	fmt.Println("national health authority accredited st_marys")

	// The hospital service activates hospital(st_marys) at the national
	// service using its accreditation (cross-domain, SLA-screened).
	hospitalRoleRMC, err := w.fed.Activate("national", hospitalPrincipal,
		oasis.MustRole(oasis.MustRoleName("national", "hospital", 1), oasis.Var("H")),
		oasis.Presented{Appointments: []oasis.AppointmentCertificate{accreditation}})
	if err != nil {
		return fmt.Errorf("activate national.hospital: %w", err)
	}
	fmt.Printf("hospital service active at national service as %s\n", hospitalRoleRMC.Role)

	// --- A doctor's session at the hospital. ---
	doctor, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	tdRMC, err := w.hospital.Activate(doctor.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("hospital", "treating_doctor", 2),
			oasis.Atom("dr_ann"), oasis.Var("P")),
		oasis.Presented{})
	if err != nil {
		return fmt.Errorf("treating_doctor: %w", err)
	}
	doctor.AddRMC(tdRMC)
	fmt.Printf("doctor active as %s\n", tdRMC.Role)

	// Paths 1-2: request-EHR through the local EHR service, which relays
	// to the national service with its hospital certificate; the
	// treating_doctor parameters travel as call arguments and are
	// recorded for audit, exactly as Fig. 3 describes.
	relay := func(method string, d, p oasis.Term) ([]byte, error) {
		creds := oasis.Presented{RMCs: []oasis.RMC{hospitalRoleRMC}}
		return w.fed.Invoke("national", hospitalPrincipal, method, []oasis.Term{d, p}, creds)
	}
	w.hospitalEHR.Bind("fetch_record", func(args []oasis.Term) ([]byte, error) {
		return relay("request_ehr", args[0], args[1])
	})
	w.hospitalEHR.Bind("append_record", func(args []oasis.Term) ([]byte, error) {
		return relay("append_ehr", args[0], args[1])
	})

	out, err := w.hospitalEHR.Invoke(doctor.PrincipalID(), "fetch_record",
		[]oasis.Term{oasis.Atom("dr_ann"), oasis.Atom("joe_bloggs")}, doctor.Credentials())
	if err != nil {
		return fmt.Errorf("request-EHR: %w", err)
	}
	fmt.Printf("paths 1-2, copy of EHR returned: %s\n", out)

	// Paths 3-4: the doctor appends the record of treatment.
	if _, err := w.hospitalEHR.Invoke(doctor.PrincipalID(), "append_record",
		[]oasis.Term{oasis.Atom("dr_ann"), oasis.Atom("joe_bloggs")}, doctor.Credentials()); err != nil {
		return fmt.Errorf("append-to-EHR: %w", err)
	}
	fmt.Printf("paths 3-4, treatment appended: %v\n", w.records["joe_bloggs"])

	// The audit trail at the national service names the hospital
	// principal and carries the doctor/patient parameters via the args.
	audits := w.auditLedger.HistoryOf(hospitalPrincipal)
	fmt.Printf("audit records at national service: %d\n", len(audits))
	for _, a := range audits {
		if err := w.auditAuthority.Validate(a); err != nil {
			return fmt.Errorf("audit validation: %w", err)
		}
		fmt.Printf("  audit #%d %s.%s outcome=%s\n", a.Serial, a.Service, a.Method, a.Outcome)
	}

	// --- Patient exclusion (Sect. 2): Joe excludes dr_fred. ---
	if _, err := w.nationalDB.Assert("excluded",
		oasis.Atom("dr_fred"), oasis.Atom("joe_bloggs")); err != nil {
		return err
	}
	if _, err := w.hospitalDB.Assert("on_duty", oasis.Atom("dr_fred")); err != nil {
		return err
	}
	if _, err := w.hospitalDB.Assert("registered",
		oasis.Atom("dr_fred"), oasis.Atom("joe_bloggs")); err != nil {
		return err
	}
	fred, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	fredRMC, err := w.hospital.Activate(fred.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("hospital", "treating_doctor", 2),
			oasis.Atom("dr_fred"), oasis.Var("P")),
		oasis.Presented{})
	if err != nil {
		return fmt.Errorf("dr_fred treating_doctor: %w", err)
	}
	fred.AddRMC(fredRMC)
	_, err = w.hospitalEHR.Invoke(fred.PrincipalID(), "fetch_record",
		[]oasis.Term{oasis.Atom("dr_fred"), oasis.Atom("joe_bloggs")}, fred.Credentials())
	if err == nil {
		return errors.New("BUG: excluded doctor read the record")
	}
	fmt.Printf("dr_fred excluded by patient: request refused (%s)\n", firstLine(err.Error()))
	return nil
}

func buildWorld() (*ehrWorld, error) {
	w := &ehrWorld{
		broker:     oasis.NewBroker(),
		bus:        oasis.NewBus(),
		fed:        oasis.NewFederation(),
		hospitalDB: oasis.NewFactStore(),
		nationalDB: oasis.NewFactStore(),
		records:    map[string][]string{"joe_bloggs": {"allergy: penicillin"}},
	}

	// Hospital domain: clinical roles driven by the duty rota and the
	// patient register; membership conditions keep the role live only
	// while both facts hold.
	hospital, err := oasis.NewService(oasis.Config{
		Name: "hospital",
		Policy: oasis.MustParsePolicy(`
hospital.treating_doctor(D, P) <- env on_duty(D), env registered(D, P) keep [1, 2].
`),
		Broker: w.broker,
		Caller: w.bus,
	})
	if err != nil {
		return nil, err
	}
	hospital.Env().RegisterStore("on_duty", w.hospitalDB, "on_duty")
	hospital.Env().RegisterStore("registered", w.hospitalDB, "registered")
	hospital.WatchStore(w.hospitalDB, map[string]string{"on_duty": "on_duty", "registered": "registered"})
	w.hospital = hospital

	hospitalEHR, err := oasis.NewService(oasis.Config{
		Name: "hospital_ehr",
		Policy: oasis.MustParsePolicy(`
auth fetch_record(D, P) <- hospital.treating_doctor(D, P).
auth append_record(D, P) <- hospital.treating_doctor(D, P).
`),
		Broker: w.broker,
		Caller: w.bus,
	})
	if err != nil {
		return nil, err
	}
	w.hospitalEHR = hospitalEHR

	// National health authority domain: accredits hospitals.
	authority, err := oasis.NewService(oasis.Config{
		Name: "nha",
		Policy: oasis.MustParsePolicy(`
nha.registrar <- env anyone.
auth appoint_accredited_hospital(H) <- nha.registrar.
`),
		Broker: w.broker,
		Caller: w.bus,
	})
	if err != nil {
		return nil, err
	}
	authority.Env().Register("anyone", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	w.authority = authority

	// National EHR domain: the patient record management service.
	national, err := oasis.NewService(oasis.Config{
		Name: "national",
		Policy: oasis.MustParsePolicy(`
national.hospital(H) <- appt nha.accredited_hospital(H) keep [1].
auth request_ehr(D, P) <- national.hospital(H), !env excluded(D, P).
auth append_ehr(D, P) <- national.hospital(H), !env excluded(D, P).
`),
		Broker: w.broker,
		Caller: w.bus,
	})
	if err != nil {
		return nil, err
	}
	national.Env().RegisterStore("excluded", w.nationalDB, "excluded")
	national.WatchStore(w.nationalDB, map[string]string{"excluded": "excluded"})
	national.Bind("request_ehr", func(args []oasis.Term) ([]byte, error) {
		patient := args[1].Sym
		comps, ok := w.records[patient]
		if !ok {
			return nil, fmt.Errorf("no EHR for %s", patient)
		}
		return []byte(strings.Join(comps, "; ")), nil
	})
	national.Bind("append_ehr", func(args []oasis.Term) ([]byte, error) {
		patient := args[1].Sym
		w.records[patient] = append(w.records[patient],
			fmt.Sprintf("treatment by %s", args[0]))
		return []byte("done"), nil
	})
	w.national = national

	// Audit at the national service (Fig. 3: "the identity of the
	// original requester can be recorded for audit").
	w.auditAuthority, err = oasis.NewAuditAuthority("national_civ", nil)
	if err != nil {
		return nil, err
	}
	w.auditLedger = oasis.NewAuditLedger()
	oasis.AttachAudit(national, w.auditAuthority, w.auditLedger, nil)

	// Wire everything to the bus and the federation.
	for _, svc := range []*oasis.Service{hospital, hospitalEHR, authority, national} {
		w.bus.Register(svc.Name(), svc.Handler())
	}
	w.fed.AddDomain("hospital_domain")
	w.fed.AddDomain("nha_domain")
	w.fed.AddDomain("national_domain")
	if err := w.fed.AddService("hospital_domain", hospital); err != nil {
		return nil, err
	}
	if err := w.fed.AddService("hospital_domain", hospitalEHR); err != nil {
		return nil, err
	}
	if err := w.fed.AddService("nha_domain", authority); err != nil {
		return nil, err
	}
	if err := w.fed.AddService("national_domain", national); err != nil {
		return nil, err
	}
	// SLA: the national domain accepts NHA accreditation appointments.
	if err := w.fed.Agree(oasis.SLA{
		IssuerDomain:   "nha_domain",
		ConsumerDomain: "national_domain",
		Appointments:   []oasis.ApptRef{{Issuer: "nha", Kind: "accredited_hospital"}},
	}); err != nil {
		return nil, err
	}

	// Seed the hospital database: dr_ann is on duty and treats joe.
	if _, err := w.hospitalDB.Assert("on_duty", oasis.Atom("dr_ann")); err != nil {
		return nil, err
	}
	if _, err := w.hospitalDB.Assert("registered",
		oasis.Atom("dr_ann"), oasis.Atom("joe_bloggs")); err != nil {
		return nil, err
	}
	return w, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
