// Command quickstart walks the basic OASIS flow of Fig. 2 of the paper:
// a principal starts a session by activating an initial role at a login
// service, uses the returned role membership certificate (RMC) to activate
// a dependent role at a second service, invokes an access-controlled
// method, and finally logs out — demonstrating the collapse of the
// dependent role tree through the event infrastructure.
package main

import (
	"errors"
	"fmt"
	"log"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The active middleware platform: one broker, one in-process bus.
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()

	// The login service defines the initial role logged_in_user(U).
	login, err := oasis.NewService(oasis.Config{
		Name:   "login",
		Policy: oasis.MustParsePolicy(`login.logged_in_user(U) <- env password_ok(U).`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		return err
	}
	defer login.Close()
	bus.Register("login", login.Handler())

	// A toy password database.
	passwords := map[string]bool{"alice": true, "bob": true}
	login.Env().Register("password_ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		if len(args) != 1 {
			return nil
		}
		u := s.Apply(args[0])
		if u.Kind == oasis.KindAtom && passwords[u.Sym] {
			return []oasis.Substitution{s.Clone()}
		}
		return nil
	})

	// The file service defines reader(U), requiring the login role as a
	// prerequisite that must REMAIN valid (keep [1]), and guards read(F).
	files, err := oasis.NewService(oasis.Config{
		Name: "files",
		Policy: oasis.MustParsePolicy(`
files.reader(U) <- login.logged_in_user(U) keep [1].
auth read(F) <- files.reader(U).
`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		return err
	}
	defer files.Close()
	bus.Register("files", files.Handler())
	files.Bind("read", func(args []oasis.Term) ([]byte, error) {
		return []byte(fmt.Sprintf("<contents of %s>", args[0])), nil
	})

	// --- A session begins: path 1/2 of Fig. 2 (role entry). ---
	session, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	fmt.Printf("session principal (session public key): %.16s...\n", session.PrincipalID())

	loginRMC, err := login.Activate(session.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "logged_in_user", 1), oasis.Atom("alice")),
		oasis.Presented{})
	if err != nil {
		return fmt.Errorf("login: %w", err)
	}
	session.AddRMC(loginRMC)
	fmt.Printf("activated initial role: %s  (RMC %s)\n", loginRMC.Role, loginRMC.Ref)

	readerRMC, err := files.Activate(session.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("files", "reader", 1), oasis.Var("U")),
		session.Credentials())
	if err != nil {
		return fmt.Errorf("activate reader: %w", err)
	}
	session.AddRMC(readerRMC)
	fmt.Printf("activated dependent role: %s  (RMC %s)\n", readerRMC.Role, readerRMC.Ref)

	// --- Path 3/4 of Fig. 2 (service use). ---
	out, err := files.Invoke(session.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("annual_report")}, session.Credentials())
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	fmt.Printf("read annual_report -> %s\n", out)

	// --- Logout: the initial role is deactivated; the dependent tree
	// collapses through the revocation event channels (Sect. 4). ---
	login.Deactivate(loginRMC.Ref.Serial, "user logged out")
	broker.Quiesce()
	if valid, _ := files.CRStatus(readerRMC.Ref.Serial); valid {
		return errors.New("BUG: reader role survived logout")
	}
	fmt.Println("logged out: dependent files.reader role collapsed immediately")

	_, err = files.Invoke(session.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("annual_report")}, session.Credentials())
	fmt.Printf("read after logout -> %v\n", err)
	if !errors.Is(err, oasis.ErrInvalidCredential) {
		return errors.New("BUG: invocation succeeded after logout")
	}
	return nil
}
