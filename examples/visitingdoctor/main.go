// Command visitingdoctor reproduces the roving-principal scenario of
// Sect. 5 of the paper: a doctor employed at a hospital works temporarily
// at a research institute in another domain. The hospital's administrative
// service issues an appointment certificate employed_as_doctor(hospital)
// only to staff who prove medical qualification; under a reciprocal
// service level agreement, the research institute's visiting_doctor role
// accepts that appointment as a credential and validates it by callback to
// the hospital. When the employment ends, revoking the appointment
// immediately collapses the visiting role through the event channel.
package main

import (
	"errors"
	"fmt"
	"log"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()
	fed := oasis.NewFederation()

	// --- Hospital domain: administration issues employment evidence. ---
	hospitalAdmin, err := oasis.NewService(oasis.Config{
		Name: "hospital_admin",
		Policy: oasis.MustParsePolicy(`
# The staff officer role; officers check academic and professional
# qualification before appointing.
hospital_admin.staff_officer(O) <- env is_officer(O).
auth appoint_employed_as_doctor(H) <- hospital_admin.staff_officer(O).
`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		return err
	}
	defer hospitalAdmin.Close()
	officers := oasis.NewFactStore()
	if _, err := officers.Assert("is_officer", oasis.Atom("mrs_hughes")); err != nil {
		return err
	}
	hospitalAdmin.Env().RegisterStore("is_officer", officers, "is_officer")

	// --- Research domain: the institute defines visiting_doctor, a role
	// with more privileges than the minimal guest role. ---
	institute, err := oasis.NewService(oasis.Config{
		Name: "institute",
		Policy: oasis.MustParsePolicy(`
institute.guest <- env signed_visitor_book.
institute.visiting_doctor <- appt hospital_admin.employed_as_doctor(H) keep [1].
auth read_library <- institute.guest.
auth read_library <- institute.visiting_doctor.
auth run_clinical_study <- institute.visiting_doctor.
`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		return err
	}
	defer institute.Close()
	institute.Env().Register("signed_visitor_book",
		func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
			return []oasis.Substitution{s.Clone()}
		})

	bus.Register("hospital_admin", hospitalAdmin.Handler())
	bus.Register("institute", institute.Handler())
	fed.AddDomain("hospital_domain")
	fed.AddDomain("research_domain")
	if err := fed.AddService("hospital_domain", hospitalAdmin); err != nil {
		return err
	}
	if err := fed.AddService("research_domain", institute); err != nil {
		return err
	}

	// The reciprocal agreement of Sect. 5: each domain accepts the
	// other's professional appointments.
	if err := fed.ReciprocalAgreement("hospital_domain", "research_domain",
		[]oasis.ApptRef{{Issuer: "hospital_admin", Kind: "employed_as_doctor"}},
		[]oasis.ApptRef{{Issuer: "institute_admin", Kind: "research_medic"}},
	); err != nil {
		return err
	}
	fmt.Println("reciprocal SLA in place between hospital and research institute")

	// --- The staff officer appoints Dr Jones. ---
	officer, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	officerRMC, err := hospitalAdmin.Activate(officer.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("hospital_admin", "staff_officer", 1),
			oasis.Atom("mrs_hughes")),
		oasis.Presented{})
	if err != nil {
		return err
	}
	officer.AddRMC(officerRMC)

	const drJones = "dr_jones_persistent_public_key"
	employment, err := hospitalAdmin.Appoint(officer.PrincipalID(), oasis.AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: drJones,
		Params: []oasis.Term{oasis.Atom("st_marys")},
	}, officer.Credentials())
	if err != nil {
		return err
	}
	fmt.Printf("appointment issued: employed_as_doctor(st_marys) -> %s\n", drJones)

	// --- Dr Jones roves to the institute. ---
	wallet := oasis.Presented{Appointments: []oasis.AppointmentCertificate{employment}}
	visiting, err := fed.Activate("institute", drJones,
		oasis.MustRole(oasis.MustRoleName("institute", "visiting_doctor", 0)), wallet)
	if err != nil {
		return fmt.Errorf("activate visiting_doctor: %w", err)
	}
	fmt.Printf("activated %s at the research institute\n", visiting.Role)

	creds := oasis.Presented{RMCs: []oasis.RMC{visiting}}
	if _, err := fed.Invoke("institute", drJones, "run_clinical_study", nil, creds); err != nil {
		return fmt.Errorf("run_clinical_study: %w", err)
	}
	fmt.Println("visiting doctor authorized for clinical study (beyond guest privileges)")

	// A mere guest cannot run a study.
	guest, err := oasis.NewSession(nil)
	if err != nil {
		return err
	}
	guestRMC, err := institute.Activate(guest.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("institute", "guest", 0)), oasis.Presented{})
	if err != nil {
		return err
	}
	guest.AddRMC(guestRMC)
	if _, err := institute.Invoke(guest.PrincipalID(), "run_clinical_study", nil,
		guest.Credentials()); !errors.Is(err, oasis.ErrInvocationDenied) {
		return fmt.Errorf("BUG: guest ran a clinical study: %v", err)
	}
	fmt.Println("guest correctly refused the clinical study")

	// --- Employment ends: the hospital revokes; the institute's role
	// collapses immediately through the event channel. ---
	hospitalAdmin.RevokeAppointment(employment.Serial, "employment ended")
	broker.Quiesce()
	if valid, _ := institute.CRStatus(visiting.Ref.Serial); valid {
		return errors.New("BUG: visiting_doctor survived revocation")
	}
	fmt.Println("employment revoked at the hospital: visiting_doctor collapsed at the institute")

	if _, err := fed.Invoke("institute", drJones, "run_clinical_study", nil, creds); err == nil {
		return errors.New("BUG: revoked visitor still authorized")
	}
	fmt.Println("post-revocation invocation refused")
	return nil
}
