// Command weboftrust reproduces the Sect. 6 speculation of the paper:
// roving computational entities encounter previously unknown, and therefore
// untrusted, services. Each interaction subject to contract is certified by
// the domain's CIV authority; parties accumulate audit certificates and
// present them as checkable evidence of past behaviour. The relying party
// validates each certificate with its issuing authority and takes a
// calculated risk. The example also plays out the paper's caveats: a
// collusion ring pumping a false history through its own rogue authority,
// and an authority that repudiates certificates issued in good faith.
package main

import (
	"fmt"
	"log"
	"time"

	oasis "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := oasis.NewSimClock(time.Date(2001, 11, 12, 0, 0, 0, 0, time.UTC))

	honestCIV, err := oasis.NewAuditAuthority("honest_domain_civ", clk)
	if err != nil {
		return err
	}
	rogueCIV, err := oasis.NewAuditAuthority("rogue_domain_civ", clk)
	if err != nil {
		return err
	}
	directory := map[string]*oasis.AuditAuthority{
		honestCIV.Name(): honestCIV,
		rogueCIV.Name():  rogueCIV,
	}
	validate := func(c oasis.AuditCertificate) error {
		a, ok := directory[c.Authority]
		if !ok {
			return fmt.Errorf("authority %s cannot be located", c.Authority)
		}
		return a.Validate(c)
	}

	// --- Alice builds a genuine history of fulfilled contracts. ---
	var aliceHistory []oasis.AuditCertificate
	for i := 0; i < 8; i++ {
		clk.Advance(time.Hour)
		outcome := oasis.OutcomeFulfilled
		if i == 5 {
			outcome = oasis.OutcomeClientDefault // one slip
		}
		aliceHistory = append(aliceHistory,
			honestCIV.Issue("alice", fmt.Sprintf("shop_%d", i), "purchase", outcome))
	}

	// --- The collusion ring certifies fake successes with one another
	// via its own domain's authority. ---
	ring := []string{"ring_a", "ring_b", "ring_c"}
	var ringHistory []oasis.AuditCertificate
	for i := 0; i < 12; i++ {
		clk.Advance(time.Minute)
		ringHistory = append(ringHistory,
			rogueCIV.Issue("ring_a", ring[(i+1)%len(ring)], "purchase", oasis.OutcomeFulfilled))
	}

	// --- A naive relying party weighs every authority equally. ---
	naive := oasis.NewTrustEngine(oasis.DefaultTrustPolicy(), validate)
	dAlice := naive.Decide("alice", aliceHistory)
	dRing := naive.Decide("ring_a", ringHistory)
	fmt.Println("== naive policy (all authorities weighted equally) ==")
	fmt.Printf("alice:  proceed=%v score=%.2f evidence=%d\n", dAlice.Proceed, dAlice.Score, dAlice.Evidence)
	fmt.Printf("ring_a: proceed=%v score=%.2f evidence=%d  <- fooled by collusion\n",
		dRing.Proceed, dRing.Score, dRing.Evidence)

	// --- A wary party discounts the rogue domain (Sect. 6: "the domain
	// of the auditing service ... must be taken into account"). ---
	waryPolicy := oasis.DefaultTrustPolicy()
	waryPolicy.AuthorityWeight = func(authority string) float64 {
		if authority == "rogue_domain_civ" {
			return 0
		}
		return 1
	}
	wary := oasis.NewTrustEngine(waryPolicy, validate)
	dAlice = wary.Decide("alice", aliceHistory)
	dRing = wary.Decide("ring_a", ringHistory)
	fmt.Println("== domain-aware policy ==")
	fmt.Printf("alice:  proceed=%v score=%.2f evidence=%d\n", dAlice.Proceed, dAlice.Score, dAlice.Evidence)
	fmt.Printf("ring_a: proceed=%v score=%.2f evidence=%d reason=%q\n",
		dRing.Proceed, dRing.Score, dRing.Evidence, dRing.Reason)

	// --- Forged certificates never validate. ---
	forged := aliceHistory[0]
	forged.Serial = 999999
	dForged := wary.Decide("alice", []oasis.AuditCertificate{forged})
	fmt.Printf("forged-only history: proceed=%v rejected=%d\n", dForged.Proceed, dForged.Rejected)

	// --- Mutual evaluation before strangers interact. ---
	var serviceHistory []oasis.AuditCertificate
	for i := 0; i < 6; i++ {
		clk.Advance(time.Hour)
		serviceHistory = append(serviceHistory,
			honestCIV.Issue(fmt.Sprintf("client_%d", i), "far_away_service", "use", oasis.OutcomeFulfilled))
	}
	clientView, serviceView := wary.MutualDecide("alice", aliceHistory,
		"far_away_service", serviceHistory)
	fmt.Println("== mutual check before an interaction between strangers ==")
	fmt.Printf("service's view of alice: proceed=%v score=%.2f\n", serviceView.Proceed, serviceView.Score)
	fmt.Printf("alice's view of service: proceed=%v score=%.2f\n", clientView.Proceed, clientView.Score)

	// --- The repudiation risk: the honest authority turns rogue and
	// disowns its certificates; alice's history evaporates. ---
	honestCIV.SetRepudiating(true)
	dAlice = wary.Decide("alice", aliceHistory)
	fmt.Println("== authority repudiates (paper's final caveat) ==")
	fmt.Printf("alice after repudiation: proceed=%v evidence=%d rejected=%d reason=%q\n",
		dAlice.Proceed, dAlice.Evidence, dAlice.Rejected, dAlice.Reason)
	return nil
}
