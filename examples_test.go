package oasis_test

// Every example is a self-checking main (each returns a non-zero exit on a
// BUG condition), so running them is an end-to-end regression suite for
// the paper's scenarios.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short")
	}
	examples := []string{
		"quickstart",
		"healthcare",
		"visitingdoctor",
		"anonymousclinic",
		"weboftrust",
		"delegation",
	}
	bindir := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			run := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				defer close(done)
				out, runErr = run.CombinedOutput()
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				run.Process.Kill() //nolint:errcheck
				<-done
				t.Fatalf("example timed out\n%s", out)
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
