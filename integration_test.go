package oasis_test

// Integration tests driving the public API over the TCP transport: the
// cmd/oasisd deployment topology, where issuing and consuming services
// live behind different TCP endpoints and certificate validation travels
// as real callback traffic.

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	oasis "repro"
)

// tcpNode hosts one service behind its own TCP listener.
type tcpNode struct {
	svc    *oasis.Service
	server *oasis.TCPServer
	addr   string
}

func startNode(t *testing.T, broker *oasis.Broker, dir *oasis.Directory, name, policyText string) *tcpNode {
	t.Helper()
	svc, err := oasis.NewService(oasis.Config{
		Name:   name,
		Policy: oasis.MustParsePolicy(policyText),
		Broker: broker,
		Caller: dir, // callbacks to other nodes travel over TCP
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	server := oasis.NewTCPServer()
	server.Register(name, svc.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln) //nolint:errcheck // dies with the test server
	t.Cleanup(server.Close)
	addr := ln.Addr().String()
	dir.Add(name, addr)
	return &tcpNode{svc: svc, server: server, addr: addr}
}

func TestTCPDeploymentSessionAcrossNodes(t *testing.T) {
	broker := oasis.NewBroker()
	defer broker.Close()
	dir := oasis.NewDirectory(5 * time.Second)
	defer dir.Close()

	login := startNode(t, broker, dir, "login", `login.user(U) <- env anyone(U).`)
	login.svc.Env().Register("anyone", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	files := startNode(t, broker, dir, "files", `
files.reader(U) <- login.user(U) keep [1].
auth read(F) <- files.reader(U).
`)
	files.svc.Bind("read", func(args []oasis.Term) ([]byte, error) {
		return []byte("payload"), nil
	})

	// The client reaches every node through the directory too.
	cli := oasis.NewClient(dir)
	sess, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := cli.Activate("login", sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 1), oasis.Atom("alice")),
		oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	// Activating files.reader makes the files node validate the login
	// RMC by a real TCP callback to the login node.
	readerRMC, err := cli.Activate("files", sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("files", "reader", 1), oasis.Var("U")),
		sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(readerRMC)

	out, err := cli.Invoke("files", sess.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("doc")}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "payload" {
		t.Errorf("out = %q", out)
	}
	if files.svc.Stats().CallbackValidations == 0 {
		t.Error("no TCP callback validations recorded")
	}

	// Within the shared broker, logout still collapses the tree.
	login.svc.Deactivate(rmc.Ref.Serial, "logout")
	broker.Quiesce()
	if valid, _ := files.svc.CRStatus(readerRMC.Ref.Serial); valid {
		t.Error("reader role survived logout")
	}
	if _, err := cli.Invoke("files", sess.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("doc")}, sess.Credentials()); err == nil {
		t.Error("invocation succeeded after logout")
	}
}

func TestTCPDeploymentIssuerDownFailsClosed(t *testing.T) {
	broker := oasis.NewBroker()
	defer broker.Close()
	dir := oasis.NewDirectory(time.Second)
	defer dir.Close()

	login := startNode(t, broker, dir, "login", `login.user <- env ok.`)
	login.svc.Env().Register("ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	guard := startNode(t, broker, dir, "guard", `auth enter <- login.user.`)

	cli := oasis.NewClient(dir)
	sess, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := cli.Activate("login", sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 0)), oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := cli.Invoke("guard", sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}

	// Kill the issuing node: validation callbacks fail, so the guard
	// must refuse (fail closed), not accept unverifiable certificates.
	login.server.Close()
	_, err = cli.Invoke("guard", sess.PrincipalID(), "enter", nil, sess.Credentials())
	if err == nil {
		t.Fatal("certificate accepted while its issuer was unreachable")
	}
	if !errors.Is(err, oasis.ErrInvalidCredential) &&
		guard.svc.Stats().InvocationsDenied == 0 {
		// The error crosses TCP as a RemoteError string; accept either
		// form so long as the call was refused.
		t.Logf("refusal surfaced as: %v", err)
	}
}

func TestSealedCrossDomainValidation(t *testing.T) {
	// Sect. 4.1: with cross-domain interworking, certificates must not
	// be visible on the wire. The guard's callback validation of the
	// login RMC travels sealed end to end; a wire tap sees only
	// envelopes.
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()

	loginID, err := oasis.NewSealIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	guardID, err := oasis.NewSealIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := oasis.NewSealDirectory()
	dir.Add("login", loginID.PublicKey())
	dir.Add("guard", guardID.PublicKey())

	// Wire tap on the raw bus.
	var tapped []string
	tap := func(name string, inner func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error) {
		return func(method string, body []byte) ([]byte, error) {
			tapped = append(tapped, string(body))
			return inner(method, body)
		}
	}

	login, err := oasis.NewService(oasis.Config{
		Name:   "login",
		Policy: oasis.MustParsePolicy(`login.user <- env ok.`),
		Broker: broker,
		Caller: oasis.NewSealedCaller(loginID, bus, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer login.Close()
	login.Env().Register("ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	bus.Register("login", tap("login", oasis.SealedHandler(loginID, login.Handler())))

	guard, err := oasis.NewService(oasis.Config{
		Name:   "guard",
		Policy: oasis.MustParsePolicy(`auth enter <- login.user.`),
		Broker: broker,
		Caller: oasis.NewSealedCaller(guardID, bus, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer guard.Close()
	bus.Register("guard", tap("guard", oasis.SealedHandler(guardID, guard.Handler())))

	sess, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := login.Activate(sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 0)), oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	// The guard validates the RMC by sealed callback.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	if len(tapped) == 0 {
		t.Fatal("no callback traffic observed")
	}
	for _, wire := range tapped {
		if len(wire) == 0 {
			continue
		}
		// Neither the principal id nor certificate structure may be
		// visible in clear.
		if containsAny(wire, sess.PrincipalID(), `"rmc"`, `"role"`) {
			t.Errorf("certificate material visible on the wire: %.80q", wire)
		}
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if sub != "" && strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

func TestLossyRelayFailsSafeViaHeartbeats(t *testing.T) {
	// Two nodes with separate brokers. The relay between them drops
	// EVERYTHING (partition). The consumer guards its cached validation
	// with the heartbeat monitor: when the issuer's heartbeats stop
	// arriving, the monitor publishes a synthetic revocation locally,
	// the cache is dropped, and the dependent role collapses — lost
	// revocation events degrade to fail-safe re-validation, never to
	// indefinite trust in a stale cache.
	brokerA := oasis.NewBroker()
	defer brokerA.Close()
	brokerB := oasis.NewBroker()
	defer brokerB.Close()
	relayA := oasis.NewEventRelay(brokerA, "A")
	relayB := oasis.NewEventRelay(brokerB, "B")
	_ = relayB
	// The A->B link is lossy: nothing arrives.
	relayA.AddPeer("B", func(ev oasis.Event) error { return nil })

	bus := oasis.NewBus() // calls still flow; only events are partitioned
	clk := oasis.NewSimClock(time.Unix(0, 0))

	login, err := oasis.NewService(oasis.Config{
		Name:   "login",
		Policy: oasis.MustParsePolicy(`login.user <- env ok.`),
		Broker: brokerA,
		Caller: bus,
		Clock:  clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer login.Close()
	login.Env().Register("ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	bus.Register("login", login.Handler())

	guard, err := oasis.NewService(oasis.Config{
		Name:             "guard",
		Policy:           oasis.MustParsePolicy(`auth enter <- login.user.`),
		Broker:           brokerB,
		Caller:           bus,
		Clock:            clk,
		CacheValidations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer guard.Close()
	bus.Register("guard", guard.Handler())

	sess, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := login.Activate(sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 0)), oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}

	// Guard the cached validation with heartbeats on ITS broker.
	monitor := oasis.NewHeartbeatMonitor(brokerB, clk, 10*time.Second)
	defer monitor.Close()
	if err := oasis.WatchLiveness(monitor, rmc.Ref); err != nil {
		t.Fatal(err)
	}

	// The issuer revokes; the event is LOST in the partition. The cached
	// validation would admit the stale certificate...
	login.Deactivate(rmc.Ref.Serial, "logout")
	brokerA.Quiesce()
	brokerB.Quiesce()
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatalf("expected the stale cache to (temporarily) admit the call: %v", err)
	}

	// ...until the heartbeat timeout: issuer heartbeats also fail to
	// cross, the monitor declares the subject dead, and the synthetic
	// revocation clears the cache. The next use re-validates with the
	// issuer and is refused.
	clk.Advance(time.Minute)
	if dead := monitor.Sweep(); len(dead) != 1 {
		t.Fatalf("Sweep = %v", dead)
	}
	brokerB.Quiesce()
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); !errors.Is(err, oasis.ErrInvalidCredential) {
		t.Fatalf("stale certificate still admitted after fail-safe: %v", err)
	}
}

func TestTCPDeploymentAppointmentFlow(t *testing.T) {
	broker := oasis.NewBroker()
	defer broker.Close()
	dir := oasis.NewDirectory(5 * time.Second)
	defer dir.Close()

	admin := startNode(t, broker, dir, "admin", `
admin.officer <- env ok.
auth appoint_badge(K) <- admin.officer.
`)
	admin.svc.Env().Register("ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		return []oasis.Substitution{s.Clone()}
	})
	site := startNode(t, broker, dir, "site", `site.contractor <- appt admin.badge(K) keep [1].`)

	cli := oasis.NewClient(dir)
	officer, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	offRMC, err := cli.Activate("admin", officer.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("admin", "officer", 0)), oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	officer.AddRMC(offRMC)

	// Appointment issued over TCP.
	badge, err := cli.Appoint("admin", officer.PrincipalID(), oasis.AppointmentRequest{
		Kind:   "badge",
		Holder: "contractor-key",
		Params: []oasis.Term{oasis.Atom("gate3")},
	}, officer.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	rmc, err := cli.Activate("site", "contractor-key",
		oasis.MustRole(oasis.MustRoleName("site", "contractor", 0)),
		oasis.Presented{Appointments: []oasis.AppointmentCertificate{badge}})
	if err != nil {
		t.Fatal(err)
	}
	if valid, _ := site.svc.CRStatus(rmc.Ref.Serial); !valid {
		t.Error("contractor role inactive")
	}

	// Revocation at the admin node collapses the role via the shared
	// broker.
	admin.svc.RevokeAppointment(badge.Serial, "badge withdrawn")
	broker.Quiesce()
	if valid, _ := site.svc.CRStatus(rmc.Ref.Serial); valid {
		t.Error("contractor role survived badge withdrawal")
	}
}
