// Package audit implements the interaction certification proposed in
// Sect. 6 of the paper: after an interaction subject to contract, a
// certificate issuing and validation (CIV) service "creates an audit
// certificate which it issues to both parties and validates on request".
// Audit certificates embody a party's interaction history and form the
// evidence base for the web of trust (see internal/trust).
package audit

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sign"
)

// Errors returned by audit validation.
var (
	// ErrUnknownAudit is returned when validating a certificate whose
	// serial the authority has no record of.
	ErrUnknownAudit = errors.New("unknown audit certificate")
	// ErrRepudiated is returned by a rogue authority that disowns
	// certificates it legitimately issued (a risk the paper calls out).
	ErrRepudiated = errors.New("authority repudiates this certificate")
)

// Outcome records how an interaction ended, as certified by the CIV.
type Outcome int

// Interaction outcomes.
const (
	// OutcomeFulfilled: both sides met the contract.
	OutcomeFulfilled Outcome = iota + 1
	// OutcomeClientDefault: the client exploited resources in unintended
	// ways or failed to pay the agreed charge.
	OutcomeClientDefault
	// OutcomeServiceDefault: the service breached confidentiality or
	// gave poor or partial fulfilment.
	OutcomeServiceDefault
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeFulfilled:
		return "fulfilled"
	case OutcomeClientDefault:
		return "client-default"
	case OutcomeServiceDefault:
		return "service-default"
	default:
		return "unknown"
	}
}

// Certificate is a signed record of one interaction between a client
// principal and a service, issued by the authority of the service's domain.
// It contains enough information for the issuing authority to be located
// (Authority) and the record checked (Serial), as Sect. 6 requires.
type Certificate struct {
	Authority string         `json:"authority"`
	Serial    uint64         `json:"serial"`
	Client    string         `json:"client"`
	Service   string         `json:"service"`
	Method    string         `json:"method"`
	Outcome   Outcome        `json:"outcome"`
	At        time.Time      `json:"at"`
	KeyID     uint32         `json:"keyId"`
	Sig       sign.Signature `json:"sig"`
}

func (c Certificate) protectedFields() [][]byte {
	var nums [24]byte
	binary.BigEndian.PutUint64(nums[:8], c.Serial)
	binary.BigEndian.PutUint64(nums[8:16], uint64(c.At.UnixNano()))
	binary.BigEndian.PutUint32(nums[16:20], uint32(c.Outcome))
	binary.BigEndian.PutUint32(nums[20:], c.KeyID)
	return [][]byte{
		[]byte(c.Authority), nums[:], []byte(c.Client),
		[]byte(c.Service), []byte(c.Method),
	}
}

// Authority is a domain's audit-certificate issuer (an extension of the
// domain's CIV service, as Sect. 6 suggests). A rogue authority can be
// configured to repudiate, modelling the paper's caveat.
type Authority struct {
	name string
	ring *sign.KeyRing
	clk  clock.Clock

	mu         sync.Mutex
	nextSerial uint64
	issued     map[uint64]Certificate
	repudiate  bool
}

// NewAuthority creates an audit authority named name.
func NewAuthority(name string, clk clock.Clock) (*Authority, error) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return nil, fmt.Errorf("authority %s: %w", name, err)
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Authority{
		name:   name,
		ring:   ring,
		clk:    clk,
		issued: make(map[uint64]Certificate),
	}, nil
}

// Name returns the authority's name (its locator).
func (a *Authority) Name() string { return a.name }

// Issue certifies one interaction and records it for later validation.
// Copies go to both parties (the caller distributes them).
func (a *Authority) Issue(client, service, method string, outcome Outcome) Certificate {
	a.mu.Lock()
	a.nextSerial++
	serial := a.nextSerial
	a.mu.Unlock()

	c := Certificate{
		Authority: a.name,
		Serial:    serial,
		Client:    client,
		Service:   service,
		Method:    method,
		Outcome:   outcome,
		At:        a.clk.Now(),
	}
	c.KeyID = a.ring.CurrentKeyID()
	for {
		sig, used := a.ring.Sign(c.Client, c.protectedFields()...)
		if used == c.KeyID {
			c.Sig = sig
			break
		}
		c.KeyID = used
	}
	a.mu.Lock()
	a.issued[serial] = c
	a.mu.Unlock()
	return c
}

// Validate checks a certificate against the authority's records and
// signature, as a relying party does by callback before trusting it.
func (a *Authority) Validate(c Certificate) error {
	a.mu.Lock()
	repudiate := a.repudiate
	rec, ok := a.issued[c.Serial]
	a.mu.Unlock()
	if repudiate {
		return ErrRepudiated
	}
	if !ok {
		return fmt.Errorf("%w: serial %d", ErrUnknownAudit, c.Serial)
	}
	if rec.Client != c.Client || rec.Service != c.Service || rec.Outcome != c.Outcome {
		return fmt.Errorf("%w: fields do not match the issued record", ErrUnknownAudit)
	}
	return a.ring.Verify(c.KeyID, c.Sig, c.Client, c.protectedFields()...)
}

// SetRepudiating switches the authority into the rogue mode of Sect. 6:
// it disowns everything it issued.
func (a *Authority) SetRepudiating(r bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.repudiate = r
}

// MarshalCertificate encodes an audit certificate for exchange between
// strangers (Sect. 6: "such certificates might be exchanged and validated
// before a principal uses a previously unknown service").
func MarshalCertificate(c Certificate) ([]byte, error) { return json.Marshal(c) }

// UnmarshalCertificate decodes an exchanged audit certificate.
func UnmarshalCertificate(b []byte) (Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(b, &c); err != nil {
		return Certificate{}, fmt.Errorf("decode audit certificate: %w", err)
	}
	return c, nil
}

// Ledger accumulates the audit certificates held by parties (each party
// keeps its own copies; the ledger is the test/simulation view of all of
// them).
type Ledger struct {
	mu     sync.Mutex
	byCert map[string][]Certificate // party -> certificates naming it
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byCert: make(map[string][]Certificate)}
}

// Record files a certificate under both parties.
func (l *Ledger) Record(c Certificate) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byCert[c.Client] = append(l.byCert[c.Client], c)
	l.byCert[c.Service] = append(l.byCert[c.Service], c)
}

// HistoryOf returns the certificates naming a party.
func (l *Ledger) HistoryOf(party string) []Certificate {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := l.byCert[party]
	out := make([]Certificate, len(src))
	copy(out, src)
	return out
}

// AttachTo wires an authority and ledger to a service: every authorized
// invocation is certified with the outcome chosen by outcomeOf (pass nil
// to certify everything fulfilled).
func AttachTo(svc *core.Service, a *Authority, l *Ledger, outcomeOf func(core.InvokeRecord) Outcome) {
	svc.Observe(func(rec core.InvokeRecord) {
		outcome := OutcomeFulfilled
		if outcomeOf != nil {
			outcome = outcomeOf(rec)
		}
		c := a.Issue(rec.Principal, rec.Service, rec.Method, outcome)
		l.Record(c)
	})
}
