package audit

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
)

func authority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority("civ1", clock.NewSimulated(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIssueValidate(t *testing.T) {
	a := authority(t)
	c := a.Issue("client1", "svc1", "read", OutcomeFulfilled)
	if err := a.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.Authority != "civ1" || c.Serial == 0 {
		t.Errorf("cert = %+v", c)
	}
}

func TestValidateUnknownSerial(t *testing.T) {
	a := authority(t)
	c := Certificate{Authority: "civ1", Serial: 99}
	if err := a.Validate(c); !errors.Is(err, ErrUnknownAudit) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateTamperedOutcome(t *testing.T) {
	a := authority(t)
	c := a.Issue("client1", "svc1", "read", OutcomeClientDefault)
	// The client launders its default into a success.
	c.Outcome = OutcomeFulfilled
	if err := a.Validate(c); err == nil {
		t.Error("laundered outcome validated")
	}
}

func TestValidateTamperedParties(t *testing.T) {
	a := authority(t)
	c := a.Issue("client1", "svc1", "read", OutcomeFulfilled)
	forClient := c
	forClient.Client = "someone_else"
	if err := a.Validate(forClient); err == nil {
		t.Error("reassigned client validated")
	}
	forService := c
	forService.Service = "other_svc"
	if err := a.Validate(forService); err == nil {
		t.Error("reassigned service validated")
	}
}

func TestRepudiation(t *testing.T) {
	a := authority(t)
	c := a.Issue("client1", "svc1", "read", OutcomeFulfilled)
	a.SetRepudiating(true)
	if err := a.Validate(c); !errors.Is(err, ErrRepudiated) {
		t.Errorf("err = %v", err)
	}
	a.SetRepudiating(false)
	if err := a.Validate(c); err != nil {
		t.Errorf("post-repudiation Validate: %v", err)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OutcomeFulfilled, "fulfilled"},
		{OutcomeClientDefault, "client-default"},
		{OutcomeServiceDefault, "service-default"},
		{Outcome(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q", tt.o, got)
		}
	}
}

func TestCertificateWireRoundTrip(t *testing.T) {
	a := authority(t)
	c := a.Issue("client1", "svc1", "read", OutcomeFulfilled)
	b, err := MarshalCertificate(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(back); err != nil {
		t.Errorf("round-tripped certificate failed validation: %v", err)
	}
	if _, err := UnmarshalCertificate([]byte("{bad")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestLedgerRecordsBothParties(t *testing.T) {
	a := authority(t)
	l := NewLedger()
	c := a.Issue("client1", "svc1", "read", OutcomeFulfilled)
	l.Record(c)
	if got := l.HistoryOf("client1"); len(got) != 1 {
		t.Errorf("client history = %v", got)
	}
	if got := l.HistoryOf("svc1"); len(got) != 1 {
		t.Errorf("service history = %v", got)
	}
	if got := l.HistoryOf("stranger"); len(got) != 0 {
		t.Errorf("stranger history = %v", got)
	}
}

func TestAttachToCertifiesInvocations(t *testing.T) {
	// Invariant I10: every authorized invocation leaves exactly one
	// audit record.
	broker := event.NewBroker()
	defer broker.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	svc, err := core.NewService(core.Config{
		Name: "ehr",
		Policy: policy.MustParse(`ehr.reader <- env ok.
auth read <- ehr.reader.`),
		Broker: broker,
		Clock:  clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	a, err := NewAuthority("civ_ehr", clk)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLedger()
	AttachTo(svc, a, l, nil)

	sess, err := core.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := svc.Activate(sess.PrincipalID(),
		names.MustRole(names.MustRoleName("ehr", "reader", 0)), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	for i := 0; i < 3; i++ {
		if _, err := svc.Invoke(sess.PrincipalID(), "read", nil, sess.Credentials()); err != nil {
			t.Fatal(err)
		}
	}
	hist := l.HistoryOf(sess.PrincipalID())
	if len(hist) != 3 {
		t.Fatalf("history = %d records, want 3", len(hist))
	}
	for _, c := range hist {
		if err := a.Validate(c); err != nil {
			t.Errorf("Validate: %v", err)
		}
		if c.Outcome != OutcomeFulfilled {
			t.Errorf("outcome = %v", c.Outcome)
		}
	}
	// Denied invocations leave no record.
	stranger, err := core.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(stranger.PrincipalID(), "read", nil, core.Presented{}); err == nil {
		t.Fatal("unauthenticated invoke succeeded")
	}
	if got := l.HistoryOf(stranger.PrincipalID()); len(got) != 0 {
		t.Errorf("denied invocation left %d records", len(got))
	}
}

func TestAttachToCustomOutcome(t *testing.T) {
	broker := event.NewBroker()
	defer broker.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	svc, err := core.NewService(core.Config{
		Name: "s",
		Policy: policy.MustParse(`s.u <- env ok.
auth m <- s.u.`),
		Broker: broker,
		Clock:  clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	a, err := NewAuthority("civ", clk)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLedger()
	AttachTo(svc, a, l, func(core.InvokeRecord) Outcome { return OutcomeServiceDefault })

	sess, err := core.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := svc.Activate(sess.PrincipalID(),
		names.MustRole(names.MustRoleName("s", "u", 0)), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := svc.Invoke(sess.PrincipalID(), "m", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	hist := l.HistoryOf(sess.PrincipalID())
	if len(hist) != 1 || hist[0].Outcome != OutcomeServiceDefault {
		t.Errorf("history = %+v", hist)
	}
}
