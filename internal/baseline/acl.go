// Package baseline implements the comparator access-control systems that
// the paper positions OASIS against (Sects. 1, 2 and 7): plain access
// control lists, unparametrised RBAC with long-lived role membership
// (RBAC96-style), delegation-based RBAC (Barka-Sandhu style, refs [3,4]),
// and polling-based revocation in place of the active event infrastructure.
// The experiment harness (E9) uses these to reproduce the paper's
// comparative claims: policy-size scaling, role explosion without
// parametrised roles, and revocation latency without events.
package baseline

import "sync"

// Right is an access right on an object.
type Right string

// Common rights.
const (
	RightRead  Right = "read"
	RightWrite Right = "write"
)

// ACLService is the pre-RBAC baseline: per-object access control lists.
// The paper's motivation: "The detailed management of large numbers of
// access control lists, as people change their employment or function, is
// avoided" by RBAC — this type exists to measure exactly that management
// burden.
type ACLService struct {
	mu      sync.RWMutex
	acl     map[string]map[string]map[Right]bool // object -> principal -> rights
	entries int
}

// NewACLService creates an empty ACL store.
func NewACLService() *ACLService {
	return &ACLService{acl: make(map[string]map[string]map[Right]bool)}
}

// Grant adds an ACL entry.
func (s *ACLService) Grant(object, principal string, r Right) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.acl[object]
	if !ok {
		obj = make(map[string]map[Right]bool)
		s.acl[object] = obj
	}
	rights, ok := obj[principal]
	if !ok {
		rights = make(map[Right]bool)
		obj[principal] = rights
	}
	if !rights[r] {
		rights[r] = true
		s.entries++
	}
}

// Revoke removes an ACL entry; it reports whether the entry existed.
func (s *ACLService) Revoke(object, principal string, r Right) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rights, ok := s.acl[object][principal]
	if !ok || !rights[r] {
		return false
	}
	delete(rights, r)
	s.entries--
	return true
}

// Check tests an access.
func (s *ACLService) Check(object, principal string, r Right) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.acl[object][principal][r]
}

// Entries reports the total number of ACL entries — the policy size the
// administrator must manage.
func (s *ACLService) Entries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries
}

// RevokePrincipal removes every entry for a principal (the "person changes
// employment" event) and reports how many entries had to be touched.
func (s *ACLService) RevokePrincipal(principal string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, obj := range s.acl {
		if rights, ok := obj[principal]; ok {
			n += len(rights)
			delete(obj, principal)
		}
	}
	s.entries -= n
	return n
}
