package baseline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestACLGrantCheckRevoke(t *testing.T) {
	s := NewACLService()
	s.Grant("record_p1", "dr_a", RightRead)
	if !s.Check("record_p1", "dr_a", RightRead) {
		t.Error("granted access denied")
	}
	if s.Check("record_p1", "dr_a", RightWrite) {
		t.Error("ungranted right allowed")
	}
	if s.Check("record_p2", "dr_a", RightRead) {
		t.Error("access to other object allowed")
	}
	if !s.Revoke("record_p1", "dr_a", RightRead) {
		t.Error("revoke of existing entry failed")
	}
	if s.Revoke("record_p1", "dr_a", RightRead) {
		t.Error("double revoke succeeded")
	}
	if s.Check("record_p1", "dr_a", RightRead) {
		t.Error("revoked access allowed")
	}
}

func TestACLEntriesCountManagementBurden(t *testing.T) {
	s := NewACLService()
	// 10 doctors x 50 patients: the ACL burden is the full product.
	for d := 0; d < 10; d++ {
		for p := 0; p < 50; p++ {
			s.Grant(fmt.Sprintf("record_p%d", p), fmt.Sprintf("dr_%d", d), RightRead)
		}
	}
	if s.Entries() != 500 {
		t.Errorf("Entries = %d, want 500", s.Entries())
	}
	// Idempotent grant does not inflate the count.
	s.Grant("record_p0", "dr_0", RightRead)
	if s.Entries() != 500 {
		t.Errorf("Entries after duplicate grant = %d", s.Entries())
	}
	// A doctor leaving means touching one entry per object they held.
	if n := s.RevokePrincipal("dr_3"); n != 50 {
		t.Errorf("RevokePrincipal touched %d entries, want 50", n)
	}
	if s.Entries() != 450 {
		t.Errorf("Entries = %d, want 450", s.Entries())
	}
}

func TestRBAC0CheckThroughRole(t *testing.T) {
	s := NewRBAC0Service()
	s.AssignUser("dr_a", "doctor")
	s.AssignPermission("doctor", "prescribe")
	if !s.Check("dr_a", "prescribe") {
		t.Error("role permission denied")
	}
	if s.Check("dr_b", "prescribe") {
		t.Error("unassigned user allowed")
	}
	if !s.DeassignUser("dr_a", "doctor") {
		t.Error("deassign failed")
	}
	if s.DeassignUser("dr_a", "doctor") {
		t.Error("double deassign succeeded")
	}
	if s.Check("dr_a", "prescribe") {
		t.Error("deassigned user still allowed")
	}
}

func TestRBAC0RoleExplosion(t *testing.T) {
	// Per-patient access control forces one role per patient in
	// unparametrised RBAC, versus OASIS's single parametrised rule.
	registrations := make(map[string][]string)
	const doctors, patientsPerDoctor = 20, 30
	patientSet := make(map[string]bool)
	for d := 0; d < doctors; d++ {
		doctor := fmt.Sprintf("dr_%d", d)
		for p := 0; p < patientsPerDoctor; p++ {
			patient := fmt.Sprintf("p_%d_%d", d, p)
			registrations[doctor] = append(registrations[doctor], patient)
			patientSet[patient] = true
		}
	}
	s := BuildPatientAccess(registrations)
	if s.Roles() != len(patientSet) {
		t.Errorf("Roles = %d, want one per patient = %d", s.Roles(), len(patientSet))
	}
	if s.Assignments() != doctors*patientsPerDoctor {
		t.Errorf("Assignments = %d, want %d", s.Assignments(), doctors*patientsPerDoctor)
	}
	if !s.Check("dr_0", "read_record_p_0_0") {
		t.Error("registered doctor denied")
	}
	if s.Check("dr_0", "read_record_p_1_0") {
		t.Error("unregistered doctor allowed")
	}
}

func TestDelegationBasics(t *testing.T) {
	s := NewDelegationService()
	s.AddMember("doctor", "dr_a")
	if err := s.Delegate("doctor", "dr_a", "locum_1"); err != nil {
		t.Fatal(err)
	}
	if !s.Holds("doctor", "locum_1") {
		t.Error("delegatee lacks role")
	}
	// A non-member cannot delegate.
	if err := s.Delegate("doctor", "stranger", "x"); !errors.Is(err, ErrNotMember) {
		t.Errorf("err = %v", err)
	}
	// But a delegatee can re-delegate (chains).
	if err := s.Delegate("doctor", "locum_1", "locum_2"); err != nil {
		t.Fatal(err)
	}
	if !s.Holds("doctor", "locum_2") {
		t.Error("chained delegatee lacks role")
	}
}

func TestDelegationCascadeRevocation(t *testing.T) {
	s := NewDelegationService()
	s.AddMember("doctor", "dr_a")
	if err := s.Delegate("doctor", "dr_a", "l1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate("doctor", "l1", "l2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate("doctor", "l2", "l3"); err != nil {
		t.Fatal(err)
	}
	removed := s.RevokeMember("doctor", "dr_a", true)
	if removed != 4 { // dr_a + l1 + l2 + l3
		t.Errorf("cascade removed %d, want 4", removed)
	}
	for _, u := range []string{"dr_a", "l1", "l2", "l3"} {
		if s.Holds("doctor", u) {
			t.Errorf("%s still holds role after cascade", u)
		}
	}
}

func TestDelegationDanglingWithoutCascade(t *testing.T) {
	// The hazard OASIS's appointment design avoids: revoking the
	// delegator without cascade leaves delegatees privileged.
	s := NewDelegationService()
	s.AddMember("doctor", "dr_a")
	if err := s.Delegate("doctor", "dr_a", "l1"); err != nil {
		t.Fatal(err)
	}
	s.RevokeMember("doctor", "dr_a", false)
	if !s.Holds("doctor", "l1") {
		t.Error("expected dangling delegation without cascade")
	}
	if s.Delegations("doctor") != 1 {
		t.Errorf("Delegations = %d", s.Delegations("doctor"))
	}
	if n := s.RevokeDelegation("doctor", "l1", false); n != 1 {
		t.Errorf("RevokeDelegation removed %d", n)
	}
	if n := s.RevokeDelegation("doctor", "l1", false); n != 0 {
		t.Errorf("second RevokeDelegation removed %d", n)
	}
	if n := s.RevokeDelegation("nosuchrole", "l1", false); n != 0 {
		t.Errorf("RevokeDelegation on unknown role removed %d", n)
	}
}

func TestPollingLatencyBoundedByInterval(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	p := NewPollingRevoker(clk, 10*time.Second)
	p.Watch("cert1")

	// Revocation happens 3s after the last poll tick.
	clk.Advance(3 * time.Second)
	p.Revoke("cert1")
	if !p.BelievedValid("cert1") {
		t.Fatal("poller noticed revocation before polling")
	}
	// The next tick is at t=10s: staleness is 7s.
	clk.Advance(7 * time.Second)
	noticed := p.Tick()
	if len(noticed) != 1 || noticed[0] != "cert1" {
		t.Fatalf("Tick = %v", noticed)
	}
	lat, ok := p.NoticeLatency("cert1")
	if !ok || lat != 7*time.Second {
		t.Errorf("latency = (%v,%v), want 7s", lat, ok)
	}
	if p.BelievedValid("cert1") {
		t.Error("poller still believes revoked cert valid")
	}
}

func TestPollingTrafficGrowsWithCertsAndTime(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	p := NewPollingRevoker(clk, time.Second)
	for i := 0; i < 100; i++ {
		p.Watch(fmt.Sprintf("cert%d", i))
	}
	clk.Advance(60 * time.Second)
	p.Tick()
	// 60 rounds x 100 certificates, nothing revoked: pure overhead.
	if p.Polls() != 6000 {
		t.Errorf("Polls = %d, want 6000", p.Polls())
	}
}

func TestPollingNoticeLatencyUnknownKey(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	p := NewPollingRevoker(clk, time.Second)
	if _, ok := p.NoticeLatency("missing"); ok {
		t.Error("latency for unknown key")
	}
	p.Watch("c")
	p.Revoke("c")
	if _, ok := p.NoticeLatency("c"); ok {
		t.Error("latency before noticing")
	}
}
