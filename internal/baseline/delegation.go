package baseline

import (
	"errors"
	"sync"
)

// ErrNotMember is returned when a delegator does not hold the role it
// tries to delegate.
var ErrNotMember = errors.New("delegator does not hold the role")

// DelegationService models delegation-based RBAC in the style of
// Barka-Sandhu (refs [3,4] of the paper): members of a role may delegate
// their membership to other users. OASIS argues against this — the
// delegatee receives exactly the delegator's privileges, delegation chains
// must be tracked, and revocation must cascade — and builds the same use
// cases from appointment instead.
type DelegationService struct {
	mu       sync.RWMutex
	original map[string]map[string]bool   // role -> original members
	deleg    map[string]map[string]string // role -> delegatee -> delegator
}

// NewDelegationService creates an empty delegation store.
func NewDelegationService() *DelegationService {
	return &DelegationService{
		original: make(map[string]map[string]bool),
		deleg:    make(map[string]map[string]string),
	}
}

// AddMember makes user an original member of role.
func (s *DelegationService) AddMember(role, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	members, ok := s.original[role]
	if !ok {
		members = make(map[string]bool)
		s.original[role] = members
	}
	members[user] = true
}

// Delegate lets from (an original member or delegatee of role) delegate
// the role to to.
func (s *DelegationService) Delegate(role, from, to string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.holdsLocked(role, from) {
		return ErrNotMember
	}
	chain, ok := s.deleg[role]
	if !ok {
		chain = make(map[string]string)
		s.deleg[role] = chain
	}
	chain[to] = from
	return nil
}

// holdsLocked reports membership, original or delegated.
func (s *DelegationService) holdsLocked(role, user string) bool {
	if s.original[role][user] {
		return true
	}
	_, ok := s.deleg[role][user]
	return ok
}

// Holds reports whether user currently holds role.
func (s *DelegationService) Holds(role, user string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.holdsLocked(role, user)
}

// RevokeMember removes an original member. With cascade, the entire
// delegation subtree rooted at the member is removed too (the bookkeeping
// OASIS avoids); without cascade, orphaned delegations survive — the
// dangling-privilege hazard of delegation schemes.
func (s *DelegationService) RevokeMember(role, user string, cascade bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	if s.original[role][user] {
		delete(s.original[role], user)
		removed++
	}
	if cascade {
		removed += s.cascadeLocked(role, user)
	}
	return removed
}

// RevokeDelegation removes a single delegation edge, optionally cascading
// through the delegatee's own delegations.
func (s *DelegationService) RevokeDelegation(role, to string, cascade bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain, ok := s.deleg[role]
	if !ok {
		return 0
	}
	if _, ok := chain[to]; !ok {
		return 0
	}
	delete(chain, to)
	removed := 1
	if cascade {
		removed += s.cascadeLocked(role, to)
	}
	return removed
}

// cascadeLocked removes every delegation transitively rooted at user.
func (s *DelegationService) cascadeLocked(role, user string) int {
	chain := s.deleg[role]
	removed := 0
	frontier := []string{user}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for to, from := range chain {
			if from == cur {
				delete(chain, to)
				removed++
				frontier = append(frontier, to)
			}
		}
	}
	return removed
}

// Delegations reports the number of live delegation edges for a role.
func (s *DelegationService) Delegations(role string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.deleg[role])
}
