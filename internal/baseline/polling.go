package baseline

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// PollingRevoker models the alternative OASIS rejects: instead of an event
// channel per credential, relying services re-check certificate validity on
// a fixed polling interval. Revocation is noticed only at the next poll
// tick, so worst-case staleness equals the interval and average staleness
// is half of it — while poll traffic is paid for every certificate on every
// tick whether or not anything changed. (Paper Sect. 4: OASIS notifies
// "without any requirement for periodic polling".)
type PollingRevoker struct {
	clk      clock.Clock
	interval time.Duration

	mu        sync.Mutex
	lastPoll  time.Time
	watched   map[string]bool      // cert key -> currently believed valid
	revokedAt map[string]time.Time // issuer-side truth
	polls     uint64               // total per-certificate poll messages
	noticed   map[string]time.Time // when the poller noticed each revocation
}

// NewPollingRevoker creates a poller over the given clock and interval.
func NewPollingRevoker(clk clock.Clock, interval time.Duration) *PollingRevoker {
	return &PollingRevoker{
		clk:       clk,
		interval:  interval,
		lastPoll:  clk.Now(),
		watched:   make(map[string]bool),
		revokedAt: make(map[string]time.Time),
		noticed:   make(map[string]time.Time),
	}
}

// Watch starts polling a certificate believed valid.
func (p *PollingRevoker) Watch(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.watched[key] = true
}

// Revoke records the issuer-side revocation instant. The poller does not
// learn of it until its next tick.
func (p *PollingRevoker) Revoke(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, done := p.revokedAt[key]; !done {
		p.revokedAt[key] = p.clk.Now()
	}
}

// Tick runs poll rounds for all watched certificates up to the current
// clock time. Each round costs one poll message per watched certificate.
// It returns the keys whose revocation was noticed during these rounds.
func (p *PollingRevoker) Tick() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clk.Now()
	var newlyNoticed []string
	for !p.lastPoll.Add(p.interval).After(now) {
		p.lastPoll = p.lastPoll.Add(p.interval)
		for key, believedValid := range p.watched {
			p.polls++
			if !believedValid {
				continue
			}
			if revokedAt, ok := p.revokedAt[key]; ok && !revokedAt.After(p.lastPoll) {
				p.watched[key] = false
				p.noticed[key] = p.lastPoll
				newlyNoticed = append(newlyNoticed, key)
			}
		}
	}
	return newlyNoticed
}

// BelievedValid reports the poller's (possibly stale) view.
func (p *PollingRevoker) BelievedValid(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.watched[key]
}

// NoticeLatency reports how long after revocation the poller noticed; the
// second result is false if the revocation is still unnoticed.
func (p *PollingRevoker) NoticeLatency(key string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	revoked, ok := p.revokedAt[key]
	if !ok {
		return 0, false
	}
	noticed, ok := p.noticed[key]
	if !ok {
		return 0, false
	}
	return noticed.Sub(revoked), true
}

// Polls reports the total number of per-certificate poll messages sent —
// the traffic the event-driven design avoids.
func (p *PollingRevoker) Polls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}
