package baseline

import "sync"

// RBAC0Service is classic unparametrised RBAC (RBAC96/ref [15]): long-lived
// user-role assignment (UA) and role-permission assignment (PA). Roles are
// opaque names; there is no way to relate a role to the object it concerns
// except by minting more roles.
type RBAC0Service struct {
	mu sync.RWMutex
	ua map[string]map[string]bool // user -> roles
	pa map[string]map[string]bool // role -> permissions
}

// NewRBAC0Service creates an empty RBAC0 store.
func NewRBAC0Service() *RBAC0Service {
	return &RBAC0Service{
		ua: make(map[string]map[string]bool),
		pa: make(map[string]map[string]bool),
	}
}

// AssignUser adds user to role (long-lived membership).
func (s *RBAC0Service) AssignUser(user, role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	roles, ok := s.ua[user]
	if !ok {
		roles = make(map[string]bool)
		s.ua[user] = roles
	}
	roles[role] = true
	if _, ok := s.pa[role]; !ok {
		s.pa[role] = make(map[string]bool)
	}
}

// DeassignUser removes user from role.
func (s *RBAC0Service) DeassignUser(user, role string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	roles, ok := s.ua[user]
	if !ok || !roles[role] {
		return false
	}
	delete(roles, role)
	return true
}

// AssignPermission grants a permission to a role.
func (s *RBAC0Service) AssignPermission(role, perm string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perms, ok := s.pa[role]
	if !ok {
		perms = make(map[string]bool)
		s.pa[role] = perms
	}
	perms[perm] = true
}

// Check tests whether a user holds a permission through any role.
func (s *RBAC0Service) Check(user, perm string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for role := range s.ua[user] {
		if s.pa[role][perm] {
			return true
		}
	}
	return false
}

// Roles reports the number of distinct roles — the measure of role
// explosion when per-object policy is forced into unparametrised roles.
func (s *RBAC0Service) Roles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pa)
}

// Assignments reports the number of user-role assignments.
func (s *RBAC0Service) Assignments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, roles := range s.ua {
		n += len(roles)
	}
	return n
}

// BuildPatientAccess populates an RBAC0 instance with the paper's
// healthcare policy — "doctors may access the records of patients
// registered with them", expressible in OASIS as ONE parametrised rule —
// and returns the instance. Unparametrised RBAC must mint one role per
// patient (treating_doctor_of_<p>) and assign each doctor to the role of
// every patient registered with them; exceptions are handled by
// deassignment.
func BuildPatientAccess(registrations map[string][]string) *RBAC0Service {
	s := NewRBAC0Service()
	for doctor, patients := range registrations {
		for _, p := range patients {
			role := "treating_doctor_of_" + p
			s.AssignUser(doctor, role)
			s.AssignPermission(role, "read_record_"+p)
		}
	}
	return s
}
