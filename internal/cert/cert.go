// Package cert defines the certificate formats of OASIS: role membership
// certificates (RMCs, Fig. 4 of the paper) and appointment certificates
// (Sects. 1-2). Both are signed with a secret held by the issuing service
// and bound to a principal identifier that is an input to the signature but
// is not recorded in the certificate, so a stolen certificate cannot be
// used by an adversary who cannot produce the principal id.
//
// An RMC carries a credential record reference (CRR) that locates the
// issuer and the credential record (CR) representing the certificate's
// current validity, enabling callback validation and event-channel
// invalidation (Sect. 4).
package cert

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/names"
	"repro/internal/sign"
)

// Errors returned by certificate construction and verification.
var (
	// ErrNotGround is returned when a certificate is requested for a role
	// with unbound parameter variables.
	ErrNotGround = errors.New("certificate role must be ground")
	// ErrExpired is returned when an appointment certificate is presented
	// after its expiry.
	ErrExpired = errors.New("appointment certificate expired")
)

// CRR is a credential record reference: it locates the issuing service and
// the credential record representing the validity of an RMC (Fig. 4). The
// Serial is unique per issuing service.
type CRR struct {
	Issuer string `json:"issuer"`
	Serial uint64 `json:"serial"`
}

// String renders issuer#serial in a single allocation — it is computed
// per presented certificate on the validation hot path (cache key and
// monitoring key).
func (c CRR) String() string {
	var tmp [20]byte
	var b strings.Builder
	b.Grow(len(c.Issuer) + 21)
	b.WriteString(c.Issuer)
	b.WriteByte('#')
	b.Write(strconv.AppendUint(tmp[:0], c.Serial, 10))
	return b.String()
}

// RMC is a role membership certificate: proof that a principal has
// activated Role at the issuing service, within a session. The signature
// covers the role name, parameters, CRR and key id, keyed on the holder's
// (session-specific) principal id.
type RMC struct {
	Role  names.Role     `json:"role"`
	Ref   CRR            `json:"ref"`
	KeyID uint32         `json:"keyId"`
	Sig   sign.Signature `json:"sig"`
}

// pfScratch backs one protected-fields construction: every field's bytes
// live in one pooled arena and the fields slice holds sub-slices of it,
// so signing or verifying a certificate allocates nothing in steady
// state (verification runs per item on the callback-validation hot
// path). Field boundaries are recorded as offsets during the build and
// materialised afterwards, because arena growth would invalidate
// sub-slices taken early.
type pfScratch struct {
	fields [][]byte
	offs   []int
	buf    []byte
}

var pfPool = sync.Pool{New: func() any { return &pfScratch{} }}

func (s *pfScratch) reset() {
	s.fields = s.fields[:0]
	s.offs = append(s.offs[:0], 0)
	s.buf = s.buf[:0]
}

// mark ends the current field at the arena's write position.
func (s *pfScratch) mark() { s.offs = append(s.offs, len(s.buf)) }

// done slices the arena into the recorded fields.
func (s *pfScratch) done() [][]byte {
	for i := 1; i < len(s.offs); i++ {
		s.fields = append(s.fields, s.buf[s.offs[i-1]:s.offs[i]])
	}
	return s.fields
}

// appendProtected serialises the fields covered by an RMC signature into
// the scratch arena. Any change to these bytes invalidates the signature
// (protection from tampering). The first field is the role name rendered
// exactly as RoleName.String (service.name/arity).
func (r RMC) appendProtected(s *pfScratch) [][]byte {
	s.reset()
	s.buf = append(s.buf, r.Role.Name.Service...)
	s.buf = append(s.buf, '.')
	s.buf = append(s.buf, r.Role.Name.Name...)
	s.buf = append(s.buf, '/')
	s.buf = strconv.AppendInt(s.buf, int64(r.Role.Name.Arity), 10)
	s.mark()
	for _, p := range r.Role.Params {
		s.buf = appendTerm(s.buf, p)
		s.mark()
	}
	s.buf = append(s.buf, r.Ref.Issuer...)
	s.mark()
	s.buf = binary.BigEndian.AppendUint64(s.buf, r.Ref.Serial)
	s.buf = binary.BigEndian.AppendUint32(s.buf, r.KeyID)
	s.mark()
	return s.done()
}

// IssueRMC creates a signed RMC for a ground role, bound to principalID,
// signed with the issuer's current key.
func IssueRMC(ring *sign.KeyRing, principalID string, role names.Role, ref CRR) (RMC, error) {
	if !role.IsGround() {
		return RMC{}, fmt.Errorf("%w: %s", ErrNotGround, role)
	}
	r := RMC{Role: role, Ref: ref}
	s := pfPool.Get().(*pfScratch)
	defer pfPool.Put(s)
	// The key id is itself a protected field, so fix it before signing;
	// if a rotation races between reading the id and signing, the ring
	// reports the id it actually used and we retry under that key.
	r.KeyID = ring.CurrentKeyID()
	for {
		sig, used := ring.Sign(principalID, r.appendProtected(s)...)
		if used == r.KeyID {
			r.Sig = sig
			return r, nil
		}
		r.KeyID = used
	}
}

// Verify checks the RMC's signature for the presenting principal against
// the issuer's key ring. It detects tampering, forgery, and theft (wrong
// principal id).
func (r RMC) Verify(ring *sign.KeyRing, principalID string) error {
	s := pfPool.Get().(*pfScratch)
	err := ring.Verify(r.KeyID, r.Sig, principalID, r.appendProtected(s)...)
	pfPool.Put(s)
	return err
}

// AppointmentCertificate is a long-lived credential whose lifetime is
// independent of any session (Sect. 2): academic or professional
// qualification, employment, organisation membership, or a transient
// stand-in authorisation. It is bound to a persistent principal id (e.g. a
// long-lived public key) rather than a session id.
type AppointmentCertificate struct {
	// Issuer is the service that issued the appointment.
	Issuer string `json:"issuer"`
	// Serial is unique per issuer and identifies the revocable record.
	Serial uint64 `json:"serial"`
	// Kind names the appointment, e.g. "employed_as_doctor".
	Kind string `json:"kind"`
	// Params carries appointment parameters, e.g. the hospital id.
	Params []names.Term `json:"params,omitempty"`
	// Holder is the persistent principal id of the appointee. Unlike the
	// RMC principal binding this is recorded in the certificate, because
	// appointments outlive sessions and services must be able to route a
	// validation callback; it is also covered by the signature.
	Holder string `json:"holder"`
	// AppointedBy records the appointer principal for audit; the
	// appointer need not hold the privileges conferred (Sect. 2).
	AppointedBy string `json:"appointedBy"`
	// IssuedAt and ExpiresAt bound the certificate's life. A zero
	// ExpiresAt means no expiry (revocation only).
	IssuedAt  time.Time `json:"issuedAt"`
	ExpiresAt time.Time `json:"expiresAt,omitempty"`
	// KeyID and Sig protect all fields above.
	KeyID uint32         `json:"keyId"`
	Sig   sign.Signature `json:"sig"`
}

// appendProtected serialises the fields covered by an appointment
// signature into the scratch arena (same framing as before pooling:
// issuer, serial/issued-at/key-id block, expiry block, kind, appointer,
// then each parameter).
func (a AppointmentCertificate) appendProtected(s *pfScratch) [][]byte {
	s.reset()
	s.buf = append(s.buf, a.Issuer...)
	s.mark()
	s.buf = binary.BigEndian.AppendUint64(s.buf, a.Serial)
	s.buf = binary.BigEndian.AppendUint64(s.buf, uint64(a.IssuedAt.UnixNano()))
	s.buf = binary.BigEndian.AppendUint32(s.buf, a.KeyID)
	s.mark()
	exp := uint64(0)
	if !a.ExpiresAt.IsZero() {
		exp = uint64(a.ExpiresAt.UnixNano())
	}
	s.buf = binary.BigEndian.AppendUint64(s.buf, exp)
	s.mark()
	s.buf = append(s.buf, a.Kind...)
	s.mark()
	s.buf = append(s.buf, a.AppointedBy...)
	s.mark()
	for _, p := range a.Params {
		s.buf = appendTerm(s.buf, p)
		s.mark()
	}
	return s.done()
}

// IssueAppointment signs an appointment certificate with the issuer's
// current key. All Params must be ground.
func IssueAppointment(ring *sign.KeyRing, a AppointmentCertificate) (AppointmentCertificate, error) {
	for _, p := range a.Params {
		if !p.IsGround() {
			return AppointmentCertificate{}, fmt.Errorf("%w: parameter %s", ErrNotGround, p)
		}
	}
	a.KeyID = ring.CurrentKeyID()
	s := pfPool.Get().(*pfScratch)
	defer pfPool.Put(s)
	for {
		sig, used := ring.Sign(a.Holder, a.appendProtected(s)...)
		if used == a.KeyID {
			a.Sig = sig
			return a, nil
		}
		a.KeyID = used
	}
}

// Verify checks the appointment signature and expiry at the given instant.
// The holder binding is checked implicitly: the signature is keyed on
// a.Holder, so a certificate whose Holder field was rewritten fails.
func (a AppointmentCertificate) Verify(ring *sign.KeyRing, now time.Time) error {
	if !a.ExpiresAt.IsZero() && now.After(a.ExpiresAt) {
		return fmt.Errorf("%w: at %s", ErrExpired, a.ExpiresAt.Format(time.RFC3339))
	}
	s := pfPool.Get().(*pfScratch)
	err := ring.Verify(a.KeyID, a.Sig, a.Holder, a.appendProtected(s)...)
	pfPool.Put(s)
	return err
}

// Key returns a canonical identity for the appointment record at its
// issuer.
func (a AppointmentCertificate) Key() string {
	return a.Issuer + "#appt#" + strconv.FormatUint(a.Serial, 10)
}

// appendTerm gives a term an unambiguous byte encoding for signing.
func appendTerm(dst []byte, t names.Term) []byte {
	switch t.Kind {
	case names.KindAtom:
		dst = append(dst, 'a')
		return append(dst, t.Sym...)
	case names.KindString:
		dst = append(dst, 's')
		return append(dst, t.Sym...)
	case names.KindInt:
		dst = append(dst, 'i')
		return binary.BigEndian.AppendUint64(dst, uint64(t.Num))
	default:
		dst = append(dst, 'v')
		return append(dst, t.Sym...)
	}
}

// MarshalRMC encodes an RMC for the wire (JSON: readable fields, protected
// by the signature rather than the encoding, as Sect. 5 notes — "the
// fields of appointment certificates (and RMCs) are readable, although
// protected from tampering and theft").
func MarshalRMC(r RMC) ([]byte, error) { return json.Marshal(r) }

// EncodeRMCGob encodes an RMC in the compact binary form used by
// gob-framed transports.
func EncodeRMCGob(r RMC) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("gob encode rmc: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRMCGob decodes the gob form.
func DecodeRMCGob(b []byte) (RMC, error) {
	var r RMC
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return RMC{}, fmt.Errorf("gob decode rmc: %w", err)
	}
	return r, nil
}

// EncodeAppointmentGob encodes an appointment certificate in binary form.
func EncodeAppointmentGob(a AppointmentCertificate) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, fmt.Errorf("gob encode appointment: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAppointmentGob decodes the gob form.
func DecodeAppointmentGob(b []byte) (AppointmentCertificate, error) {
	var a AppointmentCertificate
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&a); err != nil {
		return AppointmentCertificate{}, fmt.Errorf("gob decode appointment: %w", err)
	}
	return a, nil
}

// UnmarshalRMC decodes an RMC from the wire.
func UnmarshalRMC(b []byte) (RMC, error) {
	var r RMC
	if err := json.Unmarshal(b, &r); err != nil {
		return RMC{}, fmt.Errorf("decode rmc: %w", err)
	}
	return r, nil
}

// MarshalAppointment encodes an appointment certificate for the wire.
func MarshalAppointment(a AppointmentCertificate) ([]byte, error) { return json.Marshal(a) }

// UnmarshalAppointment decodes an appointment certificate.
func UnmarshalAppointment(b []byte) (AppointmentCertificate, error) {
	var a AppointmentCertificate
	if err := json.Unmarshal(b, &a); err != nil {
		return AppointmentCertificate{}, fmt.Errorf("decode appointment: %w", err)
	}
	return a, nil
}
