// Package cert defines the certificate formats of OASIS: role membership
// certificates (RMCs, Fig. 4 of the paper) and appointment certificates
// (Sects. 1-2). Both are signed with a secret held by the issuing service
// and bound to a principal identifier that is an input to the signature but
// is not recorded in the certificate, so a stolen certificate cannot be
// used by an adversary who cannot produce the principal id.
//
// An RMC carries a credential record reference (CRR) that locates the
// issuer and the credential record (CR) representing the certificate's
// current validity, enabling callback validation and event-channel
// invalidation (Sect. 4).
package cert

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/names"
	"repro/internal/sign"
)

// Errors returned by certificate construction and verification.
var (
	// ErrNotGround is returned when a certificate is requested for a role
	// with unbound parameter variables.
	ErrNotGround = errors.New("certificate role must be ground")
	// ErrExpired is returned when an appointment certificate is presented
	// after its expiry.
	ErrExpired = errors.New("appointment certificate expired")
)

// CRR is a credential record reference: it locates the issuing service and
// the credential record representing the validity of an RMC (Fig. 4). The
// Serial is unique per issuing service.
type CRR struct {
	Issuer string `json:"issuer"`
	Serial uint64 `json:"serial"`
}

// String renders issuer#serial.
func (c CRR) String() string { return c.Issuer + "#" + strconv.FormatUint(c.Serial, 10) }

// RMC is a role membership certificate: proof that a principal has
// activated Role at the issuing service, within a session. The signature
// covers the role name, parameters, CRR and key id, keyed on the holder's
// (session-specific) principal id.
type RMC struct {
	Role  names.Role     `json:"role"`
	Ref   CRR            `json:"ref"`
	KeyID uint32         `json:"keyId"`
	Sig   sign.Signature `json:"sig"`
}

// protectedFields serialises the fields covered by an RMC signature. Any
// change to these bytes invalidates the signature (protection from
// tampering).
func (r RMC) protectedFields() [][]byte {
	fields := make([][]byte, 0, 3+len(r.Role.Params))
	fields = append(fields, []byte(r.Role.Name.String()))
	for _, p := range r.Role.Params {
		fields = append(fields, encodeTerm(p))
	}
	var refKey [12]byte
	binary.BigEndian.PutUint64(refKey[:8], r.Ref.Serial)
	binary.BigEndian.PutUint32(refKey[8:], r.KeyID)
	fields = append(fields, []byte(r.Ref.Issuer), refKey[:])
	return fields
}

// IssueRMC creates a signed RMC for a ground role, bound to principalID,
// signed with the issuer's current key.
func IssueRMC(ring *sign.KeyRing, principalID string, role names.Role, ref CRR) (RMC, error) {
	if !role.IsGround() {
		return RMC{}, fmt.Errorf("%w: %s", ErrNotGround, role)
	}
	r := RMC{Role: role, Ref: ref}
	// The key id is itself a protected field, so fix it before signing;
	// if a rotation races between reading the id and signing, the ring
	// reports the id it actually used and we retry under that key.
	r.KeyID = ring.CurrentKeyID()
	for {
		sig, used := ring.Sign(principalID, r.protectedFields()...)
		if used == r.KeyID {
			r.Sig = sig
			return r, nil
		}
		r.KeyID = used
	}
}

// Verify checks the RMC's signature for the presenting principal against
// the issuer's key ring. It detects tampering, forgery, and theft (wrong
// principal id).
func (r RMC) Verify(ring *sign.KeyRing, principalID string) error {
	return ring.Verify(r.KeyID, r.Sig, principalID, r.protectedFields()...)
}

// AppointmentCertificate is a long-lived credential whose lifetime is
// independent of any session (Sect. 2): academic or professional
// qualification, employment, organisation membership, or a transient
// stand-in authorisation. It is bound to a persistent principal id (e.g. a
// long-lived public key) rather than a session id.
type AppointmentCertificate struct {
	// Issuer is the service that issued the appointment.
	Issuer string `json:"issuer"`
	// Serial is unique per issuer and identifies the revocable record.
	Serial uint64 `json:"serial"`
	// Kind names the appointment, e.g. "employed_as_doctor".
	Kind string `json:"kind"`
	// Params carries appointment parameters, e.g. the hospital id.
	Params []names.Term `json:"params,omitempty"`
	// Holder is the persistent principal id of the appointee. Unlike the
	// RMC principal binding this is recorded in the certificate, because
	// appointments outlive sessions and services must be able to route a
	// validation callback; it is also covered by the signature.
	Holder string `json:"holder"`
	// AppointedBy records the appointer principal for audit; the
	// appointer need not hold the privileges conferred (Sect. 2).
	AppointedBy string `json:"appointedBy"`
	// IssuedAt and ExpiresAt bound the certificate's life. A zero
	// ExpiresAt means no expiry (revocation only).
	IssuedAt  time.Time `json:"issuedAt"`
	ExpiresAt time.Time `json:"expiresAt,omitempty"`
	// KeyID and Sig protect all fields above.
	KeyID uint32         `json:"keyId"`
	Sig   sign.Signature `json:"sig"`
}

func (a AppointmentCertificate) protectedFields() [][]byte {
	fields := make([][]byte, 0, 6+len(a.Params))
	var nums [20]byte
	binary.BigEndian.PutUint64(nums[:8], a.Serial)
	binary.BigEndian.PutUint64(nums[8:16], uint64(a.IssuedAt.UnixNano()))
	binary.BigEndian.PutUint32(nums[16:], a.KeyID)
	var exp [8]byte
	if !a.ExpiresAt.IsZero() {
		binary.BigEndian.PutUint64(exp[:], uint64(a.ExpiresAt.UnixNano()))
	}
	fields = append(fields,
		[]byte(a.Issuer), nums[:], exp[:], []byte(a.Kind),
		[]byte(a.AppointedBy))
	for _, p := range a.Params {
		fields = append(fields, encodeTerm(p))
	}
	return fields
}

// IssueAppointment signs an appointment certificate with the issuer's
// current key. All Params must be ground.
func IssueAppointment(ring *sign.KeyRing, a AppointmentCertificate) (AppointmentCertificate, error) {
	for _, p := range a.Params {
		if !p.IsGround() {
			return AppointmentCertificate{}, fmt.Errorf("%w: parameter %s", ErrNotGround, p)
		}
	}
	a.KeyID = ring.CurrentKeyID()
	for {
		sig, used := ring.Sign(a.Holder, a.protectedFields()...)
		if used == a.KeyID {
			a.Sig = sig
			return a, nil
		}
		a.KeyID = used
	}
}

// Verify checks the appointment signature and expiry at the given instant.
// The holder binding is checked implicitly: the signature is keyed on
// a.Holder, so a certificate whose Holder field was rewritten fails.
func (a AppointmentCertificate) Verify(ring *sign.KeyRing, now time.Time) error {
	if !a.ExpiresAt.IsZero() && now.After(a.ExpiresAt) {
		return fmt.Errorf("%w: at %s", ErrExpired, a.ExpiresAt.Format(time.RFC3339))
	}
	return ring.Verify(a.KeyID, a.Sig, a.Holder, a.protectedFields()...)
}

// Key returns a canonical identity for the appointment record at its
// issuer.
func (a AppointmentCertificate) Key() string {
	return a.Issuer + "#appt#" + strconv.FormatUint(a.Serial, 10)
}

// encodeTerm gives a term an unambiguous byte encoding for signing.
func encodeTerm(t names.Term) []byte {
	switch t.Kind {
	case names.KindAtom:
		return append([]byte{'a'}, t.Sym...)
	case names.KindString:
		return append([]byte{'s'}, t.Sym...)
	case names.KindInt:
		var b [9]byte
		b[0] = 'i'
		binary.BigEndian.PutUint64(b[1:], uint64(t.Num))
		return b[:]
	default:
		return append([]byte{'v'}, t.Sym...)
	}
}

// MarshalRMC encodes an RMC for the wire (JSON: readable fields, protected
// by the signature rather than the encoding, as Sect. 5 notes — "the
// fields of appointment certificates (and RMCs) are readable, although
// protected from tampering and theft").
func MarshalRMC(r RMC) ([]byte, error) { return json.Marshal(r) }

// EncodeRMCGob encodes an RMC in the compact binary form used by
// gob-framed transports.
func EncodeRMCGob(r RMC) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("gob encode rmc: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRMCGob decodes the gob form.
func DecodeRMCGob(b []byte) (RMC, error) {
	var r RMC
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return RMC{}, fmt.Errorf("gob decode rmc: %w", err)
	}
	return r, nil
}

// EncodeAppointmentGob encodes an appointment certificate in binary form.
func EncodeAppointmentGob(a AppointmentCertificate) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, fmt.Errorf("gob encode appointment: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAppointmentGob decodes the gob form.
func DecodeAppointmentGob(b []byte) (AppointmentCertificate, error) {
	var a AppointmentCertificate
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&a); err != nil {
		return AppointmentCertificate{}, fmt.Errorf("gob decode appointment: %w", err)
	}
	return a, nil
}

// UnmarshalRMC decodes an RMC from the wire.
func UnmarshalRMC(b []byte) (RMC, error) {
	var r RMC
	if err := json.Unmarshal(b, &r); err != nil {
		return RMC{}, fmt.Errorf("decode rmc: %w", err)
	}
	return r, nil
}

// MarshalAppointment encodes an appointment certificate for the wire.
func MarshalAppointment(a AppointmentCertificate) ([]byte, error) { return json.Marshal(a) }

// UnmarshalAppointment decodes an appointment certificate.
func UnmarshalAppointment(b []byte) (AppointmentCertificate, error) {
	var a AppointmentCertificate
	if err := json.Unmarshal(b, &a); err != nil {
		return AppointmentCertificate{}, fmt.Errorf("decode appointment: %w", err)
	}
	return a, nil
}
