package cert

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/names"
	"repro/internal/sign"
)

func testRing(t *testing.T) *sign.KeyRing {
	t.Helper()
	kr, err := sign.NewKeyRing(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return kr
}

func doctorRole(t *testing.T) names.Role {
	t.Helper()
	rn := names.MustRoleName("hospital", "treating_doctor", 2)
	return names.MustRole(rn, names.Atom("d17"), names.Int(42))
}

func TestIssueVerifyRMC(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "principal-1", doctorRole(t), CRR{Issuer: "hospital", Serial: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(ring, "principal-1"); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if r.Ref.String() != "hospital#7" {
		t.Errorf("CRR.String = %q", r.Ref.String())
	}
}

func TestRMCRejectsNonGroundRole(t *testing.T) {
	ring := testRing(t)
	rn := names.MustRoleName("hospital", "treating_doctor", 2)
	role := names.MustRole(rn, names.Var("D"), names.Int(1))
	if _, err := IssueRMC(ring, "p", role, CRR{}); !errors.Is(err, ErrNotGround) {
		t.Errorf("non-ground role accepted: %v", err)
	}
}

func TestRMCTheftProtection(t *testing.T) {
	// An RMC presented by a different principal must fail: the principal
	// id is an argument to the signature (Fig. 4).
	ring := testRing(t)
	r, err := IssueRMC(ring, "alice-session", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(ring, "mallory-session"); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("stolen RMC accepted: %v", err)
	}
}

func TestRMCTamperParams(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Adversary rewrites the patient id parameter.
	r.Role.Params[1] = names.Int(99)
	if err := r.Verify(ring, "p"); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("tampered parameter accepted: %v", err)
	}
}

func TestRMCTamperRoleName(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Role.Name.Name = "chief_surgeon"
	if err := r.Verify(ring, "p"); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("tampered role name accepted: %v", err)
	}
}

func TestRMCTamperCRR(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Ref.Serial = 2
	if err := r.Verify(ring, "p"); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("tampered CRR accepted: %v", err)
	}
}

func TestRMCForgeryWithoutSecret(t *testing.T) {
	issuerRing := testRing(t)
	forgerRing := testRing(t)
	r, err := IssueRMC(forgerRing, "p", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(issuerRing, "p"); err == nil {
		t.Error("forged RMC (signed under adversary's own key) accepted by issuer")
	}
}

func TestRMCSurvivesRotationWithinWindow(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(ring, "p"); err != nil {
		t.Errorf("RMC within retention window rejected: %v", err)
	}
	if err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(ring, "p"); !errors.Is(err, sign.ErrUnknownKey) {
		t.Errorf("RMC beyond retention window: %v", err)
	}
}

func TestRMCMarshalRoundTrip(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalRMC(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRMC(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(ring, "p"); err != nil {
		t.Errorf("round-tripped RMC failed verification: %v", err)
	}
}

func TestUnmarshalRMCGarbage(t *testing.T) {
	if _, err := UnmarshalRMC([]byte("{not json")); err == nil {
		t.Error("garbage decoded")
	}
}

func newAppointment(t *testing.T, ring *sign.KeyRing, expires time.Time) AppointmentCertificate {
	t.Helper()
	a, err := IssueAppointment(ring, AppointmentCertificate{
		Issuer:      "hospital-admin",
		Serial:      11,
		Kind:        "employed_as_doctor",
		Params:      []names.Term{names.Atom("st_marys")},
		Holder:      "dr-jones-longterm-key",
		AppointedBy: "admin-7",
		IssuedAt:    time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC),
		ExpiresAt:   expires,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppointmentVerify(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Date(2002, 1, 1, 0, 0, 0, 0, time.UTC))
	if err := a.Verify(ring, time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestAppointmentExpiry(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Date(2002, 1, 1, 0, 0, 0, 0, time.UTC))
	if err := a.Verify(ring, time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired appointment: %v", err)
	}
}

func TestAppointmentNoExpiry(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Time{})
	if err := a.Verify(ring, time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Errorf("zero-expiry appointment rejected: %v", err)
	}
}

func TestAppointmentHolderRebindFails(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Time{})
	a.Holder = "thief-key"
	if err := a.Verify(ring, time.Unix(0, 0)); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("holder-rebound appointment accepted: %v", err)
	}
}

func TestAppointmentTamperKindAndParams(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Time{})
	b := a
	b.Kind = "hospital_director"
	if err := b.Verify(ring, time.Unix(0, 0)); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("tampered kind accepted: %v", err)
	}
	c := a
	c.Params = []names.Term{names.Atom("other_hospital")}
	if err := c.Verify(ring, time.Unix(0, 0)); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("tampered params accepted: %v", err)
	}
	d := a
	d.ExpiresAt = time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := d.Verify(ring, time.Unix(0, 0)); !errors.Is(err, sign.ErrBadSignature) {
		t.Errorf("extended expiry accepted: %v", err)
	}
}

func TestAppointmentRejectsNonGroundParam(t *testing.T) {
	ring := testRing(t)
	_, err := IssueAppointment(ring, AppointmentCertificate{
		Issuer: "x", Kind: "k", Holder: "h",
		Params: []names.Term{names.Var("H")},
	})
	if !errors.Is(err, ErrNotGround) {
		t.Errorf("non-ground appointment accepted: %v", err)
	}
}

func TestAppointmentMarshalRoundTrip(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Date(2002, 1, 1, 0, 0, 0, 0, time.UTC))
	b, err := MarshalAppointment(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAppointment(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(ring, time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Errorf("round-tripped appointment failed: %v", err)
	}
	if _, err := UnmarshalAppointment([]byte("nope")); err == nil {
		t.Error("garbage appointment decoded")
	}
}

func TestAppointmentKey(t *testing.T) {
	ring := testRing(t)
	a := newAppointment(t, ring, time.Time{})
	if a.Key() != "hospital-admin#appt#11" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestGobRoundTrips(t *testing.T) {
	ring := testRing(t)
	r, err := IssueRMC(ring, "p", doctorRole(t), CRR{Issuer: "h", Serial: 5})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := EncodeRMCGob(r)
	if err != nil {
		t.Fatal(err)
	}
	rBack, err := DecodeRMCGob(rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := rBack.Verify(ring, "p"); err != nil {
		t.Errorf("gob round-tripped RMC failed verification: %v", err)
	}
	a := newAppointment(t, ring, time.Time{})
	ab, err := EncodeAppointmentGob(a)
	if err != nil {
		t.Fatal(err)
	}
	aBack, err := DecodeAppointmentGob(ab)
	if err != nil {
		t.Fatal(err)
	}
	if err := aBack.Verify(ring, time.Unix(0, 0)); err != nil {
		t.Errorf("gob round-tripped appointment failed verification: %v", err)
	}
	if _, err := DecodeRMCGob([]byte("junk")); err == nil {
		t.Error("garbage gob RMC decoded")
	}
	if _, err := DecodeAppointmentGob([]byte("junk")); err == nil {
		t.Error("garbage gob appointment decoded")
	}
}

// Property (E4): adversarial mutation of any RMC parameter value is always
// detected.
func TestQuickRMCParamMutationDetected(t *testing.T) {
	ring := testRing(t)
	rn := names.MustRoleName("svc", "r", 1)
	f := func(orig, mutated int64) bool {
		if orig == mutated {
			return true
		}
		r, err := IssueRMC(ring, "p", names.MustRole(rn, names.Int(orig)), CRR{Issuer: "svc", Serial: 1})
		if err != nil {
			return false
		}
		r.Role.Params[0] = names.Int(mutated)
		return r.Verify(ring, "p") != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RMCs verify for exactly the principal they were issued to.
func TestQuickRMCPrincipalBinding(t *testing.T) {
	ring := testRing(t)
	rn := names.MustRoleName("svc", "r", 0)
	role := names.MustRole(rn)
	f := func(issuedTo, presenter string) bool {
		r, err := IssueRMC(ring, issuedTo, role, CRR{Issuer: "svc", Serial: 2})
		if err != nil {
			return false
		}
		err = r.Verify(ring, presenter)
		if issuedTo == presenter {
			return err == nil
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
