package cert

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/names"
	"repro/internal/sign"
)

// Binary certificate codec: hand-rolled append-style encoders and
// cursor-style decoders for the wire bodies on the validation hot path,
// replacing encoding/json there (the JSON forms remain the readable
// interchange format, per Sect. 5 of the paper; the signature protects
// the fields, not the encoding, so the two forms are interchangeable).
//
// Layout conventions: uvarint lengths and counts, signed varints for
// int64 values, raw bytes for fixed-size fields, and a one-byte presence
// flag + UnixNano varint for timestamps (flag 0 encodes the zero time,
// which has no in-range UnixNano). Decoders never trust a length beyond
// the remaining input and never panic on garbage — they return
// ErrBinaryCodec.

// ErrBinaryCodec is returned for any malformed binary certificate input.
var ErrBinaryCodec = errors.New("cert: malformed binary encoding")

// appendUvarint/appendVarint wrap binary.Append*; appendLenBytes and
// appendLenString write a uvarint length followed by the raw bytes.
func appendLenString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader is a bounds-checked decode cursor. Methods keep the first
// error sticky so call sites can check once at the end of a struct.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = ErrBinaryCodec
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// Timestamps: presence flag + UnixNano varint. The zero time has no
// representable UnixNano, hence the flag.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

func (r *binReader) time() time.Time {
	switch r.byte() {
	case 0:
		return time.Time{}
	case 1:
		return time.Unix(0, r.varint())
	default:
		r.fail()
		return time.Time{}
	}
}

// Terms: kind byte, then the kind's payload.
func appendTermBinary(dst []byte, t names.Term) []byte {
	dst = append(dst, byte(t.Kind))
	if t.Kind == names.KindInt {
		return binary.AppendVarint(dst, t.Num)
	}
	return appendLenString(dst, t.Sym)
}

func (r *binReader) term() names.Term {
	kind := names.TermKind(r.byte())
	switch kind {
	case names.KindInt:
		return names.Term{Kind: kind, Num: r.varint()}
	case names.KindVar, names.KindAtom, names.KindString:
		return names.Term{Kind: kind, Sym: r.str()}
	default:
		r.fail()
		return names.Term{}
	}
}

func appendTermsBinary(dst []byte, ts []names.Term) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = appendTermBinary(dst, t)
	}
	return dst
}

// maxBinaryCount bounds decoded element counts so a corrupt uvarint
// cannot drive a huge allocation before the input runs out.
const maxBinaryCount = 1 << 16

func (r *binReader) terms() []names.Term {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxBinaryCount || uint64(len(r.b)) < n {
		// Every term costs at least one byte; anything larger is corrupt.
		r.fail()
		return nil
	}
	ts := make([]names.Term, n)
	for i := range ts {
		ts[i] = r.term()
	}
	return ts
}

// AppendCRRBinary appends the binary form of a CRR to dst.
func AppendCRRBinary(dst []byte, c CRR) []byte {
	dst = appendLenString(dst, c.Issuer)
	return binary.AppendUvarint(dst, c.Serial)
}

func (r *binReader) crr() CRR {
	return CRR{Issuer: r.str(), Serial: r.uvarint()}
}

// AppendRMCBinary appends the binary form of an RMC to dst: role
// (service, name, arity, params), CRR, key id, signature.
func AppendRMCBinary(dst []byte, rmc RMC) []byte {
	dst = appendLenString(dst, rmc.Role.Name.Service)
	dst = appendLenString(dst, rmc.Role.Name.Name)
	dst = binary.AppendUvarint(dst, uint64(rmc.Role.Name.Arity))
	dst = appendTermsBinary(dst, rmc.Role.Params)
	dst = AppendCRRBinary(dst, rmc.Ref)
	dst = binary.AppendUvarint(dst, uint64(rmc.KeyID))
	return append(dst, rmc.Sig[:]...)
}

func (r *binReader) rmc() RMC {
	var rmc RMC
	rmc.Role.Name.Service = r.str()
	rmc.Role.Name.Name = r.str()
	rmc.Role.Name.Arity = int(r.uvarint())
	rmc.Role.Params = r.terms()
	rmc.Ref = r.crr()
	rmc.KeyID = uint32(r.uvarint())
	copy(rmc.Sig[:], r.raw(len(sign.Signature{})))
	return rmc
}

// AppendAppointmentBinary appends the binary form of an appointment
// certificate to dst.
func AppendAppointmentBinary(dst []byte, a AppointmentCertificate) []byte {
	dst = appendLenString(dst, a.Issuer)
	dst = binary.AppendUvarint(dst, a.Serial)
	dst = appendLenString(dst, a.Kind)
	dst = appendTermsBinary(dst, a.Params)
	dst = appendLenString(dst, a.Holder)
	dst = appendLenString(dst, a.AppointedBy)
	dst = appendTime(dst, a.IssuedAt)
	dst = appendTime(dst, a.ExpiresAt)
	dst = binary.AppendUvarint(dst, uint64(a.KeyID))
	return append(dst, a.Sig[:]...)
}

func (r *binReader) appointment() AppointmentCertificate {
	var a AppointmentCertificate
	a.Issuer = r.str()
	a.Serial = r.uvarint()
	a.Kind = r.str()
	a.Params = r.terms()
	a.Holder = r.str()
	a.AppointedBy = r.str()
	a.IssuedAt = r.time()
	a.ExpiresAt = r.time()
	a.KeyID = uint32(r.uvarint())
	copy(a.Sig[:], r.raw(len(sign.Signature{})))
	return a
}

// ReadRMCBinary decodes one RMC from the front of b, returning the
// remaining bytes — the composition point for multi-certificate wire
// bodies such as validation batches.
func ReadRMCBinary(b []byte) (RMC, []byte, error) {
	r := binReader{b: b}
	rmc := r.rmc()
	if r.err != nil {
		return RMC{}, nil, fmt.Errorf("decode rmc: %w", r.err)
	}
	return rmc, r.b, nil
}

// ReadAppointmentBinary decodes one appointment certificate from the
// front of b, returning the remaining bytes.
func ReadAppointmentBinary(b []byte) (AppointmentCertificate, []byte, error) {
	r := binReader{b: b}
	a := r.appointment()
	if r.err != nil {
		return AppointmentCertificate{}, nil, fmt.Errorf("decode appointment: %w", r.err)
	}
	return a, r.b, nil
}

// EncodeRMCBinary encodes a single RMC.
func EncodeRMCBinary(rmc RMC) []byte { return AppendRMCBinary(nil, rmc) }

// DecodeRMCBinary decodes a single RMC, requiring the whole input to be
// consumed.
func DecodeRMCBinary(b []byte) (RMC, error) {
	rmc, rest, err := ReadRMCBinary(b)
	if err != nil {
		return RMC{}, err
	}
	if len(rest) != 0 {
		return RMC{}, fmt.Errorf("decode rmc: %d trailing bytes: %w", len(rest), ErrBinaryCodec)
	}
	return rmc, nil
}

// EncodeAppointmentBinary encodes a single appointment certificate.
func EncodeAppointmentBinary(a AppointmentCertificate) []byte {
	return AppendAppointmentBinary(nil, a)
}

// DecodeAppointmentBinary decodes a single appointment certificate,
// requiring the whole input to be consumed.
func DecodeAppointmentBinary(b []byte) (AppointmentCertificate, error) {
	a, rest, err := ReadAppointmentBinary(b)
	if err != nil {
		return AppointmentCertificate{}, err
	}
	if len(rest) != 0 {
		return AppointmentCertificate{}, fmt.Errorf("decode appointment: %d trailing bytes: %w", len(rest), ErrBinaryCodec)
	}
	return a, nil
}
