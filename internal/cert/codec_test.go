package cert

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/names"
	"repro/internal/sign"
)

func sampleRMC() RMC {
	role := names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
		names.Atom("d17"), names.Int(42))
	var sig sign.Signature
	for i := range sig {
		sig[i] = byte(i * 7)
	}
	return RMC{Role: role, Ref: CRR{Issuer: "hospital", Serial: 910}, KeyID: 3, Sig: sig}
}

func sampleAppointment() AppointmentCertificate {
	var sig sign.Signature
	for i := range sig {
		sig[i] = byte(255 - i)
	}
	return AppointmentCertificate{
		Issuer:      "medical-board",
		Serial:      77,
		Kind:        "employed_as_doctor",
		Params:      []names.Term{names.Str("st-marys"), names.Int(-9)},
		Holder:      "key:doctor-17",
		AppointedBy: "key:registrar-1",
		IssuedAt:    time.Unix(1700000000, 123456789),
		ExpiresAt:   time.Unix(1800000000, 0),
		KeyID:       2,
		Sig:         sig,
	}
}

// rmcEqual compares RMCs treating nil and empty param slices as equal
// (the JSON codec's omitempty round-trips empty as nil).
func rmcEqual(a, b RMC) bool {
	if len(a.Role.Params) == 0 && len(b.Role.Params) == 0 {
		a.Role.Params, b.Role.Params = nil, nil
	}
	return reflect.DeepEqual(a, b)
}

func apptEqual(a, b AppointmentCertificate) bool {
	if !a.IssuedAt.Equal(b.IssuedAt) || !a.ExpiresAt.Equal(b.ExpiresAt) {
		return false
	}
	a.IssuedAt, b.IssuedAt = time.Time{}, time.Time{}
	a.ExpiresAt, b.ExpiresAt = time.Time{}, time.Time{}
	if len(a.Params) == 0 && len(b.Params) == 0 {
		a.Params, b.Params = nil, nil
	}
	return reflect.DeepEqual(a, b)
}

func TestRMCBinaryRoundTrip(t *testing.T) {
	cases := []RMC{
		sampleRMC(),
		{}, // zero value
		{Role: names.MustRole(names.MustRoleName("s", "r", 0))},
	}
	for _, want := range cases {
		got, err := DecodeRMCBinary(EncodeRMCBinary(want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !rmcEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestRMCBinaryMatchesJSON: both codecs must reproduce the same
// certificate — the signature covers fields, not encodings, so a cert
// that crossed the wire in either form must verify identically.
func TestRMCBinaryMatchesJSON(t *testing.T) {
	want := sampleRMC()
	jsonBytes, err := MarshalRMC(want)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := UnmarshalRMC(jsonBytes)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeRMCBinary(EncodeRMCBinary(want))
	if err != nil {
		t.Fatal(err)
	}
	if !rmcEqual(fromJSON, fromBin) {
		t.Fatalf("codecs disagree: json %+v binary %+v", fromJSON, fromBin)
	}
	if len(EncodeRMCBinary(want)) >= len(jsonBytes) {
		t.Fatalf("binary form (%d bytes) not smaller than JSON (%d bytes)",
			len(EncodeRMCBinary(want)), len(jsonBytes))
	}
}

func TestAppointmentBinaryRoundTrip(t *testing.T) {
	cases := []AppointmentCertificate{
		sampleAppointment(),
		{}, // zero value: both timestamps zero
		{Issuer: "x", ExpiresAt: time.Unix(1, 1)},
	}
	for _, want := range cases {
		got, err := DecodeAppointmentBinary(EncodeAppointmentBinary(want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !apptEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestAppointmentBinaryMatchesJSON(t *testing.T) {
	want := sampleAppointment()
	jsonBytes, err := MarshalAppointment(want)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := UnmarshalAppointment(jsonBytes)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeAppointmentBinary(EncodeAppointmentBinary(want))
	if err != nil {
		t.Fatal(err)
	}
	if !apptEqual(fromJSON, fromBin) {
		t.Fatalf("codecs disagree: json %+v binary %+v", fromJSON, fromBin)
	}
}

// TestReadRMCBinaryComposes: two certificates back to back decode in
// sequence with the cursor API (the batch wire body shape).
func TestReadRMCBinaryComposes(t *testing.T) {
	a, b := sampleRMC(), sampleRMC()
	b.Ref.Serial = 911
	buf := AppendRMCBinary(AppendRMCBinary(nil, a), b)
	gotA, rest, err := ReadRMCBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := ReadRMCBinary(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !rmcEqual(gotA, a) || !rmcEqual(gotB, b) {
		t.Fatalf("composition round trip failed (rest=%d)", len(rest))
	}
}

func TestDecodeBinaryRejectsTrailingGarbage(t *testing.T) {
	buf := append(EncodeRMCBinary(sampleRMC()), 0xee)
	if _, err := DecodeRMCBinary(buf); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	buf = append(EncodeAppointmentBinary(sampleAppointment()), 0x01)
	if _, err := DecodeAppointmentBinary(buf); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeBinaryTruncation(t *testing.T) {
	full := EncodeRMCBinary(sampleRMC())
	for i := 0; i < len(full); i++ {
		if _, err := DecodeRMCBinary(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// fuzzTerm maps fuzzer-chosen primitives onto a valid term.
func fuzzTerm(kind byte, sym string, num int64) names.Term {
	switch kind % 4 {
	case 0:
		return names.Var(sym)
	case 1:
		return names.Atom(sym)
	case 2:
		return names.Str(sym)
	default:
		return names.Int(num)
	}
}

// FuzzRMCBinaryRoundTrip: for any field values, decode(encode(x)) == x.
func FuzzRMCBinaryRoundTrip(f *testing.F) {
	f.Add("svc", "role", uint64(1), byte(1), "p", int64(-5), uint64(99), "issuer", uint32(7))
	f.Add("", "", uint64(0), byte(3), "", int64(0), uint64(0), "", uint32(0))
	f.Fuzz(func(t *testing.T, service, roleName string, arity uint64, termKind byte,
		termSym string, termNum int64, serial uint64, issuer string, keyID uint32) {
		want := RMC{
			Role: names.Role{
				Name:   names.RoleName{Service: service, Name: roleName, Arity: int(arity % 16)},
				Params: []names.Term{fuzzTerm(termKind, termSym, termNum)},
			},
			Ref:   CRR{Issuer: issuer, Serial: serial},
			KeyID: keyID,
		}
		for i := range want.Sig {
			want.Sig[i] = byte(int(termKind) + i)
		}
		got, err := DecodeRMCBinary(EncodeRMCBinary(want))
		if err != nil {
			t.Fatalf("decode(encode(x)): %v", err)
		}
		if !rmcEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	})
}

// FuzzAppointmentBinaryRoundTrip: same property for appointments,
// including the two timestamps.
func FuzzAppointmentBinaryRoundTrip(f *testing.F) {
	f.Add("board", uint64(1), "doctor", "holder", "appointer", int64(1700000000), int64(0), uint32(1))
	f.Fuzz(func(t *testing.T, issuer string, serial uint64, kind, holder, by string,
		issuedNano, expiresNano int64, keyID uint32) {
		want := AppointmentCertificate{
			Issuer: issuer, Serial: serial, Kind: kind,
			Holder: holder, AppointedBy: by, KeyID: keyID,
		}
		if issuedNano != 0 {
			want.IssuedAt = time.Unix(0, issuedNano)
		}
		if expiresNano != 0 {
			want.ExpiresAt = time.Unix(0, expiresNano)
		}
		got, err := DecodeAppointmentBinary(EncodeAppointmentBinary(want))
		if err != nil {
			t.Fatalf("decode(encode(x)): %v", err)
		}
		if !apptEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	})
}

// FuzzDecodeCertBinary: arbitrary bytes never panic either decoder, and
// a successful decode re-encodes to an equivalent certificate.
func FuzzDecodeCertBinary(f *testing.F) {
	f.Add(EncodeRMCBinary(sampleRMC()))
	f.Add(EncodeAppointmentBinary(sampleAppointment()))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if rmc, err := DecodeRMCBinary(data); err == nil {
			again, err := DecodeRMCBinary(EncodeRMCBinary(rmc))
			if err != nil || !rmcEqual(again, rmc) {
				t.Fatalf("re-encode of decoded RMC not stable: %v", err)
			}
		}
		if a, err := DecodeAppointmentBinary(data); err == nil {
			again, err := DecodeAppointmentBinary(EncodeAppointmentBinary(a))
			if err != nil || !apptEqual(again, a) {
				t.Fatalf("re-encode of decoded appointment not stable: %v", err)
			}
		}
	})
}

// Guard against the codecs silently diverging from the JSON field set: if
// someone adds a field to the struct (visible in JSON) without extending
// the binary codec, this test fails.
func TestBinaryCodecCoversAllJSONFields(t *testing.T) {
	a := sampleAppointment()
	var viaJSON, viaBin map[string]any
	j1, _ := json.Marshal(a)
	dec, err := DecodeAppointmentBinary(EncodeAppointmentBinary(a))
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(dec)
	if err := json.Unmarshal(j1, &viaJSON); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j2, &viaBin); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaJSON, viaBin) {
		t.Fatalf("binary codec drops fields:\n direct %s\n via binary %s", j1, j2)
	}
}
