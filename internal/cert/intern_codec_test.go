package cert

import (
	"bytes"
	"testing"

	"repro/internal/names"
)

// internRMC returns the sample RMC with its role canonicalised through
// the names intern table.
func internRMC(r RMC) RMC {
	r.Role = r.Role.Intern()
	r.Ref.Issuer = names.InternString(r.Ref.Issuer)
	return r
}

// TestInternedRMCBinaryEquivalence: interning changes which backing
// arrays equal strings share, never their values — so an interned
// certificate must produce byte-identical wire forms (JSON and the PR 5
// binary codec), verify under the same signature, and round-trip back to
// a structurally equal certificate.
func TestInternedRMCBinaryEquivalence(t *testing.T) {
	plain := sampleRMC()
	interned := internRMC(sampleRMC())

	jp, err := MarshalRMC(plain)
	if err != nil {
		t.Fatal(err)
	}
	ji, err := MarshalRMC(interned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jp, ji) {
		t.Fatalf("interned JSON differs:\n%s\n%s", jp, ji)
	}

	bp := EncodeRMCBinary(plain)
	bi := EncodeRMCBinary(interned)
	if !bytes.Equal(bp, bi) {
		t.Fatalf("interned binary encoding differs: %x vs %x", bp, bi)
	}
	back, err := DecodeRMCBinary(bi)
	if err != nil {
		t.Fatal(err)
	}
	if !rmcEqual(back, plain) {
		t.Fatalf("interned binary round trip: got %+v want %+v", back, plain)
	}
}

func TestInternedAppointmentBinaryEquivalence(t *testing.T) {
	plain := sampleAppointment()
	interned := sampleAppointment()
	interned.Issuer = names.InternString(interned.Issuer)
	interned.Kind = names.InternString(interned.Kind)
	interned.Holder = names.InternString(interned.Holder)
	names.InternTerms(interned.Params)

	bp := EncodeAppointmentBinary(plain)
	bi := EncodeAppointmentBinary(interned)
	if !bytes.Equal(bp, bi) {
		t.Fatalf("interned appointment binary encoding differs")
	}
	back, err := DecodeAppointmentBinary(bi)
	if err != nil {
		t.Fatal(err)
	}
	if !apptEqual(back, plain) {
		t.Fatalf("interned appointment round trip: got %+v want %+v", back, plain)
	}
}

// TestInternedRMCSignatureStable: a certificate signed before interning
// must verify after its fields are canonicalised (and vice versa) — the
// signature covers values, not pointers.
func TestInternedRMCSignatureStable(t *testing.T) {
	ring := testRing(t)
	role := names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
		names.Atom("d17"), names.Int(42))
	rmc, err := IssueRMC(ring, "pid-1", role, CRR{Issuer: "hospital", Serial: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := internRMC(rmc).Verify(ring, "pid-1"); err != nil {
		t.Fatalf("interned RMC failed verification: %v", err)
	}
}
