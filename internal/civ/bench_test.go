package civ

import (
	"fmt"
	"testing"
)

func BenchmarkIssue(b *testing.B) {
	for _, replicas := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			c, err := NewCluster(replicas)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Issue("subject", "holder"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValidate(b *testing.B) {
	c, err := NewCluster(3)
	if err != nil {
		b.Fatal(err)
	}
	serial, err := c.Issue("subject", "holder")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Validate(serial); err != nil {
			b.Fatal(err)
		}
	}
}
