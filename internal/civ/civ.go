// Package civ implements the per-domain certificate issuing and validation
// (CIV) service sketched in Sect. 4 of the paper (after ref [10]): rather
// than every service issuing and validating its own certificates, "a domain
// will contain one highly available service to carry out the functions of
// certificate issuing and validation ... including replication for
// availability together with consistency management".
//
// The cluster is a primary/follower replicated log of issue and revoke
// operations. Writes go through the primary and are replicated
// synchronously to reachable followers; followers that were down catch up
// by replaying the missing suffix of the log. Validation reads are served
// by any live replica; a replica that is behind can be detected by its
// applied sequence number, giving the consistency management the paper
// calls for.
package civ

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the CIV cluster.
var (
	// ErrNoPrimary is returned when every replica is down.
	ErrNoPrimary = errors.New("civ: no live replica to act as primary")
	// ErrUnknownSerial is returned when validating a certificate that
	// was never issued.
	ErrUnknownSerial = errors.New("civ: unknown certificate serial")
	// ErrReplicaDown is returned when a read targets a crashed replica.
	ErrReplicaDown = errors.New("civ: replica down")
)

// opKind is the replicated operation type.
type opKind int

const (
	opIssue opKind = iota + 1
	opRevoke
)

// op is one entry in the replicated log.
type op struct {
	Seq    uint64
	Kind   opKind
	Serial uint64
	// Subject describes the certificate (role instance or appointment
	// kind); Holder is the principal it was issued to.
	Subject string
	Holder  string
	Reason  string
}

// Record is the CIV view of an issued certificate's validity.
type Record struct {
	Serial  uint64
	Subject string
	Holder  string
	Revoked bool
	Reason  string
}

// replica holds one copy of the certificate-record state machine.
type replica struct {
	id      int
	mu      sync.Mutex
	up      bool
	applied uint64
	records map[uint64]Record
}

func (r *replica) apply(o op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o.Seq != r.applied+1 {
		return // gaps are filled by catch-up before apply is called
	}
	r.applied = o.Seq
	switch o.Kind {
	case opIssue:
		r.records[o.Serial] = Record{Serial: o.Serial, Subject: o.Subject, Holder: o.Holder}
	case opRevoke:
		rec, ok := r.records[o.Serial]
		if ok {
			rec.Revoked = true
			rec.Reason = o.Reason
			r.records[o.Serial] = rec
		}
	}
}

// Cluster is a replicated CIV service.
type Cluster struct {
	mu         sync.Mutex
	replicas   []*replica
	log        []op
	nextSerial uint64
	onRevoke   []func(Record)
}

// NewCluster creates a cluster of n replicas (n >= 1), all initially up.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("civ: cluster needs at least 1 replica, got %d", n)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.replicas = append(c.replicas, &replica{
			id:      i,
			up:      true,
			records: make(map[uint64]Record),
		})
	}
	return c, nil
}

// OnRevoke registers a hook called after a revocation commits; the domain
// layer publishes the revocation event from here.
func (c *Cluster) OnRevoke(f func(Record)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onRevoke = append(c.onRevoke, f)
}

// primary returns the lowest-id live replica; the paper's highly available
// service fails over to the next replica when the current primary crashes.
func (c *Cluster) primaryLocked() (*replica, error) {
	for _, r := range c.replicas {
		r.mu.Lock()
		up := r.up
		r.mu.Unlock()
		if up {
			return r, nil
		}
	}
	return nil, ErrNoPrimary
}

// commit appends an op to the log and applies it to every live replica
// (synchronous replication). Crashed replicas miss the op and catch up on
// restart.
func (c *Cluster) commit(o op) error {
	c.mu.Lock()
	if _, err := c.primaryLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	o.Seq = uint64(len(c.log)) + 1
	c.log = append(c.log, o)
	replicas := make([]*replica, len(c.replicas))
	copy(replicas, c.replicas)
	c.mu.Unlock()

	for _, r := range replicas {
		r.mu.Lock()
		up := r.up
		r.mu.Unlock()
		if up {
			c.catchUp(r)
		}
	}
	return nil
}

// catchUp replays missing log entries to a replica.
func (c *Cluster) catchUp(r *replica) {
	for {
		r.mu.Lock()
		applied := r.applied
		r.mu.Unlock()
		c.mu.Lock()
		if applied >= uint64(len(c.log)) {
			c.mu.Unlock()
			return
		}
		next := c.log[applied]
		c.mu.Unlock()
		r.apply(next)
	}
}

// Issue records a new certificate and returns its serial.
func (c *Cluster) Issue(subject, holder string) (uint64, error) {
	c.mu.Lock()
	c.nextSerial++
	serial := c.nextSerial
	c.mu.Unlock()
	if err := c.commit(op{Kind: opIssue, Serial: serial, Subject: subject, Holder: holder}); err != nil {
		return 0, err
	}
	return serial, nil
}

// Revoke invalidates an issued certificate cluster-wide.
func (c *Cluster) Revoke(serial uint64, reason string) error {
	if err := c.commit(op{Kind: opRevoke, Serial: serial, Reason: reason}); err != nil {
		return err
	}
	rec, err := c.Validate(serial)
	if err != nil && !errors.Is(err, ErrUnknownSerial) {
		return err
	}
	c.mu.Lock()
	hooks := make([]func(Record), len(c.onRevoke))
	copy(hooks, c.onRevoke)
	c.mu.Unlock()
	for _, h := range hooks {
		h(rec)
	}
	return nil
}

// Validate reads a certificate record from the first live replica.
func (c *Cluster) Validate(serial uint64) (Record, error) {
	c.mu.Lock()
	replicas := make([]*replica, len(c.replicas))
	copy(replicas, c.replicas)
	c.mu.Unlock()
	for _, r := range replicas {
		rec, err := c.validateAt(r, serial)
		if errors.Is(err, ErrReplicaDown) {
			continue
		}
		return rec, err
	}
	return Record{}, ErrNoPrimary
}

// ValidateAt reads from a specific replica (for consistency tests).
func (c *Cluster) ValidateAt(replicaID int, serial uint64) (Record, error) {
	c.mu.Lock()
	if replicaID < 0 || replicaID >= len(c.replicas) {
		c.mu.Unlock()
		return Record{}, fmt.Errorf("civ: no replica %d", replicaID)
	}
	r := c.replicas[replicaID]
	c.mu.Unlock()
	return c.validateAt(r, serial)
}

func (c *Cluster) validateAt(r *replica, serial uint64) (Record, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return Record{}, ErrReplicaDown
	}
	rec, ok := r.records[serial]
	if !ok {
		return Record{}, fmt.Errorf("%w: %d", ErrUnknownSerial, serial)
	}
	return rec, nil
}

// Crash takes a replica down; reads and replication skip it.
func (c *Cluster) Crash(replicaID int) error {
	return c.setUp(replicaID, false)
}

// Restart brings a replica back and replays the log it missed before the
// replica serves reads again.
func (c *Cluster) Restart(replicaID int) error {
	if err := c.setUp(replicaID, true); err != nil {
		return err
	}
	c.mu.Lock()
	r := c.replicas[replicaID]
	c.mu.Unlock()
	c.catchUp(r)
	return nil
}

func (c *Cluster) setUp(replicaID int, up bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replicaID < 0 || replicaID >= len(c.replicas) {
		return fmt.Errorf("civ: no replica %d", replicaID)
	}
	r := c.replicas[replicaID]
	r.mu.Lock()
	r.up = up
	r.mu.Unlock()
	return nil
}

// AppliedSeq reports a replica's applied log position (consistency probe).
func (c *Cluster) AppliedSeq(replicaID int) (uint64, error) {
	c.mu.Lock()
	if replicaID < 0 || replicaID >= len(c.replicas) {
		c.mu.Unlock()
		return 0, fmt.Errorf("civ: no replica %d", replicaID)
	}
	r := c.replicas[replicaID]
	c.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, nil
}

// LogLen reports the committed log length.
func (c *Cluster) LogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// LiveReplicas reports how many replicas are up.
func (c *Cluster) LiveReplicas() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.replicas {
		r.mu.Lock()
		if r.up {
			n++
		}
		r.mu.Unlock()
	}
	return n
}
