package civ

import (
	"errors"
	"sync"
	"testing"
)

func cluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero-replica cluster accepted")
	}
}

func TestIssueValidate(t *testing.T) {
	c := cluster(t, 3)
	serial, err := c.Issue("treating_doctor(d1,p1)", "principal-1")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Validate(serial)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Revoked || rec.Subject != "treating_doctor(d1,p1)" || rec.Holder != "principal-1" {
		t.Errorf("record = %+v", rec)
	}
}

func TestValidateUnknownSerial(t *testing.T) {
	c := cluster(t, 1)
	if _, err := c.Validate(99); !errors.Is(err, ErrUnknownSerial) {
		t.Errorf("err = %v", err)
	}
}

func TestRevokePropagatesToAllReplicas(t *testing.T) {
	c := cluster(t, 3)
	serial, err := c.Issue("s", "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Revoke(serial, "compromised"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec, err := c.ValidateAt(i, serial)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if !rec.Revoked || rec.Reason != "compromised" {
			t.Errorf("replica %d record = %+v", i, rec)
		}
	}
}

func TestOnRevokeHook(t *testing.T) {
	c := cluster(t, 2)
	var got []Record
	c.OnRevoke(func(r Record) { got = append(got, r) })
	serial, err := c.Issue("s", "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Revoke(serial, "r"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Serial != serial || !got[0].Revoked {
		t.Errorf("hook got %+v", got)
	}
}

func TestCrashedReplicaSkippedForReads(t *testing.T) {
	c := cluster(t, 3)
	serial, err := c.Issue("s", "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ValidateAt(0, serial); !errors.Is(err, ErrReplicaDown) {
		t.Errorf("read from crashed replica: %v", err)
	}
	// Cluster-level read fails over to replica 1.
	if _, err := c.Validate(serial); err != nil {
		t.Errorf("failover read: %v", err)
	}
	if c.LiveReplicas() != 2 {
		t.Errorf("LiveReplicas = %d", c.LiveReplicas())
	}
}

func TestCatchUpAfterRestart(t *testing.T) {
	c := cluster(t, 3)
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	// Writes happen while replica 2 is down.
	s1, err := c.Issue("a", "h1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Issue("b", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Revoke(s1, "gone"); err != nil {
		t.Fatal(err)
	}
	// Restart replays the missed suffix before serving reads.
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	seq, err := c.AppliedSeq(2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(c.LogLen()) {
		t.Errorf("replica 2 applied %d of %d", seq, c.LogLen())
	}
	rec, err := c.ValidateAt(2, s1)
	if err != nil || !rec.Revoked {
		t.Errorf("replica 2 missed revocation: %+v %v", rec, err)
	}
	rec, err = c.ValidateAt(2, s2)
	if err != nil || rec.Revoked {
		t.Errorf("replica 2 missed issue: %+v %v", rec, err)
	}
}

func TestAllReplicasDown(t *testing.T) {
	c := cluster(t, 2)
	serial, err := c.Issue("s", "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Issue("x", "y"); !errors.Is(err, ErrNoPrimary) {
		t.Errorf("write with no live replica: %v", err)
	}
	if _, err := c.Validate(serial); !errors.Is(err, ErrNoPrimary) {
		t.Errorf("read with no live replica: %v", err)
	}
}

func TestPrimaryFailover(t *testing.T) {
	c := cluster(t, 3)
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	// Writes still succeed through the next live replica.
	serial, err := c.Issue("s", "h")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.ValidateAt(1, serial)
	if err != nil || rec.Subject != "s" {
		t.Errorf("post-failover state: %+v %v", rec, err)
	}
	// Replica 0 restarts and converges.
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ValidateAt(0, serial); err != nil {
		t.Errorf("restarted old primary missing write: %v", err)
	}
}

func TestReplicaIDValidation(t *testing.T) {
	c := cluster(t, 1)
	if err := c.Crash(5); err == nil {
		t.Error("crash of nonexistent replica accepted")
	}
	if err := c.Restart(-1); err == nil {
		t.Error("restart of nonexistent replica accepted")
	}
	if _, err := c.ValidateAt(7, 1); err == nil {
		t.Error("read from nonexistent replica accepted")
	}
	if _, err := c.AppliedSeq(7); err == nil {
		t.Error("probe of nonexistent replica accepted")
	}
}

func TestConcurrentIssueRevoke(t *testing.T) {
	c := cluster(t, 3)
	var wg sync.WaitGroup
	serials := make(chan uint64, 200)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := c.Issue("subj", "holder")
				if err != nil {
					t.Error(err)
					return
				}
				serials <- s
			}
		}()
	}
	wg.Wait()
	close(serials)
	n := 0
	for s := range serials {
		if err := c.Revoke(s, "done"); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 200 {
		t.Fatalf("issued %d", n)
	}
	// Every replica converged to the same applied sequence.
	want := uint64(c.LogLen())
	for i := 0; i < 3; i++ {
		got, err := c.AppliedSeq(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("replica %d applied %d, want %d", i, got, want)
		}
	}
}
