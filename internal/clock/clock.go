// Package clock provides an injectable time source so that OASIS
// environmental constraints, certificate expiry, heartbeat monitoring and
// benchmarks can run against either the wall clock or a deterministic
// simulated clock.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the time source used throughout the OASIS implementation.
// Production code uses Real; tests and the experiment harness use Simulated
// so that expiry and revocation timing are deterministic.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
	// After returns a channel that delivers one value once the clock has
	// advanced by at least d past the moment of the call.
	After(d time.Duration) <-chan time.Time
}

// Canceling is the optional extension implemented by clocks whose After
// waiters can be abandoned: the returned cancel func releases whatever
// the clock registered for the timer, so a consumer that stops caring
// (e.g. a service shutting its expiry timers down) does not leak the
// waiter. Cancel is idempotent and safe to call after the channel fired.
type Canceling interface {
	Clock
	AfterCancel(d time.Duration) (<-chan time.Time, func())
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Canceling = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterCancel implements Canceling; cancelling stops the runtime timer so
// it can be collected before the deadline.
func (Real) AfterCancel(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}

// Simulated is a manually advanced Clock. The zero value is not usable;
// construct one with NewSimulated.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

var _ Canceling = (*Simulated)(nil)

// NewSimulated returns a Simulated clock initialised to start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel fires when Advance moves the
// simulated time past the deadline. Prefer AfterCancel for waiters that may
// be abandoned before their deadline: a plain After waiter stays registered
// until the simulated time reaches it, so a long simulation that keeps
// creating and dropping far-future timers grows the waiter list without
// bound.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	ch, _ := s.AfterCancel(d)
	return ch
}

// AfterCancel implements Canceling: the cancel func removes the waiter from
// the clock's list immediately, whatever its deadline.
func (s *Simulated) AfterCancel(d time.Duration) (<-chan time.Time, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &waiter{deadline: s.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- s.now
		return ch, func() {}
	}
	s.waiters = append(s.waiters, w)
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
	}
}

// WaiterCount reports how many registered waiters have not yet fired or
// been cancelled (leak diagnostics and tests).
func (s *Simulated) WaiterCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Advance moves the simulated time forward by d and releases any waiters
// whose deadlines have been reached.
func (s *Simulated) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	remaining := s.waiters[:0]
	var fired []*waiter
	for _, w := range s.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	s.waiters = remaining
	s.mu.Unlock()

	for _, w := range fired {
		w.ch <- now
	}
}

// Set jumps the simulated clock to t (which must not be earlier than the
// current simulated time) and releases due waiters.
func (s *Simulated) Set(t time.Time) {
	s.mu.Lock()
	if t.After(s.now) {
		s.now = t
	}
	now := s.now
	remaining := s.waiters[:0]
	var fired []*waiter
	for _, w := range s.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	s.waiters = remaining
	s.mu.Unlock()

	for _, w := range fired {
		w.ch <- now
	}
}
