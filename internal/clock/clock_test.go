package clock

import (
	"testing"
	"time"
)

func TestRealNowMonotone(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestSimulatedNow(t *testing.T) {
	start := time.Date(2001, 11, 12, 0, 0, 0, 0, time.UTC)
	c := NewSimulated(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	c.Advance(time.Hour)
	if got := c.Now(); !got.Equal(start.Add(time.Hour)) {
		t.Fatalf("after Advance Now() = %v, want %v", got, start.Add(time.Hour))
	}
}

func TestSimulatedAfterFiresOnAdvance(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire once deadline reached")
	}
}

func TestSimulatedAfterNonPositive(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestSimulatedSet(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewSimulated(start)
	ch := c.After(30 * time.Second)
	c.Set(start.Add(time.Minute))
	select {
	case now := <-ch:
		if !now.Equal(start.Add(time.Minute)) {
			t.Fatalf("waiter got %v, want %v", now, start.Add(time.Minute))
		}
	default:
		t.Fatal("Set past deadline did not release waiter")
	}
	// Set must never move time backwards.
	c.Set(start)
	if got := c.Now(); !got.Equal(start.Add(time.Minute)) {
		t.Fatalf("Set moved clock backwards to %v", got)
	}
}

func TestSimulatedMultipleWaiters(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	early := c.After(time.Second)
	late := c.After(time.Hour)
	c.Advance(2 * time.Second)
	select {
	case <-early:
	default:
		t.Fatal("early waiter not released")
	}
	select {
	case <-late:
		t.Fatal("late waiter released too early")
	default:
	}
	c.Advance(time.Hour)
	select {
	case <-late:
	default:
		t.Fatal("late waiter never released")
	}
}

func TestSimulatedAfterCancelRemovesWaiter(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var cancels []func()
	for i := 0; i < 100; i++ {
		_, cancel := c.AfterCancel(time.Duration(i+1) * time.Hour)
		cancels = append(cancels, cancel)
	}
	if got := c.WaiterCount(); got != 100 {
		t.Fatalf("WaiterCount() = %d, want 100", got)
	}
	for _, cancel := range cancels {
		cancel()
	}
	if got := c.WaiterCount(); got != 0 {
		t.Fatalf("after cancel WaiterCount() = %d, want 0 (waiter leak)", got)
	}
	// Cancel is idempotent and safe after firing.
	ch, cancel := c.AfterCancel(time.Second)
	c.Advance(2 * time.Second)
	<-ch
	cancel()
	cancel()
	if got := c.WaiterCount(); got != 0 {
		t.Fatalf("after fire+cancel WaiterCount() = %d, want 0", got)
	}
}

func TestSimulatedAfterCancelImmediate(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	ch, cancel := c.AfterCancel(0)
	select {
	case <-ch:
	default:
		t.Fatal("zero-duration AfterCancel did not fire immediately")
	}
	cancel()
}

func TestRealAfterCancel(t *testing.T) {
	ch, cancel := Real{}.AfterCancel(time.Hour)
	cancel()
	select {
	case <-ch:
		t.Fatal("cancelled Real timer fired")
	case <-time.After(10 * time.Millisecond):
	}
}
