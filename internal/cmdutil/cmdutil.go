// Package cmdutil holds shared helpers for the command-line tools: parsing
// fact files, ground terms and role instances from their textual forms.
package cmdutil

import (
	"fmt"
	"strings"

	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/store"
)

// LoadFacts parses a facts file — one `relation arg1 arg2 ...` per line,
// with #-comments — and asserts each fact. It returns the distinct
// relation names in first-seen order.
func LoadFacts(db *store.Store, text string) ([]string, error) {
	var relations []string
	seen := make(map[string]bool)
	for lineNo, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		relation := fields[0]
		args, err := ParseTerms(strings.Join(fields[1:], ", "))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if _, err := db.Assert(relation, args...); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if !seen[relation] {
			seen[relation] = true
			relations = append(relations, relation)
		}
	}
	return relations, nil
}

// ParseTerms parses a comma-separated list of ground terms ("a, 7,
// \"text\"") using the policy-language grammar. An empty string yields nil.
func ParseTerms(s string) ([]names.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	// Reuse the policy parser: wrap the list as an env condition's
	// arguments inside a syntactically complete rule.
	pol, err := policy.Parse(fmt.Sprintf("x.y <- env p(%s).", s))
	if err != nil {
		return nil, fmt.Errorf("parse terms %q: %w", s, err)
	}
	ec, ok := pol.Rules[0].Body[0].(policy.EnvCond)
	if !ok {
		return nil, fmt.Errorf("parse terms %q: unexpected rule shape", s)
	}
	return ec.Args, nil
}

// ParseRoleInstance parses "service.role" or "service.role(arg, ...)" into
// a role instance, again via the policy grammar.
func ParseRoleInstance(s string) (names.Role, error) {
	pol, err := policy.Parse(fmt.Sprintf("auth dummy <- %s.", strings.TrimSpace(s)))
	if err != nil {
		return names.Role{}, fmt.Errorf("parse role %q: %w", s, err)
	}
	rc, ok := pol.Auth[0].Body[0].(policy.RoleCond)
	if !ok {
		return names.Role{}, fmt.Errorf("parse role %q: not a role", s)
	}
	return rc.Role, nil
}
