package cmdutil

import (
	"testing"

	"repro/internal/names"
	"repro/internal/store"
)

func TestParseTerms(t *testing.T) {
	tests := []struct {
		in   string
		want []names.Term
	}{
		{"", nil},
		{"  ", nil},
		{"alice", []names.Term{names.Atom("alice")}},
		{`a, 7, "x y"`, []names.Term{names.Atom("a"), names.Int(7), names.Str("x y")}},
		{"-3", []names.Term{names.Int(-3)}},
	}
	for _, tt := range tests {
		got, err := ParseTerms(tt.in)
		if err != nil {
			t.Errorf("ParseTerms(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseTerms(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("ParseTerms(%q)[%d] = %v, want %v", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestParseTermsError(t *testing.T) {
	if _, err := ParseTerms("((("); err == nil {
		t.Error("garbage parsed")
	}
}

func TestParseRoleInstance(t *testing.T) {
	r, err := ParseRoleInstance("login.user(alice)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name.Service != "login" || r.Name.Name != "user" || len(r.Params) != 1 {
		t.Errorf("role = %+v", r)
	}
	zero, err := ParseRoleInstance("login.user")
	if err != nil {
		t.Fatal(err)
	}
	if zero.Name.Arity != 0 {
		t.Errorf("arity = %d", zero.Name.Arity)
	}
	// Variables are allowed (the service binds them).
	v, err := ParseRoleInstance("files.reader(U)")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Params[0].IsVar() {
		t.Errorf("param = %v", v.Params[0])
	}
	if _, err := ParseRoleInstance("not a role!!"); err == nil {
		t.Error("garbage role parsed")
	}
	if _, err := ParseRoleInstance("env p(x)"); err == nil {
		t.Error("env condition accepted as role")
	}
}

func TestLoadFacts(t *testing.T) {
	db := store.New()
	rels, err := LoadFacts(db, `
# comment
passwords alice
passwords bob   # trailing comment
registered dr_a p1
registered dr_a p2

`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 || rels[0] != "passwords" || rels[1] != "registered" {
		t.Errorf("relations = %v", rels)
	}
	if !db.Contains("passwords", names.Atom("alice")) {
		t.Error("alice fact missing")
	}
	if !db.Contains("registered", names.Atom("dr_a"), names.Atom("p2")) {
		t.Error("registration fact missing")
	}
	if db.Count("passwords") != 2 {
		t.Errorf("passwords count = %d", db.Count("passwords"))
	}
}

func TestLoadFactsBadLine(t *testing.T) {
	db := store.New()
	if _, err := LoadFacts(db, "rel ((("); err == nil {
		t.Error("bad fact line accepted")
	}
}
