package core

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
)

// appointRulePrefix names the authorization rules that guard appointment
// issuing: `auth appoint_<kind>(params...) <- conditions.` Being active in
// the roles those conditions require is what confers the right to appoint
// (Sect. 2) — the appointer need not hold the privileges the appointment
// later confers.
const appointRulePrefix = "appoint_"

// AppointmentRequest describes an appointment to issue.
type AppointmentRequest struct {
	// Kind names the appointment, e.g. "employed_as_doctor".
	Kind string
	// Holder is the persistent principal id of the appointee.
	Holder string
	// Params are the appointment parameters, e.g. the hospital id; they
	// are also the arguments checked against the appointer rule.
	Params []names.Term
	// ExpiresAt bounds the certificate's life; zero means revocation
	// only.
	ExpiresAt time.Time
}

// Appoint issues an appointment certificate if the presenting principal's
// credentials satisfy the service's appointer rule for the kind
// (`auth appoint_<kind>`). The issued certificate is recorded so that it
// can be validated by callback and revoked through its event channel.
func (s *Service) Appoint(principal string, req AppointmentRequest, p Presented) (cert.AppointmentCertificate, error) {
	ruleName := appointRulePrefix + req.Kind
	rules := s.authIndex[ruleName]
	if len(rules) == 0 {
		return cert.AppointmentCertificate{}, wrap(s.name,
			fmt.Errorf("%w: no appointer rule %s", ErrAppointmentDenied, ruleName))
	}
	sc := getCredsScratch()
	defer sc.release()
	creds, err := s.validateAll(principal, p, sc)
	if err != nil {
		return cert.AppointmentCertificate{}, wrap(s.name, err)
	}
	authorized := false
	for _, rule := range rules {
		_, ok, err := s.eval.Authorize(rule, req.Params, creds)
		if err != nil {
			return cert.AppointmentCertificate{}, wrap(s.name, err)
		}
		if ok {
			authorized = true
			break
		}
	}
	if !authorized {
		return cert.AppointmentCertificate{}, wrap(s.name,
			fmt.Errorf("%w: %s", ErrAppointmentDenied, req.Kind))
	}

	s.apptMu.Lock()
	s.nextApptSerial++
	serial := s.nextApptSerial
	s.apptMu.Unlock()

	a, err := cert.IssueAppointment(s.ring, cert.AppointmentCertificate{
		Issuer:      s.name,
		Serial:      serial,
		Kind:        req.Kind,
		Params:      req.Params,
		Holder:      req.Holder,
		AppointedBy: principal,
		IssuedAt:    s.clk.Now(),
		ExpiresAt:   req.ExpiresAt,
	})
	if err != nil {
		return cert.AppointmentCertificate{}, wrap(s.name, err)
	}
	// The signed certificate installs and journals through the shard's
	// ordered apply loop. Durable before handed out: the certificate
	// outlives sessions, so the issuer must remember it before the
	// holder can hold it — the sequencer batch carrying an appointment
	// issue waits for the journal fsync before Appoint returns.
	op := newMutOp(mutApptIssue)
	op.serial, op.appt = serial, a
	s.runMut(op)
	return a, nil
}

// RevokeAppointment invalidates an issued appointment and publishes the
// revocation on its event channel, deactivating any roles whose membership
// rules depend on it. It reports whether the serial named a live
// appointment.
func (s *Service) RevokeAppointment(serial uint64, reason string) bool {
	op := newMutOp(mutApptRevoke)
	op.serial, op.reason = serial, reason
	s.runMut(op)
	return op.did
}

// AppointmentStatus reports whether an issued appointment exists and is
// still valid (ignoring expiry, which Verify checks per presentation).
func (s *Service) AppointmentStatus(serial uint64) (valid, exists bool) {
	s.apptMu.Lock()
	defer s.apptMu.Unlock()
	rec, ok := s.appts[serial]
	if !ok {
		return false, false
	}
	return !rec.revoked, true
}
