package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
)

// adminWorld sets up the appointment scenario of Sect. 2: an administrator
// (not medically qualified) issues employed_as_doctor appointments, which
// doctors later use to activate clinical roles.
func adminWorld(t *testing.T) (*world, *Service, *Service, *Session) {
	t.Helper()
	w := newWorld(t)
	admin := w.service("admin", `
admin.administrator(A) <- env is_admin(A).
auth appoint_employed_as_doctor(H) <- admin.administrator(A).
`)
	admin.Env().Register("is_admin", func(args []names.Term, s names.Substitution) []names.Substitution {
		if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom("alice")}, s); ok {
			return []names.Substitution{ext}
		}
		return nil
	})
	hospital := w.service("hospital", `
hospital.doctor <- appt admin.employed_as_doctor(H), env eq(H, st_marys) keep [1].
auth treat <- hospital.doctor.
`)
	adminSess := w.session()
	rmc, err := admin.Activate(adminSess.PrincipalID(),
		role("admin", "administrator", names.Atom("alice")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	adminSess.AddRMC(rmc)
	return w, admin, hospital, adminSess
}

func TestAppointAndActivate(t *testing.T) {
	w, admin, hospital, adminSess := adminWorld(t)
	appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "dr-jones-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, adminSess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if appt.AppointedBy != adminSess.PrincipalID() {
		t.Errorf("AppointedBy = %q", appt.AppointedBy)
	}

	docSess := w.session()
	_ = docSess
	// The appointment is bound to the doctor's persistent key; the
	// doctor presents it to activate the clinical role.
	doctor := Presented{Appointments: append(docSess.Appointments(), appt)}
	rmc, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"), doctor)
	if err != nil {
		t.Fatal(err)
	}
	if valid, _ := hospital.CRStatus(rmc.Ref.Serial); !valid {
		t.Error("doctor role inactive")
	}
}

func TestAppointDeniedWithoutAppointerRole(t *testing.T) {
	_, admin, _, _ := adminWorld(t)
	stranger := AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "someone",
		Params: []names.Term{names.Atom("st_marys")},
	}
	if _, err := admin.Appoint("stranger-principal", stranger, Presented{}); !errors.Is(err, ErrAppointmentDenied) {
		t.Errorf("err = %v", err)
	}
}

func TestAppointUnknownKind(t *testing.T) {
	_, admin, _, adminSess := adminWorld(t)
	req := AppointmentRequest{Kind: "hospital_director", Holder: "h"}
	if _, err := admin.Appoint(adminSess.PrincipalID(), req, adminSess.Credentials()); !errors.Is(err, ErrAppointmentDenied) {
		t.Errorf("err = %v", err)
	}
}

func TestAppointerLacksConferredPrivilege(t *testing.T) {
	// Invariant I5: the administrator who appoints doctors is not
	// thereby able to activate the doctor role (Sect. 2: "a hospital
	// administrator need not be medically qualified").
	w, admin, hospital, adminSess := adminWorld(t)
	_ = w
	if _, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "dr-jones-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, adminSess.Credentials()); err != nil {
		t.Fatal(err)
	}
	// The admin presents only her own credentials (no appointment made
	// out to her): activation must fail.
	if _, err := hospital.Activate(adminSess.PrincipalID(),
		role("hospital", "doctor"), adminSess.Credentials()); !errors.Is(err, ErrActivationDenied) {
		t.Errorf("appointer gained conferred privilege: %v", err)
	}
}

func TestAppointmentRevocationCascades(t *testing.T) {
	// Revoking the appointment deactivates roles whose membership rules
	// depend on it (keep [1] on the appt condition).
	w, admin, hospital, adminSess := adminWorld(t)
	appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "dr-jones-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, adminSess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"),
		Presented{Appointments: []cert.AppointmentCertificate{appt}})
	if err != nil {
		t.Fatal(err)
	}
	if !admin.RevokeAppointment(appt.Serial, "employment ended") {
		t.Fatal("RevokeAppointment returned false")
	}
	w.broker.Quiesce()
	if valid, _ := hospital.CRStatus(rmc.Ref.Serial); valid {
		t.Error("doctor role survived appointment revocation")
	}
	// Revoked appointments no longer validate as credentials.
	if _, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"),
		Presented{Appointments: []cert.AppointmentCertificate{appt}}); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("revoked appointment accepted: %v", err)
	}
	// Double revocation reports false.
	if admin.RevokeAppointment(appt.Serial, "again") {
		t.Error("second revocation reported true")
	}
	if admin.RevokeAppointment(999999, "missing") {
		t.Error("unknown serial revoked")
	}
}

func TestAppointmentExpiryBlocksActivation(t *testing.T) {
	w, admin, hospital, adminSess := adminWorld(t)
	appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:      "employed_as_doctor",
		Holder:    "dr-jones-key",
		Params:    []names.Term{names.Atom("st_marys")},
		ExpiresAt: w.clk.Now().Add(24 * time.Hour),
	}, adminSess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	// Within validity: activation succeeds.
	if _, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"),
		Presented{Appointments: []cert.AppointmentCertificate{appt}}); err != nil {
		t.Fatal(err)
	}
	// Past expiry: the issuer's validation rejects it.
	w.clk.Advance(48 * time.Hour)
	if _, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"),
		Presented{Appointments: []cert.AppointmentCertificate{appt}}); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("expired appointment accepted: %v", err)
	}
}

func TestAppointmentExpiryDeactivatesActiveRole(t *testing.T) {
	// Active security: a role whose membership rule depends on an
	// expiring appointment collapses AT the expiry instant, without
	// waiting for the next validation.
	w, admin, hospital, adminSess := adminWorld(t)
	appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:      "employed_as_doctor",
		Holder:    "dr-jones-key",
		Params:    []names.Term{names.Atom("st_marys")},
		ExpiresAt: w.clk.Now().Add(time.Hour),
	}, adminSess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := hospital.Activate("dr-jones-key", role("hospital", "doctor"),
		Presented{Appointments: []cert.AppointmentCertificate{appt}})
	if err != nil {
		t.Fatal(err)
	}
	// Before expiry the role is live.
	w.clk.Advance(30 * time.Minute)
	if valid, _ := hospital.CRStatus(rmc.Ref.Serial); !valid {
		t.Fatal("role inactive before expiry")
	}
	// Cross the expiry instant: the timer deactivates the role.
	w.clk.Advance(31 * time.Minute)
	waitForRevoked(t, hospital, rmc.Ref.Serial)
}

// waitForRevoked polls briefly for the expiry timer goroutine to land.
func waitForRevoked(t *testing.T, svc *Service, serial uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if valid, _ := svc.CRStatus(serial); !valid {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("role survived appointment expiry instant")
}

func TestAppointmentStatus(t *testing.T) {
	_, admin, _, adminSess := adminWorld(t)
	appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "h",
		Params: []names.Term{names.Atom("st_marys")},
	}, adminSess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if valid, exists := admin.AppointmentStatus(appt.Serial); !valid || !exists {
		t.Errorf("status = (%v,%v)", valid, exists)
	}
	if _, exists := admin.AppointmentStatus(12345); exists {
		t.Error("phantom appointment exists")
	}
	admin.RevokeAppointment(appt.Serial, "r")
	if valid, exists := admin.AppointmentStatus(appt.Serial); valid || !exists {
		t.Errorf("status after revoke = (%v,%v)", valid, exists)
	}
}
