package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
)

// defaultBatchWindow bounds how long queued validations wait for
// companions once a flight to their issuer is already outstanding.
const defaultBatchWindow = time.Millisecond

// maxConcurrentFlights is how many flights may be in the air per issuer
// before arrivals start gathering (cold queues only; hot queues gather
// regardless, see below). One slot is not enough: when a batch's
// verdicts land, its waiters re-arrive together to an empty queue, and
// with a single slot the first re-arrival departs solo and re-gates the
// rest for a full round trip — every steady-state cycle pays two serial
// RTTs for one batch. A second slot lets that solo overlap the next
// gather, so the returning herd departs after ~one RTT instead of two.
const maxConcurrentFlights = 2

// hotFactor scales the batch window into the hot TTL: a queue whose last
// coalesced departure was within hotFactor windows is in a fan-in storm
// and keeps gathering; past it the queue cools back to the
// depart-immediately fast path.
const hotFactor = 8

// regatherSettle is how long the re-gather spinner must observe the
// queue unchanged before concluding the herd has fully re-assembled and
// flushing it. Elapsed time, not yield counts: a Gosched on an idle P
// returns immediately, so counted yields can pass in microseconds
// mid-re-arrival and fragment the herd.
const regatherSettle = 50 * time.Microsecond

// regatherDeadline hard-caps the spinner so a continuous arrival stream
// (pending never settles) still flushes promptly.
const regatherDeadline = time.Millisecond

// (The re-gather waiter is event-driven: each arrival on a regathering
// queue pokes q.grow, so there is no polling cadence to tune — see
// regatherFlush.)

// batcher coalesces concurrent callback validations destined for the
// same issuer into validate_batch calls, collapsing the N-callbacks
// fan-in of activation storms and post-restart cache refill into ~1.
//
// The coalescing is in-flight-gated so batching never taxes a lone call:
// on a cold queue, a validation arriving while the issuer has a free
// flight slot departs IMMEDIATELY as a single call (zero added latency);
// validations arriving while all maxConcurrentFlights slots are occupied
// gather in the queue and depart together when a flight returns — or
// after the batch window, whichever is first, so the worst-case added
// wait is min(window, remaining flight time). The pipelined framing
// layer underneath carries overlapping flights on one connection, so a
// window-triggered departure never queues behind the gating flight.
//
// A queue that has just seen a coalesced departure is HOT: during a
// fan-in storm the whole herd of waiters re-arrives together the moment
// a batch's verdicts land, and letting the first re-arrivals depart solo
// (or flushing the instant the flight returns) would capture only the
// head of the herd, fragmenting it into small waves that each pay a
// full round trip. A hot queue therefore gathers every arrival, and a
// returning flight hands the next flush to a re-gather spinner that
// waits for the queue to stop growing, so the whole herd re-assembles
// and departs as one batch — a steady-state storm cycles at ~one RTT
// per full herd. The window timer remains the backstop, so a lone call
// landing on a hot queue waits at most the window, and the queue cools
// back to the depart-immediately path hotFactor windows after the storm
// ends.
//
// Mixed-version interop is handled per issuer with sticky downgrade
// flags: an issuer that rejects validate_batch (unknown method) is
// marked noBatch and coalesced items fall back to per-item calls; an
// issuer that cannot decode binary bodies is marked noBinary and calls
// fall back to the JSON forms. Both fallbacks preserve the per-item
// error classification (authoritative ErrRevoked vs unavailable).
// The batcher is deliberately independent of *Service: it needs only a
// transport and somewhere to count, so the HTTP edge gateway reuses the
// exact same coalescer (via RemoteValidator) for out-of-process clients.
type batcher struct {
	caller   rpc.Caller
	window   time.Duration
	disabled bool

	// Sinks. batchSize is nil-safe; the counters are always non-nil
	// (wired to service stats or a RemoteValidator's own counters).
	batchSize           *obs.Histogram
	batchesSent         *atomic.Uint64
	callbackValidations *atomic.Uint64
	batchedValidations  *atomic.Uint64

	mu     sync.Mutex
	queues map[string]*issuerQueue
}

// issuerQueue is the coalescing state for one issuer.
type issuerQueue struct {
	mu          sync.Mutex
	inflight    int          // flights currently out to this issuer
	pending     []*batchCall // gathered while inflight > 0
	timerSet    bool
	regathering bool      // a re-gather waiter is watching the queue
	hotUntil    time.Time // queue is mid fan-in storm until this instant
	noBatch     bool      // issuer rejected validate_batch; use per-item calls
	noBinary    bool      // issuer rejected binary bodies; use JSON forms

	// grow wakes the re-gather waiter: every arrival appended while
	// regathering pokes it (capacity 1, coalescing), so the waiter
	// learns the herd is still assembling without polling the queue.
	grow chan struct{}
}

// hot reports whether the queue is mid fan-in storm. Caller holds q.mu.
func (q *issuerQueue) hot() bool {
	return time.Now().Before(q.hotUntil)
}

// batchCall is one queued validation and its result channel. Calls are
// pooled: the caller in do is the only reader of done and reclaims the
// call after receiving its verdict, by which point no sender retains it.
type batchCall struct {
	item validateItem
	done chan error
}

var batchCallPool = sync.Pool{
	New: func() any { return &batchCall{done: make(chan error, 1)} },
}

// batchBodyPool recycles validate_batch request bodies — a storm encodes
// hundreds of items per round trip, and the body is dead the moment the
// transport returns. Outliers beyond a full herd's size are dropped
// rather than pinned.
var batchBodyPool sync.Pool

const batchBodyPoolMax = 1 << 20

// batchSlicePool recycles the gathered []*batchCall slices: a storm
// gathers and takes a herd-sized slice every cycle, and the slice is
// dead once dispatch has delivered every verdict.
var batchSlicePool sync.Pool

func getBatchSlice() []*batchCall {
	if v := batchSlicePool.Get(); v != nil {
		return (*v.(*[]*batchCall))[:0]
	}
	return nil
}

func putBatchSlice(batch []*batchCall) {
	if cap(batch) == 0 {
		return
	}
	clear(batch[:cap(batch)])
	batch = batch[:0]
	batchSlicePool.Put(&batch)
}

func getBatchBody() []byte {
	if v := batchBodyPool.Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return nil
}

func putBatchBody(buf []byte) {
	if cap(buf) == 0 || cap(buf) > batchBodyPoolMax {
		return
	}
	batchBodyPool.Put(&buf)
}

func newBatcher(svc *Service, window time.Duration) *batcher {
	b := newCallerBatcher(svc.caller, window)
	b.batchSize = svc.obsm.batchSize
	b.batchesSent = &svc.stats.batchesSent
	b.callbackValidations = &svc.stats.callbackValidations
	b.batchedValidations = &svc.stats.batchedValidations
	return b
}

// newCallerBatcher builds a coalescer over a bare transport with private
// counters; RemoteValidator uses it directly, services re-point the sinks
// at their stats.
func newCallerBatcher(caller rpc.Caller, window time.Duration) *batcher {
	b := &batcher{
		caller:              caller,
		window:              window,
		queues:              make(map[string]*issuerQueue),
		batchesSent:         new(atomic.Uint64),
		callbackValidations: new(atomic.Uint64),
		batchedValidations:  new(atomic.Uint64),
	}
	if window < 0 {
		b.disabled = true
	} else if window == 0 {
		b.window = defaultBatchWindow
	}
	return b
}

func (b *batcher) queue(issuer string) *issuerQueue {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[issuer]
	if q == nil {
		q = &issuerQueue{grow: make(chan struct{}, 1)}
		b.queues[issuer] = q
	}
	return q
}

// do validates one item with the issuer, batching behind any outstanding
// flight. It blocks until this item's verdict is in.
func (b *batcher) do(issuer string, it validateItem) error {
	q := b.queue(issuer)
	q.mu.Lock()
	if b.disabled || (!q.hot() && q.inflight < maxConcurrentFlights) {
		q.inflight++
		q.mu.Unlock()
		err := b.single(issuer, q, it)
		b.flightDone(issuer, q)
		return err
	}
	c := batchCallPool.Get().(*batchCall)
	c.item = it
	if q.pending == nil {
		q.pending = getBatchSlice()
	}
	q.pending = append(q.pending, c)
	if q.regathering {
		// Tell the re-gather waiter the herd is still assembling.
		select {
		case q.grow <- struct{}{}:
		default:
		}
	}
	if !q.timerSet {
		q.timerSet = true
		time.AfterFunc(b.window, func() { b.flushPending(issuer, q) })
	}
	q.mu.Unlock()
	err := <-c.done
	c.item = validateItem{}
	batchCallPool.Put(c)
	return err
}

// takePending claims the gathered batch (marking it in flight) or
// returns nil when there is nothing to send. A coalesced departure
// keeps the queue hot. Caller holds q.mu.
func (b *batcher) takePending(q *issuerQueue) []*batchCall {
	batch := q.pending
	q.pending = nil
	q.timerSet = false
	if len(batch) > 0 {
		q.inflight++
	}
	if len(batch) >= 2 {
		q.hotUntil = time.Now().Add(hotFactor * b.window)
	}
	return batch
}

// flightDone retires one flight and launches whatever gathered behind it
// as the next one. On a hot queue the next flush is instead handed to a
// re-gather spinner: the retired flight's waiters are re-arriving RIGHT
// NOW, and taking the queue this instant would catch only the first few
// of them, fragmenting the herd into small waves that each pay a full
// round trip. Letting the queue settle first means the whole herd (and
// any interleaved waves) departs as one batch, so a steady-state storm
// cycles at ~one RTT per full herd.
func (b *batcher) flightDone(issuer string, q *issuerQueue) {
	q.mu.Lock()
	q.inflight--
	if q.hot() {
		if !q.regathering {
			// Drain any stale wakeup left from a previous regather (an
			// arrival that poked after the waiter read the channel) so
			// the new waiter only sees arrivals from now on.
			select {
			case <-q.grow:
			default:
			}
			q.regathering = true
			go b.regatherFlush(issuer, q)
		}
		q.mu.Unlock()
		return
	}
	batch := b.takePending(q)
	q.mu.Unlock()
	if batch == nil {
		return
	}
	go func() {
		b.dispatch(issuer, q, batch)
		putBatchSlice(batch)
		b.flightDone(issuer, q)
	}()
}

// regatherFlush waits for a just-delivered herd to re-arrive and
// launches it as one batch. The wait is event-driven: every arrival on
// a regathering queue pokes q.grow, and the waiter resets its settle
// timer on each poke, flushing once no arrival has landed for a settle
// interval (the herd has re-assembled) or at the hard deadline (a
// continuous arrival stream must still flush promptly). Timers firing
// late under load err in the safe direction — a later flush gathers a
// BIGGER batch, never a fragmented one — and the window timer armed by
// each arrival remains the backstop if the waiter quits on an empty
// queue.
func (b *batcher) regatherFlush(issuer string, q *issuerQueue) {
	settle, deadline := regatherSettle, regatherDeadline
	if b.window < deadline {
		deadline = b.window
	}
	if d := b.window / 4; d < settle {
		settle = d
	}
	settleT := time.NewTimer(settle)
	deadlineT := time.NewTimer(deadline)
	defer settleT.Stop()
	defer deadlineT.Stop()
wait:
	for {
		select {
		case <-q.grow:
			// Herd still assembling: restart the settle clock.
			if !settleT.Stop() {
				select {
				case <-settleT.C:
				default:
				}
			}
			settleT.Reset(settle)
		case <-settleT.C:
			break wait
		case <-deadlineT.C:
			break wait
		}
	}
	q.mu.Lock()
	q.regathering = false
	n := len(q.pending)
	q.mu.Unlock()
	if n == 0 {
		return // herd went elsewhere; arrival timers cover latecomers
	}
	b.flushPending(issuer, q)
}

// flushPending is the batch-window timer body: the gathered batch
// departs now as an overlapping flight instead of waiting further for
// the gating one.
func (b *batcher) flushPending(issuer string, q *issuerQueue) {
	q.mu.Lock()
	batch := b.takePending(q)
	q.mu.Unlock()
	if batch == nil {
		return
	}
	b.dispatch(issuer, q, batch)
	putBatchSlice(batch)
	b.flightDone(issuer, q)
}

// dispatch sends one gathered batch and delivers each item's verdict.
func (b *batcher) dispatch(issuer string, q *issuerQueue, batch []*batchCall) {
	b.batchSize.Observe(int64(len(batch)))
	q.mu.Lock()
	noBatch := q.noBatch || len(batch) == 1
	q.mu.Unlock()
	if !noBatch {
		if done := b.tryBatch(issuer, q, batch); done {
			return
		}
		// validate_batch unsupported there: fall through per item.
	}
	var wg sync.WaitGroup
	for _, c := range batch {
		wg.Add(1)
		go func(c *batchCall) {
			defer wg.Done()
			c.done <- b.single(issuer, q, c.item)
		}(c)
	}
	wg.Wait()
}

// tryBatch attempts one validate_batch call for the whole batch. It
// reports false (without delivering) only when the issuer does not
// support the method, in which case the caller falls back per item; any
// other outcome is delivered to every item.
func (b *batcher) tryBatch(issuer string, q *issuerQueue, batch []*batchCall) bool {
	body := getBatchBody()
	if body == nil {
		body = make([]byte, 0, 16+192*len(batch)) // ~wire size of a typical item, with slack
	}
	body = append(body, tagValidateBatchReq)
	body = binary.AppendUvarint(body, uint64(len(batch)))
	for _, c := range batch {
		body = appendBatchItem(body, &c.item)
	}
	b.batchesSent.Add(1)
	out, err := b.caller.Call(issuer, "validate_batch", body)
	// Call is synchronous and the transport copies the body into its own
	// frame before sending (retries happen inside Call), so the buffer is
	// dead here and can be recycled for the next herd.
	putBatchBody(body)
	if err != nil && isUnknownMethodError(err) {
		q.mu.Lock()
		q.noBatch = true
		q.mu.Unlock()
		return false // fallback singles do the per-item accounting
	}
	b.callbackValidations.Add(uint64(len(batch)))
	if err != nil {
		deliverAll(batch, fmt.Errorf("callback to %s: %w", issuer, err))
		return true
	}
	pr, _ := batchRespsPool.Get().([]validateResponse)
	resps, derr := decodeValidateBatchRespInto(pr, out)
	if derr != nil || len(resps) != len(batch) {
		if derr == nil {
			derr = fmt.Errorf("%w: %d verdicts for %d items", errWireBin, len(resps), len(batch))
		}
		deliverAll(batch, fmt.Errorf("decode validation response: %w", derr))
		return true
	}
	b.batchedValidations.Add(uint64(len(batch)))
	for i, c := range batch {
		c.done <- verdictErr(resps[i])
	}
	clear(resps)
	batchRespsPool.Put(resps[:0]) //nolint:staticcheck // slice reuse, header copy is fine
	return true
}

// single performs one per-item callback call, preferring the binary body
// and downgrading stickily to JSON for issuers that cannot decode it.
func (b *batcher) single(issuer string, q *issuerQueue, it validateItem) error {
	q.mu.Lock()
	useBinary := !q.noBinary
	q.mu.Unlock()

	body := it.encodeBinary()
	if !useBinary {
		var err error
		if body, err = it.encodeJSON(); err != nil {
			return fmt.Errorf("encode validation request: %w", err)
		}
	}
	b.callbackValidations.Add(1)
	out, err := b.caller.Call(issuer, it.method(), body)
	if err != nil && useBinary && isDecodeRemoteError(err) {
		// An old issuer ran the handler but could not parse the binary
		// body. Downgrade this issuer to JSON and retry once (validation
		// is idempotent).
		q.mu.Lock()
		q.noBinary = true
		q.mu.Unlock()
		jsonBody, jerr := it.encodeJSON()
		if jerr != nil {
			return fmt.Errorf("encode validation request: %w", jerr)
		}
		b.callbackValidations.Add(1)
		out, err = b.caller.Call(issuer, it.method(), jsonBody)
	}
	if err != nil {
		return fmt.Errorf("callback to %s: %w", issuer, err)
	}
	resp, err := decodeAnyValidateResp(out)
	if err != nil {
		return fmt.Errorf("decode validation response: %w", err)
	}
	return verdictErr(resp)
}

// decodeAnyValidateResp sniffs the response encoding: new issuers answer
// binary requests with the tagged binary verdict, old ones with JSON.
func decodeAnyValidateResp(out []byte) (validateResponse, error) {
	if isBinaryBody(out) {
		return decodeValidateRespBinary(out)
	}
	var resp validateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return validateResponse{}, err
	}
	return resp, nil
}

// verdictErr converts an issuer verdict into the validation result,
// preserving the authoritative-deny classification (ErrRevoked).
func verdictErr(resp validateResponse) error {
	if resp.Valid {
		return nil
	}
	return fmt.Errorf("%w: issuer says %s", ErrRevoked, resp.Reason)
}

func deliverAll(batch []*batchCall, err error) {
	for _, c := range batch {
		c.done <- err
	}
}

// isUnknownMethodError matches the remote "unknown method" rejection an
// old issuer gives validate_batch. RemoteError proves the handler ran,
// so the downgrade is based on an authoritative answer, never a
// transport failure.
func isUnknownMethodError(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "unknown method")
}

// isDecodeRemoteError matches the remote decode failure an old issuer
// gives a binary request body.
func isDecodeRemoteError(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, "decode:")
}
