package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func withBatchWindow(d time.Duration) func(*Config) {
	return func(c *Config) { c.BatchWindow = d }
}

// slowValidateCaller delays single validate calls so concurrent
// validations pile up behind the gating flight; validate_batch departures
// pass through undelayed.
func (w *world) slowValidateCaller(delay time.Duration) callerFunc {
	return func(service, method string, body []byte) ([]byte, error) {
		if method == "validate_rmc" || method == "validate_appt" {
			time.Sleep(delay)
		}
		return w.bus.Call(service, method, body)
	}
}

// TestBatchCoalescesFanIn drives 8 concurrent uncached validations for
// the same issuer: the first two take the flight slots as single calls,
// the rest gather behind them and leave together as one validate_batch.
func TestBatchCoalescesFanIn(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`,
		withCaller(w.slowValidateCaller(250*time.Millisecond)),
		withBatchWindow(time.Second))

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	var wg sync.WaitGroup
	invoke := func() {
		defer wg.Done()
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
			t.Errorf("invoke: %v", err)
		}
	}
	wg.Add(1)
	go invoke() // gating single flight, held 250ms by the slow caller
	time.Sleep(50 * time.Millisecond)
	for g := 0; g < 7; g++ {
		wg.Add(1)
		go invoke() // pile up behind the gate
	}
	wg.Wait()

	st := guard.Stats()
	if st.BatchesSent != 1 {
		t.Errorf("BatchesSent = %d, want 1", st.BatchesSent)
	}
	if st.BatchedValidations != 6 {
		t.Errorf("BatchedValidations = %d, want 6 (8 minus the two flight-slot singles)", st.BatchedValidations)
	}
	if st.CallbackValidations != 8 {
		t.Errorf("CallbackValidations = %d, want 8", st.CallbackValidations)
	}
}

// TestBatchLoneCallDepartsImmediately: with no concurrent traffic a
// validation must leave as a single binary-coded call — no batch, no
// added window wait.
func TestBatchLoneCallDepartsImmediately(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")

	var mu sync.Mutex
	var methods []string
	var binaries []bool
	spy := callerFunc(func(service, method string, body []byte) ([]byte, error) {
		mu.Lock()
		methods = append(methods, method)
		binaries = append(binaries, isBinaryBody(body))
		mu.Unlock()
		return w.bus.Call(service, method, body)
	})
	guard := w.service("guard", `auth enter <- login.user.`, withCaller(spy),
		withBatchWindow(time.Hour)) // a huge window must not delay a lone call

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	start := time.Now()
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("lone call took %v; batching must not delay it", elapsed)
	}
	st := guard.Stats()
	if st.BatchesSent != 0 || st.BatchedValidations != 0 {
		t.Errorf("lone call was batched: %+v", st)
	}
	if st.CallbackValidations != 1 {
		t.Errorf("CallbackValidations = %d, want 1", st.CallbackValidations)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(methods) != 1 || methods[0] != "validate_rmc" {
		t.Fatalf("methods = %v, want [validate_rmc]", methods)
	}
	if !binaries[0] {
		t.Error("lone call did not use the binary wire body")
	}
}

// legacyHandler simulates a pre-upgrade issuer: validate_batch is an
// unknown method and binary request bodies fail to decode; JSON bodies
// are delegated to the real handler.
func legacyHandler(h func(string, []byte) ([]byte, error)) func(string, []byte) ([]byte, error) {
	return func(method string, body []byte) ([]byte, error) {
		switch method {
		case "validate_batch":
			return nil, fmt.Errorf("unknown method %q", method)
		case "validate_rmc", "validate_appt":
			if isBinaryBody(body) {
				return nil, fmt.Errorf("decode: invalid character %q looking for beginning of value", body[0])
			}
		}
		return h(method, body)
	}
}

// TestBatchFallsBackToJSONForLegacyIssuer: an issuer that cannot decode
// binary bodies triggers one JSON retry and a sticky per-issuer
// downgrade; validation still succeeds both times.
func TestBatchFallsBackToJSONForLegacyIssuer(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	w.bus.Register("login", legacyHandler(login.Handler()))
	guard := w.service("guard", `auth enter <- login.user.`)

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	// First use: binary attempt is refused ("decode:"), JSON retry lands.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
		t.Fatalf("invoke against legacy issuer: %v", err)
	}
	if got := guard.Stats().CallbackValidations; got != 2 {
		t.Errorf("CallbackValidations = %d, want 2 (binary attempt + JSON retry)", got)
	}
	// Second use: the downgrade is sticky — straight to JSON, one call.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
		t.Fatalf("second invoke: %v", err)
	}
	if got := guard.Stats().CallbackValidations; got != 3 {
		t.Errorf("CallbackValidations = %d, want 3 (sticky JSON downgrade)", got)
	}
}

// TestBatchFallsBackPerItemForLegacyIssuer: a coalesced batch sent to an
// issuer without validate_batch falls back to per-item calls; every
// validation still succeeds and the noBatch downgrade sticks.
func TestBatchFallsBackPerItemForLegacyIssuer(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	slow := w.slowValidateCaller(250 * time.Millisecond)
	legacy := legacyHandler(login.Handler())
	w.bus.Register("login", legacy)
	guard := w.service("guard", `auth enter <- login.user.`,
		withCaller(slow), withBatchWindow(time.Second))

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	var wg sync.WaitGroup
	invoke := func() {
		defer wg.Done()
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
			t.Errorf("invoke: %v", err)
		}
	}
	wg.Add(1)
	go invoke()
	time.Sleep(50 * time.Millisecond)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go invoke()
	}
	wg.Wait()

	st := guard.Stats()
	if st.BatchesSent != 1 {
		t.Errorf("BatchesSent = %d, want 1 (the rejected attempt)", st.BatchesSent)
	}
	if st.BatchedValidations != 0 {
		t.Errorf("BatchedValidations = %d, want 0 (batch was rejected)", st.BatchedValidations)
	}

	// The noBatch downgrade is sticky: a second fan-in round coalesces
	// again but sends no further validate_batch attempts.
	wg.Add(1)
	go invoke()
	time.Sleep(50 * time.Millisecond)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go invoke()
	}
	wg.Wait()
	if st := guard.Stats(); st.BatchesSent != 1 {
		t.Errorf("BatchesSent = %d after second round, want still 1", st.BatchesSent)
	}
}

// TestBatchPreservesVerdictClassification: inside one coalesced batch a
// revoked certificate is refused with the authoritative ErrInvalid-
// Credential while its valid companion is accepted.
func TestBatchPreservesVerdictClassification(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`,
		withCaller(w.slowValidateCaller(250*time.Millisecond)),
		withBatchWindow(time.Second))

	mint := func() *Session {
		sess := w.session()
		rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
		if err != nil {
			t.Fatal(err)
		}
		sess.AddRMC(rmc)
		return sess
	}
	gate1, gate2, good, bad := mint(), mint(), mint(), mint()
	login.Deactivate(bad.Credentials().RMCs[0].Ref.Serial, "account closed")
	w.broker.Quiesce()

	var wg sync.WaitGroup
	for _, gate := range []*Session{gate1, gate2} { // occupy both flight slots
		wg.Add(1)
		go func(gate *Session) {
			defer wg.Done()
			if _, err := guard.Invoke(gate.PrincipalID(), "enter", nil, gate.Credentials()); err != nil {
				t.Errorf("gate invoke: %v", err)
			}
		}(gate)
	}
	time.Sleep(50 * time.Millisecond)

	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, goodErr = guard.Invoke(good.PrincipalID(), "enter", nil, good.Credentials())
	}()
	go func() {
		defer wg.Done()
		_, badErr = guard.Invoke(bad.PrincipalID(), "enter", nil, bad.Credentials())
	}()
	wg.Wait()

	if goodErr != nil {
		t.Errorf("valid certificate refused: %v", goodErr)
	}
	if !errors.Is(badErr, ErrInvalidCredential) {
		t.Errorf("revoked certificate in batch: err = %v, want ErrInvalidCredential", badErr)
	}
	if st := guard.Stats(); st.BatchedValidations != 2 {
		t.Errorf("BatchedValidations = %d, want 2 (verdicts rode one batch)", st.BatchedValidations)
	}
}

// TestBatchDisabledByNegativeWindow: BatchWindow < 0 turns coalescing off
// entirely — fan-in traffic departs as concurrent singles.
func TestBatchDisabledByNegativeWindow(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`,
		withCaller(w.slowValidateCaller(30*time.Millisecond)),
		withBatchWindow(-1))

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	st := guard.Stats()
	if st.BatchesSent != 0 || st.BatchedValidations != 0 {
		t.Errorf("batching ran while disabled: %+v", st)
	}
	if st.CallbackValidations != 6 {
		t.Errorf("CallbackValidations = %d, want 6", st.CallbackValidations)
	}
}

// TestRegatherTimerSpinnerRace hammers the seam between the two flush
// paths — the per-arrival window timer (flushPending) and the hot-queue
// re-gather spinner (regatherFlush) — with a window small enough that
// both routinely try to claim the same herd. Whichever side wins
// takePending, every do() must receive exactly one verdict: a lost
// verdict parks its caller forever, and a double delivery plants a stale
// verdict in a pooled call that a later caller would receive as its own.
func TestRegatherTimerSpinnerRace(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}

	// Jitter the transport so flight returns interleave unpredictably
	// with timer firings and spinner polls.
	jitter := callerFunc(func(service, method string, body []byte) ([]byte, error) {
		time.Sleep(time.Duration(rand.Intn(150)) * time.Microsecond)
		return w.bus.Call(service, method, body)
	})
	b := newCallerBatcher(jitter, 100*time.Microsecond)

	const rounds, herd = 40, 12
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make([]error, herd)
		for i := 0; i < herd; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = b.do("login", rmcItem(rmc, sess.PrincipalID()))
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: a verdict was lost — do() never returned", r)
		}
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d item %d: %v", r, i, err)
			}
		}
	}
	if b.batchesSent.Load() == 0 {
		t.Fatal("no batch ever departed; the race under test was not exercised")
	}

	// A double-delivered verdict survives in a pooled call's buffered
	// channel and surfaces as a stale answer to a later caller. Flip the
	// authoritative verdict: every subsequent validation must see the
	// revocation, never a leftover "valid".
	login.Deactivate(rmc.Ref.Serial, "logout")
	for i := 0; i < 2*herd; i++ {
		if err := b.do("login", rmcItem(rmc, sess.PrincipalID())); !errors.Is(err, ErrRevoked) {
			t.Fatalf("post-revocation verdict %d = %v, want ErrRevoked (stale pooled verdict?)", i, err)
		}
	}
}
