package core

import (
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sign"
)

// Errors returned by the session-proof machinery.
var (
	// ErrProofRequired is returned when a sensitive method is invoked
	// without a sufficiently fresh challenge-response proof of the
	// session key (Sect. 4.1: "in practice the challenge might be made
	// ... at selected times such as before sensitive data is sent").
	ErrProofRequired = errors.New("fresh session-key proof required")
	// ErrBadPrincipalKey is returned when the principal id is not a
	// valid hex-encoded Ed25519 public key, so no challenge can be
	// issued against it.
	ErrBadPrincipalKey = errors.New("principal id is not a session public key")
)

// sessionProofs tracks, per service, when each principal last proved
// possession of its session private key. The sensitive-method table is a
// copy-on-write snapshot so the Invoke hot path checks it without locking;
// the proof times only need the mutex once a method is actually sensitive.
type sessionProofs struct {
	mu     sync.Mutex
	proven map[string]time.Time
	// sensitive holds a map[string]time.Duration snapshot: method name
	// -> maximum allowed proof age.
	sensitive atomic.Value
}

func newSessionProofs() *sessionProofs {
	p := &sessionProofs{proven: make(map[string]time.Time)}
	p.sensitive.Store(map[string]time.Duration{})
	return p
}

func (s *Service) proofs() *sessionProofs { return s.proofState }

// MarkSensitive requires that invocations of method carry a
// challenge-response proof no older than maxAge. Use for methods that
// return sensitive data.
func (s *Service) MarkSensitive(method string, maxAge time.Duration) {
	p := s.proofs()
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.sensitive.Load().(map[string]time.Duration)
	next := make(map[string]time.Duration, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[method] = maxAge
	p.sensitive.Store(next)
}

// IssueChallenge starts an ISO/9798 exchange with a session principal: the
// principal id is the hex session public key (Sect. 4.1), so the service
// can challenge it directly.
func (s *Service) IssueChallenge(principal string) (sign.Challenge, error) {
	keyBytes, err := hex.DecodeString(principal)
	if err != nil || len(keyBytes) != ed25519.PublicKeySize {
		return sign.Challenge{}, fmt.Errorf("%w: %.16s...", ErrBadPrincipalKey, principal)
	}
	return s.chal.Issue(ed25519.PublicKey(keyBytes))
}

// ProveSession checks a challenge response and, on success, records the
// proof instant for the principal.
func (s *Service) ProveSession(principal string, resp sign.Response) error {
	if err := s.chal.Check(resp); err != nil {
		return wrap(s.name, err)
	}
	p := s.proofs()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.proven[principal] = s.clk.Now()
	return nil
}

// proofFreshEnough reports whether the method's proof requirement (if
// any) is met for the principal at the current instant. Non-sensitive
// methods (the common case) are decided from the lock-free snapshot.
func (s *Service) proofFreshEnough(principal, method string) error {
	p := s.proofs()
	maxAge, sensitive := p.sensitive.Load().(map[string]time.Duration)[method]
	if !sensitive {
		return nil
	}
	p.mu.Lock()
	at, proven := p.proven[principal]
	p.mu.Unlock()
	if !proven || s.clk.Now().Sub(at) > maxAge {
		return fmt.Errorf("%w: method %s", ErrProofRequired, method)
	}
	return nil
}
