package core

import (
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sign"
)

// Errors returned by the session-proof machinery.
var (
	// ErrProofRequired is returned when a sensitive method is invoked
	// without a sufficiently fresh challenge-response proof of the
	// session key (Sect. 4.1: "in practice the challenge might be made
	// ... at selected times such as before sensitive data is sent").
	ErrProofRequired = errors.New("fresh session-key proof required")
	// ErrBadPrincipalKey is returned when the principal id is not a
	// valid hex-encoded Ed25519 public key, so no challenge can be
	// issued against it.
	ErrBadPrincipalKey = errors.New("principal id is not a session public key")
)

// sessionProofs tracks, per service, when each principal last proved
// possession of its session private key.
type sessionProofs struct {
	mu     sync.Mutex
	proven map[string]time.Time
	// sensitive maps method name -> maximum allowed proof age.
	sensitive map[string]time.Duration
}

func (s *Service) proofs() *sessionProofs {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proofState == nil {
		s.proofState = &sessionProofs{
			proven:    make(map[string]time.Time),
			sensitive: make(map[string]time.Duration),
		}
	}
	return s.proofState
}

// MarkSensitive requires that invocations of method carry a
// challenge-response proof no older than maxAge. Use for methods that
// return sensitive data.
func (s *Service) MarkSensitive(method string, maxAge time.Duration) {
	p := s.proofs()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sensitive[method] = maxAge
}

// IssueChallenge starts an ISO/9798 exchange with a session principal: the
// principal id is the hex session public key (Sect. 4.1), so the service
// can challenge it directly.
func (s *Service) IssueChallenge(principal string) (sign.Challenge, error) {
	keyBytes, err := hex.DecodeString(principal)
	if err != nil || len(keyBytes) != ed25519.PublicKeySize {
		return sign.Challenge{}, fmt.Errorf("%w: %.16s...", ErrBadPrincipalKey, principal)
	}
	return s.chal.Issue(ed25519.PublicKey(keyBytes))
}

// ProveSession checks a challenge response and, on success, records the
// proof instant for the principal.
func (s *Service) ProveSession(principal string, resp sign.Response) error {
	if err := s.chal.Check(resp); err != nil {
		return wrap(s.name, err)
	}
	p := s.proofs()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.proven[principal] = s.clk.Now()
	return nil
}

// proofFreshEnough reports whether the method's proof requirement (if
// any) is met for the principal at the current instant.
func (s *Service) proofFreshEnough(principal, method string) error {
	p := s.proofs()
	p.mu.Lock()
	maxAge, sensitive := p.sensitive[method]
	at, proven := p.proven[principal]
	p.mu.Unlock()
	if !sensitive {
		return nil
	}
	if !proven || s.clk.Now().Sub(at) > maxAge {
		return fmt.Errorf("%w: method %s", ErrProofRequired, method)
	}
	return nil
}
