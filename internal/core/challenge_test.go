package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/sign"
)

// sensitiveWorld builds a service with one ordinary and one sensitive
// method, plus an authenticated session.
func sensitiveWorld(t *testing.T) (*world, *Service, *Session) {
	t.Helper()
	w := newWorld(t)
	svc := w.service("vault", `
vault.user <- env ok.
auth read_public <- vault.user.
auth read_secret <- vault.user.
`)
	alwaysTrue(svc, "ok")
	svc.MarkSensitive("read_secret", time.Minute)
	sess := w.session()
	rmc, err := svc.Activate(sess.PrincipalID(), role("vault", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	return w, svc, sess
}

func TestSensitiveMethodRequiresProof(t *testing.T) {
	_, svc, sess := sensitiveWorld(t)
	// The ordinary method needs no proof.
	if _, err := svc.Invoke(sess.PrincipalID(), "read_public", nil, sess.Credentials()); err != nil {
		t.Fatalf("read_public: %v", err)
	}
	// The sensitive method refuses without a proof.
	if _, err := svc.Invoke(sess.PrincipalID(), "read_secret", nil, sess.Credentials()); !errors.Is(err, ErrProofRequired) {
		t.Fatalf("read_secret without proof: %v", err)
	}
}

func TestSensitiveMethodAfterProof(t *testing.T) {
	_, svc, sess := sensitiveWorld(t)
	ch, err := svc.IssueChallenge(sess.PrincipalID())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ProveSession(sess.PrincipalID(), sess.Key().Respond(ch)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(sess.PrincipalID(), "read_secret", nil, sess.Credentials()); err != nil {
		t.Fatalf("read_secret after proof: %v", err)
	}
}

func TestProofGoesStale(t *testing.T) {
	w, svc, sess := sensitiveWorld(t)
	ch, err := svc.IssueChallenge(sess.PrincipalID())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ProveSession(sess.PrincipalID(), sess.Key().Respond(ch)); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(2 * time.Minute)
	if _, err := svc.Invoke(sess.PrincipalID(), "read_secret", nil, sess.Credentials()); !errors.Is(err, ErrProofRequired) {
		t.Errorf("stale proof accepted: %v", err)
	}
}

func TestProveSessionWrongKeyRejected(t *testing.T) {
	w, svc, sess := sensitiveWorld(t)
	other := w.session()
	ch, err := svc.IssueChallenge(sess.PrincipalID())
	if err != nil {
		t.Fatal(err)
	}
	// Another session's key answers: must fail and leave no proof.
	if err := svc.ProveSession(sess.PrincipalID(), other.Key().Respond(ch)); err == nil {
		t.Fatal("wrong-key response accepted")
	}
	if _, err := svc.Invoke(sess.PrincipalID(), "read_secret", nil, sess.Credentials()); !errors.Is(err, ErrProofRequired) {
		t.Errorf("failed proof still unlocked the method: %v", err)
	}
}

func TestIssueChallengeBadPrincipal(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `auth m <- env ok.`)
	if _, err := svc.IssueChallenge("not-hex-at-all!"); !errors.Is(err, ErrBadPrincipalKey) {
		t.Errorf("err = %v", err)
	}
	if _, err := svc.IssueChallenge("abcd"); !errors.Is(err, ErrBadPrincipalKey) {
		t.Errorf("short key err = %v", err)
	}
}

func TestProveSessionUnknownNonce(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `auth m <- env ok.`)
	var r sign.Response
	if err := svc.ProveSession("p", r); err == nil {
		t.Error("unknown nonce accepted")
	}
}

func TestEmitHeartbeatsAndFailSafe(t *testing.T) {
	// A consumer guards a cached foreign certificate with the heartbeat
	// monitor; when the issuer goes silent, the synthetic revocation
	// clears the cache and deactivates dependent roles.
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `
guard.inside <- login.user keep [1].
auth enter <- login.user.
`, withCache())
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	insideRMC, err := guard.Activate(sess.PrincipalID(), role("guard", "inside"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	monitor := event.NewHeartbeatMonitor(w.broker, w.clk, 10*time.Second)
	defer monitor.Close()
	if err := WatchLiveness(monitor, rmc.Ref); err != nil {
		t.Fatal(err)
	}

	// While the issuer emits heartbeats, everything stays live.
	for i := 0; i < 3; i++ {
		w.clk.Advance(5 * time.Second)
		if n := login.EmitHeartbeats(); n != 1 {
			t.Fatalf("EmitHeartbeats = %d", n)
		}
		w.broker.Quiesce()
		if dead := monitor.Sweep(); len(dead) != 0 {
			t.Fatalf("live issuer declared dead: %v", dead)
		}
	}
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatalf("invoke while healthy: %v", err)
	}

	// The issuer goes silent (partition/crash): after the timeout the
	// monitor fails safe.
	w.clk.Advance(30 * time.Second)
	if dead := monitor.Sweep(); len(dead) != 1 {
		t.Fatalf("Sweep = %v", dead)
	}
	w.broker.Quiesce()
	if valid, _ := guard.CRStatus(insideRMC.Ref.Serial); valid {
		t.Error("dependent role survived issuer silence")
	}
	// The cached validation is gone too: the next use must call back,
	// which still succeeds because the issuer's CR is actually valid —
	// fail-safe means re-check, not permanent denial.
	before := w.bus.Calls()
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatalf("post-silence invoke: %v", err)
	}
	if w.bus.Calls() == before {
		t.Error("cache survived the synthetic revocation; no callback issued")
	}
}

// TestDynamicSeparationOfDuty shows the Simon-Zurko-style constraint the
// paper cites (ref [16]) expressed with existing OASIS machinery: an
// environmental predicate over the service's own active roles refuses the
// auditor role to anyone currently active as payer, and vice versa.
func TestDynamicSeparationOfDuty(t *testing.T) {
	w := newWorld(t)
	svc := w.service("finance", `
finance.payer(U) <- env staff(U), !env holds_role(U, auditor).
finance.auditor(U) <- env staff(U), !env holds_role(U, payer).
`)
	alwaysTrue(svc, "staff")
	// holds_role(U, R) consults the live session state.
	svc.Env().Register("holds_role", func(args []names.Term, s names.Substitution) []names.Substitution {
		if len(args) != 2 {
			return nil
		}
		u, r := s.Apply(args[0]), s.Apply(args[1])
		if !u.IsGround() || !r.IsGround() {
			return nil
		}
		// The principal id doubles as the user atom in this fixture.
		for _, active := range svc.ActiveRoles(u.Sym) {
			if active.Name.Name == r.Sym {
				return []names.Substitution{s.Clone()}
			}
		}
		return nil
	})

	const alice = "alice"
	payerRMC, err := svc.Activate(alice, role("finance", "payer", names.Atom(alice)), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	// While active as payer, alice cannot become auditor.
	if _, err := svc.Activate(alice, role("finance", "auditor", names.Atom(alice)), Presented{}); !errors.Is(err, ErrActivationDenied) {
		t.Fatalf("separation of duty violated: %v", err)
	}
	// After deactivating payer, auditor is permitted.
	svc.Deactivate(payerRMC.Ref.Serial, "done paying")
	w.broker.Quiesce()
	if _, err := svc.Activate(alice, role("finance", "auditor", names.Atom(alice)), Presented{}); err != nil {
		t.Fatalf("auditor refused after payer deactivated: %v", err)
	}
	// And now payer is refused.
	if _, err := svc.Activate(alice, role("finance", "payer", names.Atom(alice)), Presented{}); !errors.Is(err, ErrActivationDenied) {
		t.Fatalf("reverse separation violated: %v", err)
	}
}

func TestEmitHeartbeatsSkipsRevoked(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	s1 := w.session()
	s2 := w.session()
	rmc1, err := login.Activate(s1.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := login.Activate(s2.PrincipalID(), role("login", "user"), Presented{}); err != nil {
		t.Fatal(err)
	}
	login.Deactivate(rmc1.Ref.Serial, "logout")
	if n := login.EmitHeartbeats(); n != 1 {
		t.Errorf("EmitHeartbeats = %d, want 1 (revoked CR excluded)", n)
	}
}
