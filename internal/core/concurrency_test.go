package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/store"
)

// TestConcurrentActivationsAndRevocations hammers a two-service dependency
// under concurrent sessions, logouts and environmental churn; run with
// -race. At quiescence, no dependent role may outlive its prerequisite.
func TestConcurrentActivationsAndRevocations(t *testing.T) {
	w := newWorld(t)
	db := store.New()
	login := w.service("login", `login.user(U) <- env account(U) keep [1].`)
	login.Env().RegisterStore("account", db, "account")
	login.WatchStore(db, map[string]string{"account": "account"})
	files := w.service("files", `files.reader(U) <- login.user(U) keep [1].`)

	const users = 16
	for u := 0; u < users; u++ {
		if _, err := db.Assert("account", names.Atom(fmt.Sprintf("user%d", u))); err != nil {
			t.Fatal(err)
		}
	}

	type issued struct {
		loginSerial uint64
		fileSerial  uint64
	}
	results := make([]issued, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			sess := w.session()
			user := names.Atom(fmt.Sprintf("user%d", u))
			rmc, err := login.Activate(sess.PrincipalID(),
				role("login", "user", user), Presented{})
			if err != nil {
				t.Errorf("user %d login: %v", u, err)
				return
			}
			sess.AddRMC(rmc)
			readerRMC, err := files.Activate(sess.PrincipalID(),
				role("files", "reader", names.Var("U")), sess.Credentials())
			if err != nil {
				t.Errorf("user %d reader: %v", u, err)
				return
			}
			results[u] = issued{rmc.Ref.Serial, readerRMC.Ref.Serial}
			// Half the users log out; a quarter lose their accounts.
			switch u % 4 {
			case 0, 1:
				login.Deactivate(rmc.Ref.Serial, "logout")
			case 2:
				if _, err := db.Retract("account", user); err != nil {
					t.Error(err)
				}
			}
		}(u)
	}
	wg.Wait()
	w.broker.Quiesce()

	for u, r := range results {
		if r.loginSerial == 0 {
			continue // activation failed and was reported
		}
		loginValid, _ := login.CRStatus(r.loginSerial)
		fileValid, _ := files.CRStatus(r.fileSerial)
		if u%4 == 3 {
			if !loginValid || !fileValid {
				t.Errorf("user %d (untouched) lost roles: login=%v file=%v",
					u, loginValid, fileValid)
			}
			continue
		}
		if loginValid {
			t.Errorf("user %d login role survived revocation", u)
		}
		if fileValid {
			t.Errorf("user %d dependent role survived prerequisite revocation", u)
		}
	}
}

// TestConcurrentInvokeWithCache exercises the ECR cache under parallel
// invocations racing a revocation.
func TestConcurrentInvokeWithCache(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`, withCache())
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Errors are expected once the revocation lands.
				guard.Invoke(sess.PrincipalID(), "enter", nil, creds) //nolint:errcheck
			}
		}()
	}
	login.Deactivate(rmc.Ref.Serial, "logout")
	wg.Wait()
	w.broker.Quiesce()

	// After quiescence, the certificate must be refused.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err == nil {
		t.Error("revoked certificate accepted after quiescence")
	}
}

// TestConcurrentAppointments races appointment issue/revoke cycles.
func TestConcurrentAppointments(t *testing.T) {
	_, admin, hospital, adminSess := adminWorld(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				holder := fmt.Sprintf("holder-%d-%d", g, i)
				appt, err := admin.Appoint(adminSess.PrincipalID(), AppointmentRequest{
					Kind:   "employed_as_doctor",
					Holder: holder,
					Params: []names.Term{names.Atom("st_marys")},
				}, adminSess.Credentials())
				if err != nil {
					t.Errorf("appoint: %v", err)
					return
				}
				if _, err := hospital.Activate(holder, role("hospital", "doctor"),
					Presented{Appointments: []cert.AppointmentCertificate{appt}}); err != nil {
					t.Errorf("activate: %v", err)
					return
				}
				if !admin.RevokeAppointment(appt.Serial, "cycle") {
					t.Errorf("revoke %d failed", appt.Serial)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentEndSessionCountsEachRecordOnce races two EndSession calls
// (and a direct revocation of one record) per principal: deactivation is
// idempotent, so every credential record must be counted exactly once
// across all concurrent enders.
func TestConcurrentEndSessionCountsEachRecordOnce(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")

	const principals = 8
	const rolesEach = 5
	firstSerial := make([]uint64, principals)
	for p := 0; p < principals; p++ {
		for r := 0; r < rolesEach; r++ {
			rmc, err := login.Activate(fmt.Sprintf("p%d", p), role("login", "user"), Presented{})
			if err != nil {
				t.Fatal(err)
			}
			if r == 0 {
				firstSerial[p] = rmc.Ref.Serial
			}
		}
	}

	counts := make([]int64, principals)
	var wg sync.WaitGroup
	for p := 0; p < principals; p++ {
		principal := fmt.Sprintf("p%d", p)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				atomic.AddInt64(&counts[p], int64(login.EndSession(principal)))
			}(p)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			login.Deactivate(firstSerial[p], "raced revocation")
		}(p)
	}
	wg.Wait()
	w.broker.Quiesce()

	for p := 0; p < principals; p++ {
		got := atomic.LoadInt64(&counts[p])
		// The direct revocation may or may not win the race for one
		// record; every other record must be counted exactly once.
		if got < rolesEach-1 || got > rolesEach {
			t.Errorf("principal %d: EndSession counted %d records, want %d or %d",
				p, got, rolesEach-1, rolesEach)
		}
		if roles := login.ActiveRoles(fmt.Sprintf("p%d", p)); len(roles) != 0 {
			t.Errorf("principal %d still has %d active roles after concurrent teardown", p, len(roles))
		}
		if again := login.EndSession(fmt.Sprintf("p%d", p)); again != 0 {
			t.Errorf("principal %d: repeated EndSession deactivated %d records, want 0", p, again)
		}
	}
}
