// Package core implements the OASIS engine: services that define
// parametrised roles, credential-based role activation within sessions,
// credential records with callback validation, membership-rule monitoring
// with immediate event-driven revocation, appointment, and access-controlled
// method invocation (Sects. 2-4 of the paper).
//
// A Service corresponds to Fig. 2: clients present credentials to activate
// roles (paths 1-2) and then present the returned role membership
// certificates to invoke methods (paths 3-4). Credential records (CRs)
// represent the validity of issued RMCs; event channels rooted at CRs
// implement the active security environment of Figs. 1 and 5 — when any
// membership condition of an active role becomes false the role is
// deactivated immediately and its dependent subtree collapses.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cert"
)

// Errors returned by the engine.
var (
	// ErrActivationDenied is returned when no activation rule is
	// satisfied by the presented credentials.
	ErrActivationDenied = errors.New("role activation denied")
	// ErrInvocationDenied is returned when no authorization rule admits
	// the invocation.
	ErrInvocationDenied = errors.New("service invocation denied")
	// ErrInvalidCredential is returned when a presented certificate
	// fails validation (bad signature, revoked, expired or unknown).
	ErrInvalidCredential = errors.New("invalid credential")
	// ErrUnknownRole is returned when the requested role is not defined
	// by this service's policy.
	ErrUnknownRole = errors.New("role not defined by this service")
	// ErrUnknownMethod is returned when an invocation names a method
	// with no authorization rule.
	ErrUnknownMethod = errors.New("method not defined by this service")
	// ErrUnknownCR is returned by validation callbacks for serials that
	// do not exist.
	ErrUnknownCR = errors.New("unknown credential record")
	// ErrRevoked is returned when a certificate's credential record has
	// been invalidated.
	ErrRevoked = errors.New("credential revoked")
	// ErrAppointmentDenied is returned when the presented credentials do
	// not satisfy the appointer rule for the requested appointment kind.
	ErrAppointmentDenied = errors.New("appointment denied")
	// ErrReadOnly is returned by the wire handler of a read-only service
	// (a follower replica) for the mutating methods; callers should
	// retry against the leader.
	ErrReadOnly = errors.New("service is a read-only replica")
)

// TopicCR is the event channel carrying revocation for one credential
// record, identified by its CRR (Fig. 5).
func TopicCR(ref cert.CRR) string { return "cr/" + ref.String() }

// TopicAppt is the event channel carrying revocation for one appointment
// certificate record.
func TopicAppt(key string) string { return "appt/" + key }

// TopicEnv is the event channel on which a service announces changes to one
// of its environmental predicates, triggering membership re-checks.
func TopicEnv(service, predicate string) string {
	return "env/" + service + "/" + predicate
}

// TopicHeartbeat carries issuer liveness for cached validations.
func TopicHeartbeat(service string) string { return "hb/" + service }

// wrap adds service context to engine errors.
func wrap(service string, err error) error {
	return fmt.Errorf("service %s: %w", service, err)
}
