package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/event"
)

// EdgeCache wraps a RemoteValidator with an event-invalidated verdict
// cache for edge tiers (oasisgw, oasisd's embedded gateway). It closes
// the loop PR 7 deliberately left open: an edge used to answer every
// /validate from the issuer because caching would re-open the revocation
// window — now the edge subscribes to the backend's revocation events
// and only then caches, invalidated by event exactly like a service's
// own ECR cache (same subscribe-before-fill generation gate, same
// second-chance bounded eviction).
//
// Safety argument (DESIGN.md §14):
//
//   - Subscribe-before-fill: the cache entry is created before the
//     issuer callback departs, and every revocation event for the key
//     bumps the entry's generation. A positive verdict is committed only
//     if the generation is unchanged since before the callback, so an
//     event delivered at any point around the fill can never leave a
//     stale positive. An event arriving before the entry existed is
//     covered by ordering at the issuer: the revocation was committed
//     before the event was published, so the callback's authoritative
//     verdict already reflects it.
//   - Fail-closed lifecycle: hits are served only while the event feed
//     is live (Attach ... Detach). Detach — and every reconnect's Attach
//     — flushes the whole cache before any new fill commits (the flush
//     bumps the cache epoch first; a fill that snapshotted the previous
//     epoch refuses to commit), so events missed while the feed was down
//     can never leave a stale entry. With the feed down every validation
//     bypasses the cache straight to the issuer — PR 7 behavior, paid as
//     wire latency, never as staleness. Losses while the feed is up are
//     in-band: the server-side feed precedes the first event after any
//     drop with a KindGap marker, which HandleEvent turns into the same
//     full flush — so server-side backpressure can't silently widen the
//     revocation window either.
//   - Presentation fingerprint: cache keys are revocation topics (one
//     per credential record) for O(1) event invalidation, but the edge
//     never verifies signatures itself — so each entry stores a
//     fingerprint of the exact presentation (principal binding + the
//     certificate's canonical binary encoding) and a hit requires a
//     byte-equal match. A forged or re-bound presentation under a cached
//     key misses and goes to the issuer.
//   - Appointment expiry is checked locally before the cache is
//     consulted (expiry fires no revocation event; PR 6 fixed the same
//     hazard in the core cache), surfacing as an ErrRevoked wrap like an
//     issuer refusal.
//
// Negative verdicts are never cached: a revoked credential stays a
// per-presentation issuer refusal (cheap — it rides the same batch
// coalescer), and re-issue/un-revoke semantics never need edge
// invalidation.
type EdgeCache struct {
	v   *RemoteValidator
	max int
	now func() time.Time

	// live/epoch gate every hit and fill; see the safety argument above.
	mu    sync.Mutex
	live  bool
	epoch uint64

	entries  sync.Map // revocation topic -> *edgeEntry
	count    atomic.Int64
	sweeping atomic.Bool

	hits          atomic.Uint64
	misses        atomic.Uint64
	bypassed      atomic.Uint64
	invalidations atomic.Uint64
	flushes       atomic.Uint64
	evictions     atomic.Uint64
}

// edgeEntry is the cache state of one credential record at the edge.
type edgeEntry struct {
	valid  atomic.Bool // lock-free pre-check; confirmed under mu with the fingerprint
	recent atomic.Bool // second-chance bit

	mu   sync.Mutex
	gen  uint64 // bumped by every revocation event (and flush) for this key
	fp   []byte // fingerprint of the presentation the verdict covers
	dead bool   // removed by eviction/flush; never caches again
}

// NewEdgeCache builds a cache over v. maxEntries bounds the entry
// population with second-chance eviction (0 = unbounded). The cache
// starts detached (not live): until Attach it serves no hits and caches
// nothing, passing every validation through to v.
func NewEdgeCache(v *RemoteValidator, maxEntries int) *EdgeCache {
	return &EdgeCache{v: v, max: maxEntries, now: time.Now}
}

// Attach marks the event feed live: first the cache is flushed (anything
// filled before or during the outage predates the subscription), then
// hits and fills are enabled. Call it only once the revocation
// subscription is established and delivering.
func (c *EdgeCache) Attach() {
	c.Flush()
	c.mu.Lock()
	c.live = true
	c.mu.Unlock()
}

// Detach marks the event feed dead: hits and fills stop first, then the
// cache is flushed. Call it the moment stream loss is detected.
func (c *EdgeCache) Detach() {
	c.mu.Lock()
	c.live = false
	c.mu.Unlock()
	c.Flush()
}

// Flush drops every entry. The epoch bump comes first so a fill that
// snapshotted the pre-flush epoch refuses to commit even if it races the
// sweep below.
func (c *EdgeCache) Flush() {
	c.mu.Lock()
	c.epoch++
	c.mu.Unlock()
	c.flushes.Add(1)
	c.entries.Range(func(k, v any) bool {
		e := v.(*edgeEntry)
		e.mu.Lock()
		e.dead = true
		e.gen++
		e.valid.Store(false)
		e.mu.Unlock()
		c.entries.Delete(k)
		c.count.Add(-1)
		return true
	})
}

// HandleEvent consumes one feed event: revocations invalidate their
// topic's entry, and a KindGap loss marker (the wire feed's in-band
// signal that events were dropped between the broker and this edge)
// flushes the whole cache — the stream is still live, but any entry
// filled before the gap may have missed its revocation. Safe to call
// from any goroutine (the stream read loop, an in-process broker tap).
func (c *EdgeCache) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.KindRevoked:
		c.Invalidate(ev.Topic)
	case event.KindGap:
		c.Flush()
	}
}

// Invalidate kills the cached verdict for one revocation topic. The
// entry stays resident with a bumped generation so a concurrent fill for
// the same key refuses to commit.
func (c *EdgeCache) Invalidate(topic string) {
	v, ok := c.entries.Load(topic)
	if !ok {
		return
	}
	e := v.(*edgeEntry)
	e.mu.Lock()
	e.gen++
	e.valid.Store(false)
	e.fp = nil
	e.mu.Unlock()
	c.invalidations.Add(1)
}

// ValidateRMC validates like RemoteValidator.ValidateRMC, serving cached
// positive verdicts for byte-identical presentations while the feed is
// live.
func (c *EdgeCache) ValidateRMC(r cert.RMC, principal string) error {
	fp := append(append(getFp(), principal...), 0)
	fp = cert.AppendRMCBinary(fp, r)
	err := c.validate(TopicCR(r.Ref), fp, func() error { return c.v.ValidateRMC(r, principal) })
	putFp(fp)
	return err
}

// ValidateAppointment validates like RemoteValidator.ValidateAppointment
// with the same caching. Expiry is enforced locally before the cache
// (see the safety argument) and surfaces as an ErrRevoked wrap, matching
// the issuer's refusal class at the gateway.
func (c *EdgeCache) ValidateAppointment(a cert.AppointmentCertificate) error {
	if !a.ExpiresAt.IsZero() && c.now().After(a.ExpiresAt) {
		return fmt.Errorf("%w: appointment expired at %s", ErrRevoked, a.ExpiresAt.Format(time.RFC3339))
	}
	fp := cert.AppendAppointmentBinary(getFp(), a)
	err := c.validate(TopicAppt(a.Key()), fp, func() error { return c.v.ValidateAppointment(a) })
	putFp(fp)
	return err
}

// fpPool recycles fingerprint scratch buffers: a fingerprint is built,
// compared (hit) or copied into the entry (fill), and dead.
var fpPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func getFp() []byte  { return (*fpPool.Get().(*[]byte))[:0] }
func putFp(b []byte) { fpPool.Put(&b) }

// validate is the shared hit/fill path.
func (c *EdgeCache) validate(topic string, fp []byte, do func() error) error {
	c.mu.Lock()
	live, epoch := c.live, c.epoch
	c.mu.Unlock()
	if !live {
		c.bypassed.Add(1)
		return do()
	}

	e, created := c.entry(topic)
	if created && c.max > 0 && c.count.Load() > int64(c.max) {
		c.evict()
	}
	if e.valid.Load() {
		e.mu.Lock()
		hit := !e.dead && e.valid.Load() && bytes.Equal(e.fp, fp)
		e.mu.Unlock()
		if hit {
			e.recent.Store(true)
			c.hits.Add(1)
			return nil
		}
	}
	c.misses.Add(1)

	e.mu.Lock()
	gen := e.gen
	e.mu.Unlock()
	if err := do(); err != nil {
		return err
	}
	// Positive verdict: commit only if the feed stayed live in the same
	// epoch (no flush since before the callback) and no revocation event
	// bumped the key's generation.
	c.mu.Lock()
	committable := c.live && c.epoch == epoch
	c.mu.Unlock()
	if !committable {
		return nil
	}
	e.mu.Lock()
	if !e.dead && e.gen == gen {
		e.fp = append(e.fp[:0], fp...)
		e.valid.Store(true)
	}
	e.mu.Unlock()
	return nil
}

// entry returns the cache entry for topic, creating it if absent.
func (c *EdgeCache) entry(topic string) (e *edgeEntry, created bool) {
	if v, ok := c.entries.Load(topic); ok {
		return v.(*edgeEntry), false
	}
	v, loaded := c.entries.LoadOrStore(topic, &edgeEntry{})
	if !loaded {
		c.count.Add(1)
	}
	return v.(*edgeEntry), !loaded
}

// evict runs one second-chance sweep past the bound (same protocol as
// the core valCache: recent bit spares an entry one round, a slack batch
// of max/16 keeps sweeps infrequent, at most one sweep at a time).
func (c *EdgeCache) evict() {
	if c.max <= 0 || !c.sweeping.CompareAndSwap(false, true) {
		return
	}
	defer c.sweeping.Store(false)
	need := c.count.Load() - int64(c.max)
	if need <= 0 {
		return
	}
	need += int64(c.max/16) + 1
	c.entries.Range(func(k, v any) bool {
		e := v.(*edgeEntry)
		if e.recent.Swap(false) {
			return true
		}
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			return true
		}
		e.dead = true
		e.gen++
		e.valid.Store(false)
		e.mu.Unlock()
		c.entries.Delete(k)
		c.count.Add(-1)
		c.evictions.Add(1)
		need--
		return need > 0
	})
}

// EdgeCacheStats is a snapshot of the cache's counters.
type EdgeCacheStats struct {
	// Live reports whether the event feed is attached (hits enabled).
	Live bool
	// Entries is the resident entry population.
	Entries int64
	// Hits are validations served from cache; Misses went to the issuer
	// with caching armed; Bypassed went to the issuer because the feed
	// was down (fail-closed fallback).
	Hits, Misses, Bypassed uint64
	// Invalidations counts revocation events that killed an entry;
	// Flushes counts whole-cache drops (lifecycle transitions);
	// Evictions counts entries dropped by the bound.
	Invalidations, Flushes, Evictions uint64
}

// Stats snapshots the cache.
func (c *EdgeCache) Stats() EdgeCacheStats {
	c.mu.Lock()
	live := c.live
	c.mu.Unlock()
	return EdgeCacheStats{
		Live:          live,
		Entries:       c.count.Load(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Bypassed:      c.bypassed.Load(),
		Invalidations: c.invalidations.Load(),
		Flushes:       c.flushes.Load(),
		Evictions:     c.evictions.Load(),
	}
}
