package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/rpc"
)

// edgeWorld is one issuer service plus an EdgeCache fed directly from the
// local broker (the oasisd -http-cache embedded-mode topology: no wire
// hop between broker and cache).
type edgeWorld struct {
	w      *world
	svc    *Service
	rv     *RemoteValidator
	ec     *EdgeCache
	cancel func()
}

func newEdgeWorld(t *testing.T, maxEntries int, wrap func(rpc.Caller) rpc.Caller) *edgeWorld {
	t.Helper()
	w := newWorld(t)
	svc := w.service("login", `login.user <- env ok.`)
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	var caller rpc.Caller = w.bus
	if wrap != nil {
		caller = wrap(caller)
	}
	// Negative window disables batching: every validation departs as one
	// deterministic call, which the race tests below rely on.
	rv := NewRemoteValidator("edge", caller, -1, nil)
	ec := NewEdgeCache(rv, maxEntries)
	cancel := w.broker.Tap(ec.HandleEvent)
	t.Cleanup(cancel)
	return &edgeWorld{w: w, svc: svc, rv: rv, ec: ec, cancel: cancel}
}

func (e *edgeWorld) activate(t *testing.T, principal string) cert.RMC {
	t.Helper()
	rmc, err := e.svc.Activate(principal, role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	return rmc
}

func TestEdgeCacheHitWhileLive(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")

	for i := 0; i < 3; i++ {
		if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
			t.Fatalf("validate %d: %v", i, err)
		}
	}
	st := e.ec.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}
	if rvst := e.rv.Stats(); rvst.Validations != 1 {
		t.Errorf("issuer saw %d validations, want 1 (rest cached)", rvst.Validations)
	}
}

func TestEdgeCacheDetachedBypasses(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	rmc := e.activate(t, "alice-key")

	for i := 0; i < 2; i++ {
		if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
			t.Fatalf("validate %d: %v", i, err)
		}
	}
	st := e.ec.Stats()
	if st.Bypassed != 2 || st.Hits != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 bypassed, nothing cached", st)
	}
	if rvst := e.rv.Stats(); rvst.Validations != 2 {
		t.Errorf("issuer saw %d validations, want 2 (no cache while detached)", rvst.Validations)
	}
}

// TestEdgeCacheEventKillsVerdict is the kill-the-cert scenario at unit
// scale: the cached verdict must die with the revocation event — no
// validation traffic required, no TTL in play (the cache has none).
func TestEdgeCacheEventKillsVerdict(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")

	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	// Revoke at the issuer. Taps fire synchronously inside Publish, so
	// by the time Deactivate returns the cache has seen the event.
	e.svc.Deactivate(rmc.Ref.Serial, "logout")
	if st := e.ec.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (event-bound, not traffic-bound)", st.Invalidations)
	}
	err := e.ec.ValidateRMC(rmc, "alice-key")
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("validate after revocation = %v, want ErrRevoked", err)
	}
	if st := e.ec.Stats(); st.Hits != 0 {
		t.Errorf("stale hit served after revocation event: %+v", st)
	}
}

func TestEdgeCacheDetachFlushesBeforeRefill(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	if st := e.ec.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}

	// Feed lost: hits stop instantly, the cache empties.
	e.ec.Detach()
	if st := e.ec.Stats(); st.Entries != 0 || st.Live {
		t.Fatalf("after detach: %+v, want empty and not live", st)
	}
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	if st := e.ec.Stats(); st.Bypassed != 1 {
		t.Fatalf("detached validate bypassed = %d, want 1", st.Bypassed)
	}

	// Resubscribed: the first validation is a miss (nothing filled while
	// the feed was down may survive), then caching resumes.
	e.ec.Attach()
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	st := e.ec.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("after reattach: %+v, want 2 misses / 1 hit total", st)
	}
}

// TestEdgeCacheGapMarkerFlushes: a KindGap loss marker (the feed's
// in-band signal that events were dropped upstream while the stream
// stayed live) must flush the whole cache without detaching it — the
// next validation refills from the issuer, so a revocation lost in the
// gap can never survive as a cached positive.
func TestEdgeCacheGapMarkerFlushes(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")
	for i := 0; i < 2; i++ {
		if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.ec.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("before gap: %+v, want 1 hit / 1 entry", st)
	}

	e.ec.HandleEvent(event.Event{Kind: event.KindGap, Reason: "feed overflow"})
	st := e.ec.Stats()
	if st.Entries != 0 {
		t.Fatalf("after gap: %+v, want flushed", st)
	}
	if !st.Live {
		t.Fatal("gap marker detached the cache; it must only flush")
	}

	// The next validation is an issuer round trip, then caching resumes.
	for i := 0; i < 2; i++ {
		if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
			t.Fatal(err)
		}
	}
	st = e.ec.Stats()
	if st.Misses != 2 || st.Hits != 2 || st.Bypassed != 0 {
		t.Errorf("after gap refill: %+v, want a fresh miss then hits, no bypass", st)
	}
}

// TestEdgeCacheFingerprintGuard: a hit requires the exact presentation.
// The same certificate presented by a different principal must not ride
// alice's cached verdict — the edge never verifies signatures, so the
// fingerprint is what stops a re-bound presentation.
func TestEdgeCacheFingerprintGuard(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")

	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	if err := e.ec.ValidateRMC(rmc, "mallory-key"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("re-bound presentation = %v, want issuer refusal", err)
	}
	st := e.ec.Stats()
	if st.Hits != 0 {
		t.Errorf("re-bound presentation served from cache: %+v", st)
	}

	// A tampered certificate under the cached key must miss too.
	forged := rmc
	forged.KeyID++
	if err := e.ec.ValidateRMC(forged, "alice-key"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("forged presentation = %v, want issuer refusal", err)
	}
	if st := e.ec.Stats(); st.Hits != 0 {
		t.Errorf("forged presentation served from cache: %+v", st)
	}

	// The genuine presentation still hits.
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	if st := e.ec.Stats(); st.Hits != 1 {
		t.Errorf("genuine presentation after probes: %+v, want 1 hit", st)
	}
}

// gateCaller blocks configured calls until released, making the
// event-during-fill race deterministic.
type gateCaller struct {
	inner rpc.Caller
	mu    sync.Mutex
	gate  chan struct{} // non-nil: next Call parks here
	held  chan struct{} // signalled when a call parks
}

func (g *gateCaller) Call(service, method string, body []byte) ([]byte, error) {
	g.mu.Lock()
	gate, held := g.gate, g.held
	g.gate, g.held = nil, nil
	g.mu.Unlock()
	if gate != nil {
		held <- struct{}{}
		<-gate
	}
	return g.inner.Call(service, method, body)
}

func (g *gateCaller) arm() (release func(), held chan struct{}) {
	gate := make(chan struct{})
	held = make(chan struct{}, 1)
	g.mu.Lock()
	g.gate, g.held = gate, held
	g.mu.Unlock()
	return func() { close(gate) }, held
}

// TestEdgeCacheEventDuringFillRefusesCommit injects a revocation event
// while the fill's issuer callback is parked in flight: the generation
// gate must refuse to commit the (positive) verdict that raced the
// event.
func TestEdgeCacheEventDuringFillRefusesCommit(t *testing.T) {
	var gc *gateCaller
	e := newEdgeWorld(t, 0, func(bus rpc.Caller) rpc.Caller {
		gc = &gateCaller{inner: bus}
		return gc
	})
	e.ec.Attach()
	rmc := e.activate(t, "alice-key")

	release, held := gc.arm()
	done := make(chan error, 1)
	go func() { done <- e.ec.ValidateRMC(rmc, "alice-key") }()
	<-held // the callback is in flight, gen already snapshotted

	// The revocation event lands mid-flight. (Injected directly: the
	// issuer still answers valid, which is exactly the race — a verdict
	// computed before the revocation arriving after the event.)
	e.ec.HandleEvent(event.Event{Topic: TopicCR(rmc.Ref), Kind: event.KindRevoked})
	release()
	if err := <-done; err != nil {
		t.Fatalf("in-flight validate: %v", err)
	}

	// The raced verdict must not have been cached: next validate misses.
	if err := e.ec.ValidateRMC(rmc, "alice-key"); err != nil {
		t.Fatal(err)
	}
	st := e.ec.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses (no stale commit)", st)
	}
}

func TestEdgeCacheEviction(t *testing.T) {
	const maxEntries = 8
	e := newEdgeWorld(t, maxEntries, nil)
	e.ec.Attach()
	const n = 40
	for i := 0; i < n; i++ {
		rmc := e.activate(t, fmt.Sprintf("p%02d-key", i))
		if err := e.ec.ValidateRMC(rmc, fmt.Sprintf("p%02d-key", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.ec.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions after %d inserts with max %d: %+v", n, maxEntries, st)
	}
	// The sweep allows transient slack (max/16+1 plus racing inserts);
	// anything near the bound is fine, unbounded growth is not.
	if st.Entries > maxEntries+maxEntries/2+2 {
		t.Errorf("entries = %d, want ~%d", st.Entries, maxEntries)
	}
}

func TestEdgeCacheAppointmentExpiryBeatsCache(t *testing.T) {
	e := newEdgeWorld(t, 0, nil)
	e.ec.now = e.w.clk.Now // appointments are stamped by the simulated clock
	e.ec.Attach()

	admin := e.w.service("admin", `
admin.administrator <- env is_admin.
auth appoint_badge <- admin.administrator.
`)
	admin.Env().Register("is_admin", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	sess := e.w.session()
	arm, err := admin.Activate(sess.PrincipalID(), role("admin", "administrator"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(arm)
	appt, err := admin.Appoint(sess.PrincipalID(), AppointmentRequest{
		Kind:      "badge",
		Holder:    "contractor-key",
		ExpiresAt: e.w.clk.Now().Add(time.Hour),
	}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	if err := e.ec.ValidateAppointment(appt); err != nil {
		t.Fatal(err)
	}
	if err := e.ec.ValidateAppointment(appt); err != nil {
		t.Fatal(err)
	}
	if st := e.ec.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want the second validation cached", st)
	}

	// Past expiry the cached verdict is unreachable: expiry is checked
	// before the cache, because no revocation event fires for it.
	e.w.clk.Advance(2 * time.Hour)
	err = e.ec.ValidateAppointment(appt)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("expired appointment = %v, want ErrRevoked wrap", err)
	}
	if st := e.ec.Stats(); st.Hits != 1 {
		t.Errorf("expired appointment served from cache: %+v", st)
	}
}

func TestEdgeCacheConcurrentChurn(t *testing.T) {
	e := newEdgeWorld(t, 16, nil)
	e.ec.Attach()
	const principals = 8
	rmcs := make([]cert.RMC, principals)
	for i := range rmcs {
		rmcs[i] = e.activate(t, fmt.Sprintf("p%d-key", i))
	}
	stopFlush := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stopFlush:
				return
			default:
				e.ec.Flush()
				e.ec.Attach()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (w + i) % principals
				p := fmt.Sprintf("p%d-key", idx)
				if err := e.ec.ValidateRMC(rmcs[idx], p); err != nil {
					t.Errorf("churn validate: %v", err)
					return
				}
				if i%17 == 0 {
					e.ec.Invalidate(TopicCR(rmcs[idx].Ref))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopFlush)
	flusher.Wait()
}
