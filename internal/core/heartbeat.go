package core

import (
	"repro/internal/cert"
	"repro/internal/event"
)

// EmitHeartbeats publishes one heartbeat per live credential record on the
// service's heartbeat channel (Fig. 5: "heartbeats or change events").
// Deployments drive this from a ticker; tests and the experiment harness
// call it directly. It returns the number of heartbeats published.
func (s *Service) EmitHeartbeats() int {
	serials := s.crs.allSerials()

	subjects := make([]string, 0, len(serials))
	for _, serial := range serials {
		status, err := s.records.Status(serial)
		if err != nil || !status.Exists || status.Revoked {
			continue
		}
		subjects = append(subjects, cert.CRR{Issuer: s.name, Serial: serial}.String())
	}

	topic := TopicHeartbeat(s.name)
	now := s.clk.Now()
	for _, subject := range subjects {
		s.broker.Publish(event.Event{ //nolint:errcheck // liveness is best-effort
			Topic:   topic,
			Kind:    event.KindHeartbeat,
			Subject: subject,
			At:      now,
		})
	}
	return len(subjects)
}

// WatchLiveness registers a foreign certificate with a heartbeat monitor
// so that issuer silence fails safe: when the issuer's heartbeats stop,
// the monitor publishes a synthetic revocation on the certificate's event
// channel, which clears any cached validation (the ECR proxy) and
// collapses roles whose membership rules depend on it — rather than
// trusting a stale cached result indefinitely.
func WatchLiveness(m *event.HeartbeatMonitor, ref cert.CRR) error {
	return m.Watch(ref.String(), TopicHeartbeat(ref.Issuer), TopicCR(ref))
}
