package core

import (
	"fmt"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/sign"
)

// Journal receives the engine's durable-state mutation hooks. A service
// configured with a Journal reports every credential-record issue and
// revocation and every appointment issue and revocation, so a journal
// implementation (internal/durable) can replay them after a crash.
// Implementations decide the durability class per hook: the contract here
// is only ordering — each hook is called after the in-memory mutation has
// been applied, and revocation/issue hooks for long-lived credentials
// should not return before the record is durable.
type Journal interface {
	// CRIssued reports a freshly issued credential record.
	CRIssued(service string, serial uint64, subject, holder string)
	// CRRevoked reports a credential-record revocation. Called only for
	// the winning revocation (revoke-once semantics upstream).
	CRRevoked(service string, serial uint64, reason string)
	// ApptIssued reports an issued appointment certificate, in full.
	ApptIssued(service string, a cert.AppointmentCertificate)
	// ApptRevoked reports an appointment revocation.
	ApptRevoked(service string, serial uint64, reason string)
}

// RecordRestorer is the optional RecordStore extension used during crash
// recovery: restoring a record re-creates it under its original serial
// and advances the allocator past it. The in-memory store implements it;
// a shared replicated CIV store does not need to (its records survive the
// daemon by replication, not by journal).
type RecordRestorer interface {
	RestoreRecord(serial uint64, st RecordStatus) error
}

// ExportKeys returns the service's retained signing secrets (oldest
// first) and the retention window, for journaling. Whoever holds the
// export holds the ability to forge this service's certificates; it goes
// to the journal and nowhere else.
func (s *Service) ExportKeys() ([]sign.Secret, int) { return s.ring.Export() }

// RestoreCR re-creates a credential record from the journal during
// recovery, before the service starts answering validation callbacks.
// Restored records carry validation continuity only: pre-crash RMCs keep
// answering valid (or revoked) by callback, but no membership monitoring
// is re-established — sessions are deliberately ephemeral (Sect. 4: an
// RMC is session-scoped, and the session did not survive the crash).
// Live restored records are indexed by holder so EndSession (logout) and
// Deactivate can still revoke them.
func (s *Service) RestoreCR(serial uint64, subject, holder string, revoked bool, reason string) error {
	rr, ok := s.records.(RecordRestorer)
	if !ok {
		return fmt.Errorf("service %s: record store %T does not support restore", s.name, s.records)
	}
	if err := rr.RestoreRecord(serial, RecordStatus{
		Exists:  true,
		Revoked: revoked,
		Subject: subject,
		Holder:  holder,
		Reason:  reason,
	}); err != nil {
		return err
	}
	if !revoked {
		s.restoredMu.Lock()
		if s.restoredCRs == nil {
			s.restoredCRs = make(map[string][]uint64)
		}
		s.restoredCRs[holder] = append(s.restoredCRs[holder], serial)
		s.restoredMu.Unlock()
	}
	return nil
}

// RestoreAppointment re-installs an issued appointment from the journal
// during recovery: the certificate validates by callback again (or stays
// revoked), and the serial allocator advances past it so new appointments
// never collide with restored ones.
func (s *Service) RestoreAppointment(a cert.AppointmentCertificate, revoked bool) {
	s.apptMu.Lock()
	defer s.apptMu.Unlock()
	s.appts[a.Serial] = &apptRecord{serial: a.Serial, appt: a, revoked: revoked}
	if a.Serial > s.nextApptSerial {
		s.nextApptSerial = a.Serial
	}
}

// RestoreRecord implements RecordRestorer for the in-memory store.
func (m *memRecords) RestoreRecord(serial uint64, st RecordStatus) error {
	if serial == 0 {
		return fmt.Errorf("restore record: serial 0")
	}
	rec := memRecord{
		subject: names.InternString(st.Subject),
		holder:  names.InternString(st.Holder),
		reason:  names.InternString(st.Reason),
	}
	if st.Revoked {
		rec.flags |= recRevoked
	}
	sh := m.shard(serial)
	sh.mu.Lock()
	sh.records[serial] = rec
	sh.mu.Unlock()
	// Advance the allocator so future issues never reuse a restored
	// serial.
	for {
		cur := m.next.Load()
		if cur >= serial || m.next.CompareAndSwap(cur, serial) {
			return nil
		}
	}
}
