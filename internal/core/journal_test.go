package core

import (
	"testing"

	"repro/internal/cert"
)

// captureJournal records the revocation hooks a service fires.
type captureJournal struct {
	issued  []uint64
	revoked []uint64
}

func (c *captureJournal) CRIssued(service string, serial uint64, subject, holder string) {
	c.issued = append(c.issued, serial)
}
func (c *captureJournal) CRRevoked(service string, serial uint64, reason string) {
	c.revoked = append(c.revoked, serial)
}
func (c *captureJournal) ApptIssued(service string, a cert.AppointmentCertificate) {}
func (c *captureJournal) ApptRevoked(service string, serial uint64, reason string) {}

// A journal-restored credential record has no session state (crs entry),
// but logout must still be able to revoke it — otherwise a pre-crash
// certificate would stay valid forever after restart with no revocation
// path. Regression test for the restored-serials index behind EndSession.
func TestEndSessionRevokesRestoredRecords(t *testing.T) {
	w := newWorld(t)
	j := &captureJournal{}
	svc := w.service("login", `login.user(U) <- env ok(U).`, func(c *Config) { c.Journal = j })

	if err := svc.RestoreCR(7, "login.user(alice)", "alice", false, ""); err != nil {
		t.Fatal(err)
	}
	if err := svc.RestoreCR(9, "login.user(alice)", "alice", true, "logout"); err != nil {
		t.Fatal(err)
	}
	if valid, exists := svc.CRStatus(7); !valid || !exists {
		t.Fatalf("restored record 7: valid=%v exists=%v, want live", valid, exists)
	}

	if n := svc.EndSession("alice"); n != 1 {
		t.Fatalf("EndSession deactivated %d records, want 1 (the live restored one)", n)
	}
	if valid, exists := svc.CRStatus(7); valid || !exists {
		t.Fatalf("after logout, record 7: valid=%v exists=%v, want revoked", valid, exists)
	}
	if len(j.revoked) != 1 || j.revoked[0] != 7 {
		t.Fatalf("journal saw revocations %v, want [7]", j.revoked)
	}

	// Idempotent: the drained index must not resurrect the serials.
	if n := svc.EndSession("alice"); n != 0 {
		t.Fatalf("second EndSession deactivated %d records, want 0", n)
	}
}
