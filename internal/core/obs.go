package core

import (
	"fmt"

	"repro/internal/obs"
)

// serviceObs bundles a service's observability handles. Handles are
// resolved once in NewService; with no registry/tracer configured every
// field is nil and each instrumentation site costs one branch, keeping
// the hot paths at their uninstrumented speed (the E13 overhead budget in
// EXPERIMENTS.md is checked by `benchtab -exp obs`).
//
// Counting and tracing are deliberately split by path temperature: the
// per-request counters (validations, cache hits, invocations) already
// exist as lock-free statCounters and are exported as read-at-scrape
// function metrics with zero hot-path cost, while trace events and
// latency histograms attach only to state-changing or issuer-facing
// operations — activation, callback validation, degraded acceptance,
// denial, revocation — whose base cost dwarfs the instrumentation.
type serviceObs struct {
	tracer *obs.Tracer

	// activateNs is the end-to-end latency of successful role activations.
	activateNs *obs.Histogram
	// callbackNs is the latency of callback validations to issuers.
	callbackNs *obs.Histogram
	// cascadeHopNs is the per-hop propagation latency of revocation
	// cascades (publish at depth d to deactivation at depth d+1).
	cascadeHopNs *obs.Histogram
	// cascadeDepth distributes the hop distance from each deactivation
	// to its cascade root (0 = root revocations).
	cascadeDepth *obs.Histogram
	// batchSize distributes the item count of each callback-validation
	// departure (1 = un-coalesced single call).
	batchSize *obs.Histogram
}

// cascadeDepthBuckets sizes the depth histogram: collapse trees deeper
// than 64 hops land in +Inf.
var cascadeDepthBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64}

// batchSizeBuckets sizes the validation batch histogram; batches larger
// than 256 land in +Inf.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// newServiceObs wires a service into the registry and tracer (both may be
// nil). Every per-service series carries a service label.
func newServiceObs(s *Service, name string, reg *obs.Registry, tracer *obs.Tracer) serviceObs {
	o := serviceObs{tracer: tracer}
	if reg == nil {
		return o
	}
	stats := &s.stats
	label := fmt.Sprintf("{service=%q}", name)
	for _, m := range []struct {
		name string
		fn   func() uint64
	}{
		{"core_activations_total", stats.activations.Load},
		{"core_activations_denied_total", stats.activationsDenied.Load},
		{"core_invocations_total", stats.invocations.Load},
		{"core_invocations_denied_total", stats.invocationsDenied.Load},
		{"core_local_validations_total", stats.localValidations.Load},
		{"core_callback_validations_total", stats.callbackValidations.Load},
		{"core_cache_hits_total", stats.cacheHits.Load},
		{"core_cache_misses_total", stats.cacheMisses.Load},
		{"core_cache_evictions_total", stats.cacheEvictions.Load},
		{"core_degraded_hits_total", stats.degradedHits.Load},
		{"core_revocations_total", stats.revocations.Load},
		{"core_validate_batches_total", stats.batchesSent.Load},
		{"core_batched_validations_total", stats.batchedValidations.Load},
	} {
		reg.Func(m.name+label, m.fn)
	}
	// Cache-pressure and resident-state gauges: the ECR entry population
	// (against its CacheMaxEntries bound) and the live credential-record
	// count, both O(1) reads at scrape time.
	reg.Func("core_ecr_cache_entries"+label, func() uint64 { return uint64(s.vcache.count.Load()) })
	reg.Func("core_resident_crs"+label, func() uint64 { return uint64(s.crs.residents()) })
	o.activateNs = reg.Histogram("core_activate_ns"+label, nil)
	o.callbackNs = reg.Histogram("core_callback_validate_ns"+label, nil)
	o.cascadeHopNs = reg.Histogram("core_revoke_hop_ns"+label, nil)
	o.cascadeDepth = reg.Histogram("core_revoke_depth"+label, cascadeDepthBuckets)
	o.batchSize = reg.Histogram("core_validate_batch_size"+label, batchSizeBuckets)
	return o
}

// trace records ev if tracing is enabled; the Service field is filled in
// by the caller.
func (o *serviceObs) trace(ev obs.TraceEvent) {
	o.tracer.Record(ev)
}
