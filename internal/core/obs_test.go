package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/obs"
)

func withObs(reg *obs.Registry, tr *obs.Tracer) func(*Config) {
	return func(c *Config) {
		c.Obs = reg
		c.Trace = tr
	}
}

// traceOf filters a tracer snapshot by kind.
func traceOf(tr *obs.Tracer, kind string) []obs.TraceEvent {
	var out []obs.TraceEvent
	for _, ev := range tr.Snapshot() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// TestCascadeTraceCorrelation drives the a<-b<-c revocation cascade of
// TestRevocationCascade with tracing on and checks the observability
// contract: every deactivation in the collapse appears as a revoke trace
// event, all three share the root's correlation id, and the depths count
// the hops 0, 1, 2 from the root.
func TestCascadeTraceCorrelation(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	w := newWorld(t)
	a := w.service("a", `a.ra <- env ok.`, withObs(reg, tr))
	b := w.service("b", `b.rb <- a.ra keep [1].`, withObs(reg, tr))
	c := w.service("c", `c.rc <- b.rb keep [1].`, withObs(reg, tr))
	alwaysTrue(a, "ok")
	sess := w.session()
	pid := sess.PrincipalID()

	rmcA, err := a.Activate(pid, role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcA)
	rmcB, err := b.Activate(pid, role("b", "rb"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcB)
	if _, err := c.Activate(pid, role("c", "rc"), sess.Credentials()); err != nil {
		t.Fatal(err)
	}

	if got := len(traceOf(tr, "activate")); got != 3 {
		t.Errorf("activate trace events = %d, want 3", got)
	}

	a.Deactivate(rmcA.Ref.Serial, "logout")
	w.broker.Quiesce()

	revokes := traceOf(tr, "revoke")
	if len(revokes) != 3 {
		t.Fatalf("revoke trace events = %d, want 3 (root + 2 hops): %+v", len(revokes), revokes)
	}
	rootCorr := revokes[0].Corr
	if !strings.HasPrefix(rootCorr, "cas:a#") {
		t.Errorf("root correlation id = %q, want cas:a#<serial>", rootCorr)
	}
	depths := map[int]string{}
	for _, ev := range revokes {
		if ev.Corr != rootCorr {
			t.Errorf("event %+v does not share the root correlation id %q", ev, rootCorr)
		}
		depths[ev.Depth] = ev.Service
	}
	want := map[int]string{0: "a", 1: "b", 2: "c"}
	for d, svc := range want {
		if depths[d] != svc {
			t.Errorf("depth %d revoked at %q, want %q (all: %v)", d, depths[d], svc, depths)
		}
	}
	// The dependent hops measure latency from the triggering event.
	for _, ev := range revokes {
		if ev.Depth > 0 && ev.DurNs < 0 {
			t.Errorf("negative hop latency: %+v", ev)
		}
	}

	// The registry exposes the per-service counters and the cascade
	// depth histogram under service labels.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, wantLine := range []string{
		`core_activations_total{service="a"} 1`,
		`core_revocations_total{service="b"} 1`,
		`core_revoke_depth_bucket{service="c",le="2"} 1`,
		`core_revoke_depth_count{service="a"} 1`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
}

// TestCachePressureMetrics drives a bounded ECR cache past its capacity
// and checks the capacity-facing exposition (E16): the hit/miss/eviction
// counters and the resident-state gauges (cache entries, credential
// records) land on /metrics text under the service label, and the gauges
// track the live populations.
func TestCachePressureMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`, withObs(reg, nil))
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`, withObs(reg, nil),
		func(c *Config) {
			c.CacheValidations = true
			c.CacheMaxEntries = 4
		})

	const principals = 12
	for i := 0; i < principals; i++ {
		pid := fmt.Sprintf("p%d", i)
		rmc, err := login.Activate(pid, role("login", "user"), Presented{})
		if err != nil {
			t.Fatal(err)
		}
		creds := Presented{RMCs: []cert.RMC{rmc}}
		// Two invokes per principal: the first misses and fills the
		// cache, the second hits (eviction permitting).
		for k := 0; k < 2; k++ {
			if _, err := guard.Invoke(pid, "enter", nil, creds); err != nil {
				t.Fatal(err)
			}
		}
	}

	stats := guard.Stats()
	if stats.CacheMisses == 0 || stats.CacheHits == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", stats)
	}
	if stats.CacheEvictions == 0 {
		t.Fatalf("stats = %+v, want evictions: %d principals through a cache of 4", stats, principals)
	}
	if got := guard.CachedValidations(); got > 4+4/16+1 {
		t.Errorf("cached validations = %d, want bounded near 4", got)
	}
	if got := login.ResidentCRs(); got != principals {
		t.Errorf("login resident CRs = %d, want %d", got, principals)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		`core_cache_hits_total{service="guard"}`,
		`core_cache_misses_total{service="guard"}`,
		`core_cache_evictions_total{service="guard"}`,
		`core_ecr_cache_entries{service="guard"}`,
		`core_resident_crs{service="login"}`,
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("metrics missing %s", name)
		}
	}
	if got := reg.Value(`core_resident_crs{service="login"}`); got != principals {
		t.Errorf("core_resident_crs gauge = %d, want %d", got, principals)
	}
	if hits := reg.Value(`core_cache_hits_total{service="guard"}`); hits != stats.CacheHits {
		t.Errorf("core_cache_hits_total = %d, want %d", hits, stats.CacheHits)
	}
}

// TestDenialTraces checks that refused activations and invocations land in
// the trace with outcome "denied".
func TestDenialTraces(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	w := newWorld(t)
	login := w.service("login", "login.user <- env password_ok.\nauth read(X) <- login.user.",
		withObs(reg, tr))
	// A predicate that never holds: every activation is refused.
	login.Env().Register("password_ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return nil
	})
	_, err := login.Activate("p", role("login", "user"), Presented{})
	if err == nil {
		t.Fatal("activation unexpectedly succeeded")
	}
	denied := traceOf(tr, "activate")
	if len(denied) != 1 || denied[0].Outcome != "denied" {
		t.Fatalf("activate traces = %+v, want one denied", denied)
	}
	if _, err := login.Invoke("p", "read", nil, Presented{}); err == nil {
		t.Fatal("invoke unexpectedly succeeded")
	}
	if inv := traceOf(tr, "invoke"); len(inv) != 1 || inv[0].Outcome != "denied" {
		t.Fatalf("invoke traces = %+v, want one denied", inv)
	}
}
