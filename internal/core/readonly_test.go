package core

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/event"
)

// TestReadOnlyHandlerRefusesWrites pins the follower-replica contract: a
// read-only service's wire handler refuses every mutating method with
// ErrReadOnly but keeps answering validation, and the non-wire mutation
// APIs (what the replication applier uses) still work.
func TestReadOnlyHandlerRefusesWrites(t *testing.T) {
	b := event.NewBroker()
	defer b.Close()
	svc, err := NewService(Config{
		Name:     "login",
		Policy:   mustPolicy(`login.user <- env ok.`),
		Broker:   b,
		ReadOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	alwaysTrue(svc, "ok")

	sess, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct API mutation (the replication applier's path) is allowed.
	rmc, err := svc.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatalf("direct Activate on read-only service: %v", err)
	}

	h := svc.Handler()

	// Validation still serves.
	body, err := json.Marshal(validateRMCRequest{RMC: rmc, Principal: sess.PrincipalID()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h("validate_rmc", body)
	if err != nil {
		t.Fatalf("validate_rmc: %v", err)
	}
	var resp validateResponse
	if err := json.Unmarshal(out, &resp); err != nil || !resp.Valid {
		t.Fatalf("validate_rmc verdict = %s err=%v, want valid", out, err)
	}

	// Every wire mutation is refused.
	for _, method := range []string{"activate", "invoke", "appoint", "revoke", "end_session"} {
		if _, err := h(method, []byte(`{}`)); !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s on read-only service: err=%v, want ErrReadOnly", method, err)
		}
	}
}
