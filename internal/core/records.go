package core

import (
	"sync"
	"sync/atomic"
)

// RecordStore holds the validity state of issued role membership
// certificates. The default is service-local memory (each service issues
// and validates its own certificates, "as is possible in the
// architecture" — Sect. 4), but a domain may instead plug in its highly
// available replicated CIV service (paper ref [10]; see internal/civ and
// the CIVRecords adapter in the domain package).
type RecordStore interface {
	// Issue allocates a serial for a new certificate with the given
	// subject (the ground role) and holder (the principal id).
	Issue(subject, holder string) (uint64, error)
	// Revoke invalidates a serial; it reports whether the record was
	// live (false means already revoked or unknown: callers treat
	// Revoke as idempotent).
	Revoke(serial uint64, reason string) (bool, error)
	// Status reads a record's state.
	Status(serial uint64) (RecordStatus, error)
}

// RecordStatus is a RecordStore read.
type RecordStatus struct {
	Exists  bool
	Revoked bool
	Holder  string
	Subject string
	Reason  string
}

// memRecords is the default in-memory RecordStore. Serial allocation is a
// single atomic, and the record table is sharded by serial so local
// validations (Status reads on the Invoke path) do not serialise behind
// issues and revocations.
type memRecords struct {
	next   atomic.Uint64
	shards [crShards]recordShard
}

type recordShard struct {
	mu      sync.RWMutex
	records map[uint64]*RecordStatus
}

var _ RecordStore = (*memRecords)(nil)

func newMemRecords() *memRecords {
	m := &memRecords{}
	for i := range m.shards {
		m.shards[i].records = make(map[uint64]*RecordStatus)
	}
	return m
}

func (m *memRecords) shard(serial uint64) *recordShard {
	return &m.shards[serial%crShards]
}

func (m *memRecords) Issue(subject, holder string) (uint64, error) {
	serial := m.next.Add(1)
	sh := m.shard(serial)
	sh.mu.Lock()
	sh.records[serial] = &RecordStatus{Exists: true, Holder: holder, Subject: subject}
	sh.mu.Unlock()
	return serial, nil
}

func (m *memRecords) Revoke(serial uint64, reason string) (bool, error) {
	sh := m.shard(serial)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[serial]
	if !ok || rec.Revoked {
		return false, nil
	}
	rec.Revoked = true
	rec.Reason = reason
	return true, nil
}

func (m *memRecords) Status(serial uint64) (RecordStatus, error) {
	sh := m.shard(serial)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[serial]
	if !ok {
		return RecordStatus{}, nil
	}
	return *rec, nil
}
