package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/names"
)

// RecordStore holds the validity state of issued role membership
// certificates. The default is service-local memory (each service issues
// and validates its own certificates, "as is possible in the
// architecture" — Sect. 4), but a domain may instead plug in its highly
// available replicated CIV service (paper ref [10]; see internal/civ and
// the CIVRecords adapter in the domain package).
type RecordStore interface {
	// Issue allocates a serial for a new certificate with the given
	// subject (the ground role) and holder (the principal id).
	Issue(subject, holder string) (uint64, error)
	// Revoke invalidates a serial; it reports whether the record was
	// live (false means already revoked or unknown: callers treat
	// Revoke as idempotent).
	Revoke(serial uint64, reason string) (bool, error)
	// Status reads a record's state.
	Status(serial uint64) (RecordStatus, error)
}

// RecordStatus is a RecordStore read.
type RecordStatus struct {
	Exists  bool
	Revoked bool
	Holder  string
	Subject string
	Reason  string
}

// SerialIssuer is the optional RecordStore extension the sequencer path
// uses: Activate allocates the serial up front (it goes into the signed
// RMC and the journal record before the mutation is submitted), and the
// record itself materialises inside the shard's ordered apply. A store
// without this extension still works — Activate falls back to Issue
// before submitting, so the apply loop only publishes the table entry.
type SerialIssuer interface {
	// NextSerial allocates a serial without creating a record.
	NextSerial() uint64
	// IssueAt creates the record under a serial from NextSerial.
	IssueAt(serial uint64, subject, holder string)
}

// memRecord is the resident form of one credential record: three interned
// string handles plus a packed flag byte, stored by value in the shard
// map. Compared with the pre-capacity layout (a heap-allocated
// *RecordStatus per record) this removes one pointer, one heap object and
// its allocator slack per resident record, and — because subject, holder
// and revocation reason are interned — the string contents are shared
// across the millions of records that spell the same role or reason.
// Existence is map membership; the wire-facing RecordStatus is
// materialised lazily on Status reads.
type memRecord struct {
	subject string
	holder  string
	reason  string
	flags   uint8
}

const recRevoked uint8 = 1 << 0

func (r memRecord) status() RecordStatus {
	return RecordStatus{
		Exists:  true,
		Revoked: r.flags&recRevoked != 0,
		Holder:  r.holder,
		Subject: r.subject,
		Reason:  r.reason,
	}
}

// memRecords is the default in-memory RecordStore. Serial allocation is a
// single atomic, and the record table is sharded by serial so local
// validations (Status reads on the Invoke path) do not serialise behind
// issues and revocations.
type memRecords struct {
	next   atomic.Uint64
	shards [crShards]recordShard
}

type recordShard struct {
	mu      sync.RWMutex
	records map[uint64]memRecord
}

var _ RecordStore = (*memRecords)(nil)

func newMemRecords() *memRecords {
	m := &memRecords{}
	for i := range m.shards {
		m.shards[i].records = make(map[uint64]memRecord)
	}
	return m
}

func (m *memRecords) shard(serial uint64) *recordShard {
	return &m.shards[serial%crShards]
}

func (m *memRecords) Issue(subject, holder string) (uint64, error) {
	serial := m.next.Add(1)
	m.IssueAt(serial, subject, holder)
	return serial, nil
}

// NextSerial implements SerialIssuer.
func (m *memRecords) NextSerial() uint64 { return m.next.Add(1) }

// IssueAt implements SerialIssuer.
func (m *memRecords) IssueAt(serial uint64, subject, holder string) {
	sh := m.shard(serial)
	sh.mu.Lock()
	// Subjects (ground role keys) come from a small vocabulary and are
	// interned; holders are per-session principal ids — high-cardinality
	// and short-lived, so interning them would grow the canonical table
	// without bound. They stay as plain strings (sharing the caller's
	// copy).
	sh.records[serial] = memRecord{
		subject: names.InternString(subject),
		holder:  holder,
	}
	sh.mu.Unlock()
}

func (m *memRecords) Revoke(serial uint64, reason string) (bool, error) {
	sh := m.shard(serial)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[serial]
	if !ok || rec.flags&recRevoked != 0 {
		return false, nil
	}
	rec.flags |= recRevoked
	// Revocation reasons come from a small vocabulary (logout, cascade,
	// explicit deactivation, …); interning keeps a mass revocation from
	// retaining a copy per record.
	rec.reason = names.InternString(reason)
	sh.records[serial] = rec
	return true, nil
}

func (m *memRecords) Status(serial uint64) (RecordStatus, error) {
	sh := m.shard(serial)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[serial]
	if !ok {
		return RecordStatus{}, nil
	}
	return rec.status(), nil
}

// baselineRecords preserves the pre-capacity record layout — one
// heap-allocated RecordStatus per record, no interning, unpacked flags —
// behind the same RecordStore interface. The E16 capacity harness plugs
// it in (Config.Records) to measure the compact layout against the state
// of the world it replaced; it has no production use.
type baselineRecords struct {
	next   atomic.Uint64
	shards [crShards]baselineShard
}

type baselineShard struct {
	mu      sync.RWMutex
	records map[uint64]*RecordStatus
}

// NewBaselineRecords constructs the pre-capacity record store. See
// baselineRecords.
func NewBaselineRecords() RecordStore {
	m := &baselineRecords{}
	for i := range m.shards {
		m.shards[i].records = make(map[uint64]*RecordStatus)
	}
	return m
}

func (m *baselineRecords) shard(serial uint64) *baselineShard {
	return &m.shards[serial%crShards]
}

func (m *baselineRecords) Issue(subject, holder string) (uint64, error) {
	serial := m.next.Add(1)
	sh := m.shard(serial)
	sh.mu.Lock()
	sh.records[serial] = &RecordStatus{Exists: true, Holder: holder, Subject: subject}
	sh.mu.Unlock()
	return serial, nil
}

func (m *baselineRecords) Revoke(serial uint64, reason string) (bool, error) {
	sh := m.shard(serial)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[serial]
	if !ok || rec.Revoked {
		return false, nil
	}
	rec.Revoked = true
	rec.Reason = reason
	return true, nil
}

func (m *baselineRecords) Status(serial uint64) (RecordStatus, error) {
	sh := m.shard(serial)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[serial]
	if !ok {
		return RecordStatus{}, nil
	}
	return *rec, nil
}
