package core

import (
	"sync"
)

// RecordStore holds the validity state of issued role membership
// certificates. The default is service-local memory (each service issues
// and validates its own certificates, "as is possible in the
// architecture" — Sect. 4), but a domain may instead plug in its highly
// available replicated CIV service (paper ref [10]; see internal/civ and
// the CIVRecords adapter in the domain package).
type RecordStore interface {
	// Issue allocates a serial for a new certificate with the given
	// subject (the ground role) and holder (the principal id).
	Issue(subject, holder string) (uint64, error)
	// Revoke invalidates a serial; it reports whether the record was
	// live (false means already revoked or unknown: callers treat
	// Revoke as idempotent).
	Revoke(serial uint64, reason string) (bool, error)
	// Status reads a record's state.
	Status(serial uint64) (RecordStatus, error)
}

// RecordStatus is a RecordStore read.
type RecordStatus struct {
	Exists  bool
	Revoked bool
	Holder  string
	Subject string
	Reason  string
}

// memRecords is the default in-memory RecordStore.
type memRecords struct {
	mu      sync.Mutex
	next    uint64
	records map[uint64]*RecordStatus
}

var _ RecordStore = (*memRecords)(nil)

func newMemRecords() *memRecords {
	return &memRecords{records: make(map[uint64]*RecordStatus)}
}

func (m *memRecords) Issue(subject, holder string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.next++
	m.records[m.next] = &RecordStatus{Exists: true, Holder: holder, Subject: subject}
	return m.next, nil
}

func (m *memRecords) Revoke(serial uint64, reason string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.records[serial]
	if !ok || rec.Revoked {
		return false, nil
	}
	rec.Revoked = true
	rec.Reason = reason
	return true, nil
}

func (m *memRecords) Status(serial uint64) (RecordStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.records[serial]
	if !ok {
		return RecordStatus{}, nil
	}
	return *rec, nil
}
