package core

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/rpc"
)

// RemoteActivateRequest asks a (possibly remote) service to activate a
// role for the given principal with the attached credentials.
type RemoteActivateRequest struct {
	Principal    string                        `json:"principal"`
	Role         names.Role                    `json:"role"`
	RMCs         []cert.RMC                    `json:"rmcs,omitempty"`
	Appointments []cert.AppointmentCertificate `json:"appointments,omitempty"`
}

// Presented converts the wire form back to a credential bundle.
func (r RemoteActivateRequest) Presented() Presented {
	return Presented{RMCs: r.RMCs, Appointments: r.Appointments}
}

// RemoteInvokeRequest asks a (possibly remote) service to run a method for
// the given principal with the attached credentials.
type RemoteInvokeRequest struct {
	Principal    string                        `json:"principal"`
	Method       string                        `json:"method"`
	Args         []names.Term                  `json:"args,omitempty"`
	RMCs         []cert.RMC                    `json:"rmcs,omitempty"`
	Appointments []cert.AppointmentCertificate `json:"appointments,omitempty"`
}

// Presented converts the wire form back to a credential bundle.
func (r RemoteInvokeRequest) Presented() Presented {
	return Presented{RMCs: r.RMCs, Appointments: r.Appointments}
}

// RemoteAppointRequest asks a (possibly remote) service to issue an
// appointment certificate.
type RemoteAppointRequest struct {
	Principal    string                        `json:"principal"`
	Kind         string                        `json:"kind"`
	Holder       string                        `json:"holder"`
	Params       []names.Term                  `json:"params,omitempty"`
	ExpiresAt    time.Time                     `json:"expiresAt,omitempty"`
	RMCs         []cert.RMC                    `json:"rmcs,omitempty"`
	Appointments []cert.AppointmentCertificate `json:"appointments,omitempty"`
}

// Presented converts the wire form back to a credential bundle.
func (r RemoteAppointRequest) Presented() Presented {
	return Presented{RMCs: r.RMCs, Appointments: r.Appointments}
}

// RemoteRevokeRequest asks a (possibly remote) service to revoke the
// credential record with the given serial, collapsing its dependent role
// subtree. The transport boundary is trusted the same way the other
// mutating methods (activate, appoint) are: a deployment exposing it to
// untrusted networks must front it with an authenticating edge (see
// cmd/oasisgw and THREATMODEL.md).
type RemoteRevokeRequest struct {
	Serial uint64 `json:"serial"`
	Reason string `json:"reason,omitempty"`
}

// RemoteRevokeResponse acknowledges a revocation request. Revoked is
// false when the serial was unknown or already revoked (the request is
// idempotent; either way the record is dead afterwards).
type RemoteRevokeResponse struct {
	Revoked bool `json:"revoked"`
}

// Client invokes a service through an rpc transport, as a roving principal
// or cross-domain caller does. It mirrors the local Activate/Invoke API.
type Client struct {
	caller rpc.Caller
}

// NewClient wraps an rpc caller.
func NewClient(caller rpc.Caller) *Client { return &Client{caller: caller} }

// Activate requests role activation at the named remote service.
func (c *Client) Activate(service, principal string, role names.Role, p Presented) (cert.RMC, error) {
	req := RemoteActivateRequest{
		Principal:    principal,
		Role:         role,
		RMCs:         p.RMCs,
		Appointments: p.Appointments,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return cert.RMC{}, fmt.Errorf("encode activate: %w", err)
	}
	out, err := c.caller.Call(service, "activate", body)
	if err != nil {
		return cert.RMC{}, err
	}
	return cert.UnmarshalRMC(out)
}

// Invoke requests a method invocation at the named remote service.
func (c *Client) Invoke(service, principal, method string, args []names.Term, p Presented) ([]byte, error) {
	req := RemoteInvokeRequest{
		Principal:    principal,
		Method:       method,
		Args:         args,
		RMCs:         p.RMCs,
		Appointments: p.Appointments,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode invoke: %w", err)
	}
	return c.caller.Call(service, "invoke", body)
}

// Appoint requests an appointment certificate from the named remote
// service.
func (c *Client) Appoint(service, principal string, req AppointmentRequest, p Presented) (cert.AppointmentCertificate, error) {
	wire := RemoteAppointRequest{
		Principal:    principal,
		Kind:         req.Kind,
		Holder:       req.Holder,
		Params:       req.Params,
		ExpiresAt:    req.ExpiresAt,
		RMCs:         p.RMCs,
		Appointments: p.Appointments,
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return cert.AppointmentCertificate{}, fmt.Errorf("encode appoint: %w", err)
	}
	out, err := c.caller.Call(service, "appoint", body)
	if err != nil {
		return cert.AppointmentCertificate{}, err
	}
	return cert.UnmarshalAppointment(out)
}

// Revoke asks the named remote service to revoke a credential record by
// serial. It reports whether the call performed the revocation (false
// when the record was unknown or already dead).
func (c *Client) Revoke(service string, serial uint64, reason string) (bool, error) {
	body, err := json.Marshal(RemoteRevokeRequest{Serial: serial, Reason: reason})
	if err != nil {
		return false, fmt.Errorf("encode revoke: %w", err)
	}
	out, err := c.caller.Call(service, "revoke", body)
	if err != nil {
		return false, err
	}
	var resp RemoteRevokeResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return false, fmt.Errorf("decode revoke response: %w", err)
	}
	return resp.Revoked, nil
}
