package core

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// RemoteValidator is the client-side validate_batch coalescer exposed to
// front ends that have no local Service — the HTTP edge gateway above
// all. Concurrent validations destined for the same issuer ride one
// validate_batch flight exactly as a service's own callback validations
// do (same in-flight gating, hot-queue re-gather, sticky JSON and
// per-item downgrades for old issuers), so an edge tier fanning in
// thousands of HTTP checks costs the issuer ~one wire call per herd.
//
// A RemoteValidator answers authoritatively from the issuer every time;
// it deliberately has no verdict cache of its own. Caching at the edge
// without a revocation subscription would re-open the revocation window
// the core's event-driven cache closes. An edge tier that wants caching
// wraps the validator in an EdgeCache, which subscribes to the backend's
// revocation events like a Service does and fails closed to this
// uncached behavior whenever the subscription is down.
type RemoteValidator struct {
	b *batcher

	// Verdict classification counters, for the gateway's /metrics.
	valid   atomic.Uint64
	invalid atomic.Uint64
	errored atomic.Uint64
}

// RemoteValidatorStats is a snapshot of a RemoteValidator's counters.
type RemoteValidatorStats struct {
	// Validations counts verdicts requested (valid + invalid + errors).
	Validations uint64
	// Valid / Invalid split the delivered authoritative verdicts;
	// Errored counts validations that failed without a verdict (issuer
	// unreachable, decode failure).
	Valid   uint64
	Invalid uint64
	Errored uint64
	// BatchesSent counts validate_batch wire calls; BatchedValidations
	// counts the verdicts that rode them.
	BatchesSent        uint64
	BatchedValidations uint64
	// CallbackValidations counts validations that reached an issuer,
	// by item: a single call counts one, a batch counts its size. The
	// approximate wire-call count is therefore
	// CallbackValidations - BatchedValidations + BatchesSent.
	CallbackValidations uint64
}

// NewRemoteValidator builds a validator over the given transport.
// window tunes coalescing like Config.BatchWindow: 0 selects the default
// window, negative disables batching entirely (every validation departs
// as a single binary call). When reg is non-nil the validator registers
// its counters and a batch-size histogram under the given name label.
func NewRemoteValidator(name string, caller rpc.Caller, window time.Duration, reg *obs.Registry) *RemoteValidator {
	v := &RemoteValidator{b: newCallerBatcher(caller, window)}
	if reg != nil {
		label := `{validator="` + name + `"}`
		v.b.batchSize = reg.Histogram("core_validate_batch_size"+label, batchSizeBuckets)
		for _, m := range []struct {
			name string
			load func() uint64
		}{
			{"core_callback_validations_total", v.b.callbackValidations.Load},
			{"core_validate_batches_total", v.b.batchesSent.Load},
			{"core_batched_validations_total", v.b.batchedValidations.Load},
			{"core_verdicts_valid_total", v.valid.Load},
			{"core_verdicts_invalid_total", v.invalid.Load},
			{"core_verdicts_errored_total", v.errored.Load},
		} {
			reg.Func(m.name+label, m.load)
		}
	}
	return v
}

// ValidateRMC asks the RMC's issuer for an authoritative verdict on the
// certificate as presented by principal. nil means valid; an error
// wrapping ErrRevoked is the issuer's authoritative refusal (bad
// signature, revoked or unknown credential record); any other error
// means no verdict was obtained (issuer unreachable).
func (v *RemoteValidator) ValidateRMC(r cert.RMC, principal string) error {
	return v.classify(v.b.do(r.Ref.Issuer, rmcItem(r, principal)))
}

// ValidateAppointment asks the appointment's issuer for an authoritative
// verdict on the certificate. Error classification as in ValidateRMC.
func (v *RemoteValidator) ValidateAppointment(a cert.AppointmentCertificate) error {
	return v.classify(v.b.do(a.Issuer, apptItem(a)))
}

// classify updates the verdict counters and passes the error through.
func (v *RemoteValidator) classify(err error) error {
	switch {
	case err == nil:
		v.valid.Add(1)
	case errors.Is(err, ErrRevoked):
		v.invalid.Add(1)
	default:
		v.errored.Add(1)
	}
	return err
}

// Stats snapshots the validator's counters.
func (v *RemoteValidator) Stats() RemoteValidatorStats {
	valid, invalid, errored := v.valid.Load(), v.invalid.Load(), v.errored.Load()
	return RemoteValidatorStats{
		Validations:         valid + invalid + errored,
		Valid:               valid,
		Invalid:             invalid,
		Errored:             errored,
		BatchesSent:         v.b.batchesSent.Load(),
		BatchedValidations:  v.b.batchedValidations.Load(),
		CallbackValidations: v.b.callbackValidations.Load(),
	}
}
