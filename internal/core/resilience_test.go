package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/rpc"
)

// resilientWorld models the cross-process deployment shape for fault
// injection: issuer (login) and consumer (guard) live on separate event
// brokers — revocations do NOT propagate between them, exactly like two
// oasisd processes without a relay — and the consumer reaches the issuer
// through a ResilientCaller over the fault-injectable loopback. The
// consumer caches validations with a revalidation deadline, a bounded
// stale-grace window, and a heartbeat monitor watching issuer liveness.
type resilientWorld struct {
	clk      *clock.Simulated
	bus      *rpc.Loopback
	rc       *rpc.ResilientCaller
	issuerBr *event.Broker
	guardBr  *event.Broker
	hb       *event.HeartbeatMonitor
	login    *Service
	guard    *Service
}

const (
	testRevalidateAfter = time.Minute
	testStaleGrace      = 5 * time.Minute
	testHeartbeatDeadln = 2 * time.Minute
	testCooldown        = 30 * time.Second
)

func newResilientWorld(t *testing.T) *resilientWorld {
	t.Helper()
	w := &resilientWorld{
		clk:      clock.NewSimulated(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC)),
		bus:      rpc.NewLoopback(),
		issuerBr: event.NewBroker(),
		guardBr:  event.NewBroker(),
	}
	t.Cleanup(w.issuerBr.Close)
	t.Cleanup(w.guardBr.Close)
	w.hb = event.NewHeartbeatMonitor(w.guardBr, w.clk, testHeartbeatDeadln)
	t.Cleanup(w.hb.Close)
	w.rc = rpc.NewResilientCaller(w.bus, rpc.ResilientConfig{
		MaxAttempts:      3,
		FailureThreshold: 3,
		Cooldown:         testCooldown,
		Sleep:            func(time.Duration) {},
		Now:              w.clk.Now,
	})

	login, err := NewService(Config{
		Name:   "login",
		Policy: mustPolicy(`login.user <- env ok.`),
		Broker: w.issuerBr,
		Clock:  w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(login.Close)
	alwaysTrue(login, "ok")
	w.bus.Register("login", login.Handler())
	w.login = login

	guard, err := NewService(Config{
		Name:             "guard",
		Policy:           mustPolicy(`auth enter <- login.user.`),
		Broker:           w.guardBr,
		Caller:           w.rc,
		Clock:            w.clk,
		CacheValidations: true,
		RevalidateAfter:  testRevalidateAfter,
		StaleGrace:       testStaleGrace,
		Heartbeats:       w.hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(guard.Close)
	w.guard = guard
	return w
}

// enter activates login.user for a fresh session and returns the
// credential bundle plus the issued serial.
func (w *resilientWorld) enter(t *testing.T) (string, Presented, uint64) {
	t.Helper()
	sess, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := w.login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	return sess.PrincipalID(), sess.Credentials(), rmc.Ref.Serial
}

func TestResilienceRetryRecoversTransientValidateFault(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, _ := w.enter(t)

	w.bus.SetFault(rpc.FailNTimes("login", 2))
	before := w.bus.Calls()
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("transient fault not recovered by retry: %v", err)
	}
	if attempts := w.bus.Calls() - before; attempts != 3 {
		t.Errorf("transport attempts = %d, want 3 (2 failures + 1 success)", attempts)
	}
	if m := w.rc.Metrics(); m.Retries != 2 {
		t.Errorf("retries = %d, want 2", m.Retries)
	}
	if w.guard.Stats().DegradedHits != 0 {
		t.Error("degraded path used while the issuer was reachable")
	}
}

func TestResilienceBreakerOpensOnPersistentFailure(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, _ := w.enter(t)

	// Fresh (uncached) certificate + partitioned issuer: validation
	// fails, and after FailureThreshold transport failures the breaker
	// opens so later presentations fail fast without touching the wire.
	w.bus.SetFault(rpc.FailAll("login"))
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); !errors.Is(err, ErrInvalidCredential) {
		t.Fatalf("partitioned validate err = %v", err)
	}
	if got := w.rc.BreakerState("login"); got != rpc.BreakerOpen {
		t.Fatalf("breaker = %v after 3 consecutive failures", got)
	}
	before := w.bus.Calls()
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err == nil {
		t.Fatal("open breaker validated a never-confirmed certificate")
	}
	if w.bus.Calls() != before {
		t.Error("open breaker still reached the transport")
	}

	// Partition heals; after the cooldown the half-open probe closes the
	// breaker and validation works again.
	w.bus.SetFault(nil)
	w.clk.Advance(testCooldown)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("recovery after cooldown failed: %v", err)
	}
	if got := w.rc.BreakerState("login"); got != rpc.BreakerClosed {
		t.Errorf("breaker = %v after successful probe", got)
	}
}

func TestResilienceStaleGraceServesCachedCertDuringPartition(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, _ := w.enter(t)

	// Warm the cache while the issuer is reachable.
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatal(err)
	}
	// Partition the issuer and cross the revalidation deadline: the
	// re-confirmation fails with a transport error, so the previously
	// confirmed verdict is served degraded inside the grace window.
	w.bus.SetFault(rpc.FailAll("login"))
	w.clk.Advance(testRevalidateAfter + time.Second)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("degraded validation denied inside the grace window: %v", err)
	}
	if hits := w.guard.Stats().DegradedHits; hits != 1 {
		t.Errorf("DegradedHits = %d, want 1", hits)
	}
}

func TestResilienceStaleGraceExpiresIntoDenial(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, _ := w.enter(t)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatal(err)
	}
	w.bus.SetFault(rpc.FailAll("login"))
	// Beyond RevalidateAfter + StaleGrace the degraded path must close.
	w.clk.Advance(testRevalidateAfter + testStaleGrace + time.Second)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); !errors.Is(err, ErrInvalidCredential) {
		t.Fatalf("validation past the stale-grace deadline: err = %v, want denial", err)
	}
	// The entry was dropped: subsequent presentations keep failing fast
	// (no degraded hits ever accrue past the window).
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err == nil {
		t.Fatal("second presentation past the deadline accepted")
	}
	if hits := w.guard.Stats().DegradedHits; hits != 0 {
		t.Errorf("DegradedHits = %d, want 0", hits)
	}
}

func TestResilienceHeartbeatTimeoutCollapsesDegradedCert(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, serial := w.enter(t)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatal(err)
	}
	if w.hb.WatchedCount() != 1 {
		t.Fatalf("WatchedCount = %d, want 1 (validated foreign cert liveness-watched)", w.hb.WatchedCount())
	}

	// Partition; within the heartbeat deadline, degraded validation
	// still answers.
	w.bus.SetFault(rpc.FailAll("login"))
	w.clk.Advance(testRevalidateAfter + 30*time.Second) // 1m30s silent < 2m deadline
	if dead := w.hb.Sweep(); len(dead) != 0 {
		t.Fatalf("Sweep before deadline = %v", dead)
	}
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("degraded validation before heartbeat deadline: %v", err)
	}

	// Past the heartbeat deadline the monitor publishes a synthetic
	// revocation, which clears the cached verdict — the stale-grace
	// window (which would still have minutes left) is cut short.
	w.clk.Advance(time.Minute) // 2m30s silent > 2m deadline
	dead := w.hb.Sweep()
	if len(dead) != 1 {
		t.Fatalf("Sweep past deadline = %v, want the watched cert", dead)
	}
	w.guardBr.Quiesce()
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); !errors.Is(err, ErrInvalidCredential) {
		t.Fatalf("validation after synthetic revocation: err = %v, want denial", err)
	}

	// Liveness recovering does not resurrect the entry by itself: the
	// issuer must be reachable again for a fresh confirmation.
	w.bus.SetFault(nil)
	w.clk.Advance(testCooldown)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("revalidation after partition healed: %v", err)
	}
	if valid, _ := w.login.CRStatus(serial); !valid {
		t.Error("issuer-side CR unexpectedly revoked")
	}
}

func TestResilienceAuthoritativeRevocationBeatsGrace(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, serial := w.enter(t)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatal(err)
	}
	// The issuer revokes. The brokers are separate (no relay), so the
	// guard's cache does NOT see the event — only re-confirmation can
	// reveal the revocation.
	w.login.Deactivate(serial, "credential withdrawn")
	w.issuerBr.Quiesce()

	// Within the revalidation window the cached (now wrong) verdict is
	// still served — this is the documented staleness bound...
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); err != nil {
		t.Fatalf("within revalidation window: %v", err)
	}
	// ...but at the deadline the issuer answers "revoked", and that
	// authoritative verdict denies immediately even though the
	// stale-grace window would have minutes left.
	w.clk.Advance(testRevalidateAfter + time.Second)
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); !errors.Is(err, ErrInvalidCredential) {
		t.Fatalf("revoked cert served past revalidation deadline: %v", err)
	}
	if hits := w.guard.Stats().DegradedHits; hits != 0 {
		t.Errorf("DegradedHits = %d, want 0 (issuer was reachable)", hits)
	}
}

func TestResilienceNoGraceWithoutPriorConfirmation(t *testing.T) {
	w := newResilientWorld(t)
	principal, creds, _ := w.enter(t)
	// Never validated before the partition: nothing to degrade to.
	w.bus.SetFault(rpc.FailAll("login"))
	if _, err := w.guard.Invoke(principal, "enter", nil, creds); !errors.Is(err, ErrInvalidCredential) {
		t.Fatalf("unconfirmed cert accepted during partition: %v", err)
	}
	if hits := w.guard.Stats().DegradedHits; hits != 0 {
		t.Errorf("DegradedHits = %d, want 0", hits)
	}
}
