package core

import (
	"fmt"

	"repro/internal/cert"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/sign"
)

// This file is the mutation spine of the unified async core: every
// credential-record issue/revoke, appointment issue/revoke and key
// install becomes a mutOp submitted to the service's per-shard
// sequencer (internal/seq). The shard's apply loop drains a batch,
// applies the state mutations under the shard lock once, emits the
// batch to the journal as one contiguous record group, then publishes
// the batch's events to the broker in the same order. Per shard,
// journal order == broker publish order == replication ship order (the
// shipper tails the journal, so ship order is disk order for free).
//
// The follower's replication applier reuses applyMutState verbatim via
// ApplyReplicated — there is no parallel copy of the apply logic.

// mutKind discriminates the sequencer's mutation operations.
type mutKind uint8

const (
	mutCRIssue mutKind = iota + 1
	mutCRRevoke
	mutApptIssue
	mutApptRevoke
	mutKeys
)

// mutOp is one mutation flowing through the sequencer: inputs filled by
// the caller, outputs filled by the apply loop. The submitting
// goroutine blocks on done until its op's batch has been applied,
// journaled and published.
type mutOp struct {
	kind mutKind

	// Inputs.
	serial  uint64
	reason  string
	subject string // crIssue: ground role key
	holder  string // crIssue: principal
	cr      *CredRecord
	appt    cert.AppointmentCertificate
	via     event.Event // crRevoke: triggering event (zero for cascade roots)
	// preIssued marks a crIssue whose record-store entry already exists
	// (the store lacks the SerialIssuer extension, so Activate had to
	// call Issue before submitting).
	preIssued bool
	// replicated marks an op applied from a replication stream: state
	// mutates, but nothing is journaled (the leader already did) and
	// events are returned to the follower rather than published here.
	replicated bool

	// Outputs.
	did    bool
	err    error
	ev     event.Event
	hasEv  bool
	rec    durable.Record
	hasRec bool
	refStr string // crRevoke: CRR string for the trace event
	hopNs  int64

	done chan struct{} // buffered(1); signalled once the op is fully processed
}

func newMutOp(kind mutKind) *mutOp {
	return &mutOp{kind: kind, done: make(chan struct{}, 1)}
}

// seqShardOf maps a serial to its sequencer shard. It matches the
// credential tables' own sharding (serial % crShards) so one shard's
// apply loop owns exactly one serialShard/recordShard pair.
func seqShardOf(serial uint64) int { return int(serial % crShards) }

// GroupJournal is the journal extension the sequencer prefers: a whole
// shard batch lands as one contiguous multi-record frame group, with a
// single durability wait when the batch carries any record that must
// not be lost (revocations, appointment issues, key installs).
// internal/durable implements it; a plain Journal still works — the
// batch falls back to the per-record hooks, in the same order.
type GroupJournal interface {
	Journal
	AppendGroup(recs []durable.Record, wait bool) error
}

// KeyJournal receives signing-key installs (see Service.InstallKeys).
type KeyJournal interface {
	KeysInstalled(service string, retain int, secrets []sign.Secret) error
}

// runMut pushes op through the sequencer and waits for completion. When
// the sequencer is disabled (ReadOnly, negative SeqMailbox) or already
// closed, the op applies inline on the caller's goroutine through the
// exact same state/journal/publish steps, one op at a time.
func (s *Service) runMut(op *mutOp) {
	if s.seq != nil {
		if err := s.seq.Submit(seqShardOf(op.shardSerial()), op); err == nil {
			<-op.done
			return
		}
		// Sequencer closed (service shutting down): apply directly so
		// late deactivations still land.
	}
	s.applyMutState(op, nil)
	s.journalMutLegacy(op)
	if op.hasEv && !op.replicated {
		s.broker.Publish(op.ev) //nolint:errcheck // fire-and-forget fan-out
	}
	s.finishMut(op)
}

// shardSerial picks the serial that routes the op to its shard. Every
// op about one credential or appointment serial must land on the same
// shard so its journal/publish order is total.
func (op *mutOp) shardSerial() uint64 {
	if op.kind == mutKeys {
		return 0
	}
	return op.serial
}

// applySeqBatch is the sequencer's Apply hook: the shard's whole batch
// in submission order. Phases — state, journal, publish — each run once
// per batch, which is where write batching "falls out": one credential
// table lock hold, one journal frame group (one fsync wait), one broker
// tap snapshot.
func (s *Service) applySeqBatch(shard int, ops []*mutOp) {
	sc := &s.seqScratch[shard%crShards]

	// Phase 1: state. Credential-table mutations are deferred into one
	// applyBatch call under a single serial-shard lock hold; everything
	// else (record store, appointments) applies per op in order.
	crb := sc.crMuts[:0]
	for _, op := range ops {
		crb = s.applyMutState(op, crb)
	}
	s.crs.applyBatch(shard, crb)
	for i := range crb {
		m := &crb[i]
		if m.insert == nil && m.removed != nil {
			s.retireCR(m.removed, m.remove)
		}
	}
	sc.crMuts = crb[:0]

	// Phase 2: journal, one contiguous group. wait mirrors the
	// per-record durability classes: a batch carrying any revocation,
	// appointment issue or key install must be durable before its
	// events publish; a pure-issue batch is fire-and-forget (the
	// failure direction of a lost issue is fail-closed denial).
	recs := sc.recs[:0]
	wait := false
	for _, op := range ops {
		if !op.hasRec {
			continue
		}
		recs = append(recs, op.rec)
		if op.kind != mutCRIssue {
			wait = true
		}
	}
	if len(recs) > 0 {
		if gj, ok := s.journal.(GroupJournal); ok {
			if err := gj.AppendGroup(recs, wait); err != nil {
				for _, op := range ops {
					if op.hasRec {
						op.err = err
					}
				}
			}
		} else {
			for _, op := range ops {
				s.journalMutLegacy(op)
			}
		}
	}
	sc.recs = recs[:0]

	// Phase 3: publish in batch order, then complete each op.
	evs := sc.evs[:0]
	for _, op := range ops {
		if op.hasEv && !op.replicated {
			evs = append(evs, op.ev)
		}
	}
	s.broker.PublishBatch(evs) //nolint:errcheck // fire-and-forget fan-out
	sc.evs = evs[:0]
	for _, op := range ops {
		s.finishMut(op)
		op.done <- struct{}{}
	}
}

// seqShardScratch is per-shard apply-loop scratch. Only the shard's
// combiner touches it (the sequencer guarantees one Apply at a time per
// shard), so reuse is free of locks and the steady state allocates
// nothing per batch.
type seqShardScratch struct {
	crMuts []crMut
	recs   []durable.Record
	evs    []event.Event
	_      [24]byte // pad: neighbouring shards' scratch on separate cache lines
}

// applyMutState applies op's state mutation and computes its outputs
// (journal record, event). It is THE apply function: the live path runs
// it inside the sequencer, the fallback path runs it inline, and the
// replication follower runs it via ApplyReplicated — identical
// semantics everywhere by construction.
//
// crb controls credential-table batching: non-nil defers table
// mutations to the caller (the shard apply loop commits them in one
// lock hold and retires removals); nil applies them immediately.
func (s *Service) applyMutState(op *mutOp, crb []crMut) []crMut {
	switch op.kind {
	case mutCRIssue:
		if op.replicated {
			// A revoked tombstone already present (stream replay
			// overlap after a reset) must not be resurrected by a
			// replayed issue.
			if st, serr := s.records.Status(op.serial); serr == nil && st.Exists && st.Revoked {
				op.did = true
				return crb
			}
			op.err = s.RestoreCR(op.serial, op.subject, op.holder, false, "")
			op.did = op.err == nil
			return crb
		}
		if !op.preIssued {
			if si, ok := s.records.(SerialIssuer); ok {
				si.IssueAt(op.serial, op.subject, op.holder)
			} else {
				op.err = fmt.Errorf("service %s: record store %T cannot issue at serial", s.name, s.records)
				return crb
			}
		}
		if crb != nil {
			crb = append(crb, crMut{insert: op.cr})
		} else {
			s.crs.insert(op.cr)
		}
		s.stats.activations.Add(1)
		if s.journal != nil {
			op.rec = durable.Record{Op: durable.OpCRIssue, Service: s.name, Serial: op.serial, Subject: op.subject, Holder: op.holder}
			op.hasRec = true
		}
		op.did = true

	case mutCRRevoke:
		wasLive, err := s.records.Revoke(op.serial, op.reason)
		if err != nil || !wasLive {
			// Already revoked, unknown, or the record store is
			// unreachable (validation also fails then — the safe
			// direction). A replicated revoke must still converge: the
			// leader journaled it, so if this store has never seen the
			// serial, install a tombstone, and always surface the event
			// so downstream caches drop the credential.
			if op.replicated {
				if st, serr := s.records.Status(op.serial); serr == nil && !st.Exists {
					op.err = s.RestoreCR(op.serial, "", "", true, op.reason)
				}
				s.buildRevokeEvent(op)
			}
			return crb
		}
		if crb != nil {
			crb = append(crb, crMut{remove: op.serial})
		} else if cr := s.crs.remove(op.serial); cr != nil {
			s.retireCR(cr, op.serial)
		}
		s.stats.revocations.Add(1)
		s.buildRevokeEvent(op)
		if s.journal != nil && !op.replicated {
			// Durable before published: once the revocation fans out,
			// remote caches drop the credential, and a crash must not
			// resurrect it.
			op.rec = durable.Record{Op: durable.OpCRRevoke, Service: s.name, Serial: op.serial, Reason: op.reason}
			op.hasRec = true
		}
		op.did = true

	case mutApptIssue:
		// Live and replicated issues share RestoreAppointment: it
		// installs the record and advances the serial allocator past
		// it, which is exactly what both need.
		s.RestoreAppointment(op.appt, false)
		if s.journal != nil && !op.replicated {
			a := op.appt
			op.rec = durable.Record{Op: durable.OpApptIssue, Service: s.name, Serial: a.Serial, Appt: &a}
			op.hasRec = true
		}
		op.did = true

	case mutApptRevoke:
		s.apptMu.Lock()
		rec, ok := s.appts[op.serial]
		if !ok || rec.revoked {
			s.apptMu.Unlock()
			return crb
		}
		rec.revoked = true
		key := rec.appt.Key()
		s.apptMu.Unlock()
		op.ev = event.Event{
			Topic:   TopicAppt(key),
			Kind:    event.KindRevoked,
			Subject: key,
			Reason:  op.reason,
			At:      s.clk.Now(),
		}
		op.hasEv = true
		if s.journal != nil && !op.replicated {
			// Durable before published, as with CR revocations.
			op.rec = durable.Record{Op: durable.OpApptRevoke, Service: s.name, Serial: op.serial, Reason: op.reason}
			op.hasRec = true
		}
		op.did = true

	case mutKeys:
		// No in-memory mutation: the ring already holds the keys. The
		// op exists to place the export into the journal stream.
		op.did = true
	}
	return crb
}

// buildRevokeEvent fills op.ev with the revocation event, propagating
// cascade provenance: a root mints the correlation id every dependent
// deactivation inherits; a dependent is one hop deeper and records the
// hop latency.
func (s *Service) buildRevokeEvent(op *mutOp) {
	ref := cert.CRR{Issuer: s.name, Serial: op.serial}
	op.refStr = ref.String()
	now := s.clk.Now()
	corr, depth := op.via.Corr, 0
	if corr == "" {
		// Serials are revoke-once, so the id is unique without a
		// counter.
		corr = fmt.Sprintf("cas:%s#%d", s.name, op.serial)
	} else {
		depth = op.via.Depth + 1
		if !op.via.At.IsZero() {
			op.hopNs = now.Sub(op.via.At).Nanoseconds()
		}
	}
	op.ev = event.Event{
		Topic:   TopicCR(ref),
		Kind:    event.KindRevoked,
		Subject: op.refStr,
		Reason:  op.reason,
		At:      now,
		Corr:    corr,
		Depth:   depth,
	}
	op.hasEv = true
}

// retireCR tears down a removed record's monitoring state: marks it
// dead (so a membership watch installed concurrently is cancelled
// rather than leaked), cancels its subscriptions and drops its env
// index entries.
func (s *Service) retireCR(cr *CredRecord, serial uint64) {
	cr.mu.Lock()
	cr.deactivated = true
	subs := cr.subs
	cr.subs = nil
	deps := cr.envDeps
	cr.mu.Unlock()
	s.envIndexRemove(deps, serial)
	for _, sub := range subs {
		sub.Cancel()
	}
}

// journalMutLegacy journals one op through the per-record Journal
// hooks — the fallback when no sequencer batch formed or the journal
// lacks AppendGroup. The hooks' own durability classes apply (issues
// async, revocations and appointment issues waited).
func (s *Service) journalMutLegacy(op *mutOp) {
	if s.journal == nil || !op.hasRec || op.replicated {
		return
	}
	switch op.kind {
	case mutCRIssue:
		s.journal.CRIssued(s.name, op.serial, op.subject, op.holder)
	case mutCRRevoke:
		s.journal.CRRevoked(s.name, op.serial, op.reason)
	case mutApptIssue:
		s.journal.ApptIssued(s.name, op.appt)
	case mutApptRevoke:
		s.journal.ApptRevoked(s.name, op.serial, op.reason)
	case mutKeys:
		if gj, ok := s.journal.(GroupJournal); ok {
			op.err = gj.AppendGroup([]durable.Record{op.rec}, true)
		} else if kj, ok := s.journal.(KeyJournal); ok {
			op.err = kj.KeysInstalled(s.name, op.rec.Retain, op.rec.Secrets)
		} else {
			op.err = fmt.Errorf("service %s: journal %T cannot record key installs", s.name, s.journal)
		}
	}
}

// finishMut records the op's observability tail: cascade histograms and
// the trace event for winning revocations. Runs after publish, matching
// the pre-sequencer order.
func (s *Service) finishMut(op *mutOp) {
	if op.kind != mutCRRevoke || !op.did {
		return
	}
	if op.hopNs > 0 {
		s.obsm.cascadeHopNs.Observe(op.hopNs)
	}
	s.obsm.cascadeDepth.Observe(int64(op.ev.Depth))
	s.obsm.trace(obs.TraceEvent{
		Kind: "revoke", Service: s.name, Subject: op.refStr,
		Outcome: "ok", Corr: op.ev.Corr, Depth: op.ev.Depth, Detail: op.reason, DurNs: op.hopNs,
	})
}

// ApplyReplicated applies one replicated journal record through the
// same applyMutState the live path uses, and returns the events the
// caller (a replication follower) must publish on its own broker, in
// order. Nothing is journaled — the record came from a journal.
func (s *Service) ApplyReplicated(r durable.Record) ([]event.Event, error) {
	op := newMutOp(0)
	op.replicated = true
	switch r.Op {
	case durable.OpCRIssue:
		op.kind = mutCRIssue
		op.serial, op.subject, op.holder = r.Serial, r.Subject, r.Holder
	case durable.OpCRRevoke:
		op.kind = mutCRRevoke
		op.serial, op.reason = r.Serial, r.Reason
	case durable.OpApptIssue:
		if r.Appt == nil {
			return nil, fmt.Errorf("service %s: appt-issue record %d without certificate", s.name, r.Serial)
		}
		op.kind = mutApptIssue
		op.serial, op.appt = r.Serial, *r.Appt
	case durable.OpApptRevoke:
		op.kind = mutApptRevoke
		op.serial, op.reason = r.Serial, r.Reason
	default:
		return nil, fmt.Errorf("service %s: op %q is not a replicable mutation", s.name, r.Op)
	}
	s.applyMutState(op, nil)
	s.finishMut(op)
	if op.hasEv {
		return []event.Event{op.ev}, op.err
	}
	return nil, op.err
}

// InstallKeys journals the service's signing-key export through the
// mutation sequencer, so a key install shares the ordered stream with
// the certificates those keys sign. First-boot daemons call this
// instead of exporting and appending by hand.
func (s *Service) InstallKeys() error {
	if s.journal == nil {
		return nil
	}
	secrets, retain := s.ring.Export()
	op := newMutOp(mutKeys)
	op.rec = durable.Record{Op: durable.OpKeys, Service: s.name, Retain: retain, Secrets: secrets}
	op.hasRec = true
	s.runMut(op)
	return op.err
}
