package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestSeqDisabledMatchesDefault runs the same mixed issue/revoke workload
// through the sequencer path (default config) and the direct inline path
// (SeqMailbox < 0) and checks that the observable service state agrees:
// same stats, same CR status transitions, same legacy journal hooks.
func TestSeqDisabledMatchesDefault(t *testing.T) {
	run := func(mailbox int) (Stats, []uint64) {
		w := newWorld(t)
		j := &captureJournal{}
		svc := w.service("login", `login.user <- env ok.`, func(c *Config) {
			c.SeqMailbox = mailbox
			c.Journal = j
		})
		alwaysTrue(svc, "ok")
		for i := 0; i < 40; i++ {
			rmc, err := svc.Activate(fmt.Sprintf("p%d", i), role("login", "user"), Presented{})
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if !svc.Revoke(rmc.Ref.Serial, "logout") {
					t.Fatalf("deactivate %d failed", rmc.Ref.Serial)
				}
			}
		}
		return svc.Stats(), j.revoked
	}

	seqStats, seqRevoked := run(0)
	dirStats, dirRevoked := run(-1)
	if seqStats.Activations != dirStats.Activations || seqStats.Revocations != dirStats.Revocations {
		t.Errorf("stats diverge: seq=%+v direct=%+v", seqStats, dirStats)
	}
	if len(seqRevoked) != len(dirRevoked) {
		t.Errorf("journal hooks diverge: seq=%v direct=%v", seqRevoked, dirRevoked)
	}
}

// TestSeqConcurrentChurn hammers one service with parallel activate/
// deactivate pairs through the sequencer and checks nothing is lost:
// every issued serial must end up revoked-but-known.
func TestSeqConcurrentChurn(t *testing.T) {
	w := newWorld(t)
	svc := w.service("login", `login.user <- env ok.`)
	alwaysTrue(svc, "ok")

	const workers, per = 8, 50
	serials := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rmc, err := svc.Activate(fmt.Sprintf("w%d-%d", g, i), role("login", "user"), Presented{})
				if err != nil {
					t.Error(err)
					return
				}
				serials[g] = append(serials[g], rmc.Ref.Serial)
				if !svc.Revoke(rmc.Ref.Serial, "logout") {
					t.Errorf("deactivate %d failed", rmc.Ref.Serial)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for g := range serials {
		for _, serial := range serials[g] {
			valid, exists := svc.CRStatus(serial)
			if valid || !exists {
				t.Fatalf("serial %d: status (%v,%v), want revoked tombstone", serial, valid, exists)
			}
		}
	}
	st := svc.Stats()
	if st.Activations != workers*per || st.Revocations != workers*per {
		t.Errorf("stats = %+v, want %d/%d", st, workers*per, workers*per)
	}
}

// TestSeqSubmitAfterClose checks the inline fallback: once Close has shut
// the sequencer, further mutations still apply directly rather than erroring.
func TestSeqSubmitAfterClose(t *testing.T) {
	w := newWorld(t)
	svc := w.service("login", `login.user <- env ok.`)
	alwaysTrue(svc, "ok")
	rmc, err := svc.Activate("p", role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	svc.seq.Close()
	if !svc.Revoke(rmc.Ref.Serial, "logout") {
		t.Fatal("deactivate after sequencer close failed")
	}
	if valid, exists := svc.CRStatus(rmc.Ref.Serial); valid || !exists {
		t.Fatalf("status = (%v,%v)", valid, exists)
	}
}
