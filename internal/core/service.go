package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/sign"
	"repro/internal/store"
)

// MethodImpl is the application logic behind an access-controlled method.
// It runs only after an authorization rule has admitted the call.
type MethodImpl func(args []names.Term) ([]byte, error)

// InvokeObserver is notified of every successful invocation; the audit
// layer (Sect. 6) attaches here.
type InvokeObserver func(rec InvokeRecord)

// InvokeRecord describes one successful, authorized invocation.
type InvokeRecord struct {
	Service   string
	Method    string
	Args      []names.Term
	Principal string
	// Credentials lists the keys of the credentials that satisfied the
	// authorization rule, e.g. the treating_doctor RMC recorded for
	// audit in the Fig. 3 scenario.
	Credentials []string
}

// Config configures a Service.
type Config struct {
	// Name is the service name; it must match the Service component of
	// every role the policy defines.
	Name string
	// Policy holds the service's activation and authorization rules.
	Policy policy.Policy
	// Broker is the shared active-middleware event broker.
	Broker *event.Broker
	// Caller issues callback validations to other services; nil is
	// permitted for services that never receive foreign certificates.
	Caller rpc.Caller
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Env is the environmental predicate registry; a fresh registry
	// with the comparison builtins is created when nil.
	Env *policy.Registry
	// KeyRetention is how many historical signing secrets remain valid
	// (minimum 1).
	KeyRetention int
	// CacheValidations enables the external credential record proxy
	// (ECR, Fig. 5): results of callback validation are cached and
	// invalidated by revocation events instead of re-validated per use.
	CacheValidations bool
	// Records holds credential-record validity state. Nil selects
	// service-local memory; a domain may instead share its replicated
	// CIV service across services (paper ref [10]; see
	// domain.CIVRecords).
	Records RecordStore
}

// Stats counts service activity for the experiment harness.
type Stats struct {
	Activations         uint64
	ActivationsDenied   uint64
	Invocations         uint64
	InvocationsDenied   uint64
	LocalValidations    uint64
	CallbackValidations uint64
	CacheHits           uint64
	Revocations         uint64
}

// Service is an OASIS-secured service (Fig. 2). It defines roles, enforces
// activation and authorization policy, issues and validates certificates,
// and monitors membership rules through the event infrastructure.
type Service struct {
	name   string
	pol    policy.Policy
	broker *event.Broker
	caller rpc.Caller
	clk    clock.Clock
	eval   *policy.Evaluator
	ring   *sign.KeyRing
	chal   *sign.Challenger

	cacheValidations bool

	records RecordStore

	mu             sync.Mutex
	nextApptSerial uint64
	crs            map[uint64]*CredRecord
	appts          map[uint64]*apptRecord
	methods        map[string]MethodImpl
	envIndex       map[string]map[uint64]struct{} // predicate -> CR serials with env deps
	cache          map[string]bool                // positive validations (presence == issuer said valid)
	cacheSubs      map[string]*event.Subscription
	observers      []InvokeObserver
	stats          Stats
	proofState     *sessionProofs

	stopTimers chan struct{}
	stopOnce   sync.Once
	timersWG   sync.WaitGroup
}

// CredRecord is the service-local monitoring state of one issued RMC (the
// CR of Figs. 1, 2 and 5): the membership dependencies whose failure must
// deactivate the role. Validity itself lives in the RecordStore, which may
// be service-local or a shared replicated CIV service.
type CredRecord struct {
	Serial    uint64
	Principal string
	Role      names.Role

	subs    []*event.Subscription
	envDeps []envDep
}

type envDep struct {
	name    string
	args    []names.Term
	negated bool
}

type apptRecord struct {
	serial  uint64
	appt    cert.AppointmentCertificate
	revoked bool
}

// NewService constructs a service from its configuration.
func NewService(cfg Config) (*Service, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("service name required")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("service %s: broker required", cfg.Name)
	}
	for _, r := range cfg.Policy.Rules {
		if r.Head.Name.Service != cfg.Name {
			return nil, fmt.Errorf("service %s: policy defines role %s owned by another service",
				cfg.Name, r.Head.Name)
		}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	env := cfg.Env
	if env == nil {
		env = policy.NewRegistry()
	}
	retain := cfg.KeyRetention
	if retain < 1 {
		retain = 1
	}
	ring, err := sign.NewKeyRing(retain, nil)
	if err != nil {
		return nil, fmt.Errorf("service %s: %w", cfg.Name, err)
	}
	records := cfg.Records
	if records == nil {
		records = newMemRecords()
	}
	return &Service{
		name:             cfg.Name,
		records:          records,
		pol:              cfg.Policy,
		broker:           cfg.Broker,
		caller:           cfg.Caller,
		clk:              clk,
		eval:             policy.NewEvaluator(env),
		ring:             ring,
		chal:             sign.NewChallenger(time.Minute, clk.Now, nil),
		cacheValidations: cfg.CacheValidations,
		crs:              make(map[uint64]*CredRecord),
		appts:            make(map[uint64]*apptRecord),
		methods:          make(map[string]MethodImpl),
		envIndex:         make(map[string]map[uint64]struct{}),
		cache:            make(map[string]bool),
		cacheSubs:        make(map[string]*event.Subscription),
		stopTimers:       make(chan struct{}),
	}, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Env exposes the environmental predicate registry for registration of
// service-specific predicates.
func (s *Service) Env() *policy.Registry { return s.eval.Env }

// Challenger exposes the ISO/9798 challenge-response endpoint (Sect. 4.1).
func (s *Service) Challenger() *sign.Challenger { return s.chal }

// Bind installs application logic for a method; invocation remains policy
// gated.
func (s *Service) Bind(method string, impl MethodImpl) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[method] = impl
}

// Observe registers an invocation observer (audit hook).
func (s *Service) Observe(o InvokeObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, o)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Policy returns the service's policy document.
func (s *Service) Policy() policy.Policy { return s.pol }

// Activate is path 1-2 of Fig. 2: the principal presents credentials to
// activate the requested role; on success a signed RMC is returned.
func (s *Service) Activate(principal string, requested names.Role, p Presented) (cert.RMC, error) {
	if requested.Name.Service != s.name {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownRole, requested.Name))
	}
	rules := s.pol.RulesFor(requested.Name)
	if len(rules) == 0 {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownRole, requested.Name))
	}
	creds, err := s.validateAll(principal, p)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	idx, sol, ok, err := s.eval.ActivateAny(rules, requested, creds)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	if !ok {
		s.mu.Lock()
		s.stats.ActivationsDenied++
		s.mu.Unlock()
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrActivationDenied, requested.Name))
	}
	rule := rules[idx]
	ground := rule.Head.Apply(sol.Subst)
	if !ground.IsGround() {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s left unbound parameters", ErrActivationDenied, ground))
	}

	serial, err := s.records.Issue(ground.Key(), principal)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	cr := &CredRecord{Serial: serial, Principal: principal, Role: ground}
	s.mu.Lock()
	s.crs[serial] = cr
	s.stats.Activations++
	s.mu.Unlock()

	ref := cert.CRR{Issuer: s.name, Serial: serial}
	rmc, err := cert.IssueRMC(s.ring, principal, ground, ref)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	if err := s.installMembership(cr, rule, sol); err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	return rmc, nil
}

// installMembership wires the membership rule of an activation: for every
// condition listed in the rule's membership set, the engine arranges to be
// notified when the underlying credential or environmental fact becomes
// invalid, deactivating the role immediately (Sect. 4, Fig. 5).
func (s *Service) installMembership(cr *CredRecord, rule policy.Rule, sol policy.Solution) error {
	for _, m := range rule.Membership {
		match := sol.Matches[m-1]
		switch {
		case match.Role != nil:
			if err := s.watchTopic(cr, "cr/"+match.Role.Key); err != nil {
				return err
			}
		case match.Appt != nil:
			if err := s.watchTopic(cr, TopicAppt(match.Appt.Key)); err != nil {
				return err
			}
			// Active expiry: when the appointment carries an expiry,
			// the dependent role deactivates at that instant rather
			// than surviving until the next validation.
			if !match.Appt.ExpiresAt.IsZero() {
				s.scheduleExpiry(cr.Serial, match.Appt.ExpiresAt, match.Appt.Key)
			}
		case match.EnvName != "":
			ec, _ := match.Cond.(policy.EnvCond)
			dep := envDep{name: match.EnvName, args: match.EnvArgs, negated: ec.Negated}
			s.mu.Lock()
			cr.envDeps = append(cr.envDeps, dep)
			set, ok := s.envIndex[dep.name]
			if !ok {
				set = make(map[uint64]struct{})
				s.envIndex[dep.name] = set
			}
			set[cr.Serial] = struct{}{}
			s.mu.Unlock()
		}
	}
	return nil
}

// scheduleExpiry deactivates a credential record when the clock reaches
// the expiry of an appointment its membership rule depends on. The timer
// goroutine is bounded by the service lifetime (Close).
func (s *Service) scheduleExpiry(serial uint64, at time.Time, apptKey string) {
	// Register the timer synchronously so that a simulated clock
	// advanced immediately after activation still fires it.
	fire := s.clk.After(at.Sub(s.clk.Now()))
	s.timersWG.Add(1)
	go func() {
		defer s.timersWG.Done()
		select {
		case <-fire:
			s.Deactivate(serial, "appointment expired: "+apptKey)
		case <-s.stopTimers:
		}
	}()
}

func (s *Service) watchTopic(cr *CredRecord, topic string) error {
	serial := cr.Serial
	sub, err := s.broker.Subscribe(topic, func(ev event.Event) {
		if ev.Kind == event.KindRevoked {
			s.Deactivate(serial, "dependency revoked: "+ev.Subject)
		}
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	cr.subs = append(cr.subs, sub)
	s.mu.Unlock()
	return nil
}

// Deactivate invalidates a credential record and publishes the revocation
// on its event channel, collapsing the dependent role subtree. It is
// idempotent.
func (s *Service) Deactivate(serial uint64, reason string) {
	wasLive, err := s.records.Revoke(serial, reason)
	if err != nil || !wasLive {
		// Already revoked, unknown, or the record store is unreachable
		// (in which case validation also fails, which is the safe
		// direction).
		return
	}
	s.mu.Lock()
	var subs []*event.Subscription
	if cr, ok := s.crs[serial]; ok {
		subs = cr.subs
		cr.subs = nil
		for _, dep := range cr.envDeps {
			if set, ok := s.envIndex[dep.name]; ok {
				delete(set, serial)
				if len(set) == 0 {
					delete(s.envIndex, dep.name)
				}
			}
		}
	}
	s.stats.Revocations++
	s.mu.Unlock()

	for _, sub := range subs {
		sub.Cancel()
	}
	ref := cert.CRR{Issuer: s.name, Serial: serial}
	s.broker.Publish(event.Event{ //nolint:errcheck // revocation is fire-and-forget fan-out
		Topic:   TopicCR(ref),
		Kind:    event.KindRevoked,
		Subject: ref.String(),
		Reason:  reason,
		At:      s.clk.Now(),
	})
}

// NotifyEnvChanged re-checks the membership conditions of every active
// role whose membership rule references the named predicate, deactivating
// roles whose conditions no longer hold. Services call this when
// environmental state changes; WatchStore wires it to a fact store
// automatically.
func (s *Service) NotifyEnvChanged(predicate string) {
	s.mu.Lock()
	set := s.envIndex[predicate]
	serials := make([]uint64, 0, len(set))
	for serial := range set {
		serials = append(serials, serial)
	}
	s.mu.Unlock()

	for _, serial := range serials {
		s.mu.Lock()
		var deps []envDep
		if cr, ok := s.crs[serial]; ok {
			deps = append(deps, cr.envDeps...)
		}
		s.mu.Unlock()
		for _, dep := range deps {
			if dep.name != predicate {
				continue
			}
			if !s.envHolds(dep) {
				s.Deactivate(serial, fmt.Sprintf("membership condition failed: %senv %s",
					negPrefix(dep.negated), dep.name))
				break
			}
		}
	}
}

func negPrefix(negated bool) string {
	if negated {
		return "!"
	}
	return ""
}

// envHolds re-evaluates a ground environmental membership condition.
func (s *Service) envHolds(dep envDep) bool {
	pred, ok := s.eval.Env.Lookup(dep.name)
	if !ok {
		return false // predicate disappeared: fail safe
	}
	sols := pred(dep.args, names.NewSubstitution())
	if dep.negated {
		return len(sols) == 0
	}
	return len(sols) > 0
}

// WatchStore connects a fact store to membership monitoring: whenever a
// relation in the map changes, the corresponding predicate's membership
// conditions are re-checked. relationToPredicate maps store relation names
// to the predicate names used in policy.
func (s *Service) WatchStore(db *store.Store, relationToPredicate map[string]string) {
	mapping := make(map[string]string, len(relationToPredicate))
	for rel, pred := range relationToPredicate {
		mapping[rel] = pred
	}
	db.Observe(func(relation string, tuple []names.Term, added bool) {
		if pred, ok := mapping[relation]; ok {
			s.NotifyEnvChanged(pred)
			s.broker.Publish(event.Event{ //nolint:errcheck
				Topic:   TopicEnv(s.name, pred),
				Kind:    event.KindChanged,
				Subject: pred,
				At:      s.clk.Now(),
			})
		}
	})
}

// Invoke is path 3-4 of Fig. 2: the principal presents credentials with a
// method invocation; the service checks its authorization rules and any
// environmental constraints, then runs the bound implementation.
func (s *Service) Invoke(principal, method string, args []names.Term, p Presented) ([]byte, error) {
	rules := s.pol.AuthFor(method)
	if len(rules) == 0 {
		return nil, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownMethod, method))
	}
	if err := s.proofFreshEnough(principal, method); err != nil {
		return nil, wrap(s.name, err)
	}
	creds, err := s.validateAll(principal, p)
	if err != nil {
		return nil, wrap(s.name, err)
	}
	for _, rule := range rules {
		sol, ok, err := s.eval.Authorize(rule, args, creds)
		if err != nil {
			return nil, wrap(s.name, err)
		}
		if !ok {
			continue
		}
		s.mu.Lock()
		s.stats.Invocations++
		impl := s.methods[method]
		observers := make([]InvokeObserver, len(s.observers))
		copy(observers, s.observers)
		s.mu.Unlock()

		rec := InvokeRecord{
			Service:     s.name,
			Method:      method,
			Args:        args,
			Principal:   principal,
			Credentials: credentialKeys(sol),
		}
		for _, o := range observers {
			o(rec)
		}
		if impl == nil {
			return nil, nil
		}
		return impl(args)
	}
	s.mu.Lock()
	s.stats.InvocationsDenied++
	s.mu.Unlock()
	return nil, wrap(s.name, fmt.Errorf("%w: %s", ErrInvocationDenied, method))
}

func credentialKeys(sol policy.Solution) []string {
	var keys []string
	for _, m := range sol.Matches {
		switch {
		case m.Role != nil:
			keys = append(keys, m.Role.Key)
		case m.Appt != nil:
			keys = append(keys, m.Appt.Key)
		}
	}
	return keys
}

// EndSession deactivates every live credential record issued to the
// principal by this service (the logout of Sect. 4: deactivating the
// initial roles collapses the whole session tree through the event
// channels). It returns the number of records deactivated.
func (s *Service) EndSession(principal string) int {
	s.mu.Lock()
	serials := make([]uint64, 0, len(s.crs))
	for serial, cr := range s.crs {
		if cr.Principal == principal {
			serials = append(serials, serial)
		}
	}
	s.mu.Unlock()
	n := 0
	for _, serial := range serials {
		if valid, _ := s.CRStatus(serial); valid {
			s.Deactivate(serial, "session ended")
			n++
		}
	}
	return n
}

// ActiveRoles lists the ground roles currently active (non-revoked CRs)
// for a principal, in serial order.
func (s *Service) ActiveRoles(principal string) []names.Role {
	type entry struct {
		serial uint64
		role   names.Role
	}
	s.mu.Lock()
	candidates := make([]entry, 0, len(s.crs))
	for serial, cr := range s.crs {
		if cr.Principal == principal {
			candidates = append(candidates, entry{serial, cr.Role})
		}
	}
	s.mu.Unlock()

	sort.Slice(candidates, func(i, j int) bool { return candidates[i].serial < candidates[j].serial })
	var out []names.Role
	for _, c := range candidates {
		status, err := s.records.Status(c.serial)
		if err == nil && status.Exists && !status.Revoked {
			out = append(out, c.role)
		}
	}
	return out
}

// CRStatus reports whether a credential record exists and is valid.
func (s *Service) CRStatus(serial uint64) (valid, exists bool) {
	status, err := s.records.Status(serial)
	if err != nil || !status.Exists {
		return false, false
	}
	return !status.Revoked, true
}
