package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/seq"
	"repro/internal/sign"
	"repro/internal/store"
)

// MethodImpl is the application logic behind an access-controlled method.
// It runs only after an authorization rule has admitted the call.
type MethodImpl func(args []names.Term) ([]byte, error)

// InvokeObserver is notified of every successful invocation; the audit
// layer (Sect. 6) attaches here.
type InvokeObserver func(rec InvokeRecord)

// InvokeRecord describes one successful, authorized invocation.
type InvokeRecord struct {
	Service   string
	Method    string
	Args      []names.Term
	Principal string
	// Credentials lists the keys of the credentials that satisfied the
	// authorization rule, e.g. the treating_doctor RMC recorded for
	// audit in the Fig. 3 scenario.
	Credentials []string
}

// Config configures a Service.
type Config struct {
	// Name is the service name; it must match the Service component of
	// every role the policy defines.
	Name string
	// Policy holds the service's activation and authorization rules.
	Policy policy.Policy
	// Broker is the shared active-middleware event broker.
	Broker *event.Broker
	// Caller issues callback validations to other services; nil is
	// permitted for services that never receive foreign certificates.
	Caller rpc.Caller
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Env is the environmental predicate registry; a fresh registry
	// with the comparison builtins is created when nil.
	Env *policy.Registry
	// KeyRetention is how many historical signing secrets remain valid
	// (minimum 1).
	KeyRetention int
	// CacheValidations enables the external credential record proxy
	// (ECR, Fig. 5): results of callback validation are cached and
	// invalidated by revocation events instead of re-validated per use.
	CacheValidations bool
	// CacheMaxEntries bounds the ECR validation cache. 0 (the default)
	// leaves it unbounded — the classic ECR behaviour, fine when the
	// foreign-credential population is small. At million-principal scale
	// every cached verdict also pins a broker subscription, so a bound
	// with second-chance eviction (see valCache) keeps the resident cost
	// proportional to the hot working set rather than to every
	// credential ever presented. Evictions are counted in Stats and
	// exposed on /metrics; an evicted credential simply re-validates by
	// callback on next presentation.
	CacheMaxEntries int
	// BatchWindow bounds how long a callback validation queued behind an
	// outstanding flight to the same issuer waits for companions before
	// departing as a validate_batch call (see batch.go; a validation
	// with no flight outstanding always departs immediately). 0 selects
	// the ~1ms default; negative disables coalescing entirely.
	BatchWindow time.Duration
	// RevalidateAfter bounds how long a cached positive validation is
	// trusted without re-confirming with the issuer (0 = event-driven
	// invalidation only, the classic ECR behaviour). Setting it enables
	// the degraded-operation path below.
	RevalidateAfter time.Duration
	// StaleGrace is the bounded degraded-operation window: when
	// re-confirmation fails because the issuer is unreachable (circuit
	// open, partition, timeout), a previously-confirmed certificate
	// keeps validating for at most this long past RevalidateAfter.
	// Authoritative "revoked" answers and revocation events — including
	// the HeartbeatMonitor's synthetic revocation on issuer silence —
	// deny immediately regardless of the window. 0 disables the grace:
	// any re-confirmation failure denies (fully fail-closed).
	StaleGrace time.Duration
	// Heartbeats, when set, liveness-watches every foreign RMC that
	// enters the validation cache: if the issuer's heartbeats stop, the
	// monitor's synthetic revocation clears the cached verdict and
	// collapses dependent roles, bounding the stale-grace window by the
	// heartbeat deadline (Fig. 5 fail-safe stance).
	Heartbeats *event.HeartbeatMonitor
	// Records holds credential-record validity state. Nil selects
	// service-local memory; a domain may instead share its replicated
	// CIV service across services (paper ref [10]; see
	// domain.CIVRecords).
	Records RecordStore
	// Journal, when set, receives every credential-record and
	// appointment issue/revoke so durable state (internal/durable) can
	// replay them after a crash. Nil disables journaling.
	Journal Journal
	// KeyRing, when set, is the signing key ring to use — a ring
	// restored from the journal, so certificates issued before a crash
	// still verify. Nil generates a fresh ring.
	KeyRing *sign.KeyRing
	// SeqMailbox bounds each sequencer shard's mailbox (the unified
	// async core's per-shard mutation queue; see internal/seq and
	// seqmut.go). 0 selects the default depth (256); negative disables
	// the sequencer entirely, applying every mutation inline on the
	// caller's goroutine — the pre-sequencer behaviour, kept for
	// baseline comparison (E20) and for stores that need it. A full
	// mailbox blocks the submitting mutation, which is the end-to-end
	// backpressure contract: a slow journal or broker pushes back on
	// the RPC layer instead of growing an unbounded queue.
	SeqMailbox int
	// ReadOnly makes the wire handler refuse the mutating methods
	// (activate, invoke, appoint, revoke, end_session) with ErrReadOnly.
	// A follower replica (internal/replica) serves validation locally
	// from replicated state but must never mint or revoke credentials
	// itself — those belong to the leader, which the replica proxies to
	// under its lease. Validation methods are unaffected, and the
	// replication applier still mutates through the Restore*/Revoke APIs
	// directly (they are not wire methods).
	ReadOnly bool
	// Obs, when set, registers the service's counters and latency
	// histograms (activation, callback validation, revocation cascade)
	// with the observability registry under a service label.
	Obs *obs.Registry
	// Trace, when set, records activation, validation, denial and
	// revocation-cascade trace events. Both may be nil independently;
	// nil disables that half of the instrumentation at one-branch cost.
	Trace *obs.Tracer
}

// Stats is a snapshot of the service counters for the experiment harness.
type Stats struct {
	Activations         uint64
	ActivationsDenied   uint64
	Invocations         uint64
	InvocationsDenied   uint64
	LocalValidations    uint64
	CallbackValidations uint64
	CacheHits           uint64
	// CacheMisses counts foreign validations that found no fresh cached
	// verdict and went to the issuer (first presentation, staleness, or
	// re-presentation after eviction).
	CacheMisses uint64
	// CacheEvictions counts cached verdicts discarded by the
	// CacheMaxEntries bound's second-chance sweep.
	CacheEvictions uint64
	// DegradedHits counts validations answered from a stale cache entry
	// inside the StaleGrace window while the issuer was unreachable.
	DegradedHits uint64
	Revocations  uint64
	// BatchesSent counts validate_batch wire calls issued; each carried
	// two or more coalesced validations.
	BatchesSent uint64
	// BatchedValidations counts callback validations answered via a
	// validate_batch call (CallbackValidations includes them too).
	BatchedValidations uint64
}

// statCounters is the live form of Stats: independent atomics so the
// authorize-and-dispatch path never takes a lock to count.
type statCounters struct {
	activations         atomic.Uint64
	activationsDenied   atomic.Uint64
	invocations         atomic.Uint64
	invocationsDenied   atomic.Uint64
	localValidations    atomic.Uint64
	callbackValidations atomic.Uint64
	cacheHits           atomic.Uint64
	cacheMisses         atomic.Uint64
	cacheEvictions      atomic.Uint64
	degradedHits        atomic.Uint64
	revocations         atomic.Uint64
	batchesSent         atomic.Uint64
	batchedValidations  atomic.Uint64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		Activations:         c.activations.Load(),
		ActivationsDenied:   c.activationsDenied.Load(),
		Invocations:         c.invocations.Load(),
		InvocationsDenied:   c.invocationsDenied.Load(),
		LocalValidations:    c.localValidations.Load(),
		CallbackValidations: c.callbackValidations.Load(),
		CacheHits:           c.cacheHits.Load(),
		CacheMisses:         c.cacheMisses.Load(),
		CacheEvictions:      c.cacheEvictions.Load(),
		DegradedHits:        c.degradedHits.Load(),
		Revocations:         c.revocations.Load(),
		BatchesSent:         c.batchesSent.Load(),
		BatchedValidations:  c.batchedValidations.Load(),
	}
}

// Service is an OASIS-secured service (Fig. 2). It defines roles, enforces
// activation and authorization policy, issues and validates certificates,
// and monitors membership rules through the event infrastructure.
//
// Concurrency: there is no service-wide lock. State is split per concern —
// the sharded credential-record table (crs), the lock-free validation
// cache (vcache), copy-on-write registration maps (methods, observers),
// atomic counters (stats), and small dedicated mutexes for the cold maps
// (appointments, env index) — so concurrent invocations on the hot path
// synchronise only through atomics. See DESIGN.md "Concurrency model".
type Service struct {
	name string
	pol  policy.Policy
	// authIndex and roleIndex are immutable per-method / per-role views
	// of the policy, precomputed so the hot paths do not rescan (and
	// reallocate) the rule lists on every request.
	authIndex map[string][]policy.AuthRule
	roleIndex map[names.RoleName][]policy.Rule
	broker    *event.Broker
	caller    rpc.Caller
	clk       clock.Clock
	eval      *policy.Evaluator
	ring      *sign.KeyRing
	chal      *sign.Challenger

	cacheValidations bool
	revalidateAfter  time.Duration
	staleGrace       time.Duration
	readOnly         bool
	hb               *event.HeartbeatMonitor

	records RecordStore
	journal Journal

	crs    crTable
	vcache valCache
	stats  statCounters
	obsm   serviceObs
	batch  *batcher

	// seq is the per-shard mutation sequencer (nil when disabled):
	// every issue/revoke/appoint/key-install flows through one ordered
	// apply loop per shard. seqScratch is the apply loops' per-shard
	// reusable buffers.
	seq        *seq.Sequencer[*mutOp]
	seqScratch [crShards]seqShardScratch

	// setupMu serialises writers of the copy-on-write registration
	// snapshots below; readers load them without locking.
	setupMu   sync.Mutex
	methods   atomic.Value // map[string]MethodImpl
	observers atomic.Value // []InvokeObserver

	envMu    sync.Mutex
	envIndex map[string]map[uint64]struct{} // predicate -> CR serials with env deps

	apptMu         sync.Mutex
	nextApptSerial uint64
	appts          map[uint64]*apptRecord

	// restoredMu guards restoredCRs: live credential records re-created
	// from the journal, indexed by holder. Restored records have no crs
	// entry (the session died with the crash), so EndSession consults
	// this index to keep logout able to revoke pre-crash certificates.
	restoredMu  sync.Mutex
	restoredCRs map[string][]uint64

	proofState *sessionProofs

	stopTimers chan struct{}
	stopOnce   sync.Once
	timersWG   sync.WaitGroup
}

// CredRecord is the service-local monitoring state of one issued RMC (the
// CR of Figs. 1, 2 and 5): the membership dependencies whose failure must
// deactivate the role. Validity itself lives in the RecordStore, which may
// be service-local or a shared replicated CIV service.
type CredRecord struct {
	Serial    uint64
	Principal string
	Role      names.Role

	// mu guards the mutable monitoring state below; deactivated marks
	// the record dead so a membership watch installed concurrently with
	// deactivation is cancelled rather than leaked.
	mu          sync.Mutex
	deactivated bool
	subs        []*event.Subscription
	envDeps     []envDep
}

type envDep struct {
	name    string
	args    []names.Term
	negated bool
}

type apptRecord struct {
	serial  uint64
	appt    cert.AppointmentCertificate
	revoked bool
}

// NewService constructs a service from its configuration.
func NewService(cfg Config) (*Service, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("service name required")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("service %s: broker required", cfg.Name)
	}
	for _, r := range cfg.Policy.Rules {
		if r.Head.Name.Service != cfg.Name {
			return nil, fmt.Errorf("service %s: policy defines role %s owned by another service",
				cfg.Name, r.Head.Name)
		}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	env := cfg.Env
	if env == nil {
		env = policy.NewRegistry()
	}
	retain := cfg.KeyRetention
	if retain < 1 {
		retain = 1
	}
	ring := cfg.KeyRing
	if ring == nil {
		var err error
		ring, err = sign.NewKeyRing(retain, nil)
		if err != nil {
			return nil, fmt.Errorf("service %s: %w", cfg.Name, err)
		}
	}
	records := cfg.Records
	if records == nil {
		records = newMemRecords()
	}
	authIndex := make(map[string][]policy.AuthRule)
	for _, r := range cfg.Policy.Auth {
		authIndex[r.Method] = append(authIndex[r.Method], r)
	}
	roleIndex := make(map[names.RoleName][]policy.Rule)
	for _, r := range cfg.Policy.Rules {
		roleIndex[r.Head.Name] = append(roleIndex[r.Head.Name], r)
	}
	s := &Service{
		name:             cfg.Name,
		records:          records,
		journal:          cfg.Journal,
		pol:              cfg.Policy,
		authIndex:        authIndex,
		roleIndex:        roleIndex,
		broker:           cfg.Broker,
		caller:           cfg.Caller,
		clk:              clk,
		eval:             policy.NewEvaluator(env),
		ring:             ring,
		chal:             sign.NewChallenger(time.Minute, clk.Now, nil),
		cacheValidations: cfg.CacheValidations,
		revalidateAfter:  cfg.RevalidateAfter,
		staleGrace:       cfg.StaleGrace,
		readOnly:         cfg.ReadOnly,
		hb:               cfg.Heartbeats,
		envIndex:         make(map[string]map[uint64]struct{}),
		appts:            make(map[uint64]*apptRecord),
		proofState:       newSessionProofs(),
		stopTimers:       make(chan struct{}),
	}
	s.vcache.max = cfg.CacheMaxEntries
	s.methods.Store(map[string]MethodImpl{})
	s.observers.Store([]InvokeObserver{})
	s.obsm = newServiceObs(s, cfg.Name, cfg.Obs, cfg.Trace)
	s.batch = newBatcher(s, cfg.BatchWindow)
	// The mutation sequencer. ReadOnly replicas never mutate through
	// the public API (the replication applier calls ApplyReplicated
	// directly, already serialised by the stream), so they skip it.
	if !cfg.ReadOnly && cfg.SeqMailbox >= 0 {
		s.seq = seq.New(seq.Config[*mutOp]{
			Shards: crShards,
			Depth:  cfg.SeqMailbox,
			Apply:  s.applySeqBatch,
			Name:   cfg.Name,
			Obs:    cfg.Obs,
		})
	}
	return s, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Env exposes the environmental predicate registry for registration of
// service-specific predicates.
func (s *Service) Env() *policy.Registry { return s.eval.Env }

// Challenger exposes the ISO/9798 challenge-response endpoint (Sect. 4.1).
func (s *Service) Challenger() *sign.Challenger { return s.chal }

// Bind installs application logic for a method; invocation remains policy
// gated. The method table is copied on write so Invoke reads it without a
// lock.
func (s *Service) Bind(method string, impl MethodImpl) {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	old := s.methods.Load().(map[string]MethodImpl)
	next := make(map[string]MethodImpl, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[method] = impl
	s.methods.Store(next)
}

// Observe registers an invocation observer (audit hook).
func (s *Service) Observe(o InvokeObserver) {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	old := s.observers.Load().([]InvokeObserver)
	next := make([]InvokeObserver, len(old), len(old)+1)
	copy(next, old)
	s.observers.Store(append(next, o))
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats { return s.stats.snapshot() }

// ResidentCRs reports the live credential-record population (the
// service's resident principal-state footprint, one record per active
// role instance).
func (s *Service) ResidentCRs() int64 { return s.crs.residents() }

// CachedValidations reports the ECR validation cache's entry population.
func (s *Service) CachedValidations() int64 { return s.vcache.count.Load() }

// Policy returns the service's policy document.
func (s *Service) Policy() policy.Policy { return s.pol }

// Activate is path 1-2 of Fig. 2: the principal presents credentials to
// activate the requested role; on success a signed RMC is returned.
func (s *Service) Activate(principal string, requested names.Role, p Presented) (cert.RMC, error) {
	start := time.Now()
	if requested.Name.Service != s.name {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownRole, requested.Name))
	}
	rules := s.roleIndex[requested.Name]
	if len(rules) == 0 {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownRole, requested.Name))
	}
	sc := getCredsScratch()
	defer sc.release()
	creds, err := s.validateAll(principal, p, sc)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	idx, sol, ok, err := s.eval.ActivateAny(rules, requested, creds)
	if err != nil {
		return cert.RMC{}, wrap(s.name, err)
	}
	if !ok {
		s.stats.activationsDenied.Add(1)
		s.obsm.trace(obs.TraceEvent{
			Kind: "activate", Service: s.name, Subject: principal,
			Outcome: "denied", Detail: requested.Name.String(),
		})
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s", ErrActivationDenied, requested.Name))
	}
	rule := rules[idx]
	// Intern the ground role before it becomes resident state: the role
	// name and parameter vocabulary is tiny relative to the principal
	// population, so every credential record spelling the same hospital,
	// ward or role shares one canonical copy instead of retaining the
	// request's wire-decoded strings.
	ground := rule.Head.Apply(sol.Subst).Intern()
	if !ground.IsGround() {
		return cert.RMC{}, wrap(s.name, fmt.Errorf("%w: %s left unbound parameters", ErrActivationDenied, ground))
	}

	subject := ground.Key()
	// Allocate the serial up front (it is signed into the RMC and
	// names the journal record), then submit the issue to the shard's
	// sequencer: the record store entry, credential-table insert and
	// journal append all happen inside the ordered apply loop. Stores
	// without the SerialIssuer extension issue eagerly instead and the
	// apply loop only publishes the table entry.
	op := newMutOp(mutCRIssue)
	op.subject, op.holder = subject, principal
	if si, ok := s.records.(SerialIssuer); ok {
		op.serial = si.NextSerial()
	} else {
		serial, err := s.records.Issue(subject, principal)
		if err != nil {
			return cert.RMC{}, wrap(s.name, err)
		}
		op.serial, op.preIssued = serial, true
	}
	serial := op.serial
	cr := &CredRecord{Serial: serial, Principal: principal, Role: ground}
	op.cr = cr
	s.runMut(op)
	if op.err != nil && !op.did {
		return cert.RMC{}, wrap(s.name, op.err)
	}

	ref := cert.CRR{Issuer: s.name, Serial: serial}
	rmc, err := cert.IssueRMC(s.ring, principal, ground, ref)
	if err != nil {
		s.deactivate(serial, "activation aborted")
		return cert.RMC{}, wrap(s.name, err)
	}
	if err := s.installMembership(cr, rule, sol); err != nil {
		s.deactivate(serial, "activation aborted")
		return cert.RMC{}, wrap(s.name, err)
	}
	s.obsm.activateNs.ObserveSince(start)
	s.obsm.trace(obs.TraceEvent{
		Kind: "activate", Service: s.name, Subject: principal,
		Outcome: "ok", Corr: ref.String(), Detail: ground.String(),
		DurNs: time.Since(start).Nanoseconds(),
	})
	return rmc, nil
}

// installMembership wires the membership rule of an activation: for every
// condition listed in the rule's membership set, the engine arranges to be
// notified when the underlying credential or environmental fact becomes
// invalid, deactivating the role immediately (Sect. 4, Fig. 5).
func (s *Service) installMembership(cr *CredRecord, rule policy.Rule, sol policy.Solution) error {
	for _, m := range rule.Membership {
		match := sol.Matches[m-1]
		switch {
		case match.Role != nil:
			if err := s.watchTopic(cr, "cr/"+match.Role.Key); err != nil {
				return err
			}
		case match.Appt != nil:
			if err := s.watchTopic(cr, TopicAppt(match.Appt.Key)); err != nil {
				return err
			}
			// Active expiry: when the appointment carries an expiry,
			// the dependent role deactivates at that instant rather
			// than surviving until the next validation.
			if !match.Appt.ExpiresAt.IsZero() {
				s.scheduleExpiry(cr.Serial, match.Appt.ExpiresAt, match.Appt.Key)
			}
		case match.EnvName != "":
			ec, _ := match.Cond.(policy.EnvCond)
			dep := envDep{name: match.EnvName, args: match.EnvArgs, negated: ec.Negated}
			cr.mu.Lock()
			if cr.deactivated {
				cr.mu.Unlock()
				continue
			}
			cr.envDeps = append(cr.envDeps, dep)
			cr.mu.Unlock()

			s.envIndexAdd(dep.name, cr.Serial)
			// The record may have been deactivated between the append
			// and the index insert; undo the insert so dead serials do
			// not accumulate in the index.
			cr.mu.Lock()
			dead := cr.deactivated
			cr.mu.Unlock()
			if dead {
				s.envIndexRemove([]envDep{dep}, cr.Serial)
			}
		}
	}
	return nil
}

func (s *Service) envIndexAdd(predicate string, serial uint64) {
	s.envMu.Lock()
	set, ok := s.envIndex[predicate]
	if !ok {
		set = make(map[uint64]struct{})
		s.envIndex[predicate] = set
	}
	set[serial] = struct{}{}
	s.envMu.Unlock()
}

func (s *Service) envIndexRemove(deps []envDep, serial uint64) {
	if len(deps) == 0 {
		return
	}
	s.envMu.Lock()
	for _, dep := range deps {
		if set, ok := s.envIndex[dep.name]; ok {
			delete(set, serial)
			if len(set) == 0 {
				delete(s.envIndex, dep.name)
			}
		}
	}
	s.envMu.Unlock()
}

// scheduleExpiry deactivates a credential record when the clock reaches
// the expiry of an appointment its membership rule depends on. The timer
// goroutine is bounded by the service lifetime (Close).
func (s *Service) scheduleExpiry(serial uint64, at time.Time, apptKey string) {
	// Register the timer synchronously so that a simulated clock
	// advanced immediately after activation still fires it. When the
	// clock supports cancellation the waiter is deregistered on Close,
	// so a stopped service does not leave far-future expiry waiters
	// accumulating in a long-lived simulated clock.
	var fire <-chan time.Time
	cancel := func() {}
	if c, ok := s.clk.(clock.Canceling); ok {
		fire, cancel = c.AfterCancel(at.Sub(s.clk.Now()))
	} else {
		fire = s.clk.After(at.Sub(s.clk.Now()))
	}
	s.timersWG.Add(1)
	go func() {
		defer s.timersWG.Done()
		select {
		case <-fire:
			s.Deactivate(serial, "appointment expired: "+apptKey)
		case <-s.stopTimers:
			cancel()
		}
	}()
}

func (s *Service) watchTopic(cr *CredRecord, topic string) error {
	serial := cr.Serial
	sub, err := s.broker.Subscribe(topic, func(ev event.Event) {
		if ev.Kind == event.KindRevoked {
			// Propagate the cascade provenance: the dependent revocation
			// inherits the root's correlation id one hop deeper.
			s.deactivateCascade(serial, "dependency revoked: "+ev.Subject, ev)
		}
	})
	if err != nil {
		return err
	}
	cr.mu.Lock()
	if cr.deactivated {
		cr.mu.Unlock()
		sub.Cancel()
		return nil
	}
	cr.subs = append(cr.subs, sub)
	cr.mu.Unlock()
	return nil
}

// Deactivate invalidates a credential record and publishes the revocation
// on its event channel, collapsing the dependent role subtree. It is
// idempotent.
func (s *Service) Deactivate(serial uint64, reason string) {
	s.deactivate(serial, reason)
}

// Revoke is Deactivate with an acknowledgement: it reports whether this
// call performed the revocation (false when the serial is unknown or the
// record was already revoked). Remote revocation — the gateway's
// /revoke endpoint and the "revoke" wire method — needs the distinction
// to answer idempotent retries honestly.
func (s *Service) Revoke(serial uint64, reason string) bool {
	return s.deactivate(serial, reason)
}

// deactivate revokes a record as a cascade root (no triggering event).
func (s *Service) deactivate(serial uint64, reason string) bool {
	return s.deactivateCascade(serial, reason, event.Event{})
}

// deactivateCascade reports whether this call performed the revocation:
// the RecordStore's revoke-once semantics make concurrent deactivations of
// the same serial (logout racing revocation) resolve to exactly one
// winner. via is the revocation event that triggered this deactivation
// (zero for cascade roots); its correlation id and depth are propagated on
// the published revocation so trace consumers can reconstruct the whole
// collapse, and the hop latency (via.At to now) lands in the cascade
// histogram.
func (s *Service) deactivateCascade(serial uint64, reason string, via event.Event) bool {
	op := newMutOp(mutCRRevoke)
	op.serial, op.reason, op.via = serial, reason, via
	s.runMut(op)
	return op.did
}

// NotifyEnvChanged re-checks the membership conditions of every active
// role whose membership rule references the named predicate, deactivating
// roles whose conditions no longer hold. Services call this when
// environmental state changes; WatchStore wires it to a fact store
// automatically.
func (s *Service) NotifyEnvChanged(predicate string) {
	s.envMu.Lock()
	set := s.envIndex[predicate]
	serials := make([]uint64, 0, len(set))
	for serial := range set {
		serials = append(serials, serial)
	}
	s.envMu.Unlock()

	for _, serial := range serials {
		cr := s.crs.get(serial)
		if cr == nil {
			continue
		}
		cr.mu.Lock()
		deps := append([]envDep(nil), cr.envDeps...)
		cr.mu.Unlock()
		for _, dep := range deps {
			if dep.name != predicate {
				continue
			}
			if !s.envHolds(dep) {
				s.Deactivate(serial, fmt.Sprintf("membership condition failed: %senv %s",
					negPrefix(dep.negated), dep.name))
				break
			}
		}
	}
}

func negPrefix(negated bool) string {
	if negated {
		return "!"
	}
	return ""
}

// envHolds re-evaluates a ground environmental membership condition.
func (s *Service) envHolds(dep envDep) bool {
	pred, ok := s.eval.Env.Lookup(dep.name)
	if !ok {
		return false // predicate disappeared: fail safe
	}
	sols := pred(dep.args, names.NewSubstitution())
	if dep.negated {
		return len(sols) == 0
	}
	return len(sols) > 0
}

// WatchStore connects a fact store to membership monitoring: whenever a
// relation in the map changes, the corresponding predicate's membership
// conditions are re-checked. relationToPredicate maps store relation names
// to the predicate names used in policy.
func (s *Service) WatchStore(db *store.Store, relationToPredicate map[string]string) {
	mapping := make(map[string]string, len(relationToPredicate))
	for rel, pred := range relationToPredicate {
		mapping[rel] = pred
	}
	db.Observe(func(relation string, tuple []names.Term, added bool) {
		if pred, ok := mapping[relation]; ok {
			s.NotifyEnvChanged(pred)
			s.broker.Publish(event.Event{ //nolint:errcheck
				Topic:   TopicEnv(s.name, pred),
				Kind:    event.KindChanged,
				Subject: pred,
				At:      s.clk.Now(),
			})
		}
	})
}

// Invoke is path 3-4 of Fig. 2: the principal presents credentials with a
// method invocation; the service checks its authorization rules and any
// environmental constraints, then runs the bound implementation. The
// authorize-and-dispatch path takes no lock: validation reads the
// lock-free cache, counters are atomics, and the method/observer tables
// are copy-on-write snapshots.
func (s *Service) Invoke(principal, method string, args []names.Term, p Presented) ([]byte, error) {
	rules := s.authIndex[method]
	if len(rules) == 0 {
		return nil, wrap(s.name, fmt.Errorf("%w: %s", ErrUnknownMethod, method))
	}
	if err := s.proofFreshEnough(principal, method); err != nil {
		return nil, wrap(s.name, err)
	}
	sc := getCredsScratch()
	defer sc.release()
	creds, err := s.validateAll(principal, p, sc)
	if err != nil {
		return nil, wrap(s.name, err)
	}
	for _, rule := range rules {
		sol, ok, err := s.eval.Authorize(rule, args, creds)
		if err != nil {
			return nil, wrap(s.name, err)
		}
		if !ok {
			continue
		}
		s.stats.invocations.Add(1)
		impl := s.methods.Load().(map[string]MethodImpl)[method]
		if observers := s.observers.Load().([]InvokeObserver); len(observers) > 0 {
			rec := InvokeRecord{
				Service:     s.name,
				Method:      method,
				Args:        args,
				Principal:   principal,
				Credentials: credentialKeys(sol),
			}
			for _, o := range observers {
				o(rec)
			}
		}
		if impl == nil {
			return nil, nil
		}
		return impl(args)
	}
	s.stats.invocationsDenied.Add(1)
	s.obsm.trace(obs.TraceEvent{
		Kind: "invoke", Service: s.name, Subject: principal,
		Outcome: "denied", Detail: method,
	})
	return nil, wrap(s.name, fmt.Errorf("%w: %s", ErrInvocationDenied, method))
}

func credentialKeys(sol policy.Solution) []string {
	var keys []string
	for _, m := range sol.Matches {
		switch {
		case m.Role != nil:
			keys = append(keys, m.Role.Key)
		case m.Appt != nil:
			keys = append(keys, m.Appt.Key)
		}
	}
	return keys
}

// EndSession deactivates every live credential record issued to the
// principal by this service (the logout of Sect. 4: deactivating the
// initial roles collapses the whole session tree through the event
// channels). It returns the number of records this call deactivated;
// records concurrently revoked by another path (logout racing revocation)
// are counted exactly once across all callers.
func (s *Service) EndSession(principal string) int {
	n := 0
	for _, serial := range s.crs.serialsOf(principal) {
		if s.deactivate(serial, "session ended") {
			n++
		}
	}
	// Journal-restored records have no crs entry but must still honour a
	// logout: drain the holder's restored serials (revoke-once makes a
	// race with a direct Deactivate resolve to one winner).
	s.restoredMu.Lock()
	restored := s.restoredCRs[principal]
	delete(s.restoredCRs, principal)
	s.restoredMu.Unlock()
	for _, serial := range restored {
		if s.deactivate(serial, "session ended") {
			n++
		}
	}
	return n
}

// ActiveRoles lists the ground roles currently active (non-revoked CRs)
// for a principal, in serial order.
func (s *Service) ActiveRoles(principal string) []names.Role {
	serials := s.crs.serialsOf(principal)
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	var out []names.Role
	for _, serial := range serials {
		cr := s.crs.get(serial)
		if cr == nil {
			continue
		}
		status, err := s.records.Status(serial)
		if err == nil && status.Exists && !status.Revoked {
			out = append(out, cr.Role)
		}
	}
	return out
}

// CRStatus reports whether a credential record exists and is valid.
func (s *Service) CRStatus(serial uint64) (valid, exists bool) {
	status, err := s.records.Status(serial)
	if err != nil || !status.Exists {
		return false, false
	}
	return !status.Revoked, true
}
