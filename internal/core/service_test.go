package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/store"
)

// world is a test fixture: a broker, loopback transport and simulated
// clock shared by a set of services.
type world struct {
	t      *testing.T
	broker *event.Broker
	bus    *rpc.Loopback
	clk    *clock.Simulated
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:      t,
		broker: event.NewBroker(),
		bus:    rpc.NewLoopback(),
		clk:    clock.NewSimulated(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC)),
	}
	t.Cleanup(w.broker.Close)
	return w
}

// service creates a service wired into the world and registers its rpc
// handler.
func (w *world) service(name, policyText string, opts ...func(*Config)) *Service {
	w.t.Helper()
	cfg := Config{
		Name:   name,
		Policy: policy.MustParse(policyText),
		Broker: w.broker,
		Caller: w.bus,
		Clock:  w.clk,
	}
	for _, o := range opts {
		o(&cfg)
	}
	svc, err := NewService(cfg)
	if err != nil {
		w.t.Fatal(err)
	}
	w.bus.Register(name, svc.Handler())
	w.t.Cleanup(svc.Close)
	return svc
}

func withCache() func(*Config) {
	return func(c *Config) { c.CacheValidations = true }
}

func (w *world) session() *Session {
	w.t.Helper()
	s, err := NewSession(nil)
	if err != nil {
		w.t.Fatal(err)
	}
	return s
}

func role(service, name string, params ...names.Term) names.Role {
	return names.MustRole(names.MustRoleName(service, name, len(params)), params...)
}

// alwaysTrue registers an env predicate that always succeeds.
func alwaysTrue(svc *Service, name string) {
	svc.Env().Register(name, func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
}

func TestActivateInitialRole(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env password_ok.`)
	alwaysTrue(login, "password_ok")
	sess := w.session()

	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	if rmc.Role.Name.Name != "user" || rmc.Ref.Issuer != "login" {
		t.Errorf("rmc = %+v", rmc)
	}
	if valid, exists := login.CRStatus(rmc.Ref.Serial); !valid || !exists {
		t.Errorf("CR status = (%v,%v)", valid, exists)
	}
	if got := login.ActiveRoles(sess.PrincipalID()); len(got) != 1 {
		t.Errorf("ActiveRoles = %v", got)
	}
	if login.Stats().Activations != 1 {
		t.Errorf("stats = %+v", login.Stats())
	}
}

func TestActivateDeniedWithoutCredentials(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env password_ok.`)
	login.Env().Register("password_ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return nil
	})
	_, err := login.Activate("p", role("login", "user"), Presented{})
	if !errors.Is(err, ErrActivationDenied) {
		t.Errorf("err = %v", err)
	}
	if login.Stats().ActivationsDenied != 1 {
		t.Errorf("stats = %+v", login.Stats())
	}
}

func TestActivateUnknownRole(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	if _, err := login.Activate("p", role("login", "admin"), Presented{}); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("err = %v", err)
	}
	if _, err := login.Activate("p", role("other", "user"), Presented{}); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("foreign role err = %v", err)
	}
}

func TestNewServiceRejectsForeignPolicy(t *testing.T) {
	b := event.NewBroker()
	defer b.Close()
	_, err := NewService(Config{
		Name:   "a",
		Policy: policy.MustParse(`b.role <- env ok.`),
		Broker: b,
	})
	if err == nil {
		t.Error("policy for another service accepted")
	}
	if _, err := NewService(Config{Name: "", Broker: b}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewService(Config{Name: "x"}); err == nil {
		t.Error("nil broker accepted")
	}
}

func TestPrerequisiteRoleChain(t *testing.T) {
	// Fig. 1: service C requires RMCs from A and B.
	w := newWorld(t)
	a := w.service("a", `a.ra <- env ok.`)
	b := w.service("b", `b.rb <- env ok.`)
	c := w.service("c", `c.rc <- a.ra, b.rb keep [1, 2].`)
	alwaysTrue(a, "ok")
	alwaysTrue(b, "ok")
	sess := w.session()

	rmcA, err := a.Activate(sess.PrincipalID(), role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcA)
	rmcB, err := b.Activate(sess.PrincipalID(), role("b", "rb"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcB)

	rmcC, err := c.Activate(sess.PrincipalID(), role("c", "rc"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if valid, _ := c.CRStatus(rmcC.Ref.Serial); !valid {
		t.Error("rc not active")
	}
	// Missing one prerequisite denies activation.
	other := w.session()
	rmcA2, err := a.Activate(other.PrincipalID(), role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	other.AddRMC(rmcA2)
	if _, err := c.Activate(other.PrincipalID(), role("c", "rc"), other.Credentials()); !errors.Is(err, ErrActivationDenied) {
		t.Errorf("activation with one of two prerequisites: %v", err)
	}
}

func TestRevocationCascade(t *testing.T) {
	// Deactivating the initial role collapses the dependent subtree
	// (Sect. 4: "all the active roles dependent on it collapse").
	w := newWorld(t)
	a := w.service("a", `a.ra <- env ok.`)
	b := w.service("b", `b.rb <- a.ra keep [1].`)
	c := w.service("c", `c.rc <- b.rb keep [1].`)
	alwaysTrue(a, "ok")
	sess := w.session()
	pid := sess.PrincipalID()

	rmcA, err := a.Activate(pid, role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcA)
	rmcB, err := b.Activate(pid, role("b", "rb"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcB)
	rmcC, err := c.Activate(pid, role("c", "rc"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	// Logout: deactivate the initial role at A.
	a.Deactivate(rmcA.Ref.Serial, "logout")
	w.broker.Quiesce()

	if valid, _ := b.CRStatus(rmcB.Ref.Serial); valid {
		t.Error("rb survived revocation of its prerequisite")
	}
	if valid, _ := c.CRStatus(rmcC.Ref.Serial); valid {
		t.Error("rc survived transitive revocation")
	}
	// Revoked RMCs no longer validate.
	if _, err := b.Activate(pid, role("b", "rb"), sess.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("revoked RMC accepted as credential: %v", err)
	}
}

func TestDiamondDependencyCollapsesOnEitherParent(t *testing.T) {
	// A role whose membership rule keeps TWO prerequisite roles forms a
	// diamond: revoking either parent must collapse it, even while the
	// other parent stays live.
	w := newWorld(t)
	a := w.service("a", `a.ra <- env ok.`)
	b := w.service("b", `b.rb <- env ok2.`)
	alwaysTrue(a, "ok")
	alwaysTrue(b, "ok2")
	c := w.service("c", `c.rc <- a.ra, b.rb keep [1, 2].`)
	sess := w.session()
	rmcA, err := a.Activate(sess.PrincipalID(), role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcA)
	rmcB, err := b.Activate(sess.PrincipalID(), role("b", "rb"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmcB)
	rmcC, err := c.Activate(sess.PrincipalID(), role("c", "rc"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	b.Deactivate(rmcB.Ref.Serial, "b gone")
	w.broker.Quiesce()
	if valid, _ := c.CRStatus(rmcC.Ref.Serial); valid {
		t.Error("diamond child survived loss of one parent")
	}
	if valid, _ := a.CRStatus(rmcA.Ref.Serial); !valid {
		t.Error("unrelated parent was revoked")
	}
}

func TestDeactivateIdempotentAndUnknown(t *testing.T) {
	w := newWorld(t)
	a := w.service("a", `a.ra <- env ok.`)
	alwaysTrue(a, "ok")
	rmc, err := a.Activate("p", role("a", "ra"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	a.Deactivate(rmc.Ref.Serial, "r1")
	a.Deactivate(rmc.Ref.Serial, "r2") // idempotent
	a.Deactivate(9999, "unknown")      // no-op
	w.broker.Quiesce()
	if got := a.Stats().Revocations; got != 1 {
		t.Errorf("Revocations = %d, want 1", got)
	}
}

func TestMembershipEnvConditionRevokes(t *testing.T) {
	// A doctor's role deactivates the moment the on-duty fact is
	// retracted (active security environment).
	w := newWorld(t)
	db := store.New()
	h := w.service("hospital", `hospital.on_duty_doctor(D) <- env on_duty(D) keep [1].`)
	h.Env().RegisterStore("on_duty", db, "on_duty")
	h.WatchStore(db, map[string]string{"on_duty": "on_duty"})

	if _, err := db.Assert("on_duty", names.Atom("jones")); err != nil {
		t.Fatal(err)
	}
	rmc, err := h.Activate("p", role("hospital", "on_duty_doctor", names.Var("D")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	if rmc.Role.Params[0] != names.Atom("jones") {
		t.Fatalf("role = %s", rmc.Role)
	}
	if valid, _ := h.CRStatus(rmc.Ref.Serial); !valid {
		t.Fatal("role not active")
	}

	// End of shift: retract the fact; the role must deactivate at once.
	if _, err := db.Retract("on_duty", names.Atom("jones")); err != nil {
		t.Fatal(err)
	}
	w.broker.Quiesce()
	if valid, _ := h.CRStatus(rmc.Ref.Serial); valid {
		t.Error("role survived retraction of its membership condition")
	}
}

func TestMembershipNegatedEnvCondition(t *testing.T) {
	// Patient exclusion list: adding an exclusion while the role is
	// active must revoke it (membership rule over a negated condition).
	w := newWorld(t)
	db := store.New()
	h := w.service("hospital",
		`hospital.treating_doctor(D, P) <- env registered(D, P), !env excluded(D, P) keep [2].`)
	h.Env().RegisterStore("registered", db, "registered")
	h.Env().RegisterStore("excluded", db, "excluded")
	h.WatchStore(db, map[string]string{"excluded": "excluded"})

	if _, err := db.Assert("registered", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	rmc, err := h.Activate("p",
		role("hospital", "treating_doctor", names.Atom("fred"), names.Atom("joe")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	// The patient excludes Fred mid-session.
	if _, err := db.Assert("excluded", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	w.broker.Quiesce()
	if valid, _ := h.CRStatus(rmc.Ref.Serial); valid {
		t.Error("treating_doctor survived exclusion")
	}
}

func TestMembershipEnvUnrelatedChangeKeepsRole(t *testing.T) {
	w := newWorld(t)
	db := store.New()
	h := w.service("hospital", `hospital.on_duty_doctor(D) <- env on_duty(D) keep [1].`)
	h.Env().RegisterStore("on_duty", db, "on_duty")
	h.WatchStore(db, map[string]string{"on_duty": "on_duty"})
	if _, err := db.Assert("on_duty", names.Atom("jones")); err != nil {
		t.Fatal(err)
	}
	rmc, err := h.Activate("p", role("hospital", "on_duty_doctor", names.Atom("jones")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	// A different doctor goes off duty; jones's role must survive.
	if _, err := db.Assert("on_duty", names.Atom("smith")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Retract("on_duty", names.Atom("smith")); err != nil {
		t.Fatal(err)
	}
	w.broker.Quiesce()
	if valid, _ := h.CRStatus(rmc.Ref.Serial); !valid {
		t.Error("unrelated store change revoked the role")
	}
}

func TestNoMembershipRuleRoleSurvives(t *testing.T) {
	// Without a keep clause the role persists even when the activation
	// condition later fails.
	w := newWorld(t)
	db := store.New()
	h := w.service("hospital", `hospital.visitor(V) <- env signed_in(V).`)
	h.Env().RegisterStore("signed_in", db, "signed_in")
	h.WatchStore(db, map[string]string{"signed_in": "signed_in"})
	if _, err := db.Assert("signed_in", names.Atom("v1")); err != nil {
		t.Fatal(err)
	}
	rmc, err := h.Activate("p", role("hospital", "visitor", names.Atom("v1")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Retract("signed_in", names.Atom("v1")); err != nil {
		t.Fatal(err)
	}
	w.broker.Quiesce()
	if valid, _ := h.CRStatus(rmc.Ref.Serial); !valid {
		t.Error("role without membership rule was revoked")
	}
}

func TestRMCPrincipalTheftRejected(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `guard.inside <- login.user keep [1].`)
	alice := w.session()
	mallory := w.session()
	rmc, err := login.Activate(alice.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	alice.AddRMC(rmc)
	// Mallory steals the certificate and presents it under her own
	// session principal: the issuer-side check refuses it.
	mallory.AddRMC(rmc)
	if _, err := guard.Activate(mallory.PrincipalID(), role("guard", "inside"),
		mallory.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("stolen RMC accepted: %v", err)
	}
	// Alice herself succeeds.
	if _, err := guard.Activate(alice.PrincipalID(), role("guard", "inside"),
		alice.Credentials()); err != nil {
		t.Errorf("legitimate activation failed: %v", err)
	}
}
