package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cert"
	"repro/internal/sign"
)

// Session is the client-side state of an OASIS session (Sect. 4): a
// session key pair whose public half identifies the principal for the
// session's lifetime, and the RMCs collected as roles are activated. The
// session's active roles form trees rooted at initial roles; the trees
// themselves live in the services' credential records and event channels —
// the session only carries the certificates.
type Session struct {
	key *sign.SessionKey

	mu           sync.RWMutex
	rmcs         []cert.RMC
	appointments []cert.AppointmentCertificate
}

// NewSession generates a session key pair and an empty certificate wallet.
// Entropy defaults to crypto/rand when nil.
func NewSession(entropy io.Reader) (*Session, error) {
	key, err := sign.NewSessionKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("new session: %w", err)
	}
	return &Session{key: key}, nil
}

// PrincipalID returns the session-specific principal identifier (the hex
// session public key, Sect. 4.1).
func (s *Session) PrincipalID() string { return s.key.PrincipalID() }

// Key exposes the session key for challenge-response proofs.
func (s *Session) Key() *sign.SessionKey { return s.key }

// AddRMC stores an RMC returned by a role activation.
func (s *Session) AddRMC(r cert.RMC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rmcs = append(s.rmcs, r)
}

// AddAppointment stores a long-lived appointment certificate presented
// during this session. (Appointments outlive sessions; the wallet only
// carries them for presentation.)
func (s *Session) AddAppointment(a cert.AppointmentCertificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appointments = append(s.appointments, a)
}

// RMCs returns a copy of the collected role membership certificates.
func (s *Session) RMCs() []cert.RMC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cert.RMC, len(s.rmcs))
	copy(out, s.rmcs)
	return out
}

// Appointments returns a copy of the collected appointment certificates.
func (s *Session) Appointments() []cert.AppointmentCertificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cert.AppointmentCertificate, len(s.appointments))
	copy(out, s.appointments)
	return out
}

// Credentials bundles the session's wallet for presentation to a service.
func (s *Session) Credentials() Presented {
	return Presented{RMCs: s.RMCs(), Appointments: s.Appointments()}
}

// DropRMC removes an RMC (e.g. after its role was deactivated); it reports
// whether the certificate was present.
func (s *Session) DropRMC(ref cert.CRR) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rmcs {
		if r.Ref == ref {
			s.rmcs = append(s.rmcs[:i], s.rmcs[i+1:]...)
			return true
		}
	}
	return false
}

// Presented is the set of certificates a principal submits with a request
// (path 1 or 3 of Fig. 2).
type Presented struct {
	RMCs         []cert.RMC
	Appointments []cert.AppointmentCertificate
}
