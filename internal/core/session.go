package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/cert"
	"repro/internal/sign"
)

// Session is the client-side state of an OASIS session (Sect. 4): a
// session key pair whose public half identifies the principal for the
// session's lifetime, and the RMCs collected as roles are activated. The
// session's active roles form trees rooted at initial roles; the trees
// themselves live in the services' credential records and event channels —
// the session only carries the certificates.
type Session struct {
	key *sign.SessionKey

	mu           sync.RWMutex
	rmcs         []cert.RMC
	appointments []cert.AppointmentCertificate

	// snapshot caches the immutable Presented bundle between wallet
	// mutations, so concurrent presenters (one session driving many
	// parallel requests) do not copy the wallet per call.
	snapshot atomic.Pointer[Presented]
}

// NewSession generates a session key pair and an empty certificate wallet.
// Entropy defaults to crypto/rand when nil.
func NewSession(entropy io.Reader) (*Session, error) {
	key, err := sign.NewSessionKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("new session: %w", err)
	}
	return &Session{key: key}, nil
}

// PrincipalID returns the session-specific principal identifier (the hex
// session public key, Sect. 4.1).
func (s *Session) PrincipalID() string { return s.key.PrincipalID() }

// Key exposes the session key for challenge-response proofs.
func (s *Session) Key() *sign.SessionKey { return s.key }

// AddRMC stores an RMC returned by a role activation.
func (s *Session) AddRMC(r cert.RMC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rmcs = append(s.rmcs, r)
	s.snapshot.Store(nil)
}

// AddAppointment stores a long-lived appointment certificate presented
// during this session. (Appointments outlive sessions; the wallet only
// carries them for presentation.)
func (s *Session) AddAppointment(a cert.AppointmentCertificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appointments = append(s.appointments, a)
	s.snapshot.Store(nil)
}

// RMCs returns a copy of the collected role membership certificates.
func (s *Session) RMCs() []cert.RMC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cert.RMC, len(s.rmcs))
	copy(out, s.rmcs)
	return out
}

// Appointments returns a copy of the collected appointment certificates.
func (s *Session) Appointments() []cert.AppointmentCertificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cert.AppointmentCertificate, len(s.appointments))
	copy(out, s.appointments)
	return out
}

// Credentials bundles the session's wallet for presentation to a service.
// The bundle is cached until the wallet next changes, so repeated
// presentations are lock-free reads of an immutable snapshot.
func (s *Session) Credentials() Presented {
	if p := s.snapshot.Load(); p != nil {
		return *p
	}
	// Build and publish the snapshot while holding the read lock:
	// writers (which invalidate the snapshot) are excluded for the whole
	// critical section, so a stale bundle can never overwrite their
	// invalidation.
	s.mu.RLock()
	p := &Presented{
		RMCs:         append([]cert.RMC(nil), s.rmcs...),
		Appointments: append([]cert.AppointmentCertificate(nil), s.appointments...),
	}
	s.snapshot.Store(p)
	s.mu.RUnlock()
	return *p
}

// DropRMC removes an RMC (e.g. after its role was deactivated); it reports
// whether the certificate was present.
func (s *Session) DropRMC(ref cert.CRR) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rmcs {
		if r.Ref == ref {
			s.rmcs = append(s.rmcs[:i], s.rmcs[i+1:]...)
			s.snapshot.Store(nil)
			return true
		}
	}
	return false
}

// Presented is the set of certificates a principal submits with a request
// (path 1 or 3 of Fig. 2).
type Presented struct {
	RMCs         []cert.RMC
	Appointments []cert.AppointmentCertificate
}
