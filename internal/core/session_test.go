package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
)

type failingReader struct{}

func (failingReader) Read(p []byte) (int, error) { return 0, errors.New("no entropy") }

func TestNewSessionEntropyFailure(t *testing.T) {
	if _, err := NewSession(failingReader{}); err == nil {
		t.Error("session created without entropy")
	}
}

func TestSessionWallet(t *testing.T) {
	sess, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc := cert.RMC{
		Role: names.MustRole(names.MustRoleName("s", "r", 0)),
		Ref:  cert.CRR{Issuer: "s", Serial: 1},
	}
	appt := cert.AppointmentCertificate{Issuer: "a", Serial: 2, Kind: "k", Holder: "h"}
	sess.AddRMC(rmc)
	sess.AddAppointment(appt)

	creds := sess.Credentials()
	if len(creds.RMCs) != 1 || len(creds.Appointments) != 1 {
		t.Fatalf("credentials = %+v", creds)
	}
	// Returned slices are copies: mutating them must not corrupt the
	// wallet.
	creds.RMCs[0].Ref.Serial = 999
	if sess.RMCs()[0].Ref.Serial != 1 {
		t.Error("Credentials aliases internal wallet")
	}
	if got := sess.Appointments(); len(got) != 1 || got[0].Kind != "k" {
		t.Errorf("Appointments = %v", got)
	}
}

func TestSessionDropRMC(t *testing.T) {
	sess, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	ref1 := cert.CRR{Issuer: "s", Serial: 1}
	ref2 := cert.CRR{Issuer: "s", Serial: 2}
	sess.AddRMC(cert.RMC{Ref: ref1})
	sess.AddRMC(cert.RMC{Ref: ref2})
	if !sess.DropRMC(ref1) {
		t.Error("DropRMC failed for present certificate")
	}
	if sess.DropRMC(ref1) {
		t.Error("DropRMC succeeded twice")
	}
	remaining := sess.RMCs()
	if len(remaining) != 1 || remaining[0].Ref != ref2 {
		t.Errorf("remaining = %v", remaining)
	}
}

func TestServiceAccessors(t *testing.T) {
	w := newWorld(t)
	svc := w.service("accessors", `accessors.r <- env ok.`)
	if svc.Name() != "accessors" {
		t.Errorf("Name = %q", svc.Name())
	}
	if got := svc.Policy(); len(got.Rules) != 1 {
		t.Errorf("Policy rules = %d", len(got.Rules))
	}
	if svc.Challenger() == nil {
		t.Error("Challenger nil")
	}
}

func TestServiceCloseIdempotent(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `guard.inside <- login.user keep [1].`, withCache())
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := guard.Activate(sess.PrincipalID(), role("guard", "inside"), sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	guard.Close()
	guard.Close() // double close is safe
}

func TestRemoteAppointViaClient(t *testing.T) {
	w := newWorld(t)
	admin := w.service("admin", `
admin.officer <- env ok.
auth appoint_badge(K) <- admin.officer.
`)
	alwaysTrue(admin, "ok")
	sess := w.session()
	rmc, err := admin.Activate(sess.PrincipalID(), role("admin", "officer"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	cli := NewClient(w.bus)
	appt, err := cli.Appoint("admin", sess.PrincipalID(), AppointmentRequest{
		Kind:      "badge",
		Holder:    "holder-key",
		Params:    []names.Term{names.Atom("gate1")},
		ExpiresAt: w.clk.Now().Add(time.Hour),
	}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if appt.Kind != "badge" || appt.Holder != "holder-key" {
		t.Errorf("appt = %+v", appt)
	}
	// The remote wire round-trip preserved verifiability.
	if valid, exists := admin.AppointmentStatus(appt.Serial); !valid || !exists {
		t.Errorf("status = (%v,%v)", valid, exists)
	}
	// Denied remote appointment surfaces as an error.
	if _, err := cli.Appoint("admin", "stranger", AppointmentRequest{
		Kind: "badge", Holder: "x",
	}, Presented{}); err == nil {
		t.Error("unauthorized remote appoint succeeded")
	}
}

func TestActiveRolesOrderAndLiveness(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `s.r(N) <- env any(N).`)
	alwaysTrue(svc, "any")
	sess := w.session()
	var serials []uint64
	for i := 1; i <= 3; i++ {
		rmc, err := svc.Activate(sess.PrincipalID(),
			role("s", "r", names.Int(int64(i))), Presented{})
		if err != nil {
			t.Fatal(err)
		}
		serials = append(serials, rmc.Ref.Serial)
	}
	// Another principal's roles must not appear.
	other := w.session()
	if _, err := svc.Activate(other.PrincipalID(), role("s", "r", names.Int(99)), Presented{}); err != nil {
		t.Fatal(err)
	}
	svc.Deactivate(serials[1], "drop middle")
	got := svc.ActiveRoles(sess.PrincipalID())
	if len(got) != 2 {
		t.Fatalf("ActiveRoles = %v", got)
	}
	if got[0].Params[0] != names.Int(1) || got[1].Params[0] != names.Int(3) {
		t.Errorf("order/content wrong: %v", got)
	}
}

func TestEndSession(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	files := w.service("files", `files.reader <- login.user keep [1].`)
	sess := w.session()
	rmc1, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc1)
	rmc2, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	readerRMC, err := files.Activate(sess.PrincipalID(), role("files", "reader"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if n := login.EndSession(sess.PrincipalID()); n != 2 {
		t.Errorf("EndSession deactivated %d, want 2", n)
	}
	w.broker.Quiesce()
	for _, serial := range []uint64{rmc1.Ref.Serial, rmc2.Ref.Serial} {
		if valid, _ := login.CRStatus(serial); valid {
			t.Errorf("serial %d survived EndSession", serial)
		}
	}
	if valid, _ := files.CRStatus(readerRMC.Ref.Serial); valid {
		t.Error("dependent role survived EndSession")
	}
	// Idempotent: nothing left to deactivate.
	if n := login.EndSession(sess.PrincipalID()); n != 0 {
		t.Errorf("second EndSession deactivated %d", n)
	}
}

func TestCRStatusUnknownSerial(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `s.r <- env ok.`)
	if valid, exists := svc.CRStatus(424242); valid || exists {
		t.Errorf("CRStatus(unknown) = (%v,%v)", valid, exists)
	}
}
