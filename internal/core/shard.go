package core

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// crShards is the shard count of the credential-record table. 16 keeps the
// per-shard maps small under millions of sessions while bounding the cost
// of full-table sweeps (heartbeats, Close) to a handful of lock
// acquisitions.
const crShards = 16

var principalSeed = maphash.MakeSeed()

// crTable is the sharded credential-record store of one service: a
// serial-keyed record table split crShards ways so concurrent activations
// and deactivations rarely contend, plus a principal-keyed index (sharded
// by principal hash) so EndSession and ActiveRoles run in
// O(roles-of-principal) instead of scanning every CR the service has ever
// issued.
//
// Lock discipline: a serial shard lock and a principal shard lock are
// never held together — insert and remove touch them in sequence, and
// every reader tolerates the brief window in which a record is present in
// one but not the other (validity always comes from the RecordStore, not
// from table presence).
type crTable struct {
	serials    [crShards]serialShard
	principals [crShards]principalShard
	// count tracks the live record population for the resident-state
	// gauge (core_resident_crs); maintained by insert/remove so reading
	// it never sweeps the shards.
	count atomic.Int64
}

type serialShard struct {
	mu  sync.RWMutex
	crs map[uint64]*CredRecord
}

// principalShard indexes serials by principal as a small slice rather
// than a nested map: a principal holds a handful of roles, so linear
// scans beat per-principal map headers and bucket arrays by a wide
// margin at million-principal populations (one slice header per
// principal versus a 48-byte map header plus bucket allocations).
type principalShard struct {
	mu      sync.Mutex
	serials map[string][]uint64
}

func (t *crTable) serialShard(serial uint64) *serialShard {
	return &t.serials[serial%crShards]
}

func (t *crTable) principalShard(principal string) *principalShard {
	return &t.principals[maphash.String(principalSeed, principal)%crShards]
}

// insert publishes a freshly issued credential record.
func (t *crTable) insert(cr *CredRecord) {
	ss := t.serialShard(cr.Serial)
	ss.mu.Lock()
	if ss.crs == nil {
		ss.crs = make(map[uint64]*CredRecord)
	}
	ss.crs[cr.Serial] = cr
	ss.mu.Unlock()

	t.indexPrincipal(cr)
}

// indexPrincipal adds a record to the principal index. Called after the
// serial-shard mutation, never with a serial shard lock held.
func (t *crTable) indexPrincipal(cr *CredRecord) {
	ps := t.principalShard(cr.Principal)
	ps.mu.Lock()
	if ps.serials == nil {
		ps.serials = make(map[string][]uint64)
	}
	ps.serials[cr.Principal] = append(ps.serials[cr.Principal], cr.Serial)
	ps.mu.Unlock()
	t.count.Add(1)
}

// unindexPrincipal removes a record from the principal index.
func (t *crTable) unindexPrincipal(cr *CredRecord, serial uint64) {
	ps := t.principalShard(cr.Principal)
	ps.mu.Lock()
	if list, ok := ps.serials[cr.Principal]; ok {
		for i, s := range list {
			if s == serial {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(ps.serials, cr.Principal)
		} else {
			ps.serials[cr.Principal] = list
		}
	}
	ps.mu.Unlock()
	t.count.Add(-1)
}

// crMut is one credential-table mutation inside a sequencer batch:
// either an insert (insert != nil) or a removal by serial.
type crMut struct {
	insert *CredRecord
	remove uint64
	// removed receives the evicted record for removals (nil when the
	// serial had no table entry, e.g. journal-restored records).
	removed *CredRecord
}

// applyBatch applies a sequencer batch's table mutations. Every serial
// in the batch maps to the same serial shard (the sequencer shards by
// serial % crShards, matching serialShard), so the whole batch commits
// under one serial-shard lock acquisition, in batch order. The
// principal index is updated per record afterwards, preserving the
// lock discipline (serial and principal shard locks never held
// together).
func (t *crTable) applyBatch(shard int, muts []crMut) {
	if len(muts) == 0 {
		return
	}
	ss := &t.serials[shard%crShards]
	ss.mu.Lock()
	if ss.crs == nil {
		ss.crs = make(map[uint64]*CredRecord)
	}
	for i := range muts {
		m := &muts[i]
		if m.insert != nil {
			ss.crs[m.insert.Serial] = m.insert
		} else {
			m.removed = ss.crs[m.remove]
			delete(ss.crs, m.remove)
		}
	}
	ss.mu.Unlock()

	for i := range muts {
		m := &muts[i]
		switch {
		case m.insert != nil:
			t.indexPrincipal(m.insert)
		case m.removed != nil:
			t.unindexPrincipal(m.removed, m.remove)
		}
	}
}

// get returns the live record for serial, or nil after deactivation.
func (t *crTable) get(serial uint64) *CredRecord {
	ss := t.serialShard(serial)
	ss.mu.RLock()
	cr := ss.crs[serial]
	ss.mu.RUnlock()
	return cr
}

// remove unpublishes a record (on deactivation) and returns it, or nil if
// it was already removed.
func (t *crTable) remove(serial uint64) *CredRecord {
	ss := t.serialShard(serial)
	ss.mu.Lock()
	cr := ss.crs[serial]
	delete(ss.crs, serial)
	ss.mu.Unlock()
	if cr == nil {
		return nil
	}
	t.unindexPrincipal(cr, serial)
	return cr
}

// residents returns the live record population.
func (t *crTable) residents() int64 { return t.count.Load() }

// serialsOf lists the serials currently indexed for a principal.
func (t *crTable) serialsOf(principal string) []uint64 {
	ps := t.principalShard(principal)
	ps.mu.Lock()
	list := ps.serials[principal]
	out := make([]uint64, len(list))
	copy(out, list)
	ps.mu.Unlock()
	return out
}

// allSerials snapshots every live serial (heartbeat sweep).
func (t *crTable) allSerials() []uint64 {
	var out []uint64
	for i := range t.serials {
		ss := &t.serials[i]
		ss.mu.RLock()
		for serial := range ss.crs {
			out = append(out, serial)
		}
		ss.mu.RUnlock()
	}
	return out
}

// allRecords snapshots every live record (Close sweep).
func (t *crTable) allRecords() []*CredRecord {
	var out []*CredRecord
	for i := range t.serials {
		ss := &t.serials[i]
		ss.mu.RLock()
		for _, cr := range ss.crs {
			out = append(out, cr)
		}
		ss.mu.RUnlock()
	}
	return out
}
