package core

import (
	"hash/maphash"
	"sync"
)

// crShards is the shard count of the credential-record table. 16 keeps the
// per-shard maps small under millions of sessions while bounding the cost
// of full-table sweeps (heartbeats, Close) to a handful of lock
// acquisitions.
const crShards = 16

var principalSeed = maphash.MakeSeed()

// crTable is the sharded credential-record store of one service: a
// serial-keyed record table split crShards ways so concurrent activations
// and deactivations rarely contend, plus a principal-keyed index (sharded
// by principal hash) so EndSession and ActiveRoles run in
// O(roles-of-principal) instead of scanning every CR the service has ever
// issued.
//
// Lock discipline: a serial shard lock and a principal shard lock are
// never held together — insert and remove touch them in sequence, and
// every reader tolerates the brief window in which a record is present in
// one but not the other (validity always comes from the RecordStore, not
// from table presence).
type crTable struct {
	serials    [crShards]serialShard
	principals [crShards]principalShard
}

type serialShard struct {
	mu  sync.RWMutex
	crs map[uint64]*CredRecord
}

type principalShard struct {
	mu      sync.Mutex
	serials map[string]map[uint64]struct{}
}

func (t *crTable) serialShard(serial uint64) *serialShard {
	return &t.serials[serial%crShards]
}

func (t *crTable) principalShard(principal string) *principalShard {
	return &t.principals[maphash.String(principalSeed, principal)%crShards]
}

// insert publishes a freshly issued credential record.
func (t *crTable) insert(cr *CredRecord) {
	ss := t.serialShard(cr.Serial)
	ss.mu.Lock()
	if ss.crs == nil {
		ss.crs = make(map[uint64]*CredRecord)
	}
	ss.crs[cr.Serial] = cr
	ss.mu.Unlock()

	ps := t.principalShard(cr.Principal)
	ps.mu.Lock()
	if ps.serials == nil {
		ps.serials = make(map[string]map[uint64]struct{})
	}
	set, ok := ps.serials[cr.Principal]
	if !ok {
		set = make(map[uint64]struct{})
		ps.serials[cr.Principal] = set
	}
	set[cr.Serial] = struct{}{}
	ps.mu.Unlock()
}

// get returns the live record for serial, or nil after deactivation.
func (t *crTable) get(serial uint64) *CredRecord {
	ss := t.serialShard(serial)
	ss.mu.RLock()
	cr := ss.crs[serial]
	ss.mu.RUnlock()
	return cr
}

// remove unpublishes a record (on deactivation) and returns it, or nil if
// it was already removed.
func (t *crTable) remove(serial uint64) *CredRecord {
	ss := t.serialShard(serial)
	ss.mu.Lock()
	cr := ss.crs[serial]
	delete(ss.crs, serial)
	ss.mu.Unlock()
	if cr == nil {
		return nil
	}

	ps := t.principalShard(cr.Principal)
	ps.mu.Lock()
	if set, ok := ps.serials[cr.Principal]; ok {
		delete(set, serial)
		if len(set) == 0 {
			delete(ps.serials, cr.Principal)
		}
	}
	ps.mu.Unlock()
	return cr
}

// serialsOf lists the serials currently indexed for a principal.
func (t *crTable) serialsOf(principal string) []uint64 {
	ps := t.principalShard(principal)
	ps.mu.Lock()
	set := ps.serials[principal]
	out := make([]uint64, 0, len(set))
	for serial := range set {
		out = append(out, serial)
	}
	ps.mu.Unlock()
	return out
}

// allSerials snapshots every live serial (heartbeat sweep).
func (t *crTable) allSerials() []uint64 {
	var out []uint64
	for i := range t.serials {
		ss := &t.serials[i]
		ss.mu.RLock()
		for serial := range ss.crs {
			out = append(out, serial)
		}
		ss.mu.RUnlock()
	}
	return out
}

// allRecords snapshots every live record (Close sweep).
func (t *crTable) allRecords() []*CredRecord {
	var out []*CredRecord
	for i := range t.serials {
		ss := &t.serials[i]
		ss.mu.RLock()
		for _, cr := range ss.crs {
			out = append(out, cr)
		}
		ss.mu.RUnlock()
	}
	return out
}
