package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/cert"
	"repro/internal/event"
	"repro/internal/policy"
)

// validateAll checks every presented certificate and converts the valid set
// into the evaluator's credential view. Any invalid certificate rejects the
// whole request — a principal presenting forged or revoked credentials is
// refused outright rather than silently narrowed.
func (s *Service) validateAll(principal string, p Presented) (policy.CredentialSet, error) {
	var creds policy.CredentialSet
	for _, r := range p.RMCs {
		if err := s.validateRMC(principal, r); err != nil {
			return policy.CredentialSet{}, fmt.Errorf("%w: rmc %s: %v", ErrInvalidCredential, r.Ref, err)
		}
		creds.Roles = append(creds.Roles, policy.HeldRole{Role: r.Role, Key: r.Ref.String()})
	}
	for _, a := range p.Appointments {
		if err := s.validateAppointment(a); err != nil {
			return policy.CredentialSet{}, fmt.Errorf("%w: appointment %s: %v", ErrInvalidCredential, a.Key(), err)
		}
		creds.Appointments = append(creds.Appointments, policy.Appointment{
			Issuer:    a.Issuer,
			Kind:      a.Kind,
			Params:    a.Params,
			Key:       a.Key(),
			ExpiresAt: a.ExpiresAt,
		})
	}
	return creds, nil
}

// validateRMC checks one RMC for the presenting principal: locally when
// this service issued it, otherwise by callback to the issuer (Sect. 4),
// consulting the ECR cache when enabled.
func (s *Service) validateRMC(principal string, r cert.RMC) error {
	if r.Ref.Issuer == s.name {
		s.mu.Lock()
		s.stats.LocalValidations++
		s.mu.Unlock()
		status, err := s.records.Status(r.Ref.Serial)
		if err != nil {
			return fmt.Errorf("record store: %w", err)
		}
		if !status.Exists {
			return ErrUnknownCR
		}
		if status.Revoked {
			return fmt.Errorf("%w: %s", ErrRevoked, status.Reason)
		}
		if status.Holder != principal {
			return fmt.Errorf("%w: certificate issued to a different principal", ErrInvalidCredential)
		}
		return r.Verify(s.ring, principal)
	}
	return s.validateForeign("cr", r.Ref.String(), TopicCR(r.Ref), r.Ref.Issuer, "validate_rmc",
		validateRMCRequest{RMC: r, Principal: principal})
}

// validateAppointment checks an appointment certificate locally or by
// callback to its issuer, including expiry at the current instant.
func (s *Service) validateAppointment(a cert.AppointmentCertificate) error {
	if a.Issuer == s.name {
		s.mu.Lock()
		s.stats.LocalValidations++
		rec, ok := s.appts[a.Serial]
		s.mu.Unlock()
		if !ok {
			return ErrUnknownCR
		}
		if rec.revoked {
			return ErrRevoked
		}
		return a.Verify(s.ring, s.clk.Now())
	}
	return s.validateForeign("appt", a.Key(), TopicAppt(a.Key()), a.Issuer, "validate_appt",
		validateApptRequest{Appointment: a})
}

// validateForeign performs (or reuses) a callback validation of a
// certificate issued elsewhere. With caching enabled it implements the ECR
// proxy of Fig. 5: the first validation subscribes to the certificate's
// revocation channel so the cached result is dropped the instant the
// issuer invalidates it.
func (s *Service) validateForeign(kindTag, key, topic, issuer, method string, reqBody any) error {
	if s.cacheValidations {
		s.mu.Lock()
		_, cached := s.cache[key]
		if cached {
			s.stats.CacheHits++
		}
		s.mu.Unlock()
		if cached {
			// Only positive results are cached; revocation events
			// delete the entry, so a hit means "valid as far as the
			// issuer has told us".
			return nil
		}
	}
	if s.caller == nil {
		return fmt.Errorf("no transport to validate %s certificate from %s", kindTag, issuer)
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("encode validation request: %w", err)
	}
	s.mu.Lock()
	s.stats.CallbackValidations++
	s.mu.Unlock()
	out, err := s.caller.Call(issuer, method, body)
	if err != nil {
		return fmt.Errorf("callback to %s: %w", issuer, err)
	}
	var resp validateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return fmt.Errorf("decode validation response: %w", err)
	}
	if !resp.Valid {
		return fmt.Errorf("%w: issuer says %s", ErrRevoked, resp.Reason)
	}
	if s.cacheValidations {
		s.cacheStore(key, topic)
	}
	return nil
}

// cacheStore records a positive validation and subscribes to the
// certificate's revocation channel to invalidate it.
func (s *Service) cacheStore(key, topic string) {
	s.mu.Lock()
	if _, exists := s.cacheSubs[key]; exists {
		s.cache[key] = true
		s.mu.Unlock()
		return
	}
	s.cache[key] = true
	s.mu.Unlock()

	sub, err := s.broker.Subscribe(topic, func(ev event.Event) {
		if ev.Kind != event.KindRevoked {
			return
		}
		// Drop the cached result rather than caching "revoked": the
		// next presentation re-validates with the authoritative
		// issuer, which also lets heartbeat-driven synthetic
		// revocations fail safe without denying permanently.
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
	})
	if err != nil {
		// Broker closed: drop the cache entry so we fail safe to
		// callback validation.
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if _, exists := s.cacheSubs[key]; exists {
		s.mu.Unlock()
		sub.Cancel()
		return
	}
	s.cacheSubs[key] = sub
	s.mu.Unlock()
}

// Close cancels the service's cache subscriptions and expiry timers
// (credential record watches are cancelled by Deactivate).
func (s *Service) Close() {
	s.stopOnce.Do(func() { close(s.stopTimers) })
	s.timersWG.Wait()
	s.mu.Lock()
	subs := make([]*event.Subscription, 0, len(s.cacheSubs))
	for _, sub := range s.cacheSubs {
		subs = append(subs, sub)
	}
	s.cacheSubs = make(map[string]*event.Subscription)
	crSubs := make([]*event.Subscription, 0)
	for _, cr := range s.crs {
		crSubs = append(crSubs, cr.subs...)
		cr.subs = nil
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.Cancel()
	}
	for _, sub := range crSubs {
		sub.Cancel()
	}
}

// Wire messages for callback validation and remote operation.

type validateRMCRequest struct {
	RMC       cert.RMC `json:"rmc"`
	Principal string   `json:"principal"`
}

type validateApptRequest struct {
	Appointment cert.AppointmentCertificate `json:"appointment"`
}

type validateResponse struct {
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

// Handler exposes the service's remote endpoints over the rpc transport:
// validate_rmc and validate_appt (callback validation), activate and
// invoke (remote role activation and invocation, used for cross-domain
// sessions).
func (s *Service) Handler() func(method string, body []byte) ([]byte, error) {
	return func(method string, body []byte) ([]byte, error) {
		switch method {
		case "validate_rmc":
			var req validateRMCRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			resp := validateResponse{Valid: true}
			if err := s.validateRMC(req.Principal, req.RMC); err != nil {
				resp = validateResponse{Valid: false, Reason: err.Error()}
			}
			return json.Marshal(resp)
		case "validate_appt":
			var req validateApptRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			resp := validateResponse{Valid: true}
			if err := s.validateAppointment(req.Appointment); err != nil {
				resp = validateResponse{Valid: false, Reason: err.Error()}
			}
			return json.Marshal(resp)
		case "activate":
			var req RemoteActivateRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			rmc, err := s.Activate(req.Principal, req.Role, req.Presented())
			if err != nil {
				return nil, err
			}
			return json.Marshal(rmc)
		case "invoke":
			var req RemoteInvokeRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			return s.Invoke(req.Principal, req.Method, req.Args, req.Presented())
		case "end_session":
			var req struct {
				Principal string `json:"principal"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			n := s.EndSession(req.Principal)
			return json.Marshal(map[string]int{"deactivated": n})
		case "appoint":
			var req RemoteAppointRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			a, err := s.Appoint(req.Principal, AppointmentRequest{
				Kind:      req.Kind,
				Holder:    req.Holder,
				Params:    req.Params,
				ExpiresAt: req.ExpiresAt,
			}, req.Presented())
			if err != nil {
				return nil, err
			}
			return cert.MarshalAppointment(a)
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	}
}
