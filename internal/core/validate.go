package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// valCache is the external credential record proxy (ECR, Fig. 5) rebuilt
// for concurrency: a lock-free read path (sync.Map of per-key entries with
// an atomic validity bit) and a per-key singleflight so N concurrent
// presentations of the same uncached certificate trigger one issuer
// callback, not N.
//
// The revocation race is closed by ordering: the key's revocation channel
// is subscribed *before* the callback validation is issued, and every
// revocation event bumps the entry's generation. A positive result is only
// cached if the generation is unchanged since before the callback, so a
// revocation delivered at any point around the fill can never leave a
// stale positive entry.
// When bounded (Config.CacheMaxEntries), the cache runs a second-chance
// (CLOCK-style) sweep on overflow: every hit sets the entry's recent bit,
// the sweep clears recent bits and evicts entries whose bit was already
// clear, skipping entries with a validation in flight. Eviction cancels
// the entry's revocation subscription and liveness watch — the dominant
// per-entry resident cost — and an evicted credential simply
// re-validates by callback on its next presentation, so boundedness
// trades issuer round-trips for memory, never safety.
type valCache struct {
	entries sync.Map // key string -> *cacheEntry
	// count tracks the entry population (the sync.Map has no O(1) len);
	// max is the configured bound, 0 = unbounded. sweeping serialises
	// eviction sweeps so an insert herd does not scan the map in chorus.
	count    atomic.Int64
	max      int
	sweeping atomic.Bool
}

// cacheEntry is the cache state of one foreign certificate key.
type cacheEntry struct {
	// valid is the lock-free hit path: true means the issuer said valid
	// and no revocation event has arrived since.
	valid atomic.Bool
	// validatedAt is the service-clock instant (unix nanos) of the last
	// verdict confirmed by the issuer; the revalidation deadline and the
	// stale-grace window are measured from it. 0 = never confirmed.
	validatedAt atomic.Int64
	// recent is the second-chance bit: set on every cache hit, cleared
	// by the eviction sweep.
	recent atomic.Bool

	mu      sync.Mutex
	gen     uint64 // bumped by every revocation event for this key
	sub     *event.Subscription
	flight  *flight
	watched bool // a liveness watch is installed for this key
	// dead marks an entry removed from the map by eviction. A presenter
	// that loaded the pointer before removal may still complete its
	// validation through it, but a dead entry never caches a verdict and
	// never (re-)subscribes — the live state belongs to the fresh entry
	// the next presenter creates under the same key.
	dead bool
}

// flight is one in-progress callback validation shared by all concurrent
// presenters of the same key.
type flight struct {
	done chan struct{}
	err  error
}

// entry returns the cache entry for key, creating it if absent; created
// reports whether this call inserted it (the insert point for the
// eviction sweep).
func (c *valCache) entry(key string) (e *cacheEntry, created bool) {
	if v, ok := c.entries.Load(key); ok {
		return v.(*cacheEntry), false
	}
	v, loaded := c.entries.LoadOrStore(key, &cacheEntry{})
	if !loaded {
		c.count.Add(1)
	}
	return v.(*cacheEntry), !loaded
}

// evictCacheEntries brings the bounded cache back under its limit with a
// second-chance sweep, evicting a slack batch (max/16) beyond the
// overflow so sweeps stay infrequent under a steady insert stream. At
// most one sweep runs at a time; racing inserters skip out and leave the
// cache transiently a few entries over its bound.
func (s *Service) evictCacheEntries() {
	c := &s.vcache
	if c.max <= 0 || !c.sweeping.CompareAndSwap(false, true) {
		return
	}
	defer c.sweeping.Store(false)
	need := c.count.Load() - int64(c.max)
	if need <= 0 {
		return
	}
	need += int64(c.max/16) + 1
	c.entries.Range(func(k, v any) bool {
		e := v.(*cacheEntry)
		if e.recent.Swap(false) {
			return true // recently hit: spare this round
		}
		e.mu.Lock()
		if e.flight != nil || e.dead {
			e.mu.Unlock()
			return true
		}
		e.dead = true
		e.gen++
		e.valid.Store(false)
		e.validatedAt.Store(0)
		sub := e.sub
		e.sub = nil
		watched := e.watched
		e.watched = false
		e.mu.Unlock()
		c.entries.Delete(k)
		c.count.Add(-1)
		if sub != nil {
			sub.Cancel()
		}
		if watched && s.hb != nil {
			s.hb.Unwatch(k.(string))
		}
		s.stats.cacheEvictions.Add(1)
		need--
		return need > 0
	})
}

// subscriptions snapshots the live revocation subscriptions (Close sweep).
func (c *valCache) subscriptions() []*event.Subscription {
	var subs []*event.Subscription
	c.entries.Range(func(_, v any) bool {
		e := v.(*cacheEntry)
		e.mu.Lock()
		if e.sub != nil {
			subs = append(subs, e.sub)
			e.sub = nil
		}
		e.valid.Store(false)
		e.mu.Unlock()
		return true
	})
	return subs
}

// credsScratch backs one validateAll call: the credential-set slices are
// pooled so the authorize-and-dispatch hot path does not allocate a
// fresh slice per request. Solutions hold pointers into these slices
// (policy.Match.Role/Appt), so callers release the scratch only after
// the last use of the evaluation's solution — which is always within the
// same request (Solution never outlives Activate/Invoke).
type credsScratch struct {
	roles []policy.HeldRole
	appts []policy.Appointment
}

var credsPool = sync.Pool{New: func() any { return &credsScratch{} }}

func getCredsScratch() *credsScratch { return credsPool.Get().(*credsScratch) }

// release zeroes the live elements (dropping their string and term
// references) and returns the scratch to the pool.
func (sc *credsScratch) release() {
	clear(sc.roles)
	clear(sc.appts)
	sc.roles = sc.roles[:0]
	sc.appts = sc.appts[:0]
	credsPool.Put(sc)
}

// validateAll checks every presented certificate and converts the valid set
// into the evaluator's credential view, built into the caller's pooled
// scratch. Any invalid certificate rejects the whole request — a principal
// presenting forged or revoked credentials is refused outright rather than
// silently narrowed.
func (s *Service) validateAll(principal string, p Presented, sc *credsScratch) (policy.CredentialSet, error) {
	sc.roles = sc.roles[:0]
	sc.appts = sc.appts[:0]
	for _, r := range p.RMCs {
		// One rendering of the CRR serves both the validation cache key
		// and the held role's monitoring key.
		key := r.Ref.String()
		if err := s.validateRMCKeyed(principal, r, key); err != nil {
			return policy.CredentialSet{}, fmt.Errorf("%w: rmc %s: %v", ErrInvalidCredential, r.Ref, err)
		}
		sc.roles = append(sc.roles, policy.HeldRole{Role: r.Role, Key: key})
	}
	for _, a := range p.Appointments {
		if err := s.validateAppointment(a); err != nil {
			return policy.CredentialSet{}, fmt.Errorf("%w: appointment %s: %v", ErrInvalidCredential, a.Key(), err)
		}
		sc.appts = append(sc.appts, policy.Appointment{
			Issuer:    a.Issuer,
			Kind:      a.Kind,
			Params:    a.Params,
			Key:       a.Key(),
			ExpiresAt: a.ExpiresAt,
		})
	}
	return policy.CredentialSet{Roles: sc.roles, Appointments: sc.appts}, nil
}

// validateRMC checks one RMC for the presenting principal: locally when
// this service issued it, otherwise by callback to the issuer (Sect. 4),
// consulting the ECR cache when enabled.
func (s *Service) validateRMC(principal string, r cert.RMC) error {
	return s.validateRMCKeyed(principal, r, "")
}

// validateRMCKeyed is validateRMC with the CRR rendering precomputed by
// the caller ("" renders on demand), so validateAll does not build the
// same key twice per certificate.
func (s *Service) validateRMCKeyed(principal string, r cert.RMC, key string) error {
	if r.Ref.Issuer == s.name {
		s.stats.localValidations.Add(1)
		status, err := s.records.Status(r.Ref.Serial)
		if err != nil {
			return fmt.Errorf("record store: %w", err)
		}
		if !status.Exists {
			return ErrUnknownCR
		}
		if status.Revoked {
			return fmt.Errorf("%w: %s", ErrRevoked, status.Reason)
		}
		if status.Holder != principal {
			return fmt.Errorf("%w: certificate issued to a different principal", ErrInvalidCredential)
		}
		return r.Verify(s.ring, principal)
	}
	if key == "" {
		key = r.Ref.String()
	}
	return s.validateForeign("cr", key, "cr/", r.Ref.Issuer, rmcItem(r, principal))
}

// validateAppointment checks an appointment certificate locally or by
// callback to its issuer, including expiry at the current instant.
func (s *Service) validateAppointment(a cert.AppointmentCertificate) error {
	// Expiry is a clock fact the certificate itself carries, so check it
	// locally before consulting the record table or the ECR cache: a
	// cached pre-expiry verdict is event-invalidated (revocation), not
	// clock-invalidated, and must not outlive the certificate.
	if !a.ExpiresAt.IsZero() && s.clk.Now().After(a.ExpiresAt) {
		return fmt.Errorf("%w: at %s", cert.ErrExpired, a.ExpiresAt.Format(time.RFC3339))
	}
	if a.Issuer == s.name {
		s.stats.localValidations.Add(1)
		s.apptMu.Lock()
		rec, ok := s.appts[a.Serial]
		var revoked bool
		if ok {
			revoked = rec.revoked
		}
		s.apptMu.Unlock()
		if !ok {
			return ErrUnknownCR
		}
		if revoked {
			return ErrRevoked
		}
		return a.Verify(s.ring, s.clk.Now())
	}
	return s.validateForeign("appt", a.Key(), "appt/", a.Issuer, apptItem(a))
}

// validateForeign performs (or reuses) a callback validation of a
// certificate issued elsewhere. With caching enabled it implements the ECR
// proxy of Fig. 5: the first validation subscribes to the certificate's
// revocation channel so the cached result is dropped the instant the
// issuer invalidates it; concurrent presenters of the same uncached key
// share a single callback. topicPrefix plus key names the certificate's
// revocation channel (TopicCR / TopicAppt); the concatenation is deferred
// to the fill path so cache hits allocate nothing.
func (s *Service) validateForeign(kindTag, key, topicPrefix, issuer string, it validateItem) error {
	if !s.cacheValidations {
		return s.timedCallbackValidate(kindTag, key, issuer, it)
	}
	e, created := s.vcache.entry(key)
	if created {
		s.evictCacheEntries()
	}
	for {
		if s.cacheFresh(e) {
			// Only positive results are cached; revocation events
			// clear the bit, so a hit means "valid as far as the
			// issuer has told us" — and, with RevalidateAfter set,
			// recently enough to trust without re-confirmation.
			s.stats.cacheHits.Add(1)
			if !e.recent.Load() {
				e.recent.Store(true)
			}
			return nil
		}
		e.mu.Lock()
		if s.cacheFresh(e) {
			e.mu.Unlock()
			continue
		}
		if f := e.flight; f != nil {
			// Another presenter is already validating this key: wait
			// for its verdict instead of issuing a duplicate callback.
			e.mu.Unlock()
			<-f.done
			return f.err
		}
		f := &flight{done: make(chan struct{})}
		e.flight = f
		e.mu.Unlock()
		s.stats.cacheMisses.Add(1)

		f.err = s.fillCache(e, topicPrefix+key, kindTag, key, issuer, it)
		e.mu.Lock()
		e.flight = nil
		e.mu.Unlock()
		close(f.done)
		return f.err
	}
}

// cacheFresh reports whether the entry's cached positive verdict may be
// served without re-confirming with the issuer.
func (s *Service) cacheFresh(e *cacheEntry) bool {
	if !e.valid.Load() {
		return false
	}
	if s.revalidateAfter <= 0 {
		return true
	}
	at := e.validatedAt.Load()
	return at != 0 && s.clk.Now().Sub(time.Unix(0, at)) <= s.revalidateAfter
}

// fillCache runs the singleflight leader's validation: subscribe to the
// revocation channel first, then ask the issuer, then publish the positive
// result only if no revocation arrived in between.
//
// When the issuer cannot be reached at all (circuit open, partition,
// timeout — anything rpc.IsUnavailable), a previously-confirmed entry is
// served degraded inside the StaleGrace window instead of denying;
// revocation events (including the heartbeat monitor's synthetic
// revocation on issuer silence) clear the entry and end the grace
// immediately, so availability degrades but safety never does.
func (s *Service) fillCache(e *cacheEntry, topic, kindTag, key, issuer string, it validateItem) error {
	e.mu.Lock()
	// A dead entry (evicted between the presenter loading it and the
	// flight starting) still answers, but never subscribes or caches:
	// its map slot belongs to a fresh entry now.
	if e.sub == nil && !e.dead {
		e.mu.Unlock()
		sub, err := s.broker.Subscribe(topic, func(ev event.Event) {
			if ev.Kind != event.KindRevoked {
				return
			}
			// Drop the cached result rather than caching "revoked":
			// the next presentation re-validates with the
			// authoritative issuer, which also lets heartbeat-driven
			// synthetic revocations fail safe without denying
			// permanently.
			e.mu.Lock()
			e.gen++
			e.valid.Store(false)
			e.validatedAt.Store(0) // ends any stale-grace window too
			watched := e.watched
			e.watched = false
			e.mu.Unlock()
			if watched && s.hb != nil {
				s.hb.Unwatch(key)
			}
			// The invalidation inherits the revocation's cascade
			// provenance, so a trace consumer sees ECR cache drops as
			// part of the collapse they belong to.
			s.obsm.trace(obs.TraceEvent{
				Kind: "validate", Service: s.name, Subject: key,
				Outcome: "invalidated", Corr: ev.Corr, Depth: ev.Depth,
				Detail: ev.Reason,
			})
		})
		e.mu.Lock()
		if err == nil {
			e.sub = sub
		}
		// A closed broker leaves e.sub nil: validation still answers,
		// but the result is not cached (no channel would invalidate it).
	}
	gen := e.gen
	subscribed := e.sub != nil
	e.mu.Unlock()

	start := time.Now()
	err := s.callbackValidate(kindTag, issuer, it)
	s.obsm.callbackNs.ObserveSince(start)
	durNs := time.Since(start).Nanoseconds()
	switch {
	case err == nil:
		if subscribed {
			now := s.clk.Now().UnixNano()
			e.mu.Lock()
			if e.gen == gen {
				e.valid.Store(true)
				e.validatedAt.Store(now)
			}
			e.mu.Unlock()
			s.watchIssuerLiveness(e, kindTag, key, issuer)
		}
		s.obsm.trace(obs.TraceEvent{
			Kind: "validate", Service: s.name, Subject: key,
			Outcome: "ok", Detail: "issuer=" + issuer, DurNs: durNs,
		})
		return nil
	case !rpc.IsUnavailable(err) || errors.Is(err, ErrRevoked):
		// Authoritative answer (the issuer ran and refused, or said
		// revoked): the cached verdict is dead, grace or not.
		e.valid.Store(false)
		e.validatedAt.Store(0)
		s.obsm.trace(obs.TraceEvent{
			Kind: "validate", Service: s.name, Subject: key,
			Outcome: "revoked", Detail: "issuer=" + issuer, DurNs: durNs,
		})
		return err
	default:
		// Issuer unreachable. Fail safe but not fail-closed: a verdict
		// confirmed within the grace window, with no revocation event
		// since, still stands.
		if s.staleGrace > 0 && e.valid.Load() {
			if at := e.validatedAt.Load(); at != 0 &&
				s.clk.Now().Sub(time.Unix(0, at)) <= s.revalidateAfter+s.staleGrace {
				s.stats.degradedHits.Add(1)
				s.obsm.trace(obs.TraceEvent{
					Kind: "validate", Service: s.name, Subject: key,
					Outcome: "degraded", Detail: "issuer unreachable, stale-grace accept", DurNs: durNs,
				})
				return nil
			}
			// Grace exhausted: drop the entry so later presentations
			// fail fast on the cache path as well.
			e.valid.Store(false)
		}
		s.obsm.trace(obs.TraceEvent{
			Kind: "validate", Service: s.name, Subject: key,
			Outcome: "unreachable", Detail: "issuer=" + issuer, DurNs: durNs,
		})
		return err
	}
}

// watchIssuerLiveness registers a freshly confirmed foreign RMC with the
// optional heartbeat monitor, bounding degraded operation by the issuer's
// heartbeat deadline: on silence the monitor publishes a synthetic
// revocation on the certificate's channel, which the subscription above
// turns into an immediate cache drop. Appointment certificates are not
// heartbeated (EmitHeartbeats covers credential records only), so only
// "cr" entries are watched.
func (s *Service) watchIssuerLiveness(e *cacheEntry, kindTag, key, issuer string) {
	if s.hb == nil || kindTag != "cr" {
		return
	}
	e.mu.Lock()
	if e.watched {
		e.mu.Unlock()
		return
	}
	e.watched = true
	e.mu.Unlock()
	if err := s.hb.Watch(key, TopicHeartbeat(issuer), "cr/"+key); err != nil {
		e.mu.Lock()
		e.watched = false
		e.mu.Unlock()
	}
}

// timedCallbackValidate wraps callbackValidate with the callback-latency
// histogram and a validate trace event; it serves the uncached validation
// path (the ECR path instruments fillCache instead, where the outcome
// classification is richer). The instrumentation is negligible against the
// RPC it measures.
func (s *Service) timedCallbackValidate(kindTag, key, issuer string, it validateItem) error {
	start := time.Now()
	err := s.callbackValidate(kindTag, issuer, it)
	s.obsm.callbackNs.ObserveSince(start)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	s.obsm.trace(obs.TraceEvent{
		Kind: "validate", Service: s.name, Subject: key,
		Outcome: outcome, Detail: "issuer=" + issuer,
		DurNs: time.Since(start).Nanoseconds(),
	})
	return err
}

// callbackValidate asks the issuing service to validate one certificate,
// routing through the per-issuer batcher: concurrent validations bound
// for the same issuer coalesce into validate_batch calls (see batch.go),
// while a lone call departs immediately as a single binary-coded call.
func (s *Service) callbackValidate(kindTag, issuer string, it validateItem) error {
	if s.caller == nil {
		return fmt.Errorf("no transport to validate %s certificate from %s", kindTag, issuer)
	}
	return s.batch.do(issuer, it)
}

// Close cancels the service's cache subscriptions and expiry timers
// (credential record watches are cancelled by Deactivate).
func (s *Service) Close() {
	// Drain the mutation sequencer first: Close blocks until every
	// in-flight Submit has applied, after which late mutations (e.g. a
	// revocation racing shutdown) take the inline path.
	if s.seq != nil {
		s.seq.Close()
	}
	s.stopOnce.Do(func() { close(s.stopTimers) })
	s.timersWG.Wait()
	subs := s.vcache.subscriptions()
	for _, cr := range s.crs.allRecords() {
		cr.mu.Lock()
		subs = append(subs, cr.subs...)
		cr.subs = nil
		cr.mu.Unlock()
	}
	for _, sub := range subs {
		sub.Cancel()
	}
}

// Wire messages for callback validation and remote operation.

type validateRMCRequest struct {
	RMC       cert.RMC `json:"rmc"`
	Principal string   `json:"principal"`
}

type validateApptRequest struct {
	Appointment cert.AppointmentCertificate `json:"appointment"`
}

type validateResponse struct {
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

// validateItemVerdict runs one validation item and renders the verdict.
func (s *Service) validateItemVerdict(it validateItem) validateResponse {
	var err error
	if it.isAppt {
		err = s.validateAppointment(it.appt)
	} else {
		err = s.validateRMC(it.principal, it.rmc)
	}
	if err != nil {
		return validateResponse{Valid: false, Reason: err.Error()}
	}
	return validateResponse{Valid: true}
}

// Handler exposes the service's remote endpoints over the rpc transport:
// validate_rmc, validate_appt and validate_batch (callback validation),
// activate, invoke, appoint, revoke and end_session (remote role
// activation, invocation and credential management, used for
// cross-domain sessions and the HTTP edge gateway). The validation
// endpoints sniff the body's
// first byte and accept both the binary wire bodies (wirebin.go) and the
// legacy JSON forms, answering in the encoding the caller used, so new
// and old peers interoperate during a rolling upgrade.
func (s *Service) Handler() func(method string, body []byte) ([]byte, error) {
	return func(method string, body []byte) ([]byte, error) {
		if s.readOnly {
			switch method {
			case "activate", "invoke", "appoint", "revoke", "end_session":
				return nil, fmt.Errorf("%s %s: %w", s.name, method, ErrReadOnly)
			}
		}
		switch method {
		case "validate_rmc", "validate_appt":
			if isBinaryBody(body) {
				it, err := decodeValidateReqBinary(body)
				if err != nil {
					return nil, fmt.Errorf("decode: %w", err)
				}
				return encodeValidateRespBinary(s.validateItemVerdict(it)), nil
			}
			var it validateItem
			if method == "validate_rmc" {
				var req validateRMCRequest
				if err := json.Unmarshal(body, &req); err != nil {
					return nil, fmt.Errorf("decode: %w", err)
				}
				it = rmcItem(req.RMC, req.Principal)
			} else {
				var req validateApptRequest
				if err := json.Unmarshal(body, &req); err != nil {
					return nil, fmt.Errorf("decode: %w", err)
				}
				it = apptItem(req.Appointment)
			}
			return json.Marshal(s.validateItemVerdict(it))
		case "validate_batch":
			pooled, _ := batchItemsPool.Get().([]validateItem)
			items, err := decodeValidateBatchReqInto(pooled, body)
			if err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			defer func() {
				clear(items)
				batchItemsPool.Put(items[:0]) //nolint:staticcheck // slice reuse, header copy is fine
			}()
			pr, _ := batchRespsPool.Get().([]validateResponse)
			var resps []validateResponse
			if cap(pr) >= len(items) {
				resps = pr[:len(items)]
			} else {
				resps = make([]validateResponse, len(items))
			}
			defer func() {
				clear(resps)
				batchRespsPool.Put(resps[:0]) //nolint:staticcheck // slice reuse, header copy is fine
			}()
			// Big batches are the whole point of the endpoint: verify
			// chunks across cores so the round trip does not grow
			// linearly with the herd the batch carries.
			const chunk = 16
			if len(items) <= chunk {
				for i, it := range items {
					resps[i] = s.validateItemVerdict(it)
				}
			} else {
				var wg sync.WaitGroup
				for lo := 0; lo < len(items); lo += chunk {
					hi := min(lo+chunk, len(items))
					wg.Add(1)
					go func(lo, hi int) {
						defer wg.Done()
						for i := lo; i < hi; i++ {
							resps[i] = s.validateItemVerdict(items[i])
						}
					}(lo, hi)
				}
				wg.Wait()
			}
			return encodeValidateBatchResp(resps), nil
		case "activate":
			var req RemoteActivateRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			rmc, err := s.Activate(req.Principal, req.Role, req.Presented())
			if err != nil {
				return nil, err
			}
			return json.Marshal(rmc)
		case "invoke":
			var req RemoteInvokeRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			return s.Invoke(req.Principal, req.Method, req.Args, req.Presented())
		case "end_session":
			var req struct {
				Principal string `json:"principal"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			n := s.EndSession(req.Principal)
			return json.Marshal(map[string]int{"deactivated": n})
		case "revoke":
			var req RemoteRevokeRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			return json.Marshal(RemoteRevokeResponse{Revoked: s.Revoke(req.Serial, req.Reason)})
		case "appoint":
			var req RemoteAppointRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("decode: %w", err)
			}
			a, err := s.Appoint(req.Principal, AppointmentRequest{
				Kind:      req.Kind,
				Holder:    req.Holder,
				Params:    req.Params,
				ExpiresAt: req.ExpiresAt,
			}, req.Presented())
			if err != nil {
				return nil, err
			}
			return cert.MarshalAppointment(a)
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	}
}
