package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
)

func TestCallbackValidationPerUse(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `guard.inside <- login.user.
auth enter <- login.user.`)
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	before := w.bus.Calls()
	for i := 0; i < 5; i++ {
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
			t.Fatal(err)
		}
	}
	callbacks := w.bus.Calls() - before
	if callbacks != 5 {
		t.Errorf("expected one callback per use without caching, got %d", callbacks)
	}
	if guard.Stats().CallbackValidations != 5 {
		t.Errorf("stats = %+v", guard.Stats())
	}
}

func TestCachedValidationAmortisesCallback(t *testing.T) {
	// Sect. 4: "The service may cache the certificate and the result of
	// validation in order to reduce the communication overhead of
	// repeated callback."
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`, withCache())
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	before := w.bus.Calls()
	for i := 0; i < 10; i++ {
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
			t.Fatal(err)
		}
	}
	callbacks := w.bus.Calls() - before
	if callbacks != 1 {
		t.Errorf("expected exactly one callback with caching, got %d", callbacks)
	}
	if hits := guard.Stats().CacheHits; hits != 9 {
		t.Errorf("CacheHits = %d, want 9", hits)
	}
}

func TestCacheInvalidatedByRevocationEvent(t *testing.T) {
	// The ECR proxy must drop its cached result the instant the issuer
	// revokes (Fig. 5), not at the next callback.
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`, withCache())
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	login.Deactivate(rmc.Ref.Serial, "logout")
	w.broker.Quiesce()
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("cached validation outlived revocation: %v", err)
	}
}

func TestValidationNoTransport(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	isolated, err := NewService(Config{
		Name:   "isolated",
		Policy: mustPolicy(`auth m <- login.user.`),
		Broker: w.broker,
		Clock:  w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(isolated.Close)
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := isolated.Invoke(sess.PrincipalID(), "m", nil, sess.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("validation without transport: %v", err)
	}
}

func TestValidationTransportFault(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`)
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	w.bus.SetFault(rpc.FailNTimes("login", 1))
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("faulted callback treated as valid: %v", err)
	}
	// Transport recovers; the next call succeeds.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Errorf("post-fault invoke failed: %v", err)
	}
}

func TestForgedRMCRejectedByIssuerCallback(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`)
	sess := w.session()
	// Forge: an RMC that claims to be from login but was never issued.
	forged := cert.RMC{
		Role: role("login", "user"),
		Ref:  cert.CRR{Issuer: "login", Serial: 424242},
	}
	sess.AddRMC(forged)
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); !errors.Is(err, ErrInvalidCredential) {
		t.Errorf("forged RMC accepted: %v", err)
	}
}

func TestInvokeUnknownMethod(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `auth known <- env ok.`)
	alwaysTrue(svc, "ok")
	if _, err := svc.Invoke("p", "unknown", nil, Presented{}); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("err = %v", err)
	}
}

func TestInvokeDeniedAndBoundImpl(t *testing.T) {
	w := newWorld(t)
	svc := w.service("files", `files.owner(F) <- env owns(F).
auth read(F) <- files.owner(F).`)
	db := newOwnsDB(t, svc)
	_ = db
	sess := w.session()
	rmc, err := svc.Activate(sess.PrincipalID(), role("files", "owner", names.Atom("f1")), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	svc.Bind("read", func(args []names.Term) ([]byte, error) {
		return []byte("contents of " + args[0].String()), nil
	})
	out, err := svc.Invoke(sess.PrincipalID(), "read", []names.Term{names.Atom("f1")}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "contents of f1" {
		t.Errorf("out = %q", out)
	}
	// A file the principal does not own is denied.
	if _, err := svc.Invoke(sess.PrincipalID(), "read", []names.Term{names.Atom("f2")}, sess.Credentials()); !errors.Is(err, ErrInvocationDenied) {
		t.Errorf("err = %v", err)
	}
	stats := svc.Stats()
	if stats.Invocations != 1 || stats.InvocationsDenied != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestInvokeObserverReceivesCredentialKeys(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := w.service("guard", `auth enter <- login.user.`)
	var recs []InvokeRecord
	guard.Observe(func(r InvokeRecord) { recs = append(recs, r) })
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Service != "guard" || recs[0].Method != "enter" {
		t.Errorf("record = %+v", recs[0])
	}
	if len(recs[0].Credentials) != 1 || recs[0].Credentials[0] != rmc.Ref.String() {
		t.Errorf("credentials = %v, want [%s]", recs[0].Credentials, rmc.Ref)
	}
}

func TestRemoteClientActivateInvoke(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	svc := w.service("svc", `auth hello <- login.user.`)
	svc.Bind("hello", func(args []names.Term) ([]byte, error) {
		return []byte("hi"), nil
	})
	cli := NewClient(w.bus)
	sess := w.session()
	rmc, err := cli.Activate("login", sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	out, err := cli.Invoke("svc", sess.PrincipalID(), "hello", nil, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hi" {
		t.Errorf("out = %q", out)
	}
	// A remote activation that fails surfaces as a RemoteError.
	_, err = cli.Activate("login", sess.PrincipalID(), role("login", "admin"), Presented{})
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Errorf("err = %v", err)
	}
}

func TestHandlerRejectsGarbage(t *testing.T) {
	w := newWorld(t)
	svc := w.service("s", `auth m <- env ok.`)
	h := svc.Handler()
	for _, method := range []string{"validate_rmc", "validate_appt", "activate", "invoke"} {
		if _, err := h(method, []byte("{broken")); err == nil {
			t.Errorf("%s accepted garbage", method)
		}
	}
	if _, err := h("no_such_method", nil); err == nil {
		t.Error("unknown method accepted")
	}
}

// newOwnsDB registers an `owns` predicate that holds for file f1 only.
func newOwnsDB(t *testing.T, svc *Service) struct{} {
	t.Helper()
	svc.Env().Register("owns", func(args []names.Term, s names.Substitution) []names.Substitution {
		if len(args) != 1 {
			return nil
		}
		if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom("f1")}, s); ok {
			return []names.Substitution{ext}
		}
		return nil
	})
	return struct{}{}
}

func mustPolicy(src string) policy.Policy {
	return policy.MustParse(src)
}

// callerFunc adapts a function to the rpc.Caller interface for tests that
// intercept callback validations.
type callerFunc func(service, method string, body []byte) ([]byte, error)

func (f callerFunc) Call(service, method string, body []byte) ([]byte, error) {
	return f(service, method, body)
}

func withCaller(c rpc.Caller) func(*Config) {
	return func(cfg *Config) { cfg.Caller = c }
}

// TestRevocationDuringCacheFillNotCachedStale is the regression test for
// the cache-fill race: a revocation delivered between the issuer answering
// "valid" and the cache entry landing must not leave a stale positive
// entry. The interceptor revokes the certificate (and waits for the event
// fan-out to settle) after the issuer has answered but before the answer
// reaches the caching service.
func TestRevocationDuringCacheFillNotCachedStale(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")

	var serial atomic.Uint64
	interceptor := callerFunc(func(service, method string, body []byte) ([]byte, error) {
		out, err := w.bus.Call(service, method, body)
		if method == "validate_rmc" {
			login.Deactivate(serial.Load(), "revoked mid-validation")
			w.broker.Quiesce()
		}
		return out, err
	})
	guard := w.service("guard", `auth enter <- login.user.`, withCache(), withCaller(interceptor))

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	serial.Store(rmc.Ref.Serial)
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	// The first invocation may succeed (the issuer answered "valid"
	// before the revocation), but it must not cache that answer.
	guard.Invoke(sess.PrincipalID(), "enter", nil, creds) //nolint:errcheck

	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err == nil {
		t.Fatal("revoked certificate accepted from a stale cache entry")
	}
	if hits := guard.Stats().CacheHits; hits != 0 {
		t.Errorf("CacheHits = %d, want 0 (no positive entry may survive the fill race)", hits)
	}
}

// TestSingleflightCoalescesConcurrentFills checks that N concurrent
// presentations of the same uncached certificate trigger one issuer
// callback, not N.
func TestSingleflightCoalescesConcurrentFills(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")

	var callbacks atomic.Uint64
	slowCaller := callerFunc(func(service, method string, body []byte) ([]byte, error) {
		if method == "validate_rmc" {
			callbacks.Add(1)
			time.Sleep(20 * time.Millisecond) // hold the flight open so presenters pile up
		}
		return w.bus.Call(service, method, body)
	})
	guard := w.service("guard", `auth enter <- login.user.`, withCache(), withCaller(slowCaller))

	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, creds); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := callbacks.Load(); got != 1 {
		t.Errorf("callback validations = %d, want 1 (singleflight)", got)
	}
	if got := guard.Stats().CallbackValidations; got != 1 {
		t.Errorf("stats.CallbackValidations = %d, want 1", got)
	}
}
