package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cert"
)

// Binary wire bodies for the callback-validation hot path. Each body
// starts with a tag byte that can never begin a JSON document ('{' =
// 0x7b, whitespace, or a quote), so Handler sniffs body[0] and serves
// whichever encoding the caller used — and answers in kind. Certificates
// embed their cert package binary forms; strings ride as uvarint length +
// bytes.
const (
	tagValidateRMCReq    = 0x01
	tagValidateApptReq   = 0x02
	tagValidateResp      = 0x03
	tagValidateBatchReq  = 0x04
	tagValidateBatchResp = 0x05
)

// errWireBin marks malformed binary validation bodies.
var errWireBin = errors.New("core: malformed binary wire body")

// isBinaryBody reports whether a wire body carries one of the binary
// tags (as opposed to a JSON document).
func isBinaryBody(b []byte) bool {
	return len(b) > 0 && b[0] >= tagValidateRMCReq && b[0] <= tagValidateBatchResp
}

// maxBatchItems bounds a decoded batch so a corrupt count cannot drive a
// huge allocation.
const maxBatchItems = 1 << 14

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readWireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errWireBin
	}
	return v, b[n:], nil
}

func readWireString(b []byte) (string, []byte, error) {
	n, rest, err := readWireUvarint(b)
	if err != nil || uint64(len(rest)) < n {
		return "", nil, errWireBin
	}
	return string(rest[:n]), rest[n:], nil
}

// validateItem is one callback validation in transit: either an RMC with
// its presenting principal, or an appointment certificate. It is the unit
// the client-side batcher coalesces and the batch wire body carries.
type validateItem struct {
	isAppt    bool
	rmc       cert.RMC
	principal string
	appt      cert.AppointmentCertificate
}

func rmcItem(r cert.RMC, principal string) validateItem {
	return validateItem{rmc: r, principal: principal}
}

func apptItem(a cert.AppointmentCertificate) validateItem {
	return validateItem{isAppt: true, appt: a}
}

// method returns the single-call RPC method for this item.
func (it validateItem) method() string {
	if it.isAppt {
		return "validate_appt"
	}
	return "validate_rmc"
}

// appendBody appends the item's payload (no tag): the per-item encoding
// shared by single requests and batch entries.
func (it validateItem) appendBody(dst []byte) []byte {
	if it.isAppt {
		return cert.AppendAppointmentBinary(dst, it.appt)
	}
	dst = appendWireString(dst, it.principal)
	return cert.AppendRMCBinary(dst, it.rmc)
}

// encodeBinary produces the item's tagged single-request body.
func (it validateItem) encodeBinary() []byte {
	tag := byte(tagValidateRMCReq)
	if it.isAppt {
		tag = tagValidateApptReq
	}
	return it.appendBody([]byte{tag})
}

// encodeJSON produces the item's legacy JSON single-request body.
func (it validateItem) encodeJSON() ([]byte, error) {
	if it.isAppt {
		return json.Marshal(validateApptRequest{Appointment: it.appt})
	}
	return json.Marshal(validateRMCRequest{RMC: it.rmc, Principal: it.principal})
}

// readItemBody decodes one item payload (no tag) from the front of b.
func readItemBody(b []byte, isAppt bool) (validateItem, []byte, error) {
	if isAppt {
		a, rest, err := cert.ReadAppointmentBinary(b)
		if err != nil {
			return validateItem{}, nil, err
		}
		return apptItem(a), rest, nil
	}
	principal, rest, err := readWireString(b)
	if err != nil {
		return validateItem{}, nil, err
	}
	r, rest, err := cert.ReadRMCBinary(rest)
	if err != nil {
		return validateItem{}, nil, err
	}
	return rmcItem(r, principal), rest, nil
}

// decodeValidateReqBinary decodes a tagged single-request body
// (tagValidateRMCReq or tagValidateApptReq).
func decodeValidateReqBinary(body []byte) (validateItem, error) {
	if len(body) < 1 {
		return validateItem{}, errWireBin
	}
	it, rest, err := readItemBody(body[1:], body[0] == tagValidateApptReq)
	if err != nil {
		return validateItem{}, err
	}
	if len(rest) != 0 {
		return validateItem{}, fmt.Errorf("%w: %d trailing bytes", errWireBin, len(rest))
	}
	return it, nil
}

// encodeValidateRespBinary encodes a validation verdict.
func encodeValidateRespBinary(resp validateResponse) []byte {
	dst := []byte{tagValidateResp, 0}
	if resp.Valid {
		dst[1] = 1
	}
	return appendWireString(dst, resp.Reason)
}

// decodeValidateRespBinary decodes a tagged verdict body.
func decodeValidateRespBinary(body []byte) (validateResponse, error) {
	if len(body) < 2 || body[0] != tagValidateResp {
		return validateResponse{}, errWireBin
	}
	reason, rest, err := readWireString(body[2:])
	if err != nil || len(rest) != 0 {
		return validateResponse{}, errWireBin
	}
	return validateResponse{Valid: body[1] == 1, Reason: reason}, nil
}

// encodeValidateBatchReq encodes N items as one validate_batch body: tag,
// count, then each item as kind byte + payload.
// appendBatchItem appends one batch entry: kind byte then body.
func appendBatchItem(dst []byte, it *validateItem) []byte {
	kind := byte(1)
	if it.isAppt {
		kind = 2
	}
	dst = append(dst, kind)
	return it.appendBody(dst)
}

func encodeValidateBatchReq(items []validateItem) []byte {
	dst := binary.AppendUvarint([]byte{tagValidateBatchReq}, uint64(len(items)))
	for i := range items {
		dst = appendBatchItem(dst, &items[i])
	}
	return dst
}

// decodeValidateBatchReq decodes a validate_batch request body.
func decodeValidateBatchReq(body []byte) ([]validateItem, error) {
	return decodeValidateBatchReqInto(nil, body)
}

// batchItemsPool recycles the handler's decoded batch slices;
// batchRespsPool recycles the verdict slices built alongside them.
var (
	batchItemsPool sync.Pool
	batchRespsPool sync.Pool
)

// decodeValidateBatchReqInto decodes into dst's storage (the handler
// recycles batch item slices — a storm decodes hundreds of large items
// per round trip).
func decodeValidateBatchReqInto(dst []validateItem, body []byte) ([]validateItem, error) {
	if len(body) < 1 || body[0] != tagValidateBatchReq {
		return nil, errWireBin
	}
	n, rest, err := readWireUvarint(body[1:])
	if err != nil {
		return nil, err
	}
	if n > maxBatchItems || n > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: batch count %d", errWireBin, n)
	}
	items := dst[:0]
	if cap(items) < int(n) {
		// Round the capacity up to a power of two so recycled slices fit
		// later batches of similar-but-not-identical size instead of
		// missing the pool on every herd-size fluctuation.
		c := 64
		for c < int(n) {
			c *= 2
		}
		items = make([]validateItem, 0, c)
	}
	for i := uint64(0); i < n; i++ {
		if len(rest) < 1 {
			return nil, errWireBin
		}
		kind := rest[0]
		if kind != 1 && kind != 2 {
			return nil, fmt.Errorf("%w: batch item kind %d", errWireBin, kind)
		}
		var it validateItem
		it, rest, err = readItemBody(rest[1:], kind == 2)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errWireBin, len(rest))
	}
	return items, nil
}

// encodeValidateBatchResp encodes the per-item verdicts, in request
// order.
func encodeValidateBatchResp(resps []validateResponse) []byte {
	size := 1 + binary.MaxVarintLen32
	for _, r := range resps {
		size += 1 + binary.MaxVarintLen32 + len(r.Reason)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, tagValidateBatchResp)
	dst = binary.AppendUvarint(dst, uint64(len(resps)))
	for _, r := range resps {
		v := byte(0)
		if r.Valid {
			v = 1
		}
		dst = append(dst, v)
		dst = appendWireString(dst, r.Reason)
	}
	return dst
}

// decodeValidateBatchResp decodes a validate_batch response body.
func decodeValidateBatchResp(body []byte) ([]validateResponse, error) {
	return decodeValidateBatchRespInto(nil, body)
}

// decodeValidateBatchRespInto decodes into dst's storage (the batcher
// recycles verdict slices across herds).
func decodeValidateBatchRespInto(dst []validateResponse, body []byte) ([]validateResponse, error) {
	if len(body) < 1 || body[0] != tagValidateBatchResp {
		return nil, errWireBin
	}
	n, rest, err := readWireUvarint(body[1:])
	if err != nil {
		return nil, err
	}
	if n > maxBatchItems || n > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: batch count %d", errWireBin, n)
	}
	resps := dst[:0]
	if cap(resps) < int(n) {
		resps = make([]validateResponse, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		if len(rest) < 1 {
			return nil, errWireBin
		}
		valid := rest[0] == 1
		var reason string
		reason, rest, err = readWireString(rest[1:])
		if err != nil {
			return nil, err
		}
		resps = append(resps, validateResponse{Valid: valid, Reason: reason})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errWireBin, len(rest))
	}
	return resps, nil
}
