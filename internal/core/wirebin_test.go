package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
)

func sampleWireRMC() cert.RMC {
	return cert.RMC{
		Role: names.MustRole(names.MustRoleName("login", "user", 1), names.Atom("alice")),
		Ref:  cert.CRR{Issuer: "login", Serial: 42},
	}
}

func sampleWireAppt() cert.AppointmentCertificate {
	return cert.AppointmentCertificate{
		Issuer:      "hospital",
		Serial:      7,
		Kind:        "doctor",
		Params:      []names.Term{names.Atom("cardiology")},
		Holder:      "bob",
		AppointedBy: "dean",
		IssuedAt:    time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC),
		ExpiresAt:   time.Date(2002, 11, 12, 9, 0, 0, 0, time.UTC),
	}
}

func itemsEqual(a, b validateItem) bool {
	if a.isAppt != b.isAppt || a.principal != b.principal {
		return false
	}
	if a.isAppt {
		x, y := a.appt, b.appt
		if !x.IssuedAt.Equal(y.IssuedAt) || !x.ExpiresAt.Equal(y.ExpiresAt) {
			return false
		}
		x.IssuedAt, y.IssuedAt = time.Time{}, time.Time{}
		x.ExpiresAt, y.ExpiresAt = time.Time{}, time.Time{}
		return reflect.DeepEqual(x, y)
	}
	return reflect.DeepEqual(a.rmc, b.rmc)
}

func TestValidateReqBinaryRoundTrip(t *testing.T) {
	for _, it := range []validateItem{
		rmcItem(sampleWireRMC(), "alice"),
		apptItem(sampleWireAppt()),
		rmcItem(cert.RMC{}, ""),
	} {
		body := it.encodeBinary()
		if !isBinaryBody(body) {
			t.Fatalf("encoded body not recognised as binary: % x", body[:1])
		}
		got, err := decodeValidateReqBinary(body)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !itemsEqual(got, it) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, it)
		}
	}
}

func TestValidateRespBinaryRoundTrip(t *testing.T) {
	for _, resp := range []validateResponse{
		{Valid: true},
		{Valid: false, Reason: "revoked: account closed"},
		{Valid: false},
	} {
		got, err := decodeValidateRespBinary(encodeValidateRespBinary(resp))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != resp {
			t.Errorf("round trip: got %+v want %+v", got, resp)
		}
	}
}

func TestValidateBatchRoundTripMixedKinds(t *testing.T) {
	items := []validateItem{
		rmcItem(sampleWireRMC(), "alice"),
		apptItem(sampleWireAppt()),
		rmcItem(sampleWireRMC(), "carol"),
	}
	got, err := decodeValidateBatchReq(encodeValidateBatchReq(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if !itemsEqual(got[i], items[i]) {
			t.Errorf("item %d mismatch", i)
		}
	}

	resps := []validateResponse{{Valid: true}, {Valid: false, Reason: "expired"}, {Valid: true}}
	gotR, err := decodeValidateBatchResp(encodeValidateBatchResp(resps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR, resps) {
		t.Errorf("responses: got %+v want %+v", gotR, resps)
	}
}

func TestValidateBatchRejectsMalformed(t *testing.T) {
	good := encodeValidateBatchReq([]validateItem{rmcItem(sampleWireRMC(), "alice")})
	if _, err := decodeValidateBatchReq(append(good, 0x00)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := bytes.Clone(good)
	bad[2] = 9 // item kind byte: only 1 (rmc) and 2 (appt) are valid
	if _, err := decodeValidateBatchReq(bad); err == nil {
		t.Error("bad item kind accepted")
	}
	for i := 1; i < len(good); i++ {
		if _, err := decodeValidateBatchReq(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := decodeValidateBatchResp(good); err == nil {
		t.Error("request body accepted as response")
	}
}

// TestHandlerAnswersInKind: the validation endpoints answer binary
// requests with binary verdicts and JSON requests with JSON verdicts, so
// either side of a rolling upgrade understands the reply.
func TestHandlerAnswersInKind(t *testing.T) {
	w := newWorld(t)
	login := w.service("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	sess := w.session()
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), Presented{})
	if err != nil {
		t.Fatal(err)
	}
	h := login.Handler()

	out, err := h("validate_rmc", rmcItem(rmc, sess.PrincipalID()).encodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeValidateRespBinary(out)
	if err != nil {
		t.Fatalf("binary request answered with non-binary body: %v", err)
	}
	if !resp.Valid {
		t.Errorf("verdict = %+v, want valid", resp)
	}

	jsonBody, err := rmcItem(rmc, sess.PrincipalID()).encodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	out, err = h("validate_rmc", jsonBody)
	if err != nil {
		t.Fatal(err)
	}
	var jresp validateResponse
	if err := json.Unmarshal(out, &jresp); err != nil {
		t.Fatalf("JSON request answered with non-JSON body %q: %v", out, err)
	}
	if !jresp.Valid {
		t.Errorf("verdict = %+v, want valid", jresp)
	}

	// validate_batch answers per item, in order.
	forged := cert.RMC{Role: rmc.Role, Ref: cert.CRR{Issuer: "login", Serial: 99999}}
	out, err = h("validate_batch", encodeValidateBatchReq([]validateItem{
		rmcItem(rmc, sess.PrincipalID()),
		rmcItem(forged, sess.PrincipalID()),
	}))
	if err != nil {
		t.Fatal(err)
	}
	resps, err := decodeValidateBatchResp(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || !resps[0].Valid || resps[1].Valid {
		t.Errorf("batch verdicts = %+v, want [valid, invalid]", resps)
	}
}

// FuzzWireBinDecode: arbitrary bytes never panic any of the validation
// body decoders, and anything that decodes re-encodes to an equivalent
// value (fixed point after one normalisation).
func FuzzWireBinDecode(f *testing.F) {
	f.Add(rmcItem(sampleWireRMC(), "alice").encodeBinary())
	f.Add(apptItem(sampleWireAppt()).encodeBinary())
	f.Add(encodeValidateBatchReq([]validateItem{
		rmcItem(sampleWireRMC(), "alice"), apptItem(sampleWireAppt()),
	}))
	f.Add(encodeValidateBatchResp([]validateResponse{{Valid: true}, {Reason: "no"}}))
	f.Add([]byte{})
	f.Add([]byte{tagValidateBatchReq, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if it, err := decodeValidateReqBinary(data); err == nil {
			again, err := decodeValidateReqBinary(it.encodeBinary())
			if err != nil || !itemsEqual(again, it) {
				t.Fatalf("single request re-encode not stable: %v", err)
			}
		}
		if resp, err := decodeValidateRespBinary(data); err == nil {
			if again, err := decodeValidateRespBinary(encodeValidateRespBinary(resp)); err != nil || again != resp {
				t.Fatalf("response re-encode not stable: %v", err)
			}
		}
		if items, err := decodeValidateBatchReq(data); err == nil {
			again, err := decodeValidateBatchReq(encodeValidateBatchReq(items))
			if err != nil || len(again) != len(items) {
				t.Fatalf("batch request re-encode not stable: %v", err)
			}
			for i := range items {
				if !itemsEqual(again[i], items[i]) {
					t.Fatalf("batch item %d not stable", i)
				}
			}
		}
		if resps, err := decodeValidateBatchResp(data); err == nil {
			again, err := decodeValidateBatchResp(encodeValidateBatchResp(resps))
			if err != nil || !reflect.DeepEqual(again, resps) {
				t.Fatalf("batch response re-encode not stable: %v", err)
			}
		}
	})
}
