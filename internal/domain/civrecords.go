package domain

import (
	"errors"
	"fmt"

	"repro/internal/civ"
	"repro/internal/core"
)

// CIVRecords adapts a domain's replicated CIV cluster (internal/civ,
// paper ref [10]) to the engine's RecordStore interface, so that every
// service in the domain can delegate certificate issuing and validation
// state to the one highly available service instead of keeping it locally:
//
//	cluster, _ := civ.NewCluster(3)
//	svc, _ := core.NewService(core.Config{..., Records: domain.NewCIVRecords(cluster)})
//
// Serials are unique cluster-wide, so they remain unique per issuing
// service. Replica crashes are masked until the whole cluster is down, at
// which point issuing and validation fail closed.
type CIVRecords struct {
	cluster *civ.Cluster
}

var _ core.RecordStore = (*CIVRecords)(nil)

// NewCIVRecords wraps a CIV cluster.
func NewCIVRecords(cluster *civ.Cluster) *CIVRecords {
	return &CIVRecords{cluster: cluster}
}

// Issue implements core.RecordStore.
func (c *CIVRecords) Issue(subject, holder string) (uint64, error) {
	serial, err := c.cluster.Issue(subject, holder)
	if err != nil {
		return 0, fmt.Errorf("civ issue: %w", err)
	}
	return serial, nil
}

// Revoke implements core.RecordStore.
func (c *CIVRecords) Revoke(serial uint64, reason string) (bool, error) {
	rec, err := c.cluster.Validate(serial)
	if err != nil {
		if errors.Is(err, civ.ErrUnknownSerial) {
			return false, nil
		}
		return false, fmt.Errorf("civ read: %w", err)
	}
	if rec.Revoked {
		return false, nil
	}
	if err := c.cluster.Revoke(serial, reason); err != nil {
		return false, fmt.Errorf("civ revoke: %w", err)
	}
	return true, nil
}

// Status implements core.RecordStore.
func (c *CIVRecords) Status(serial uint64) (core.RecordStatus, error) {
	rec, err := c.cluster.Validate(serial)
	if err != nil {
		if errors.Is(err, civ.ErrUnknownSerial) {
			return core.RecordStatus{}, nil
		}
		return core.RecordStatus{}, fmt.Errorf("civ read: %w", err)
	}
	return core.RecordStatus{
		Exists:  true,
		Revoked: rec.Revoked,
		Holder:  rec.Holder,
		Subject: rec.Subject,
		Reason:  rec.Reason,
	}, nil
}
