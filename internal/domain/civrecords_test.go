package domain

import (
	"errors"
	"testing"

	"repro/internal/civ"
	"repro/internal/core"
	"repro/internal/policy"
)

// civWorld builds two services in one domain sharing a replicated CIV
// record store (paper ref [10]: "a domain will contain one highly
// available service to carry out the functions of certificate issuing and
// validation").
func civWorld(t *testing.T, replicas int) (*fedWorld, *civ.Cluster, *core.Service, *core.Service) {
	t.Helper()
	w := newFedWorld(t)
	cluster, err := civ.NewCluster(replicas)
	if err != nil {
		t.Fatal(err)
	}
	records := NewCIVRecords(cluster)
	newSvc := func(name, pol string) *core.Service {
		svc, err := core.NewService(core.Config{
			Name:    name,
			Policy:  policy.MustParse(pol),
			Broker:  w.broker,
			Caller:  w.bus,
			Clock:   w.clk,
			Records: records,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.bus.Register(name, svc.Handler())
		t.Cleanup(svc.Close)
		return svc
	}
	login := newSvc("login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	guard := newSvc("guard", `guard.inside <- login.user keep [1].
auth enter <- login.user.`)
	return w, cluster, login, guard
}

func TestCIVRecordsBasicFlow(t *testing.T) {
	w, cluster, login, guard := civWorld(t, 3)
	sess := session(t)
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	insideRMC, err := guard.Activate(sess.PrincipalID(), role("guard", "inside"), sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	// Serials are cluster-wide: the two services' certificates never
	// collide.
	if rmc.Ref.Serial == insideRMC.Ref.Serial {
		t.Error("serial collision across services sharing a CIV store")
	}
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatal(err)
	}
	// Revocation cascades exactly as with local records.
	login.Deactivate(rmc.Ref.Serial, "logout")
	w.broker.Quiesce()
	if valid, _ := guard.CRStatus(insideRMC.Ref.Serial); valid {
		t.Error("dependent role survived logout under CIV records")
	}
	// Both records are revoked in the replicated store.
	rec, err := cluster.Validate(rmc.Ref.Serial)
	if err != nil || !rec.Revoked {
		t.Errorf("cluster record = %+v, %v", rec, err)
	}
}

func TestCIVRecordsSurvivesReplicaCrash(t *testing.T) {
	_, cluster, login, guard := civWorld(t, 3)
	sess := session(t)
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	// Two of three replicas crash; issuing and validation continue.
	if err := cluster.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Crash(1); err != nil {
		t.Fatal(err)
	}
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
		t.Fatalf("invoke during replica outage: %v", err)
	}
	if _, err := login.Activate(sess.PrincipalID(), role("login", "user"), core.Presented{}); err != nil {
		t.Fatalf("activation during replica outage: %v", err)
	}
	// Recovery: the crashed replicas catch up with everything they
	// missed.
	if err := cluster.Restart(0); err != nil {
		t.Fatal(err)
	}
	seq0, err := cluster.AppliedSeq(0)
	if err != nil {
		t.Fatal(err)
	}
	if seq0 != uint64(cluster.LogLen()) {
		t.Errorf("replica 0 applied %d of %d after restart", seq0, cluster.LogLen())
	}
}

func TestCIVRecordsFailsClosedWhenClusterDown(t *testing.T) {
	_, cluster, login, guard := civWorld(t, 1)
	sess := session(t)
	rmc, err := login.Activate(sess.PrincipalID(), role("login", "user"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if err := cluster.Crash(0); err != nil {
		t.Fatal(err)
	}
	// With the record store unreachable, validation must refuse.
	if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); !errors.Is(err, core.ErrInvalidCredential) {
		t.Errorf("invoke with CIV down: %v", err)
	}
	// And new activations fail rather than issuing unrecorded certs.
	if _, err := login.Activate(sess.PrincipalID(), role("login", "user"), core.Presented{}); err == nil {
		t.Error("activation succeeded with CIV down")
	}
}

func TestCIVRecordsStatusUnknownSerial(t *testing.T) {
	cluster, err := civ.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	records := NewCIVRecords(cluster)
	status, err := records.Status(999)
	if err != nil {
		t.Fatal(err)
	}
	if status.Exists {
		t.Error("phantom record exists")
	}
	live, err := records.Revoke(999, "r")
	if err != nil || live {
		t.Errorf("Revoke(unknown) = (%v, %v)", live, err)
	}
}

func TestCIVRecordsRevokeIdempotent(t *testing.T) {
	cluster, err := civ.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	records := NewCIVRecords(cluster)
	serial, err := records.Issue("subject", "holder")
	if err != nil {
		t.Fatal(err)
	}
	live, err := records.Revoke(serial, "first")
	if err != nil || !live {
		t.Fatalf("first revoke = (%v, %v)", live, err)
	}
	live, err = records.Revoke(serial, "second")
	if err != nil || live {
		t.Errorf("second revoke = (%v, %v)", live, err)
	}
	status, err := records.Status(serial)
	if err != nil || !status.Revoked || status.Reason != "first" {
		t.Errorf("status = %+v, %v", status, err)
	}
}
