// Package domain implements the multi-domain layer of OASIS (Sects. 3 and
// 5 of the paper): domains group independently managed services; service
// level agreements (SLAs) between domains say whose certificates a service
// will accept as credentials; cross-domain invocation validates foreign
// certificates by callback to the issuing domain. The package also covers
// the Sect. 5 scenarios: roving principals (visiting doctor), negotiated
// group membership (the Tate galleries analogy) and anonymous service use.
package domain

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/names"
	"repro/internal/policy"
)

// Errors returned by the federation layer.
var (
	// ErrNoSLA is returned when a credential's issuer is in a foreign
	// domain with no agreement covering the credential.
	ErrNoSLA = errors.New("no service level agreement covers this credential")
	// ErrUnknownDomain is returned for services or domains that are not
	// registered.
	ErrUnknownDomain = errors.New("unknown domain")
	// ErrUnknownService is returned when a target service is not
	// registered in any domain.
	ErrUnknownService = errors.New("unknown service")
)

// SLA is a service level agreement: the consuming domain agrees to accept
// specified credentials issued inside the issuing domain. Agreements are
// directional; reciprocal agreements (Sect. 5) are two SLAs.
type SLA struct {
	// IssuerDomain is the domain whose certificates are accepted.
	IssuerDomain string
	// ConsumerDomain is the domain whose services accept them.
	ConsumerDomain string
	// Roles lists accepted RMC role names (nil accepts none).
	Roles []names.RoleName
	// Appointments lists accepted appointment credentials as
	// issuerService.kind pairs.
	Appointments []ApptRef
}

// ApptRef names an appointment credential type.
type ApptRef struct {
	Issuer string
	Kind   string
}

// Federation registers domains, their services, and the agreements between
// them, and mediates cross-domain calls.
type Federation struct {
	mu       sync.RWMutex
	domains  map[string]map[string]*core.Service // domain -> service name -> service
	domainOf map[string]string                   // service name -> domain
	slaRoles map[string]map[string]bool          // consumerDomain -> roleName string -> accepted
	slaAppts map[string]map[string]bool          // consumerDomain -> issuer.kind -> accepted
	slaPairs map[string]map[string]bool          // consumerDomain -> issuerDomain -> any agreement
}

// NewFederation creates an empty federation.
func NewFederation() *Federation {
	return &Federation{
		domains:  make(map[string]map[string]*core.Service),
		domainOf: make(map[string]string),
		slaRoles: make(map[string]map[string]bool),
		slaAppts: make(map[string]map[string]bool),
		slaPairs: make(map[string]map[string]bool),
	}
}

// AddDomain registers a domain name.
func (f *Federation) AddDomain(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.domains[name]; !ok {
		f.domains[name] = make(map[string]*core.Service)
	}
}

// AddService places a service in a domain.
func (f *Federation) AddService(domainName string, svc *core.Service) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	services, ok := f.domains[domainName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, domainName)
	}
	services[svc.Name()] = svc
	f.domainOf[svc.Name()] = domainName
	return nil
}

// DomainOf reports the domain a service belongs to.
func (f *Federation) DomainOf(service string) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	d, ok := f.domainOf[service]
	return d, ok
}

// Service fetches a registered service by name.
func (f *Federation) Service(name string) (*core.Service, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	d, ok := f.domainOf[name]
	if !ok {
		return nil, false
	}
	svc, ok := f.domains[d][name]
	return svc, ok
}

// Agree installs a service level agreement.
func (f *Federation) Agree(sla SLA) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.domains[sla.IssuerDomain]; !ok {
		return fmt.Errorf("%w: issuer %s", ErrUnknownDomain, sla.IssuerDomain)
	}
	if _, ok := f.domains[sla.ConsumerDomain]; !ok {
		return fmt.Errorf("%w: consumer %s", ErrUnknownDomain, sla.ConsumerDomain)
	}
	roles, ok := f.slaRoles[sla.ConsumerDomain]
	if !ok {
		roles = make(map[string]bool)
		f.slaRoles[sla.ConsumerDomain] = roles
	}
	for _, rn := range sla.Roles {
		roles[rn.String()] = true
	}
	appts, ok := f.slaAppts[sla.ConsumerDomain]
	if !ok {
		appts = make(map[string]bool)
		f.slaAppts[sla.ConsumerDomain] = appts
	}
	for _, a := range sla.Appointments {
		appts[a.Issuer+"."+a.Kind] = true
	}
	pairs, ok := f.slaPairs[sla.ConsumerDomain]
	if !ok {
		pairs = make(map[string]bool)
		f.slaPairs[sla.ConsumerDomain] = pairs
	}
	pairs[sla.IssuerDomain] = true
	return nil
}

// screen enforces invariant I9: every presented credential must either be
// issued inside the target's own domain or be covered by an SLA.
func (f *Federation) screen(targetService string, p core.Presented) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	targetDomain, ok := f.domainOf[targetService]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownService, targetService)
	}
	for _, r := range p.RMCs {
		issuerDomain, known := f.domainOf[r.Ref.Issuer]
		if known && issuerDomain == targetDomain {
			continue
		}
		if !known {
			return fmt.Errorf("%w: rmc issuer %s is not in any known domain", ErrNoSLA, r.Ref.Issuer)
		}
		if !f.slaPairs[targetDomain][issuerDomain] || !f.slaRoles[targetDomain][r.Role.Name.String()] {
			return fmt.Errorf("%w: role %s issued in domain %s", ErrNoSLA, r.Role.Name, issuerDomain)
		}
	}
	for _, a := range p.Appointments {
		issuerDomain, known := f.domainOf[a.Issuer]
		if known && issuerDomain == targetDomain {
			continue
		}
		if !known {
			return fmt.Errorf("%w: appointment issuer %s is not in any known domain", ErrNoSLA, a.Issuer)
		}
		if !f.slaPairs[targetDomain][issuerDomain] || !f.slaAppts[targetDomain][a.Issuer+"."+a.Kind] {
			return fmt.Errorf("%w: appointment %s.%s issued in domain %s", ErrNoSLA, a.Issuer, a.Kind, issuerDomain)
		}
	}
	return nil
}

// Activate routes a role activation to the target service after screening
// the presented credentials against the agreements.
func (f *Federation) Activate(targetService, principal string, role names.Role, p core.Presented) (cert.RMC, error) {
	if err := f.screen(targetService, p); err != nil {
		return cert.RMC{}, err
	}
	svc, ok := f.Service(targetService)
	if !ok {
		return cert.RMC{}, fmt.Errorf("%w: %s", ErrUnknownService, targetService)
	}
	return svc.Activate(principal, role, p)
}

// Invoke routes a method invocation to the target service after screening
// the presented credentials against the agreements.
func (f *Federation) Invoke(targetService, principal, method string, args []names.Term, p core.Presented) ([]byte, error) {
	if err := f.screen(targetService, p); err != nil {
		return nil, err
	}
	svc, ok := f.Service(targetService)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, targetService)
	}
	return svc.Invoke(principal, method, args, p)
}

// CheckConsistency runs the static policy consistency checker (the
// "maintain consistency as policies evolve" concern of Sect. 1) over every
// registered service's policy and environmental predicate registry,
// returning the findings.
func (f *Federation) CheckConsistency() []policy.Issue {
	f.mu.RLock()
	checker := policy.NewChecker()
	for _, services := range f.domains {
		for name, svc := range services {
			checker.AddService(name, svc.Policy(), svc.Env().Names())
		}
	}
	f.mu.RUnlock()
	return checker.Check()
}

// Appoint routes an appointment request to the target service after
// screening.
func (f *Federation) Appoint(targetService, principal string, req core.AppointmentRequest, p core.Presented) (cert.AppointmentCertificate, error) {
	if err := f.screen(targetService, p); err != nil {
		return cert.AppointmentCertificate{}, err
	}
	svc, ok := f.Service(targetService)
	if !ok {
		return cert.AppointmentCertificate{}, fmt.Errorf("%w: %s", ErrUnknownService, targetService)
	}
	return svc.Appoint(principal, req, p)
}
