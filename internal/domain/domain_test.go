package domain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// fedWorld is the two-domain fixture used throughout: a hospital domain
// (admin + hospital services) and a research domain (institute service).
type fedWorld struct {
	t      *testing.T
	fed    *Federation
	broker *event.Broker
	bus    *rpc.Loopback
	clk    *clock.Simulated
}

func newFedWorld(t *testing.T) *fedWorld {
	t.Helper()
	w := &fedWorld{
		t:      t,
		fed:    NewFederation(),
		broker: event.NewBroker(),
		bus:    rpc.NewLoopback(),
		clk:    clock.NewSimulated(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC)),
	}
	t.Cleanup(w.broker.Close)
	return w
}

func (w *fedWorld) service(domainName, name, policyText string) *core.Service {
	w.t.Helper()
	svc, err := core.NewService(core.Config{
		Name:   name,
		Policy: policy.MustParse(policyText),
		Broker: w.broker,
		Caller: w.bus,
		Clock:  w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.bus.Register(name, svc.Handler())
	w.fed.AddDomain(domainName)
	if err := w.fed.AddService(domainName, svc); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(svc.Close)
	return svc
}

func role(service, name string, params ...names.Term) names.Role {
	return names.MustRole(names.MustRoleName(service, name, len(params)), params...)
}

func alwaysTrue(svc *core.Service, name string) {
	svc.Env().Register(name, func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
}

func session(t *testing.T) *core.Session {
	t.Helper()
	s, err := core.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFederationRegistration(t *testing.T) {
	w := newFedWorld(t)
	svc := w.service("hospital_domain", "hospital", `hospital.staff <- env ok.`)
	if d, ok := w.fed.DomainOf("hospital"); !ok || d != "hospital_domain" {
		t.Errorf("DomainOf = (%q,%v)", d, ok)
	}
	if got, ok := w.fed.Service("hospital"); !ok || got != svc {
		t.Error("Service lookup failed")
	}
	if _, ok := w.fed.Service("ghost"); ok {
		t.Error("phantom service found")
	}
	if err := w.fed.AddService("nowhere", svc); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("AddService to unknown domain: %v", err)
	}
}

func TestAgreeRequiresKnownDomains(t *testing.T) {
	w := newFedWorld(t)
	w.fed.AddDomain("a")
	if err := w.fed.Agree(SLA{IssuerDomain: "a", ConsumerDomain: "missing"}); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("err = %v", err)
	}
	if err := w.fed.Agree(SLA{IssuerDomain: "missing", ConsumerDomain: "a"}); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("err = %v", err)
	}
}

func TestSameDomainNeedsNoSLA(t *testing.T) {
	w := newFedWorld(t)
	login := w.service("hd", "login", `login.user <- env ok.`)
	alwaysTrue(login, "ok")
	w.service("hd", "records", `records.reader <- login.user keep [1].`)
	sess := session(t)
	rmc, err := w.fed.Activate("login", sess.PrincipalID(), role("login", "user"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	if _, err := w.fed.Activate("records", sess.PrincipalID(), role("records", "reader"), sess.Credentials()); err != nil {
		t.Fatalf("same-domain activation failed: %v", err)
	}
}

func TestCrossDomainRMCRequiresSLA(t *testing.T) {
	// Invariant I9: a cross-domain credential is accepted iff an SLA
	// covering its issuer and credential type exists.
	w := newFedWorld(t)
	hospital := w.service("hd", "hospital", `hospital.doctor(D) <- env is_doc(D).`)
	alwaysTrue(hospital, "is_doc")
	w.service("nd", "national_ehr", `national_ehr.hospital_caller(D) <- hospital.doctor(D) keep [1].`)
	sess := session(t)
	rmc, err := hospital.Activate(sess.PrincipalID(), role("hospital", "doctor", names.Atom("d1")), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	target := role("national_ehr", "hospital_caller", names.Var("D"))
	// Without an SLA: screened out.
	if _, err := w.fed.Activate("national_ehr", sess.PrincipalID(), target, sess.Credentials()); !errors.Is(err, ErrNoSLA) {
		t.Fatalf("cross-domain credential without SLA: %v", err)
	}
	// With the SLA: accepted, and validated by callback to the hospital.
	if err := w.fed.Agree(SLA{
		IssuerDomain:   "hd",
		ConsumerDomain: "nd",
		Roles:          []names.RoleName{names.MustRoleName("hospital", "doctor", 1)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.fed.Activate("national_ehr", sess.PrincipalID(), target, sess.Credentials()); err != nil {
		t.Fatalf("cross-domain activation under SLA failed: %v", err)
	}
}

func TestSLAIsRoleSpecific(t *testing.T) {
	w := newFedWorld(t)
	hospital := w.service("hd", "hospital", `
hospital.doctor(D) <- env is_doc(D).
hospital.porter(P) <- env is_porter(P).
`)
	alwaysTrue(hospital, "is_doc")
	alwaysTrue(hospital, "is_porter")
	w.service("nd", "national_ehr", `national_ehr.caller(X) <- hospital.porter(X) keep [1].`)
	if err := w.fed.Agree(SLA{
		IssuerDomain:   "hd",
		ConsumerDomain: "nd",
		Roles:          []names.RoleName{names.MustRoleName("hospital", "doctor", 1)},
	}); err != nil {
		t.Fatal(err)
	}
	sess := session(t)
	rmc, err := hospital.Activate(sess.PrincipalID(), role("hospital", "porter", names.Atom("p1")), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	// The SLA covers doctor RMCs, not porter RMCs.
	if _, err := w.fed.Activate("national_ehr", sess.PrincipalID(),
		role("national_ehr", "caller", names.Var("X")), sess.Credentials()); !errors.Is(err, ErrNoSLA) {
		t.Errorf("porter RMC crossed under doctor-only SLA: %v", err)
	}
}

func TestUnknownIssuerScreenedOut(t *testing.T) {
	w := newFedWorld(t)
	w.service("nd", "national_ehr", `auth ping <- national_ehr.caller.`)
	sess := session(t)
	forged := core.Presented{RMCs: []cert.RMC{{
		Role: role("rogue", "admin"),
		Ref:  cert.CRR{Issuer: "rogue", Serial: 1},
	}}}
	if _, err := w.fed.Invoke("national_ehr", sess.PrincipalID(), "ping", nil, forged); !errors.Is(err, ErrNoSLA) {
		t.Errorf("credential from unknown issuer passed screening: %v", err)
	}
}

func TestFederationAppoint(t *testing.T) {
	w := newFedWorld(t)
	admin := w.service("d1", "admin", `
admin.officer <- env ok.
auth appoint_badge(K) <- admin.officer.
`)
	alwaysTrue(admin, "ok")
	sess := session(t)
	rmc, err := admin.Activate(sess.PrincipalID(), role("admin", "officer"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)
	appt, err := w.fed.Appoint("admin", sess.PrincipalID(), core.AppointmentRequest{
		Kind: "badge", Holder: "h", Params: []names.Term{names.Atom("g")},
	}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if appt.Kind != "badge" {
		t.Errorf("appt = %+v", appt)
	}
	// Appointing at an unregistered service fails.
	if _, err := w.fed.Appoint("ghost", sess.PrincipalID(), core.AppointmentRequest{
		Kind: "badge", Holder: "h",
	}, core.Presented{}); !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v", err)
	}
	// Screening applies to Appoint too: a credential from an unknown
	// issuer is refused before the service sees it.
	bad := core.Presented{RMCs: []cert.RMC{{Role: role("rogue", "r"),
		Ref: cert.CRR{Issuer: "rogue", Serial: 1}}}}
	if _, err := w.fed.Appoint("admin", sess.PrincipalID(), core.AppointmentRequest{
		Kind: "badge", Holder: "h",
	}, bad); !errors.Is(err, ErrNoSLA) {
		t.Errorf("err = %v", err)
	}
}

func TestReciprocalAgreementUnknownDomain(t *testing.T) {
	w := newFedWorld(t)
	w.fed.AddDomain("a")
	if err := w.fed.ReciprocalAgreement("a", "missing", nil, nil); err == nil {
		t.Error("agreement with unknown domain accepted")
	}
	if err := w.fed.ReciprocalAgreement("missing", "a", nil, nil); err == nil {
		t.Error("agreement with unknown issuer domain accepted")
	}
}

func TestActivateInvokeUnknownTarget(t *testing.T) {
	w := newFedWorld(t)
	w.service("d", "real", `real.r <- env ok.`)
	if _, err := w.fed.Activate("ghost", "p", role("ghost", "r"), core.Presented{}); !errors.Is(err, ErrUnknownService) {
		t.Errorf("Activate: %v", err)
	}
	if _, err := w.fed.Invoke("ghost", "p", "m", nil, core.Presented{}); !errors.Is(err, ErrUnknownService) {
		t.Errorf("Invoke: %v", err)
	}
}

func TestFederationCheckConsistency(t *testing.T) {
	w := newFedWorld(t)
	login := w.service("d1", "login", `login.user <- env password_ok.`)
	alwaysTrue(login, "password_ok")
	// files references login.user (fine) and a ghost role (error).
	w.service("d1", "files", `files.reader <- login.user, ghost.role keep [1].`)
	issues := w.fed.CheckConsistency()
	foundGhost := false
	for _, i := range issues {
		if i.Severity == "error" && i.Service == "files" {
			foundGhost = true
		}
	}
	if !foundGhost {
		t.Errorf("ghost prerequisite not reported: %v", issues)
	}
}

func TestVisitingDoctorScenario(t *testing.T) {
	// Sect. 5: the hospital issues employed_as_doctor(hospital_id)
	// appointments; the research institute's visiting_doctor activation
	// rule accepts them under the reciprocal agreement.
	w := newFedWorld(t)
	hospitalAdmin := w.service("hd", "hospital_admin", `
hospital_admin.staff_officer(A) <- env is_officer(A).
auth appoint_employed_as_doctor(H) <- hospital_admin.staff_officer(A).
`)
	hospitalAdmin.Env().Register("is_officer", func(args []names.Term, s names.Substitution) []names.Substitution {
		if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom("officer1")}, s); ok {
			return []names.Substitution{ext}
		}
		return nil
	})
	institute := w.service("rd", "institute", `
institute.visiting_doctor <- appt hospital_admin.employed_as_doctor(H) keep [1].
institute.guest <- env anyone.
auth use_lab <- institute.visiting_doctor.
`)
	alwaysTrue(institute, "anyone")
	if err := w.fed.ReciprocalAgreement("hd", "rd",
		[]ApptRef{{Issuer: "hospital_admin", Kind: "employed_as_doctor"}},
		[]ApptRef{{Issuer: "institute_admin", Kind: "research_medic"}},
	); err != nil {
		t.Fatal(err)
	}

	officer := session(t)
	officerRMC, err := hospitalAdmin.Activate(officer.PrincipalID(),
		role("hospital_admin", "staff_officer", names.Atom("officer1")), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	officer.AddRMC(officerRMC)

	appt, err := hospitalAdmin.Appoint(officer.PrincipalID(), core.AppointmentRequest{
		Kind:   "employed_as_doctor",
		Holder: "dr-jones-persistent-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, officer.Credentials())
	if err != nil {
		t.Fatal(err)
	}

	// The doctor roves to the research domain and activates
	// visiting_doctor with the home-domain appointment.
	visiting := core.Presented{Appointments: []cert.AppointmentCertificate{appt}}
	rmc, err := w.fed.Activate("institute", "dr-jones-persistent-key",
		role("institute", "visiting_doctor"), visiting)
	if err != nil {
		t.Fatal(err)
	}
	// And may use the lab.
	if _, err := w.fed.Invoke("institute", "dr-jones-persistent-key", "use_lab", nil,
		core.Presented{RMCs: []cert.RMC{rmc}}); err != nil {
		t.Fatalf("visiting doctor refused lab: %v", err)
	}

	// The hospital revokes the employment: the visiting role collapses
	// (validated by callback; membership watched via event channel).
	if !hospitalAdmin.RevokeAppointment(appt.Serial, "employment ended") {
		t.Fatal("revocation failed")
	}
	w.broker.Quiesce()
	if valid, _ := institute.CRStatus(rmc.Ref.Serial); valid {
		t.Error("visiting_doctor survived home-domain revocation")
	}
}

func TestGroupMembershipScenario(t *testing.T) {
	// Sect. 5: a friend of one gallery receives friend privileges at the
	// others, identity not required.
	w := newFedWorld(t)
	tateLondon := w.service("tate_london", "tate_london_membership", `
tate_london_membership.registrar(R) <- env is_registrar(R).
auth appoint_friend(O) <- tate_london_membership.registrar(R).
`)
	tateLondon.Env().Register("is_registrar", func(args []names.Term, s names.Substitution) []names.Substitution {
		if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom("reg1")}, s); ok {
			return []names.Substitution{ext}
		}
		return nil
	})
	stIves := w.service("tate_st_ives", "tate_st_ives_desk", `
tate_st_ives_desk.friend <- appt tate_london_membership.friend(O) keep [1].
auth newsletter <- tate_st_ives_desk.friend.
`)
	_ = stIves
	if err := w.fed.Agree(SLA{
		IssuerDomain:   "tate_london",
		ConsumerDomain: "tate_st_ives",
		Appointments:   []ApptRef{{Issuer: "tate_london_membership", Kind: "friend"}},
	}); err != nil {
		t.Fatal(err)
	}

	registrar := session(t)
	regRMC, err := tateLondon.Activate(registrar.PrincipalID(),
		role("tate_london_membership", "registrar", names.Atom("reg1")), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	registrar.AddRMC(regRMC)

	group := GroupMembership{LocalOrg: tateLondon, Kind: "friend"}
	card, err := group.IssueCard(registrar.PrincipalID(), "art-lover-key", registrar.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	// The card names the organisation; no personal details required.
	if card.Params[0] != names.Atom("tate_london_membership") {
		t.Errorf("card params = %v", card.Params)
	}
	rmc, err := w.fed.Activate("tate_st_ives_desk", "art-lover-key",
		role("tate_st_ives_desk", "friend"), core.Presented{Appointments: []cert.AppointmentCertificate{card}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fed.Invoke("tate_st_ives_desk", "art-lover-key", "newsletter", nil,
		core.Presented{RMCs: []cert.RMC{rmc}}); err != nil {
		t.Errorf("friend refused newsletter: %v", err)
	}
}

func TestAnonymousClinicScenario(t *testing.T) {
	// Sect. 5 anonymity: the clinic validates the insurance appointment
	// by callback but never learns the member's identity; the expiry
	// constraint is checked at activation.
	w := newFedWorld(t)
	insurer := w.service("ins", "insurer", `
insurer.membership_officer(O) <- env is_officer(O).
auth appoint_paid_up_member(E) <- insurer.membership_officer(O).
`)
	insurer.Env().Register("is_officer", func(args []names.Term, s names.Substitution) []names.Substitution {
		if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom("o1")}, s); ok {
			return []names.Substitution{ext}
		}
		return nil
	})
	clinic := w.service("clinic_domain", "clinic", `
clinic.paid_up_patient <- appt insurer.paid_up_member(E), env before(E) keep [1].
auth take_test <- clinic.paid_up_patient.
`)
	// before(E): the test date precedes the scheme expiry (days since
	// epoch, carried as an integer parameter on the card).
	clinic.Env().Register("before", func(args []names.Term, s names.Substitution) []names.Substitution {
		if len(args) != 1 {
			return nil
		}
		e := s.Apply(args[0])
		if e.Kind != names.KindInt {
			return nil
		}
		today := int64(w.clk.Now().Sub(time.Unix(0, 0)).Hours() / 24)
		if today <= e.Num {
			return []names.Substitution{s.Clone()}
		}
		return nil
	})
	if err := w.fed.Agree(SLA{
		IssuerDomain:   "ins",
		ConsumerDomain: "clinic_domain",
		Appointments:   []ApptRef{{Issuer: "insurer", Kind: "paid_up_member"}},
	}); err != nil {
		t.Fatal(err)
	}

	officer := session(t)
	offRMC, err := insurer.Activate(officer.PrincipalID(),
		role("insurer", "membership_officer", names.Atom("o1")), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	officer.AddRMC(offRMC)

	expiryDay := int64(w.clk.Now().Sub(time.Unix(0, 0)).Hours()/24) + 30
	anon, err := NewAnonymousSession(insurer, officer.PrincipalID(), officer.Credentials(),
		"paid_up_member", core.AppointmentRequest{
			Params: []names.Term{names.Int(expiryDay)},
		})
	if err != nil {
		t.Fatal(err)
	}
	// Invariant I8: the pseudonym is fresh and the card carries no
	// identifying parameters.
	if anon.Card.Holder != anon.Session.PrincipalID() {
		t.Error("card not bound to pseudonym")
	}
	if anon.Card.Holder == officer.PrincipalID() {
		t.Error("pseudonym equals an existing identity")
	}
	for _, p := range anon.Card.Params {
		if p.Kind == names.KindString || p.Kind == names.KindAtom {
			t.Errorf("identifying parameter on anonymous card: %v", p)
		}
	}

	rmc, err := w.fed.Activate("clinic", anon.Session.PrincipalID(),
		role("clinic", "paid_up_patient"), anon.Session.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fed.Invoke("clinic", anon.Session.PrincipalID(), "take_test", nil,
		core.Presented{RMCs: []cert.RMC{rmc}}); err != nil {
		t.Errorf("paid-up patient refused test: %v", err)
	}

	// After the scheme expires, a new activation is refused by the
	// environmental constraint.
	w.clk.Advance(31 * 24 * time.Hour)
	if _, err := w.fed.Activate("clinic", anon.Session.PrincipalID(),
		role("clinic", "paid_up_patient"), anon.Session.Credentials()); !errors.Is(err, core.ErrActivationDenied) {
		t.Errorf("expired scheme still activates: %v", err)
	}
}
