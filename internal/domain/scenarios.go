package domain

import (
	"fmt"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/names"
)

// ReciprocalAgreement installs the two directional SLAs of a mutual
// arrangement such as the hospital/research-institute example of Sect. 5:
// each side accepts the listed appointment kinds issued by the other.
func (f *Federation) ReciprocalAgreement(domainA, domainB string, apptsFromA, apptsFromB []ApptRef) error {
	if err := f.Agree(SLA{
		IssuerDomain:   domainA,
		ConsumerDomain: domainB,
		Appointments:   apptsFromA,
	}); err != nil {
		return fmt.Errorf("agreement %s->%s: %w", domainA, domainB, err)
	}
	if err := f.Agree(SLA{
		IssuerDomain:   domainB,
		ConsumerDomain: domainA,
		Appointments:   apptsFromB,
	}); err != nil {
		return fmt.Errorf("agreement %s->%s: %w", domainB, domainA, err)
	}
	return nil
}

// GroupMembership models the negotiated group-membership scenario of
// Sect. 5 (the Tate galleries / National Trusts analogy): any paid-up
// member of the local organisation may use a known remote organisation.
// "The identity of the principal is not needed if proof of membership is
// securely provable" — the membership card is an appointment certificate
// naming the organisation and the membership period, with or without
// personal details.
type GroupMembership struct {
	// LocalOrg issues membership cards (an OASIS service with an
	// appointer rule for the membership kind).
	LocalOrg *core.Service
	// Kind is the appointment kind on the card, e.g. "member".
	Kind string
}

// IssueCard issues a membership card to a holder principal. The card's
// parameters carry the organisation name and, optionally, nothing else —
// anonymity by omission.
func (g GroupMembership) IssueCard(adminPrincipal string, holder string, p core.Presented, extra ...names.Term) (cert.AppointmentCertificate, error) {
	params := append([]names.Term{names.Atom(g.LocalOrg.Name())}, extra...)
	return g.LocalOrg.Appoint(adminPrincipal, core.AppointmentRequest{
		Kind:   g.Kind,
		Holder: holder,
		Params: params,
	}, p)
}

// AnonymousSession is the Sect. 5 anonymity scenario: a principal obtains
// a fresh pseudonymous session key, and the credential issued to it cannot
// be linked by the consuming service to the principal's persistent
// identity. The insurance-company/genetic-clinic example issues the
// appointment to the pseudonym; the clinic validates it by callback to the
// trusted third party without learning who the member is.
type AnonymousSession struct {
	// Session carries the fresh pseudonymous key.
	Session *core.Session
	// Card is the anonymised credential bound to the pseudonym.
	Card cert.AppointmentCertificate
}

// NewAnonymousSession creates a pseudonymous session and asks the issuer
// (e.g. the insurance company's membership service) to bind the named
// appointment kind to the pseudonym. issuerPrincipal/issuerCreds authorise
// the issuing itself; params should carry only non-identifying fields such
// as the scheme expiry date.
func NewAnonymousSession(issuer *core.Service, issuerPrincipal string, issuerCreds core.Presented,
	kind string, req core.AppointmentRequest) (*AnonymousSession, error) {
	sess, err := core.NewSession(nil)
	if err != nil {
		return nil, fmt.Errorf("anonymous session: %w", err)
	}
	req.Kind = kind
	req.Holder = sess.PrincipalID() // the pseudonym, not the member id
	card, err := issuer.Appoint(issuerPrincipal, req, issuerCreds)
	if err != nil {
		return nil, fmt.Errorf("anonymous card: %w", err)
	}
	sess.AddAppointment(card)
	return &AnonymousSession{Session: sess, Card: card}, nil
}
