package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitUntil polls cond until it holds or the deadline passes. Auto
// compaction runs on the committer goroutine after the triggering flush
// returns, so tests observe it asynchronously.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func snapCount(t *testing.T, dir string) int {
	t.Helper()
	_, snaps, err := listGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(snaps)
}

func TestAutoCompactBytesThreshold(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, AutoCompactBytes: 2048, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := NewState()
	for i := uint64(1); i <= 64; i++ {
		r := Record{Op: OpCRIssue, Service: "s", Serial: i, Subject: "s.role", Holder: fmt.Sprintf("holder-%03d", i)}
		want.Apply(r)
		if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "byte-threshold auto compaction", func() bool { return snapCount(t, dir) > 0 })
	waitUntil(t, "active generation to shrink below the threshold", func() bool { return l.JournalSize() < 2048 })
	if got := reg.Counter("durable_autocompactions_total").Value(); got == 0 {
		t.Error("durable_autocompactions_total = 0, want > 0")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if rs := l2.ReplayStats(); !rs.SnapshotLoaded {
		t.Errorf("recovery after live compaction did not load a snapshot: %+v", rs)
	}
}

func TestAutoCompactGarbageThreshold(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, AutoCompactGarbage: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := NewState()
	apply := func(r Record) {
		want.Apply(r)
		if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		apply(Record{Op: OpCRIssue, Service: "s", Serial: i, Subject: "s.role", Holder: "h"})
		apply(Record{Op: OpCRRevoke, Service: "s", Serial: i, Reason: "churn"})
	}
	// Issues are not garbage: three revocations sit below the threshold,
	// the fourth trips it.
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 4, Subject: "s.role", Holder: "h"})
	apply(Record{Op: OpCRRevoke, Service: "s", Serial: 4, Reason: "churn"})
	waitUntil(t, "garbage-threshold auto compaction", func() bool { return snapCount(t, dir) > 0 })
	if got := reg.Counter("durable_autocompactions_total").Value(); got == 0 {
		t.Error("durable_autocompactions_total = 0, want > 0")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
}

// TestCrashAfterRotateBeforeSnapshot covers the first live-compaction
// crash window: the new journal generation was created but the daemon
// died before the snapshot landed. Recovery must replay the full chain —
// sealed generation plus the (empty) new one — as if the compaction had
// never started.
func TestCrashAfterRotateBeforeSnapshot(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	want := NewState()
	apply := func(r Record) {
		want.Apply(r)
		if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.role", Holder: "a"})
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 2, Subject: "s.role", Holder: "b"})
	apply(Record{Op: OpCRRevoke, Service: "s", Serial: 1, Reason: "left"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: generation 2 exists, no snapshot was written.
	f, err := os.OpenFile(filepath.Join(dir, walName(2)), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	l2 := openTestLog(t, dir)
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if rs := l2.ReplayStats(); rs.SnapshotLoaded {
		t.Errorf("no snapshot exists, yet one loaded: %+v", rs)
	}
	// The interrupted compaction must be re-runnable on the recovered log.
	apply = func(r Record) {
		want.Apply(r)
		if err := l2.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 3, Subject: "s.role", Holder: "c"})
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openTestLog(t, dir)
	defer l3.Close() //nolint:errcheck
	got3, err := l3.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got3, want)
}

// TestCrashAfterSnapshotBeforePrune covers the second crash window: the
// snapshot landed but the daemon died before pruning the sealed
// generation. Recovery starts from the snapshot and must not double-apply
// the stale generation it still finds on disk.
func TestCrashAfterSnapshotBeforePrune(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	want := NewState()
	apply := func(r Record) {
		want.Apply(r)
		if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.role", Holder: "a"})
	apply(Record{Op: OpCRRevoke, Service: "s", Serial: 1, Reason: "left"})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	sealed, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 2, Subject: "s.role", Holder: "b"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect the pruned generation, as if the crash hit between the
	// snapshot rename and the unlink.
	if err := os.WriteFile(filepath.Join(dir, walName(1)), sealed, 0o600); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if rs := l2.ReplayStats(); !rs.SnapshotLoaded || rs.SnapshotGen != 2 {
		t.Errorf("replay stats = %+v, want snapshot gen 2 loaded", rs)
	}
}

// TestTornTailAfterLiveCompaction covers the third crash window: the
// compaction completed and the crash then tore a frame off the new active
// generation. Recovery must keep the snapshot, truncate the torn tail and
// keep appending.
func TestTornTailAfterLiveCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	want := NewState()
	r1 := Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.role", Holder: "a"}
	want.Apply(r1)
	if err := l.AppendWait(r1); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	r2 := Record{Op: OpCRIssue, Service: "s", Serial: 2, Subject: "s.role", Holder: "b"}
	want.Apply(r2)
	if err := l.AppendWait(r2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	torn := appendFrame(nil, []byte(`{"op":"cr-","svc":"s","serial":2}`))
	f, err := os.OpenFile(filepath.Join(dir, walName(2)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want) // the torn revoke never happened
	rs := l2.ReplayStats()
	if !rs.SnapshotLoaded {
		t.Errorf("snapshot not loaded: %+v", rs)
	}
	if rs.TruncatedBytes != int64(len(torn)-4) {
		t.Errorf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, len(torn)-4)
	}
}
