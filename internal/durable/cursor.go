package durable

// Journal tailing: the replication layer (internal/replica) follows a
// live journal directory frame by frame — catch up from the newest
// snapshot, then read committed frames out of the active generation as
// the committer writes them. The helpers here are deliberately
// file-based rather than an in-memory event queue: a tailer that reads
// the same bytes recovery would replay can never observe a record the
// journal has not committed, a slow tailer applies backpressure to
// nobody, and resuming after a disconnect is just re-reading from a
// (generation, offset) cursor.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Cursor addresses a position in a journal directory's generation chain.
type Cursor struct {
	// ID identifies the journal (random, minted the first time the
	// directory is opened) and Epoch counts Opens of it. A cursor whose
	// identity does not match the live journal's addresses a different
	// history — a wiped directory, or a restart whose recovery may have
	// truncated a torn tail the tailer already consumed — and must be
	// reset from a snapshot rather than resumed.
	ID    string `json:"id,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Gen and Off locate the next unread byte: journal generation and
	// byte offset within wal-<gen>.
	Gen uint64 `json:"gen"`
	Off int64  `json:"off"`
}

func (c Cursor) String() string {
	return fmt.Sprintf("%s/%d@%d+%d", c.ID, c.Epoch, c.Gen, c.Off)
}

// idFileName holds the journal identity: "<hex id> <epoch>".
const idFileName = "journal-id"

// loadIdentity reads the journal's identity file, creating it on first
// open, and advances the epoch by one.
func loadIdentity(dir string) (id string, epoch uint64, err error) {
	path := filepath.Join(dir, idFileName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		idStr, epochStr, ok := strings.Cut(strings.TrimSpace(string(raw)), " ")
		if ok {
			if e, perr := strconv.ParseUint(epochStr, 10, 64); perr == nil {
				id, epoch = idStr, e
			}
		}
	case os.IsNotExist(err):
	default:
		return "", 0, err
	}
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", 0, err
		}
		id = hex.EncodeToString(b[:])
	}
	epoch++
	if err := os.WriteFile(path, []byte(fmt.Sprintf("%s %d\n", id, epoch)), 0o600); err != nil {
		return "", 0, err
	}
	if err := syncDir(dir); err != nil {
		return "", 0, err
	}
	return id, epoch, nil
}

// ErrNoSegment reports a cursor generation with no journal file behind
// it: pruned by a compaction (the tailer must reset from a snapshot) or
// not created yet.
var ErrNoSegment = errors.New("durable: no such journal segment")

// ErrCursorAhead reports a cursor offset beyond the end of its segment —
// a history the journal no longer has (recovery truncated a torn tail
// the tailer consumed before the crash). The tailer must reset from a
// snapshot.
var ErrCursorAhead = errors.New("durable: cursor beyond journal segment end")

// readSegmentChunkBytes bounds one ReadSegmentAt read so catching up a
// large segment streams in chunks instead of buffering it whole. A frame
// larger than the budget widens it (up to the frame-size cap) rather
// than wedging.
const readSegmentChunkBytes = 4 << 20

// ReadSegmentAt decodes records from wal-<gen> starting at byte offset
// off, which must sit on a frame boundary (0, or a next returned by an
// earlier call). next is the offset just past the last intact record; a
// torn or still-being-written tail simply ends the read at the last
// intact frame (next == off means nothing new yet), exactly as recovery
// would treat it. Safe to call while a Log is appending to the segment:
// appends only ever extend the file, so a reader sees either a complete
// frame or a partial tail it stops in front of.
func ReadSegmentAt(dir string, gen uint64, off int64) (recs []Record, next int64, err error) {
	f, err := os.Open(filepath.Join(dir, walName(gen)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, off, ErrNoSegment
		}
		return nil, off, err
	}
	defer f.Close() //nolint:errcheck // read-only
	fi, err := f.Stat()
	if err != nil {
		return nil, off, err
	}
	if off > fi.Size() {
		return nil, off, ErrCursorAhead
	}
	budget := int64(readSegmentChunkBytes)
	for {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return nil, off, err
		}
		payloads, _, _, rerr := readFrames(io.LimitReader(f, budget))
		if rerr != nil {
			return nil, off, rerr
		}
		if len(payloads) == 0 {
			// Either nothing new, a torn tail, or one frame bigger than
			// the budget (its cut-off read is indistinguishable from a
			// torn tail): widen until the budget covers the remainder,
			// then conclude there is genuinely nothing intact yet.
			if budget < fi.Size()-off && budget < maxFrameSize+frameHeaderSize {
				budget *= 4
				continue
			}
			return nil, off, nil
		}
		next = off
		for _, p := range payloads {
			var r Record
			if jerr := json.Unmarshal(p, &r); jerr != nil {
				// Checksummed frame that is not a record: only possible as
				// the torn tail of a crashed append; stop in front of it.
				return recs, next, nil
			}
			recs = append(recs, r)
			next += frameHeaderSize + int64(len(p))
		}
		return recs, next, nil
	}
}

// SegmentSize reports the current on-disk size of wal-<gen>, so a tailer
// parked at the end of a sealed generation can tell "fully consumed,
// advance to the next generation" from "bytes remain that did not decode"
// (which on a sealed segment means the file is damaged).
func SegmentSize(dir string, gen uint64) (int64, error) {
	fi, err := os.Stat(filepath.Join(dir, walName(gen)))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, ErrNoSegment
		}
		return 0, err
	}
	return fi.Size(), nil
}

// LatestSnapshot loads the newest readable snapshot in dir. gen is the
// journal generation the snapshot seals — tail-follow resumes at
// Cursor{Gen: gen, Off: 0}. ok is false when no snapshot exists (resume
// from the oldest segment with an empty state).
func LatestSnapshot(dir string) (gen uint64, st *State, ok bool, err error) {
	_, snaps, err := listGens(dir)
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s, serr := readSnapshot(dir, snaps[i])
		if serr != nil {
			continue
		}
		return snaps[i], s, true, nil
	}
	return 0, nil, false, nil
}

// OldestSegment reports the lowest on-disk journal generation; ok is
// false when the directory has no journal files at all.
func OldestSegment(dir string) (gen uint64, ok bool, err error) {
	wals, _, err := listGens(dir)
	if err != nil {
		return 0, false, err
	}
	if len(wals) == 0 {
		return 0, false, nil
	}
	return wals[0], true, nil
}

// ReadState replays the on-disk chain of dir into a State without
// touching any live Log — the offline authority replication convergence
// is checked against. The journal should be quiescent (flushed, no
// appends in flight) for an exact answer; a torn tail on the active
// generation is tolerated exactly as recovery tolerates it.
func ReadState(dir string) (*State, error) { return readState(dir) }
