package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/names"
	"repro/internal/sign"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sameState compares two states by canonical JSON (map keys sort, so the
// encoding is deterministic).
func sameState(t *testing.T, got, want *State) {
	t.Helper()
	g, w := mustJSON(t, got), mustJSON(t, want)
	if g != w {
		t.Fatalf("state mismatch:\n got  %s\n want %s", g, w)
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), []byte(`{"op":"cr+"}`), bytes.Repeat([]byte("x"), 10_000)}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	got, goodOffset, truncated, err := readFrames(bytes.NewReader(buf))
	if err != nil || truncated {
		t.Fatalf("readFrames: err=%v truncated=%v", err, truncated)
	}
	if goodOffset != int64(len(buf)) {
		t.Errorf("goodOffset = %d, want %d", goodOffset, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("payload %d mismatch", i)
		}
	}
}

func TestTruncatedTailDetected(t *testing.T) {
	intact := appendFrame(nil, []byte("first"))
	intactLen := int64(len(intact))
	full := appendFrame(intact, []byte("second-record-payload"))

	// Chop the second frame at every possible byte boundary (cutting at
	// exactly intactLen is a clean end, not truncation): the intact
	// prefix must always survive, never error.
	for cut := intactLen + 1; cut < int64(len(full)); cut++ {
		got, goodOffset, truncated, err := readFrames(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: err=%v", cut, err)
		}
		if !truncated {
			t.Fatalf("cut=%d: truncation not detected", cut)
		}
		if goodOffset != intactLen || len(got) != 1 || string(got[0]) != "first" {
			t.Fatalf("cut=%d: goodOffset=%d payloads=%d", cut, goodOffset, len(got))
		}
	}
}

func TestChecksumMismatchIsTruncation(t *testing.T) {
	buf := appendFrame(nil, []byte("first"))
	buf = appendFrame(buf, []byte("second"))
	buf[len(buf)-1] ^= 0xff // corrupt the last payload byte
	got, _, truncated, err := readFrames(bytes.NewReader(buf))
	if err != nil || !truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if len(got) != 1 {
		t.Fatalf("payloads = %d, want 1", len(got))
	}
}

func openTestLog(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}) // no batching delay in tests
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)

	want := NewState()
	recs := []Record{
		{Op: OpKeys, Service: "admin", Retain: 2, Secrets: []sign.Secret{{KeyID: 7, Key: [32]byte{1, 2, 3}}}},
		{Op: OpCRIssue, Service: "admin", Serial: 1, Subject: "admin.administrator", Holder: "alice"},
		{Op: OpCRIssue, Service: "admin", Serial: 2, Subject: "admin.administrator", Holder: "bob"},
		{Op: OpCRRevoke, Service: "admin", Serial: 2, Reason: "bob left"},
		{Op: OpFactAssert, Relation: "registered", Tuple: []names.Term{names.Atom("d1"), names.Atom("p1")}},
		{Op: OpFactAssert, Relation: "registered", Tuple: []names.Term{names.Atom("d1"), names.Atom("p2")}},
		{Op: OpFactRetract, Relation: "registered", Tuple: []names.Term{names.Atom("d1"), names.Atom("p1")}},
	}
	for i, r := range recs {
		want.Apply(r)
		if i%2 == 0 {
			l.Append(r)
		} else if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	live, err := l.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, live, want)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if rs := l2.ReplayStats(); rs.Records != len(recs) || rs.TruncatedBytes != 0 {
		t.Errorf("replay stats = %+v", rs)
	}
}

func TestCompactionKeepsStateAndPrunesFiles(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	want := NewState()
	apply := func(r Record) {
		want.Apply(r)
		if err := l.AppendWait(r); err != nil {
			t.Fatal(err)
		}
	}
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.r", Holder: "h"})
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	apply(Record{Op: OpCRRevoke, Service: "s", Serial: 1, Reason: "r"})
	apply(Record{Op: OpCRIssue, Service: "s", Serial: 2, Subject: "s.r", Holder: "h2"})
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	apply(Record{Op: OpApptIssue, Service: "s", Serial: 9, Appt: nil}) // nil appt: ignored by Apply
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	wals, snaps, err := listGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 1 || len(snaps) != 1 {
		t.Fatalf("after compaction: wals=%v snaps=%v, want one of each", wals, snaps)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if rs := l2.ReplayStats(); !rs.SnapshotLoaded {
		t.Errorf("snapshot not loaded: %+v", rs)
	}
}

func TestCrashMidAppendTruncatesAndKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	want := NewState()
	r1 := Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.r", Holder: "h"}
	want.Apply(r1)
	if err := l.AppendWait(r1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a valid-looking header promising more
	// payload than was written.
	wals, _, err := listGens(dir)
	if err != nil || len(wals) != 1 {
		t.Fatalf("wals=%v err=%v", wals, err)
	}
	path := filepath.Join(dir, walName(wals[0]))
	torn := appendFrame(nil, []byte(`{"op":"cr-","svc":"s","serial":1}`))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	l2 := openTestLog(t, dir)
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want) // the torn revoke never happened
	if rs := l2.ReplayStats(); rs.TruncatedBytes != int64(len(torn)-5) {
		t.Errorf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, len(torn)-5)
	}

	// The reopened log must append cleanly past the truncation point.
	r2 := Record{Op: OpCRIssue, Service: "s", Serial: 2, Subject: "s.r", Holder: "h2"}
	want.Apply(r2)
	if err := l2.AppendWait(r2); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openTestLog(t, dir)
	defer l3.Close() //nolint:errcheck
	got3, err := l3.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got3, want)
	if rs := l3.ReplayStats(); rs.TruncatedBytes != 0 {
		t.Errorf("second recovery still truncating: %+v", rs)
	}
}

func TestCorruptionBelowTailRefused(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	if err := l.AppendWait(Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.r", Holder: "h"}); err != nil {
		t.Fatal(err)
	}
	// Rotate without deleting: Compact writes a snapshot too, so instead
	// fabricate a second generation by hand and damage the first.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	gen2 := appendFrame(nil, []byte(`{"op":"cr+","svc":"s","serial":2,"subject":"s.r","holder":"h2"}`))
	if err := os.WriteFile(filepath.Join(dir, walName(2)), gen2, 0o600); err != nil {
		t.Fatal(err)
	}
	// Damage gen 1 (now below the tail).
	path := filepath.Join(dir, walName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}) // real group window: exercise batching
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				serial := uint64(w*perWorker + i + 1)
				if err := l.AppendWait(Record{
					Op: OpCRIssue, Service: "s", Serial: serial,
					Subject: "s.r", Holder: fmt.Sprintf("p%d", w),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close() //nolint:errcheck
	got, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	ss := got.Services["s"]
	if ss == nil || len(ss.CRs) != workers*perWorker {
		t.Fatalf("recovered %d CRs, want %d", len(ss.CRs), workers*perWorker)
	}
}

// TestReplayMatchesLiveState is the property test: for random mutation
// histories with compactions interleaved, recovery reproduces the live
// mirror exactly — including after a crash-mid-append torn tail (which
// must equal the state with the torn suffix dropped).
func TestReplayMatchesLiveState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	relations := []string{"registered", "excluded", "on_duty"}
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		l := openTestLog(t, dir)
		want := NewState()
		n := 30 + rng.Intn(120)
		for i := 0; i < n; i++ {
			var r Record
			switch rng.Intn(6) {
			case 0:
				r = Record{Op: OpCRIssue, Service: "s", Serial: uint64(rng.Intn(20) + 1),
					Subject: "s.r", Holder: fmt.Sprintf("p%d", rng.Intn(5))}
			case 1:
				r = Record{Op: OpCRRevoke, Service: "s", Serial: uint64(rng.Intn(20) + 1), Reason: "r"}
			case 2:
				r = Record{Op: OpFactAssert, Relation: relations[rng.Intn(3)],
					Tuple: []names.Term{names.Atom(fmt.Sprintf("a%d", rng.Intn(6)))}}
			case 3:
				r = Record{Op: OpFactRetract, Relation: relations[rng.Intn(3)],
					Tuple: []names.Term{names.Atom(fmt.Sprintf("a%d", rng.Intn(6)))}}
			case 4:
				r = Record{Op: OpKeys, Service: "s", Retain: 1,
					Secrets: []sign.Secret{{KeyID: uint32(i)}}}
			case 5:
				r = Record{Op: OpApptRevoke, Service: "s", Serial: uint64(rng.Intn(8) + 1), Reason: "x"}
			}
			want.Apply(r)
			if rng.Intn(4) == 0 {
				if err := l.AppendWait(r); err != nil {
					t.Fatal(err)
				}
			} else {
				l.Append(r)
			}
			if rng.Intn(40) == 0 {
				if err := l.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			// Crash mid-append: torn garbage on the active journal.
			wals, _, err := listGens(dir)
			if err != nil || len(wals) == 0 {
				t.Fatalf("wals=%v err=%v", wals, err)
			}
			f, err := os.OpenFile(filepath.Join(dir, walName(wals[len(wals)-1])), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			garbage := make([]byte, 1+rng.Intn(40))
			rng.Read(garbage)
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close() //nolint:errcheck
		}

		l2 := openTestLog(t, dir)
		got, err := l2.Recovered()
		if err != nil {
			t.Fatal(err)
		}
		sameState(t, got, want)
		l2.Close() //nolint:errcheck
	}
}

func TestVerifyReportsTornTailAndCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	if err := l.AppendWait(Record{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.r", Holder: "h"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendWait(Record{Op: OpCRRevoke, Service: "s", Serial: 1, Reason: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.CRs != 1 || rep.RevokedCRs != 1 {
		t.Fatalf("clean dir: %+v", rep)
	}

	// Torn tail on the newest generation: still OK.
	wals, _, err := listGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	active := filepath.Join(dir, walName(wals[len(wals)-1]))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("torn tail flagged as corruption: %+v", rep)
	}
	tornSeen := false
	for _, s := range rep.Segments {
		if s.Truncated && s.TornBytes == 3 {
			tornSeen = true
		}
	}
	if !tornSeen {
		t.Fatalf("torn tail not reported: %+v", rep.Segments)
	}

	// A damaged snapshot must fail verification.
	_, snaps, err := listGens(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snaps=%v err=%v", snaps, err)
	}
	sp := filepath.Join(dir, snapName(snaps[len(snaps)-1]))
	b, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(sp, b, 0o600); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatalf("corrupt snapshot passed verification: %+v", rep)
	}
}

func TestApplyIdempotentOverSnapshotOverlap(t *testing.T) {
	// The compaction protocol replays the sealed generation's records on
	// top of the snapshot that covers them; Apply must converge.
	base := []Record{
		{Op: OpCRIssue, Service: "s", Serial: 1, Subject: "s.r", Holder: "h"},
		{Op: OpCRRevoke, Service: "s", Serial: 1, Reason: "gone"},
		{Op: OpFactAssert, Relation: "f", Tuple: []names.Term{names.Atom("a")}},
	}
	once := NewState()
	for _, r := range base {
		once.Apply(r)
	}
	twice := NewState()
	for _, r := range base {
		twice.Apply(r)
	}
	for _, r := range base { // replay the whole history again
		twice.Apply(r)
	}
	sameState(t, twice, once)
	// Specifically: re-applying an issue over a revocation keeps the
	// revocation (issue-then-revoke histories never resurrect).
	if cr := twice.Services["s"].CRs[1]; !cr.Revoked {
		t.Error("replayed issue resurrected a revoked CR")
	}
}
