package durable

import "strconv"

// appendRecordJSON appends r's JSON encoding to buf for the record shapes
// the hot paths journal — credential-record issue/revoke and appointment
// revoke, which carry only scalar fields. It reports false when the record
// needs the reflective encoder (appointment certificates, key rings, fact
// tuples, or strings that need escaping); the output for the shapes it
// does handle decodes identically to encoding/json's.
func appendRecordJSON(buf []byte, r *Record) ([]byte, bool) {
	switch r.Op {
	case OpCRIssue, OpCRRevoke, OpApptRevoke:
	default:
		return buf, false
	}
	if !plainJSONString(r.Service) || !plainJSONString(r.Subject) ||
		!plainJSONString(r.Holder) || !plainJSONString(r.Reason) {
		return buf, false
	}
	buf = append(buf, `{"op":"`...)
	buf = append(buf, r.Op...)
	buf = append(buf, '"')
	if r.Service != "" {
		buf = append(buf, `,"svc":"`...)
		buf = append(buf, r.Service...)
		buf = append(buf, '"')
	}
	if r.Serial != 0 {
		buf = append(buf, `,"serial":`...)
		buf = strconv.AppendUint(buf, r.Serial, 10)
	}
	if r.Subject != "" {
		buf = append(buf, `,"subject":"`...)
		buf = append(buf, r.Subject...)
		buf = append(buf, '"')
	}
	if r.Holder != "" {
		buf = append(buf, `,"holder":"`...)
		buf = append(buf, r.Holder...)
		buf = append(buf, '"')
	}
	if r.Reason != "" {
		buf = append(buf, `,"reason":"`...)
		buf = append(buf, r.Reason...)
		buf = append(buf, '"')
	}
	buf = append(buf, '}')
	return buf, true
}

// plainJSONString reports whether s encodes between quotes as itself:
// printable ASCII with nothing encoding/json would escape (it also
// escapes <, >, & for HTML safety).
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}
