package durable

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/names"
)

// AppendGroup must place the group's records contiguously and in order
// on disk even while other appenders race.
func TestAppendGroupContiguous(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), NoSync: true, GroupWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const groups = 50
	var wg sync.WaitGroup
	// Noise: interleaved single appends racing the groups. Waited
	// appends, so the noise producer can't outrun the committer.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = l.AppendWait(Record{Op: OpFactAssert, Service: "noise", Relation: "r", Tuple: []names.Term{names.Atom("x")}})
		}
	}()
	for g := 0; g < groups; g++ {
		recs := []Record{
			{Op: OpCRIssue, Service: "svc", Serial: uint64(g*3 + 1), Subject: "role(a)", Holder: "p"},
			{Op: OpCRIssue, Service: "svc", Serial: uint64(g*3 + 2), Subject: "role(a)", Holder: "p"},
			{Op: OpCRRevoke, Service: "svc", Serial: uint64(g*3 + 1), Reason: "test"},
		}
		if err := l.AppendGroup(recs, true); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	gen, _ := l.ActiveGen()
	recs, _, err := ReadSegmentAt(l.Dir(), gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the svc records; every group of three must appear
	// adjacent (no noise record between members) and in order.
	for i := 0; i < len(recs); i++ {
		if recs[i].Service != "svc" {
			continue
		}
		if i+2 >= len(recs) {
			t.Fatalf("truncated group at record %d", i)
		}
		g := (recs[i].Serial - 1) / 3
		want := []struct {
			op     Op
			serial uint64
		}{
			{OpCRIssue, g*3 + 1}, {OpCRIssue, g*3 + 2}, {OpCRRevoke, g*3 + 1},
		}
		for j, w := range want {
			r := recs[i+j]
			if r.Service != "svc" || r.Op != w.op || r.Serial != w.serial {
				t.Fatalf("group %d broken at member %d: got %s %s serial=%d", g, j, r.Service, r.Op, r.Serial)
			}
		}
		i += 2
	}
}

// A waited group must be durable when AppendGroup returns: the state
// mirror has applied it and the bytes are fsynced.
func TestAppendGroupWaitDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpCRIssue, Service: "svc", Serial: 1, Subject: "role(a)", Holder: "p"},
		{Op: OpCRRevoke, Service: "svc", Serial: 1, Reason: "bye"},
	}
	if err := l.AppendGroup(recs, true); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	svc := st.Services["svc"]
	if svc == nil || len(svc.CRs) != 1 || !svc.CRs[1].Revoked {
		t.Fatalf("mirror missing group effect: %+v", svc)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both records must replay.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	svc2 := st2.Services["svc"]
	if svc2 == nil || svc2.CRs[1] == nil || !svc2.CRs[1].Revoked {
		t.Fatalf("group not durable across reopen: %+v", svc2)
	}
}

// An empty group is a no-op; a group on a closed log errors.
func TestAppendGroupEdges(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendGroup(nil, true); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	err = l.AppendGroup([]Record{{Op: OpFactAssert, Service: "s", Relation: "r", Tuple: []names.Term{names.Atom("x")}}}, true)
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("closed log: got %v", err)
	}
}

// A waited group must not pay the full group-commit window: the urgent
// poke cuts the committer's nap short. With a deliberately huge window
// the wait would otherwise take >1s.
func TestAppendGroupSkipsWindow(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), NoSync: true, GroupWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	err = l.AppendGroup([]Record{
		{Op: OpCRRevoke, Service: "svc", Serial: 1, Reason: "now"},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("waited group paid the window nap: %v", d)
	}
}
