package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/sign"
)

// DefaultGroupWindow is the group-commit batching window: an append waits
// at most this long for racers to pile into the same write.
const DefaultGroupWindow = 2 * time.Millisecond

// DefaultSyncLag bounds how stale the fsync may be for fire-and-forget
// appends: a batch with no waiter defers its fsync until the lag expires,
// so a sustained issue stream pays one fsync per lag window instead of
// one per group-commit window. Waiters (AppendWait), Sync, Compact and
// Close always force the fsync. The failure direction of the deferred
// window is fail-closed: a crash may forget up to SyncLag of issues,
// which after restart just means those certificates no longer validate.
const DefaultSyncLag = 20 * time.Millisecond

// Options configures a Log.
type Options struct {
	// Dir is the state directory; created if missing.
	Dir string
	// GroupWindow is the group-commit batching window (0 selects
	// DefaultGroupWindow; negative disables batching delay entirely).
	GroupWindow time.Duration
	// SyncLag bounds the deferred fsync for waiter-less batches (0
	// selects DefaultSyncLag; negative fsyncs every batch).
	SyncLag time.Duration
	// NoSync skips fsync on journal batches (tests and experiments that
	// measure CPU cost; a crash may then lose acknowledged records, so
	// the daemon never sets it).
	NoSync bool
	// AutoCompactBytes, when > 0, has the committer trigger a live
	// compaction (rotate + snapshot + prune, exactly Compact) once the
	// active journal generation exceeds this many bytes. Without it the
	// journal only shrinks at clean shutdown, so a long-lived daemon
	// under sustained issue/revoke churn replays an ever-growing log
	// after a crash. Appends enqueued during the compaction are delayed,
	// not lost (they take flushMu after it completes).
	AutoCompactBytes int64
	// AutoCompactGarbage, when > 0, triggers a live compaction once this
	// many superseding records (revocations, retractions) have been
	// appended since the last compaction — a churn-heavy workload can
	// fill the journal with tombstones long before the byte threshold.
	AutoCompactGarbage int
	// Obs, when set, registers the durable.append.* / durable.replay.*
	// counters and the fsync latency histogram.
	Obs *obs.Registry
}

// ReplayStats describes what recovery found.
type ReplayStats struct {
	SnapshotGen    uint64        // generation of the snapshot loaded (0 = none)
	SnapshotLoaded bool          //
	Records        int           // journal records replayed
	TruncatedBytes int64         // bytes discarded from a torn journal tail
	Elapsed        time.Duration //
}

// Log is a daemon's durable state: the append-only journal plus the
// issuer state replayed from it at Open. One Log serves every service a
// daemon hosts (records carry the service name) and the shared fact
// store.
//
// Appends are acknowledged asynchronously (Append) or after the batch
// fsync (AppendWait); a background committer drains the queue once per
// group-commit window so concurrent mutators share one write, and defers
// the fsync of waiter-less batches by up to SyncLag so they share one
// fsync too. The
// journal file is the only authority — no live in-memory mirror is
// maintained, so the committer's per-record cost is one encode, and
// Compact/Recovered rebuild state from disk when they need it.
type Log struct {
	dir         string
	window      time.Duration
	syncLag     time.Duration
	noSync      bool
	autoBytes   int64
	autoGarbage int

	// mu guards the append queue and the closed flag; appends touch only
	// these, so the hot path never pays for encoding or IO. spare is the
	// previous batch's cleared slice, swapped in when flush steals the
	// queue so steady-state appends reuse its capacity.
	mu     sync.Mutex
	queue  []queued
	spare  []queued
	closed bool

	// flushMu serialises whole flushes — steal, encode, write — so racing
	// flush callers (committer, Sync, Compact) can never write batches to
	// the file in an order different from the one they were queued in. It
	// also guards the live mirror and the reusable encode buffer.
	flushMu sync.Mutex
	// state is the live mirror: replayed at Open, then kept current by
	// flushSync applying every batch it writes. Compact snapshots it
	// directly, so sealing a generation never re-reads the on-disk chain
	// while appends wait.
	state *State
	// mirrorBroken records a write error that left the mirror's relation
	// to the file unknown (a partial write may have committed a prefix of
	// the batch). While set, Compact and Recovered fall back to replaying
	// the chain from disk — the journal file stays the sole authority.
	mirrorBroken bool
	wbuf         []byte    // reusable batch encode buffer
	unsynced     bool      // bytes written since the last fsync
	lastSync     time.Time // when the journal was last fsynced
	garbage      int       // superseding records appended since the last compaction

	// compactMu serialises whole compactions. flushMu cannot: Compact
	// releases it before the snapshot write so appends keep flowing, and
	// two racing compactions (committer auto-trigger vs shutdown) would
	// otherwise interleave their rotate and prune.
	compactMu sync.Mutex

	// ioMu guards the journal file, its size and the generation; it is
	// only ever taken under flushMu or alone.
	ioMu sync.Mutex
	f    *os.File
	size int64
	gen  uint64

	// id and epoch are the journal identity (see Cursor); fixed at Open.
	id    string
	epoch uint64

	// notifyMu guards the commit-notification registry; tailers park on
	// their channel and are poked (non-blocking) after every batch write
	// and rotation.
	notifyMu sync.Mutex
	notify   map[chan struct{}]struct{}

	wake    chan struct{}
	urgent  chan struct{} // cuts the group-commit nap short: batch already formed upstream
	stop    chan struct{}
	wg      sync.WaitGroup
	replay  ReplayStats
	lastErr error // guarded by mu

	appendRecords *obs.Counter
	appendBatches *obs.Counter
	appendBytes   *obs.Counter
	appendErrors  *obs.Counter
	replayRecords *obs.Counter
	replayTrunc   *obs.Counter
	snapshots     *obs.Counter
	autoCompacts  *obs.Counter
	fsyncNs       *obs.Histogram
}

type queued struct {
	rec  Record
	errc chan error // nil for fire-and-forget appends
}

// Open recovers the durable state from dir (creating it when empty) and
// returns a Log appending to the newest journal generation. Recovery
// loads the newest readable snapshot, replays every journal generation at
// or above it in order, and truncates a torn tail (crash mid-append) off
// the active generation. Corruption anywhere else is refused rather than
// silently skipped.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: state dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, err
	}
	window := opts.GroupWindow
	if window == 0 {
		window = DefaultGroupWindow
	}
	if window < 0 {
		window = 0
	}
	syncLag := opts.SyncLag
	if syncLag == 0 {
		syncLag = DefaultSyncLag
	}
	if syncLag < 0 {
		syncLag = 0
	}
	l := &Log{
		dir:         opts.Dir,
		window:      window,
		syncLag:     syncLag,
		noSync:      opts.NoSync,
		autoBytes:   opts.AutoCompactBytes,
		autoGarbage: opts.AutoCompactGarbage,
		state:       NewState(),
		wake:        make(chan struct{}, 1),
		urgent:      make(chan struct{}, 1),
		stop:        make(chan struct{}),

		appendRecords: opts.Obs.Counter("durable_append_records_total"),
		appendBatches: opts.Obs.Counter("durable_append_batches_total"),
		appendBytes:   opts.Obs.Counter("durable_append_bytes_total"),
		appendErrors:  opts.Obs.Counter("durable_append_errors_total"),
		replayRecords: opts.Obs.Counter("durable_replay_records_total"),
		replayTrunc:   opts.Obs.Counter("durable_replay_truncated_records_total"),
		snapshots:     opts.Obs.Counter("durable_snapshot_writes_total"),
		autoCompacts:  opts.Obs.Counter("durable_autocompactions_total"),
		fsyncNs:       opts.Obs.Histogram("durable_fsync_ns", nil),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.runCommitter()
	return l, nil
}

// recover rebuilds the mirror from snapshot + journals and opens the
// active journal generation for appending.
func (l *Log) recover() error {
	start := time.Now()
	// A crash inside writeSnapshot leaves its temp file behind; nothing
	// reads .tmp files, so recovery is where they get deleted.
	if err := sweepTmp(l.dir); err != nil {
		return err
	}
	id, epoch, err := loadIdentity(l.dir)
	if err != nil {
		return err
	}
	l.id, l.epoch = id, epoch
	wals, snaps, err := listGens(l.dir)
	if err != nil {
		return err
	}

	// Newest readable snapshot wins; an unreadable one falls back to the
	// previous generation (whose journals are only deleted after a
	// successful snapshot, so the fallback replays the full history).
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		st, serr := readSnapshot(l.dir, snaps[i])
		if serr != nil {
			continue
		}
		l.state = st
		base = snaps[i]
		l.replay.SnapshotGen = snaps[i]
		l.replay.SnapshotLoaded = true
		break
	}

	// Replay journal generations >= base, ascending. Only the newest
	// may have a torn tail; damage below that is corruption.
	active := base
	if len(wals) > 0 && wals[len(wals)-1] > active {
		active = wals[len(wals)-1]
	}
	if active == 0 {
		active = 1 // fresh directory: generations start at 1
	}
	for _, gen := range wals {
		if gen < base {
			continue
		}
		path := filepath.Join(l.dir, walName(gen))
		recs, goodOffset, truncated, rerr := readWAL(path)
		if rerr != nil {
			return rerr
		}
		if truncated && gen != active {
			return fmt.Errorf("%w: %s is damaged below the journal tail", ErrCorrupt, walName(gen))
		}
		for _, r := range recs {
			l.state.Apply(r)
		}
		l.replay.Records += len(recs)
		l.replayRecords.Add(uint64(len(recs)))
		if truncated {
			fi, serr := os.Stat(path)
			if serr != nil {
				return serr
			}
			l.replay.TruncatedBytes += fi.Size() - goodOffset
			l.replayTrunc.Inc()
			if terr := os.Truncate(path, goodOffset); terr != nil {
				return fmt.Errorf("discard torn journal tail: %w", terr)
			}
		}
	}

	f, err := os.OpenFile(filepath.Join(l.dir, walName(active)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	l.f, l.size, l.gen = f, fi.Size(), active
	l.replay.Elapsed = time.Since(start)
	return nil
}

// readState is the offline half of recover: load the newest readable
// snapshot and replay every journal generation at or above it, without
// mutating anything on disk. A torn tail is tolerated only on the newest
// generation (mirroring recovery); the caller must hold flushMu (or
// otherwise exclude concurrent writes) for a consistent read.
func readState(dir string) (*State, error) {
	wals, snaps, err := listGens(dir)
	if err != nil {
		return nil, err
	}
	st := NewState()
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s, serr := readSnapshot(dir, snaps[i])
		if serr != nil {
			continue
		}
		st = s
		base = snaps[i]
		break
	}
	var active uint64
	if len(wals) > 0 {
		active = wals[len(wals)-1]
	}
	for _, gen := range wals {
		if gen < base {
			continue
		}
		recs, _, truncated, rerr := readWAL(filepath.Join(dir, walName(gen)))
		if rerr != nil {
			return nil, rerr
		}
		if truncated && gen != active {
			return nil, fmt.Errorf("%w: %s is damaged below the journal tail", ErrCorrupt, walName(gen))
		}
		for _, r := range recs {
			st.Apply(r)
		}
	}
	return st, nil
}

// ReplayStats reports what Open recovered.
func (l *Log) ReplayStats() ReplayStats { return l.replay }

// Recovered returns a deep copy of the journaled state — the replayed
// state plus anything appended since — for rebuilding services at boot.
// The live mirror answers directly; only after a write error (mirror and
// file divorced) does it re-read the journal, which is the authority.
func (l *Log) Recovered() (*State, error) {
	l.flush() // everything queued must be on disk (or in the boot state)
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if l.mirrorBroken {
		return readState(l.dir)
	}
	raw, err := json.Marshal(l.state)
	if err != nil {
		return nil, err
	}
	st := NewState()
	if err := json.Unmarshal(raw, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Append journals a record without waiting for it to reach disk: it is
// written by the next group commit and fsynced within SyncLag. The hot
// issue path uses this — the failure direction (a lost issue record) is
// fail-closed.
func (l *Log) Append(rec Record) { l.enqueue(rec, nil) }

// AppendWait journals a record and blocks until its batch has been
// written and fsynced. Revocations and appointment issues use this: a
// revocation must never be forgotten once acknowledged, and a long-lived
// appointment certificate should not be handed to its holder before the
// issuer can remember issuing it.
func (l *Log) AppendWait(rec Record) error {
	errc := make(chan error, 1)
	if !l.enqueue(rec, errc) {
		return fmt.Errorf("durable: log closed")
	}
	return <-errc
}

// AppendGroup journals recs as one contiguous run: the records occupy
// adjacent queue slots under a single lock hold, so they land on disk
// adjacently and in order (flush steals the whole queue and writes it
// in queue order). When wait is true the call blocks until the group's
// batch has been written and fsynced; it also pokes the committer's
// urgent channel so a pre-grouped batch skips the group-commit nap —
// the nap exists to let independent racers coalesce, and a sequencer
// batch already did that upstream. Callers pass the per-shard
// sequencer's batch output here; empty groups are a no-op.
func (l *Log) AppendGroup(recs []Record, wait bool) error {
	if len(recs) == 0 {
		return nil
	}
	var errc chan error
	if wait {
		errc = make(chan error, 1)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.appendErrors.Inc()
		return fmt.Errorf("durable: log closed")
	}
	wasEmpty := len(l.queue) == 0
	for i, rec := range recs {
		q := queued{rec: rec}
		if i == len(recs)-1 {
			q.errc = errc // one waiter for the whole group: flush errors the batch atomically
		}
		l.queue = append(l.queue, q)
	}
	l.mu.Unlock()
	if wasEmpty {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	if !wait {
		return nil
	}
	select {
	case l.urgent <- struct{}{}:
	default:
	}
	return <-errc
}

func (l *Log) enqueue(rec Record, errc chan error) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.appendErrors.Inc()
		return false
	}
	wasEmpty := len(l.queue) == 0
	l.queue = append(l.queue, queued{rec: rec, errc: errc})
	l.mu.Unlock()
	if wasEmpty { // the committer only needs the empty->non-empty edge
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	return true
}

func (l *Log) runCommitter() {
	defer l.wg.Done()
	for {
		// A deferred fsync must land even if no more appends arrive:
		// arm a timer for the lag deadline whenever bytes are unsynced.
		var syncTimer <-chan time.Time
		if l.pendingSync() {
			syncTimer = time.After(l.syncDue())
		}
		select {
		case <-l.wake:
			if l.window > 0 {
				// Let racers join the batch — but an urgent poke
				// (pre-grouped batch with a waiter) skips the nap:
				// its coalescing already happened upstream. A stale
				// urgent token at worst shortens one nap.
				nap := time.NewTimer(l.window)
				select {
				case <-nap.C:
				case <-l.urgent:
					nap.Stop()
				case <-l.stop:
					nap.Stop()
					l.flushSync(true)
					return
				}
			}
			l.flush()
			l.maybeAutoCompact()
		case <-syncTimer:
			l.flushSync(true)
			l.maybeAutoCompact()
		case <-l.stop:
			l.flushSync(true)
			return
		}
	}
}

func (l *Log) pendingSync() bool {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.unsynced && !l.noSync
}

func (l *Log) syncDue() time.Duration {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	d := time.Until(l.lastSync.Add(l.syncLag))
	if d < 0 {
		d = 0
	}
	return d
}

// flush writes everything queued as one batch; flushSync(true) also
// forces the fsync. Serialised end to end by flushMu so batch order on
// disk always equals queue order.
//
// The fsync policy: a batch carrying a waiter fsyncs immediately (the
// waiter was promised durability); a waiter-less batch defers it until
// syncLag has passed since the last fsync, so a sustained stream of
// fire-and-forget issues shares one fsync per lag window.
func (l *Log) flush() { l.flushSync(false) }

func (l *Log) flushSync(force bool) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	batch := l.queue
	l.queue = l.spare
	l.spare = nil
	l.mu.Unlock()
	if len(batch) == 0 {
		if force && l.unsynced && !l.noSync {
			l.ioMu.Lock()
			start := time.Now()
			err := l.f.Sync()
			l.fsyncNs.ObserveSince(start)
			l.ioMu.Unlock()
			if err != nil {
				l.appendErrors.Inc()
				l.mu.Lock()
				l.lastErr = err
				l.mu.Unlock()
				return
			}
			l.unsynced, l.lastSync = false, time.Now()
		}
		return
	}

	buf := l.wbuf[:0]
	var encErr error
	for i := range batch {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
		if b, ok := appendRecordJSON(buf, &batch[i].rec); ok {
			buf = b
			payload := buf[start+frameHeaderSize:]
			binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
			binary.BigEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
			continue
		}
		buf = buf[:start]
		payload, err := json.Marshal(batch[i].rec)
		if err != nil { // no Record field fails to marshal; defensive
			encErr = err
			// Zero the record so the mirror apply below skips it too —
			// mirror and file must agree on what was committed.
			batch[i].rec = Record{}
			continue
		}
		buf = appendFrame(buf, payload)
	}
	for i := range batch {
		switch batch[i].rec.Op {
		case OpCRRevoke, OpApptRevoke, OpFactRetract, OpKeys:
			// Superseding records: each shadows an earlier record (or, for
			// keys, the previous ring export), so it is journal garbage a
			// compaction would collapse into the snapshot.
			l.garbage++
		}
	}

	hasWaiter := false
	for i := range batch {
		if batch[i].errc != nil {
			hasWaiter = true
			break
		}
	}
	needSync := !l.noSync &&
		(force || hasWaiter || l.syncLag == 0 || time.Since(l.lastSync) >= l.syncLag)

	l.ioMu.Lock()
	_, err := l.f.Write(buf)
	if err == nil && needSync {
		start := time.Now()
		err = l.f.Sync()
		l.fsyncNs.ObserveSince(start)
	}
	if err == nil {
		l.size += int64(len(buf))
	}
	l.ioMu.Unlock()
	if err == nil {
		if needSync {
			l.unsynced, l.lastSync = false, time.Now()
		} else {
			l.unsynced = true
		}
		// The write landed: fold the batch into the live mirror (an
		// unencodable record was zeroed above and applies as a no-op) and
		// wake journal tailers.
		for i := range batch {
			l.state.Apply(batch[i].rec)
		}
		l.notifyCommit()
	} else {
		// A partial write may have committed a prefix of the batch; the
		// mirror can no longer claim to equal the file, so snapshot and
		// restore paths fall back to replaying the chain from disk.
		l.mirrorBroken = true
	}

	if err == nil {
		err = encErr
	}
	if err != nil {
		l.appendErrors.Inc()
		l.mu.Lock()
		l.lastErr = err
		l.mu.Unlock()
	}
	l.appendBatches.Inc()
	l.appendRecords.Add(uint64(len(batch)))
	l.appendBytes.Add(uint64(len(buf)))
	for _, q := range batch {
		if q.errc != nil {
			q.errc <- err
		}
	}

	// Recycle the buffers: the batch slice becomes the next spare
	// (cleared so it pins no records) and the encode buffer keeps its
	// grown capacity for the next window.
	l.wbuf = buf[:0]
	for i := range batch {
		batch[i] = queued{}
	}
	l.mu.Lock()
	if l.spare == nil || cap(batch) > cap(l.spare) {
		l.spare = batch[:0]
	}
	l.mu.Unlock()
}

// maybeAutoCompact runs a live compaction when a configured threshold is
// crossed. Called only from the committer goroutine after a flush, so at
// most one compaction is ever in flight and it never races another
// trigger. It must not hold flushMu: Compact takes it for the whole
// rotate-and-snapshot.
func (l *Log) maybeAutoCompact() {
	if l.autoBytes <= 0 && l.autoGarbage <= 0 {
		return
	}
	l.flushMu.Lock()
	garbage := l.garbage
	l.flushMu.Unlock()
	hit := (l.autoBytes > 0 && l.JournalSize() >= l.autoBytes) ||
		(l.autoGarbage > 0 && garbage >= l.autoGarbage)
	if !hit {
		return
	}
	if err := l.Compact(); err != nil {
		// The journal keeps appending to whichever generation is active;
		// the next flush retries the compaction. Surface the error the
		// same way write errors are surfaced.
		l.appendErrors.Inc()
		l.mu.Lock()
		l.lastErr = err
		l.mu.Unlock()
		return
	}
	l.autoCompacts.Inc()
}

// Sync forces everything queued onto disk, fsync included.
func (l *Log) Sync() error {
	l.flushSync(true)
	return l.Err()
}

// Err returns the most recent journal write error, if any. The engine
// keeps running on journal errors (in-memory state is still correct; only
// crash recovery is at risk), so the daemon surfaces this instead of
// failing requests.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// JournalSize reports the active journal generation's size in bytes.
func (l *Log) JournalSize() int64 {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.size
}

// Dir returns the journal directory, for tailers reading segments.
func (l *Log) Dir() string { return l.dir }

// ID returns the journal identity minted at the directory's first Open.
func (l *Log) ID() string { return l.id }

// Epoch counts Opens of this journal directory; it advances on every
// recovery, invalidating tail cursors that may have read past a
// truncated torn tail.
func (l *Log) Epoch() uint64 { return l.epoch }

// ActiveGen reports the generation currently being appended to and its
// size. A tailer at the end of a lower generation knows that generation
// is sealed and complete; a tailer at (gen, size) has consumed
// everything committed so far.
func (l *Log) ActiveGen() (gen uint64, size int64) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.gen, l.size
}

// NotifyCommit registers ch for a non-blocking poke after every batch
// write and every rotation, so journal tailers wake without polling. Use
// a buffered channel (capacity 1): the signal coalesces, it does not
// count.
func (l *Log) NotifyCommit(ch chan struct{}) {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	if l.notify == nil {
		l.notify = make(map[chan struct{}]struct{})
	}
	l.notify[ch] = struct{}{}
}

// StopNotify deregisters ch.
func (l *Log) StopNotify(ch chan struct{}) {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	delete(l.notify, ch)
}

func (l *Log) notifyCommit() {
	l.notifyMu.Lock()
	for ch := range l.notify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.notifyMu.Unlock()
}

// Compact seals the current journal generation behind a snapshot: rotate
// to a fresh generation, write the mirror as snap-<new gen>, then delete
// the older generations the snapshot now covers. Every crash window is
// safe: until the snapshot rename lands, recovery still sees the previous
// snapshot plus the complete journal chain.
//
// Appends stall only for the rotate plus one in-memory encode of the
// mirror: flushMu is released before the snapshot file is written and the
// old generations pruned. (An earlier version held flushMu while
// re-reading the entire on-disk chain and writing the snapshot, which
// froze every append for the whole compaction — fatal once follower
// catch-up traffic triggers compactions under load.)
func (l *Log) Compact() error {
	// compactMu serialises whole compactions; flushMu no longer can, and
	// the committer's auto-trigger may race a shutdown Compact.
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	l.flushSync(true) // queued records belong to the generation being sealed

	// flushMu for rotate-and-encode: concurrent flushes wait, so the
	// mirror encoded below covers exactly what reached the sealed
	// generation (lock order flushMu -> ioMu matches flush).
	l.flushMu.Lock()
	l.ioMu.Lock()
	newGen := l.gen + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(newGen)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		l.ioMu.Unlock()
		l.flushMu.Unlock()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close() //nolint:errcheck
		l.ioMu.Unlock()
		l.flushMu.Unlock()
		return err
	}
	old := l.f
	oldGen := l.gen
	l.f, l.size, l.gen = nf, 0, newGen
	old.Close() //nolint:errcheck // fully flushed by the flush above
	l.ioMu.Unlock()

	if l.mirrorBroken {
		// A past write error divorced mirror and file; the chain on disk
		// is the authority, so re-adopt it (the rare slow path — held
		// under flushMu like the pre-mirror Compact always was).
		st, rerr := readState(l.dir)
		if rerr != nil {
			l.flushMu.Unlock()
			return rerr
		}
		l.state = st
		l.mirrorBroken = false
	}
	payload, err := json.Marshal(l.state)
	garbageSealed := l.garbage
	l.flushMu.Unlock()
	if err != nil {
		return err
	}
	// The stall is over: appends flow into the fresh generation while the
	// snapshot lands and old generations are pruned. Tailers parked at
	// the sealed generation's EOF get woken to follow the rotation.
	l.notifyCommit()

	if err := writeSnapshotPayload(l.dir, newGen, payload); err != nil {
		return err
	}
	l.snapshots.Inc()

	wals, snaps, err := listGens(l.dir)
	if err != nil {
		return err
	}
	for _, gen := range wals {
		if gen < newGen && gen <= oldGen {
			os.Remove(filepath.Join(l.dir, walName(gen))) //nolint:errcheck // best-effort GC
		}
	}
	for _, gen := range snaps {
		if gen < newGen {
			os.Remove(filepath.Join(l.dir, snapName(gen))) //nolint:errcheck // best-effort GC
		}
	}
	// The superseding records encoded into the snapshot no longer count
	// toward the garbage trigger; anything appended since the encode
	// keeps counting.
	l.flushMu.Lock()
	l.garbage -= garbageSealed
	l.flushMu.Unlock()
	return nil
}

// Close flushes the queue, stops the committer and closes the journal.
// It does not compact; the daemon compacts explicitly on clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	l.flushSync(true) // anything enqueued between the last drain and closed=true
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.f.Close()
}

// --- mutation hooks -------------------------------------------------------
//
// These methods satisfy the engine's journaling interfaces (core.Journal
// and store.ChangeFunc) so one Log threads through every layer.

// CRIssued journals a credential-record issue (async: the failure
// direction of a lost issue is fail-closed denial after a crash).
func (l *Log) CRIssued(service string, serial uint64, subject, holder string) {
	l.Append(Record{Op: OpCRIssue, Service: service, Serial: serial, Subject: subject, Holder: holder})
}

// CRRevoked journals a credential-record revocation, durably: once the
// revocation has been published it must survive any crash.
func (l *Log) CRRevoked(service string, serial uint64, reason string) {
	if err := l.AppendWait(Record{Op: OpCRRevoke, Service: service, Serial: serial, Reason: reason}); err != nil {
		l.appendErrors.Inc()
	}
}

// ApptIssued journals an issued appointment certificate, durably: the
// certificate outlives sessions, so the issuer must remember it before
// the holder does.
func (l *Log) ApptIssued(service string, a cert.AppointmentCertificate) {
	if err := l.AppendWait(Record{Op: OpApptIssue, Service: service, Serial: a.Serial, Appt: &a}); err != nil {
		l.appendErrors.Inc()
	}
}

// ApptRevoked journals an appointment revocation, durably.
func (l *Log) ApptRevoked(service string, serial uint64, reason string) {
	if err := l.AppendWait(Record{Op: OpApptRevoke, Service: service, Serial: serial, Reason: reason}); err != nil {
		l.appendErrors.Inc()
	}
}

// KeysInstalled journals a service's signing secrets so certificates
// signed before a crash still verify after recovery.
func (l *Log) KeysInstalled(service string, retain int, secrets []sign.Secret) error {
	return l.AppendWait(Record{Op: OpKeys, Service: service, Retain: retain, Secrets: secrets})
}

// FactChanged journals a fact store mutation; register it as a store
// observer. Matches store.ChangeFunc.
func (l *Log) FactChanged(relation string, tuple []names.Term, added bool) {
	op := OpFactAssert
	if !added {
		op = OpFactRetract
	}
	l.Append(Record{Op: op, Relation: relation, Tuple: tuple})
}
