// Package durable gives the OASIS issuer a memory that survives crashes.
//
// The paper's appointment certificates are deliberately long-lived — they
// outlive sessions and are validated by callback to the issuer's
// credential record (Sects. 5, 7) — yet without this package every
// credential record, appointment and signing secret lives only in process
// memory: one daemon restart silently invalidates every outstanding
// certificate (fail-closed amnesia) and, worse, forgets which ones were
// revoked. durable fixes that with an append-only, length-prefixed,
// checksummed journal of state mutations plus periodic compacting
// snapshots, replayed on startup to rebuild issuer state before the
// listener opens.
//
// What is journaled: appointment issue/revoke (the long-lived
// credentials), credential-record issue/revoke (so callback validation of
// pre-crash RMCs stays authoritative: issued-and-live answers valid,
// revoked stays revoked), fact assert/retract (the environmental truth
// membership rules consult), and signing-key material (so surviving
// certificates still Verify under the restored ring). What is
// deliberately ephemeral: sessions, session proofs and the membership
// monitoring tree — RMCs are session-scoped in the paper, and a session
// does not survive its issuer's crash; the journal preserves validation
// continuity, not live sessions.
//
// Journal writes are batched with a group-commit window (one fsync
// amortised over every mutation that raced into the window) so the
// engine's hot paths keep their lock-free profile; corrupt or truncated
// tail records — a crash mid-append — are detected by checksum and safely
// discarded.
package durable

import (
	"strings"

	"repro/internal/cert"
	"repro/internal/names"
	"repro/internal/sign"
)

// Op names one journaled mutation kind. The values are short on purpose:
// they appear in every journal record.
type Op string

// The journaled mutation kinds.
const (
	// OpKeys installs a service's signing secrets (key ring export).
	OpKeys Op = "keys"
	// OpCRIssue records the issue of a credential record (an RMC's
	// validity state).
	OpCRIssue Op = "cr+"
	// OpCRRevoke records the revocation of a credential record.
	OpCRRevoke Op = "cr-"
	// OpApptIssue records an issued appointment certificate, in full:
	// the certificate is the record.
	OpApptIssue Op = "appt+"
	// OpApptRevoke records the revocation of an appointment.
	OpApptRevoke Op = "appt-"
	// OpFactAssert records a fact asserted into the shared store.
	OpFactAssert Op = "fact+"
	// OpFactRetract records a fact retracted from the shared store.
	OpFactRetract Op = "fact-"
)

// Record is one journal entry. Fields are a union over the ops; unused
// fields stay at their zero values and are omitted from the encoding.
type Record struct {
	Op      Op     `json:"op"`
	Service string `json:"svc,omitempty"`
	Serial  uint64 `json:"serial,omitempty"`
	// Subject is the CR's ground-role key; Holder the principal it was
	// issued to (both needed to answer validation callbacks).
	Subject string `json:"subject,omitempty"`
	Holder  string `json:"holder,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Appt carries the whole signed certificate for OpApptIssue, so
	// replay restores something that still verifies and can be
	// re-presented.
	Appt *cert.AppointmentCertificate `json:"appt,omitempty"`
	// Relation and Tuple describe a fact mutation.
	Relation string       `json:"rel,omitempty"`
	Tuple    []names.Term `json:"tuple,omitempty"`
	// Secrets and Retain carry a key-ring export for OpKeys.
	Secrets []sign.Secret `json:"secrets,omitempty"`
	Retain  int           `json:"retain,omitempty"`
}

// CRState is the durable validity state of one credential record.
type CRState struct {
	Subject string `json:"subject"`
	Holder  string `json:"holder"`
	Revoked bool   `json:"revoked,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// ApptState is the durable state of one issued appointment.
type ApptState struct {
	Cert    cert.AppointmentCertificate `json:"cert"`
	Revoked bool                        `json:"revoked,omitempty"`
	Reason  string                      `json:"reason,omitempty"`
}

// ServiceState is everything one service needs restored to keep answering
// authoritatively for certificates it issued before the crash.
type ServiceState struct {
	Secrets []sign.Secret         `json:"secrets,omitempty"`
	Retain  int                   `json:"retain,omitempty"`
	CRs     map[uint64]*CRState   `json:"crs,omitempty"`
	Appts   map[uint64]*ApptState `json:"appts,omitempty"`
}

// Fact is one ground tuple in the shared fact store.
type Fact struct {
	Relation string       `json:"rel"`
	Tuple    []names.Term `json:"tuple"`
}

// State is the replayed issuer state of a whole daemon: per-service
// credential state plus the shared fact store. Applying a journal record
// is idempotent (a record re-applied on top of a snapshot that already
// includes it converges to the same state), which is what makes the
// overlap between a compacting snapshot and the journal generation it
// seals harmless.
type State struct {
	Services map[string]*ServiceState `json:"services,omitempty"`
	Facts    map[string]Fact          `json:"facts,omitempty"`
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Services: make(map[string]*ServiceState),
		Facts:    make(map[string]Fact),
	}
}

func (st *State) service(name string) *ServiceState {
	if st.Services == nil {
		st.Services = make(map[string]*ServiceState)
	}
	ss, ok := st.Services[name]
	if !ok {
		ss = &ServiceState{
			CRs:   make(map[uint64]*CRState),
			Appts: make(map[uint64]*ApptState),
		}
		st.Services[name] = ss
	}
	// Maps may be nil after a JSON round-trip of a partial state.
	if ss.CRs == nil {
		ss.CRs = make(map[uint64]*CRState)
	}
	if ss.Appts == nil {
		ss.Appts = make(map[uint64]*ApptState)
	}
	return ss
}

// FactKey canonically identifies a ground tuple within a relation.
func FactKey(relation string, tuple []names.Term) string {
	parts := make([]string, 0, len(tuple)+1)
	parts = append(parts, relation)
	for _, t := range tuple {
		parts = append(parts, t.Kind.String()+":"+t.String())
	}
	return strings.Join(parts, "\x1f")
}

// Apply folds one journal record into the state, in journal order.
// Revocations of unknown serials leave a revoked tombstone so a pending
// revocation is never forgotten, whatever interleaving the journal holds.
func (st *State) Apply(r Record) {
	switch r.Op {
	case OpKeys:
		ss := st.service(r.Service)
		ss.Secrets = append([]sign.Secret(nil), r.Secrets...)
		ss.Retain = r.Retain
	case OpCRIssue:
		ss := st.service(r.Service)
		if cr, ok := ss.CRs[r.Serial]; ok && cr.Revoked {
			// Idempotent replay over a snapshot that already saw the
			// later revocation: keep the revocation, refresh the rest.
			cr.Subject, cr.Holder = r.Subject, r.Holder
			return
		}
		ss.CRs[r.Serial] = &CRState{Subject: r.Subject, Holder: r.Holder}
	case OpCRRevoke:
		ss := st.service(r.Service)
		cr, ok := ss.CRs[r.Serial]
		if !ok {
			cr = &CRState{}
			ss.CRs[r.Serial] = cr
		}
		cr.Revoked = true
		cr.Reason = r.Reason
	case OpApptIssue:
		if r.Appt == nil {
			return
		}
		ss := st.service(r.Service)
		if a, ok := ss.Appts[r.Serial]; ok && a.Revoked {
			a.Cert = *r.Appt
			return
		}
		ss.Appts[r.Serial] = &ApptState{Cert: *r.Appt}
	case OpApptRevoke:
		ss := st.service(r.Service)
		a, ok := ss.Appts[r.Serial]
		if !ok {
			a = &ApptState{}
			ss.Appts[r.Serial] = a
		}
		a.Revoked = true
		a.Reason = r.Reason
	case OpFactAssert:
		if st.Facts == nil {
			st.Facts = make(map[string]Fact)
		}
		st.Facts[FactKey(r.Relation, r.Tuple)] = Fact{Relation: r.Relation, Tuple: r.Tuple}
	case OpFactRetract:
		delete(st.Facts, FactKey(r.Relation, r.Tuple))
	}
}
