package durable_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/sign"
)

var _ core.Journal = (*durable.Log)(nil)

const adminPolicy = `
admin.administrator(A) <- env is_admin(A).
auth appoint_employed_as_doctor(H) <- admin.administrator(A).
`

const hospitalPolicy = `
hospital.doctor <- appt admin.employed_as_doctor(H), env eq(H, st_marys) keep [1].
hospital.auditor <- admin.administrator(A) keep [1].
auth treat <- hospital.doctor.
`

// bootWorld stands up the two-service deployment the daemon would host,
// mirroring oasisd's recovery sequence: the admin service journals to dlog
// and is rebuilt from the recovered state; the hospital service validates
// admin's certificates by callback.
type bootWorld struct {
	broker   *event.Broker
	bus      *rpc.Loopback
	admin    *core.Service
	hospital *core.Service
}

func boot(t *testing.T, dlog *durable.Log, admins ...string) *bootWorld {
	t.Helper()
	w := &bootWorld{broker: event.NewBroker(), bus: rpc.NewLoopback()}
	t.Cleanup(w.broker.Close)

	recovered, err := dlog.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Name:    "admin",
		Policy:  policy.MustParse(adminPolicy),
		Broker:  w.broker,
		Caller:  w.bus,
		Journal: dlog,
	}
	ss := recovered.Services["admin"]
	if ss != nil && len(ss.Secrets) > 0 {
		ring, err := sign.NewKeyRingFromSecrets(ss.Secrets, ss.Retain, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.KeyRing = ring
	}
	w.admin, err = core.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.admin.Close)
	if cfg.KeyRing == nil {
		secrets, retain := w.admin.ExportKeys()
		if err := dlog.KeysInstalled("admin", retain, secrets); err != nil {
			t.Fatal(err)
		}
	}
	if ss != nil {
		// Deterministic restore order for the test; the daemon's map
		// iteration order is equally fine since serials are independent.
		serials := make([]uint64, 0, len(ss.CRs))
		for serial := range ss.CRs {
			serials = append(serials, serial)
		}
		sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
		for _, serial := range serials {
			cr := ss.CRs[serial]
			if err := w.admin.RestoreCR(serial, cr.Subject, cr.Holder, cr.Revoked, cr.Reason); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range ss.Appts {
			w.admin.RestoreAppointment(a.Cert, a.Revoked)
		}
	}
	w.admin.Env().Register("is_admin", func(args []names.Term, s names.Substitution) []names.Substitution {
		for _, who := range admins {
			if ext, ok := names.UnifyTuples(args, []names.Term{names.Atom(who)}, s); ok {
				return []names.Substitution{ext}
			}
		}
		return nil
	})
	w.bus.Register("admin", w.admin.Handler())

	w.hospital, err = core.NewService(core.Config{
		Name:   "hospital",
		Policy: policy.MustParse(hospitalPolicy),
		Broker: w.broker,
		Caller: w.bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.hospital.Close)
	w.bus.Register("hospital", w.hospital.Handler())
	return w
}

func adminRole(who string) names.Role {
	return names.MustRole(names.MustRoleName("admin", "administrator", 1), names.Atom(who))
}

func hospRole(name string) names.Role {
	return names.MustRole(names.MustRoleName("hospital", name, 0))
}

// TestCrashRecoveryEndToEnd is the acceptance scenario: issue appointments
// and RMCs, revoke some, kill the daemon without clean shutdown (no
// compaction, torn bytes on the journal tail), restart against the same
// state dir — surviving certificates still validate by callback, revoked
// ones stay denied.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// ---- first life -----------------------------------------------------
	dlog, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w1 := boot(t, dlog, "alice", "bob")

	rmcAlice, err := w1.admin.Activate("alice-key", adminRole("alice"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	rmcBob, err := w1.admin.Activate("bob-key", adminRole("bob"), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	apptJones, err := w1.admin.Appoint("alice-key", core.AppointmentRequest{
		Kind: "employed_as_doctor", Holder: "dr-jones-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, core.Presented{RMCs: []cert.RMC{rmcAlice}})
	if err != nil {
		t.Fatal(err)
	}
	apptSmith, err := w1.admin.Appoint("alice-key", core.AppointmentRequest{
		Kind: "employed_as_doctor", Holder: "dr-smith-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, core.Presented{RMCs: []cert.RMC{rmcAlice}})
	if err != nil {
		t.Fatal(err)
	}
	// Revocations before the crash: bob's role and smith's appointment
	// must stay dead forever.
	w1.admin.Deactivate(rmcBob.Ref.Serial, "bob fired")
	if !w1.admin.RevokeAppointment(apptSmith.Serial, "smith fired") {
		t.Fatal("revoke appointment failed")
	}

	// Crash: no Compact. Close flushes the queue (a crash that loses the
	// last async group-commit window is allowed to lose those issues —
	// fail-closed — but the test needs the issues on disk to assert
	// survival), then torn garbage lands on the journal tail as if the
	// process died mid-append.
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}
	wals := journalFiles(t, dir)
	f, err := os.OpenFile(wals[len(wals)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x09, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	// ---- second life ----------------------------------------------------
	dlog2, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer dlog2.Close() //nolint:errcheck
	if rs := dlog2.ReplayStats(); rs.TruncatedBytes != 6 {
		t.Fatalf("torn tail not discarded: %+v", rs)
	}
	w2 := boot(t, dlog2, "alice", "bob")

	// Surviving appointment: validates by callback and activates the
	// dependent role at another service.
	if _, err := w2.hospital.Activate("dr-jones-key", hospRole("doctor"),
		core.Presented{Appointments: []cert.AppointmentCertificate{apptJones}}); err != nil {
		t.Fatalf("surviving appointment rejected after restart: %v", err)
	}
	// Revoked appointment: stays denied.
	if _, err := w2.hospital.Activate("dr-smith-key", hospRole("doctor"),
		core.Presented{Appointments: []cert.AppointmentCertificate{apptSmith}}); !errors.Is(err, core.ErrInvalidCredential) {
		t.Fatalf("revoked appointment accepted after restart: %v", err)
	}
	// Surviving RMC: validates by callback against the restored CR and
	// the restored signing ring.
	if _, err := w2.hospital.Activate("alice-key", hospRole("auditor"),
		core.Presented{RMCs: []cert.RMC{rmcAlice}}); err != nil {
		t.Fatalf("surviving RMC rejected after restart: %v", err)
	}
	// Revoked RMC: stays denied.
	if _, err := w2.hospital.Activate("bob-key", hospRole("auditor"),
		core.Presented{RMCs: []cert.RMC{rmcBob}}); !errors.Is(err, core.ErrInvalidCredential) {
		t.Fatalf("revoked RMC accepted after restart: %v", err)
	}

	// New issues post-restart must not collide with restored serials.
	apptNew, err := w2.admin.Appoint("alice-key", core.AppointmentRequest{
		Kind: "employed_as_doctor", Holder: "dr-new-key",
		Params: []names.Term{names.Atom("st_marys")},
	}, core.Presented{RMCs: []cert.RMC{rmcAlice}})
	if err != nil {
		t.Fatal(err)
	}
	if apptNew.Serial == apptJones.Serial || apptNew.Serial == apptSmith.Serial {
		t.Fatalf("serial collision after restart: %d", apptNew.Serial)
	}
	rmcNew, err := w2.admin.Activate("carol-key", adminRole("bob"), core.Presented{})
	if err == nil && (rmcNew.Ref.Serial == rmcAlice.Ref.Serial || rmcNew.Ref.Serial == rmcBob.Ref.Serial) {
		t.Fatalf("CR serial collision after restart: %d", rmcNew.Ref.Serial)
	}

	// Post-restart revocation of a restored appointment works and is
	// itself durable.
	if !w2.admin.RevokeAppointment(apptJones.Serial, "employment ended") {
		t.Fatal("restored appointment could not be revoked")
	}
	if _, err := w2.hospital.Activate("dr-jones-key", hospRole("doctor"),
		core.Presented{Appointments: []cert.AppointmentCertificate{apptJones}}); !errors.Is(err, core.ErrInvalidCredential) {
		t.Fatalf("appointment revoked after restart still accepted: %v", err)
	}

	// ---- third life: clean shutdown this time ---------------------------
	if err := dlog2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := dlog2.Close(); err != nil {
		t.Fatal(err)
	}
	dlog3, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer dlog3.Close() //nolint:errcheck
	if rs := dlog3.ReplayStats(); !rs.SnapshotLoaded {
		t.Fatalf("snapshot not used after clean shutdown: %+v", rs)
	}
	w3 := boot(t, dlog3, "alice", "bob")
	if _, err := w3.hospital.Activate("dr-jones-key", hospRole("doctor"),
		core.Presented{Appointments: []cert.AppointmentCertificate{apptJones}}); !errors.Is(err, core.ErrInvalidCredential) {
		t.Fatalf("post-restart revocation lost across compaction: %v", err)
	}
	if _, err := w3.hospital.Activate("alice-key", hospRole("auditor"),
		core.Presented{RMCs: []cert.RMC{rmcAlice}}); err != nil {
		t.Fatalf("surviving RMC rejected after compaction: %v", err)
	}
}

func journalFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		t.Fatal("no journal files")
	}
	return matches
}
