package durable

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSweepStaleTmpOnOpen plants the orphan a crash inside writeSnapshot
// leaves behind and asserts recovery removes it (and that listGens never
// saw it as a generation).
func TestSweepStaleTmpOnOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapName(7)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o600); err != nil {
		t.Fatal(err)
	}
	wals, snaps, err := listGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 0 || len(snaps) != 0 {
		t.Fatalf("listGens counted the .tmp orphan: wals=%v snaps=%v", wals, snaps)
	}

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale %s survived Open: stat err=%v", filepath.Base(tmp), err)
	}
}

// TestMirrorMatchesDisk drives appends and compactions and asserts the
// live mirror (what Compact now snapshots) always equals a full replay of
// the on-disk chain — the invariant the bounded-stall Compact rests on.
func TestMirrorMatchesDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck

	check := func(stage string) {
		if err := l.Sync(); err != nil {
			t.Fatalf("%s: sync: %v", stage, err)
		}
		live, err := l.Recovered()
		if err != nil {
			t.Fatalf("%s: recovered: %v", stage, err)
		}
		disk, err := ReadState(dir)
		if err != nil {
			t.Fatalf("%s: readState: %v", stage, err)
		}
		if got, want := mustJSON(t, live), mustJSON(t, disk); got != want {
			t.Fatalf("%s: mirror diverged from disk:\n mirror %s\n disk   %s", stage, got, want)
		}
	}

	for i := uint64(1); i <= 40; i++ {
		l.CRIssued("svc", i, "role", "holder")
		if i%5 == 0 {
			l.CRRevoked("svc", i, "churn")
		}
		if i%10 == 0 {
			if err := l.Compact(); err != nil {
				t.Fatalf("compact at %d: %v", i, err)
			}
			check("after compact")
		}
	}
	check("final")
}

// TestReadSegmentAtFollowsRotation tails a live log through appends and a
// compaction with ReadSegmentAt + ActiveGen, asserting every record is
// seen exactly once across the wal-* rotation.
func TestReadSegmentAtFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck

	var got []Record
	cur := Cursor{Gen: 1}
	drain := func() {
		for {
			recs, next, err := ReadSegmentAt(dir, cur.Gen, cur.Off)
			if err == ErrNoSegment {
				// The segment was pruned by a compaction; the test drained
				// it fully beforehand (a real follower would reset from the
				// snapshot here), so resume at the oldest survivor.
				oldest, ok, oerr := OldestSegment(dir)
				if oerr != nil || !ok || oldest <= cur.Gen {
					t.Fatalf("segment %d pruned with no successor (oldest=%d ok=%v err=%v)", cur.Gen, oldest, ok, oerr)
				}
				cur = Cursor{Gen: oldest}
				continue
			}
			if err != nil {
				t.Fatalf("read %d@%d: %v", cur.Gen, cur.Off, err)
			}
			got = append(got, recs...)
			cur.Off = next
			if len(recs) > 0 {
				continue
			}
			gen, _ := l.ActiveGen()
			if cur.Gen >= gen {
				return
			}
			fi, err := os.Stat(filepath.Join(dir, walName(cur.Gen)))
			if err != nil {
				t.Fatalf("stat sealed segment %d: %v", cur.Gen, err)
			}
			if cur.Off < fi.Size() {
				t.Fatalf("sealed segment %d has bytes past a stalled cursor (%d < %d)", cur.Gen, cur.Off, fi.Size())
			}
			cur = Cursor{Gen: cur.Gen + 1}
		}
	}

	for i := uint64(1); i <= 30; i++ {
		l.CRIssued("svc", i, "role", "holder")
		if i == 10 || i == 20 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			drain()
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	drain()

	if len(got) != 30 {
		t.Fatalf("tailed %d records, want 30", len(got))
	}
	for i, r := range got {
		if r.Serial != uint64(i+1) {
			t.Fatalf("record %d has serial %d: lost or double-applied across rotation", i, r.Serial)
		}
	}
}

// TestNotifyCommitWakesTailer parks on the notify channel and asserts an
// append pokes it.
func TestNotifyCommitWakesTailer(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck

	ch := make(chan struct{}, 1)
	l.NotifyCommit(ch)
	defer l.StopNotify(ch)

	l.CRIssued("svc", 1, "role", "holder")
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no commit notification within 5s of an append")
	}
}

// TestEpochAdvancesAcrossOpens pins the identity semantics cursors rely
// on: the id is stable, the epoch strictly advances per Open.
func TestEpochAdvancesAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, epoch := l1.ID(), l1.Epoch()
	if id == "" || epoch == 0 {
		t.Fatalf("missing identity: id=%q epoch=%d", id, epoch)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close() //nolint:errcheck
	if l2.ID() != id {
		t.Fatalf("journal id changed across opens: %q -> %q", id, l2.ID())
	}
	if l2.Epoch() <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, l2.Epoch())
	}
}
