package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SegmentReport describes one journal or snapshot file's integrity.
type SegmentReport struct {
	Name      string `json:"name"`
	Gen       uint64 `json:"gen"`
	Bytes     int64  `json:"bytes"`
	Records   int    `json:"records"`
	Truncated bool   `json:"truncated,omitempty"` // torn tail past the last intact record
	TornBytes int64  `json:"torn_bytes,omitempty"`
	Err       string `json:"err,omitempty"`
}

// VerifyReport is the result of an offline state-directory check.
type VerifyReport struct {
	Dir      string          `json:"dir"`
	Segments []SegmentReport `json:"segments"`
	// Replayable state totals, counted from a full offline replay.
	Services     int  `json:"services"`
	CRs          int  `json:"crs"`
	RevokedCRs   int  `json:"revoked_crs"`
	Appointments int  `json:"appointments"`
	RevokedAppts int  `json:"revoked_appts"`
	Facts        int  `json:"facts"`
	OK           bool `json:"ok"`
}

// Verify checks a state directory offline, without modifying it: every
// snapshot must decode and checksum, every journal generation below the
// newest must be intact, and the newest may carry at most a torn tail
// (which recovery would discard). It also replays the whole directory the
// way Open would and reports the resulting state's totals.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{Dir: dir, OK: true}
	wals, snaps, err := listGens(dir)
	if err != nil {
		return nil, err
	}

	var base uint64
	var haveBase bool
	for _, gen := range snaps {
		sr := SegmentReport{Name: snapName(gen), Gen: gen}
		if fi, err := os.Stat(filepath.Join(dir, snapName(gen))); err == nil {
			sr.Bytes = fi.Size()
		}
		st, serr := readSnapshot(dir, gen)
		if serr != nil {
			sr.Err = serr.Error()
			rep.OK = false
		} else {
			sr.Records = 1
			_ = st
			base, haveBase = gen, true
		}
		rep.Segments = append(rep.Segments, sr)
	}

	active := uint64(0)
	if len(wals) > 0 {
		active = wals[len(wals)-1]
	}
	for _, gen := range wals {
		path := filepath.Join(dir, walName(gen))
		sr := SegmentReport{Name: walName(gen), Gen: gen}
		if fi, err := os.Stat(path); err == nil {
			sr.Bytes = fi.Size()
		}
		recs, goodOffset, truncated, rerr := readWAL(path)
		if rerr != nil {
			sr.Err = rerr.Error()
			rep.OK = false
			rep.Segments = append(rep.Segments, sr)
			continue
		}
		sr.Records = len(recs)
		sr.Truncated = truncated
		if truncated {
			sr.TornBytes = sr.Bytes - goodOffset
			if gen != active {
				sr.Err = fmt.Sprintf("damage below the journal tail (%s is not the newest generation)", walName(gen))
				rep.OK = false
			}
		}
		rep.Segments = append(rep.Segments, sr)
	}

	// Offline replay, mirroring Open: newest readable snapshot, then
	// journal generations at or above it.
	st := NewState()
	if haveBase {
		if loaded, err := readSnapshot(dir, base); err == nil {
			st = loaded
		}
	}
	for _, gen := range wals {
		if haveBase && gen < base {
			continue
		}
		recs, _, _, rerr := readWAL(filepath.Join(dir, walName(gen)))
		if rerr != nil {
			continue
		}
		for _, r := range recs {
			st.Apply(r)
		}
	}
	rep.Services = len(st.Services)
	for _, ss := range st.Services {
		rep.CRs += len(ss.CRs)
		for _, cr := range ss.CRs {
			if cr.Revoked {
				rep.RevokedCRs++
			}
		}
		rep.Appointments += len(ss.Appts)
		for _, a := range ss.Appts {
			if a.Revoked {
				rep.RevokedAppts++
			}
		}
	}
	rep.Facts = len(st.Facts)
	return rep, nil
}

// WriteText renders the report for terminals.
func (r *VerifyReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "state dir %s\n", r.Dir)
	for _, s := range r.Segments {
		status := "ok"
		switch {
		case s.Err != "":
			status = "CORRUPT: " + s.Err
		case s.Truncated:
			status = fmt.Sprintf("torn tail (%d bytes past last intact record; recovery discards it)", s.TornBytes)
		}
		fmt.Fprintf(w, "  %-20s %8d bytes  %6d records  %s\n", s.Name, s.Bytes, s.Records, status)
	}
	fmt.Fprintf(w, "replayed: %d services, %d CRs (%d revoked), %d appointments (%d revoked), %d facts\n",
		r.Services, r.CRs, r.RevokedCRs, r.Appointments, r.RevokedAppts, r.Facts)
	if r.OK {
		fmt.Fprintln(w, "integrity: OK")
	} else {
		fmt.Fprintln(w, "integrity: FAILED")
	}
}
