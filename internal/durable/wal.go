package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Journal and snapshot files are generation-numbered: the daemon appends
// to wal-<gen>; compaction rotates to wal-<gen+1>, then writes
// snap-<gen+1> (which covers everything up to the rotation point), then
// deletes older generations. Recovery loads the newest readable snapshot
// and replays every journal generation at or above it, in order — replay
// is idempotent, so the overlap between a snapshot and the generation it
// sealed is harmless.

// frameHeaderSize is the per-record framing overhead: a 4-byte big-endian
// payload length followed by a 4-byte CRC32 (IEEE) of the payload.
const frameHeaderSize = 8

// maxFrameSize bounds a single record; anything larger in a file is
// treated as corruption rather than an allocation request.
const maxFrameSize = 16 << 20

// ErrCorrupt reports a record that fails its checksum or framing away
// from the journal tail — damage that replay cannot safely skip.
var ErrCorrupt = errors.New("durable: corrupt journal record")

func walName(gen uint64) string  { return fmt.Sprintf("wal-%08d.log", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d.json", gen) }

// parseGen extracts the generation from a wal/snap file name, reporting
// whether the name matches the given prefix scheme.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// listGens scans dir for wal and snapshot generations, each sorted
// ascending.
func listGens(dir string) (wals, snaps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if gen, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, gen)
		}
		if gen, ok := parseGen(e.Name(), "snap-", ".json"); ok {
			snaps = append(snaps, gen)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return wals, snaps, nil
}

// appendFrame appends one length-prefixed checksummed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// readFrames reads consecutive frames from r, returning the decoded
// payloads and the byte offset of the first byte past the last intact
// frame. truncated reports that the stream ended mid-frame or with a
// checksum mismatch — the signature of a crash mid-append.
func readFrames(r io.Reader) (payloads [][]byte, goodOffset int64, truncated bool, err error) {
	br := &countingReader{r: r}
	for {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) && br.n == goodOffset {
				return payloads, goodOffset, false, nil // clean end
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return payloads, goodOffset, true, nil // partial header
			}
			return payloads, goodOffset, false, err
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if size == 0 || size > maxFrameSize {
			return payloads, goodOffset, true, nil // nonsense length: torn write
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return payloads, goodOffset, true, nil // partial payload
			}
			return payloads, goodOffset, false, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, goodOffset, true, nil // checksum mismatch
		}
		payloads = append(payloads, payload)
		goodOffset = br.n
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readWAL decodes one journal segment. A damaged tail yields the intact
// prefix with truncated=true; a record that fails to decode as JSON is
// treated the same way (it can only be the torn tail of a crashed
// append — full frames are checksummed).
func readWAL(path string) (recs []Record, goodOffset int64, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close() //nolint:errcheck // read-only
	payloads, goodOffset, truncated, err := readFrames(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("read %s: %w", filepath.Base(path), err)
	}
	offset := int64(0)
	for _, p := range payloads {
		var r Record
		if jerr := json.Unmarshal(p, &r); jerr != nil {
			return recs, offset, true, nil
		}
		offset += frameHeaderSize + int64(len(p))
		recs = append(recs, r)
	}
	return recs, goodOffset, truncated, nil
}

// writeSnapshot atomically writes the state as snap-<gen>: encode to a
// temp file (one checksummed frame), fsync, rename into place, fsync the
// directory so the rename is durable.
func writeSnapshot(dir string, gen uint64, st *State) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	return writeSnapshotPayload(dir, gen, payload)
}

// writeSnapshotPayload is writeSnapshot for an already-encoded state, so
// Compact can marshal under its lock and do the disk work outside it.
func writeSnapshotPayload(dir string, gen uint64, payload []byte) error {
	buf := appendFrame(nil, payload)
	tmp := filepath.Join(dir, snapName(gen)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(gen))); err != nil {
		return err
	}
	return syncDir(dir)
}

// readSnapshot loads snap-<gen>, verifying its checksum.
func readSnapshot(dir string, gen uint64) (*State, error) {
	f, err := os.Open(filepath.Join(dir, snapName(gen)))
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only
	payloads, _, truncated, err := readFrames(f)
	if err != nil {
		return nil, err
	}
	if truncated || len(payloads) != 1 {
		return nil, fmt.Errorf("%w: snapshot %s", ErrCorrupt, snapName(gen))
	}
	st := NewState()
	if err := json.Unmarshal(payloads[0], st); err != nil {
		return nil, fmt.Errorf("decode snapshot %s: %w", snapName(gen), err)
	}
	return st, nil
}

// sweepTmp removes leftover *.tmp files from dir. A crash between
// writeSnapshot's temp-file create and its rename leaves snap-*.json.tmp
// behind forever — listGens ignores the suffix, so nothing ever read it,
// but nothing deleted it either and a crash-looping daemon would grow one
// orphan per attempt. Recovery is the natural sweep point: any .tmp here
// is by definition an abandoned write.
func sweepTmp(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so recent creates/renames survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck // read-only handle
	return d.Sync()
}
