package event

import (
	"fmt"
	"sync"
	"testing"
)

// PublishBatch must deliver in slice order to taps and to each
// subscription, and count enqueues like repeated Publish calls.
func TestPublishBatchOrder(t *testing.T) {
	b := NewBroker()
	defer b.Close()

	var tapMu sync.Mutex
	var tapped []string
	cancelTap := b.Tap(func(ev Event) {
		tapMu.Lock()
		tapped = append(tapped, ev.Subject)
		tapMu.Unlock()
	})
	defer cancelTap()

	var subMu sync.Mutex
	var seen []string
	sub, err := b.Subscribe("t", func(ev Event) {
		subMu.Lock()
		seen = append(seen, ev.Subject)
		subMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	const n = 100
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Topic: "t", Kind: KindRevoked, Subject: fmt.Sprintf("s%03d", i)}
	}
	count, err := b.PublishBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("enqueued %d, want %d", count, n)
	}
	b.Quiesce()

	tapMu.Lock()
	defer tapMu.Unlock()
	subMu.Lock()
	defer subMu.Unlock()
	if len(tapped) != n || len(seen) != n {
		t.Fatalf("tap=%d sub=%d, want %d each", len(tapped), len(seen), n)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("s%03d", i)
		if tapped[i] != want {
			t.Fatalf("tap order broken at %d: %s", i, tapped[i])
		}
		if seen[i] != want {
			t.Fatalf("sub order broken at %d: %s", i, seen[i])
		}
	}

	if got, err := b.PublishBatch(nil); err != nil || got != 0 {
		t.Fatalf("empty batch: %d, %v", got, err)
	}
}

func TestPublishBatchClosed(t *testing.T) {
	b := NewBroker()
	b.Close()
	if _, err := b.PublishBatch([]Event{{Topic: "t"}}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
