package event

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func BenchmarkPublishOneSubscriber(b *testing.B) {
	broker := NewBroker()
	defer broker.Close()
	var n atomic.Int64
	if _, err := broker.Subscribe("t", func(Event) { n.Add(1) }); err != nil {
		b.Fatal(err)
	}
	ev := Event{Topic: "t", Kind: KindRevoked, Subject: "s"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.Publish(ev); err != nil {
			b.Fatal(err)
		}
	}
	broker.Quiesce()
}

func BenchmarkPublishFanout(b *testing.B) {
	for _, subs := range []int{10, 100} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			broker := NewBroker()
			defer broker.Close()
			var n atomic.Int64
			for i := 0; i < subs; i++ {
				if _, err := broker.Subscribe("t", func(Event) { n.Add(1) }); err != nil {
					b.Fatal(err)
				}
			}
			ev := Event{Topic: "t", Kind: KindRevoked}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := broker.Publish(ev); err != nil {
					b.Fatal(err)
				}
			}
			broker.Quiesce()
		})
	}
}
