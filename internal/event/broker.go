// Package event implements the active, event-based middleware platform that
// OASIS depends on (paper Sect. 1 and ref [2]): services protected by OASIS
// communicate asynchronously so that one service can be notified of a
// change of state at another without periodic polling. Event channels carry
// certificate invalidation (Fig. 1, Fig. 5) and heartbeats.
package event

import (
	"errors"
	"sync"
	"time"
)

// Kind classifies events on OASIS channels.
type Kind int

// Event kinds used by the OASIS engine.
const (
	// KindRevoked announces that a credential record has become invalid;
	// dependants must deactivate roles whose membership rules relied on
	// it (Sect. 4).
	KindRevoked Kind = iota + 1
	// KindHeartbeat is a liveness signal on a credential channel
	// (Fig. 5 "heartbeats or change events").
	KindHeartbeat
	// KindChanged announces that environmental state referenced by a
	// membership rule changed and must be re-checked.
	KindChanged
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindRevoked:
		return "revoked"
	case KindHeartbeat:
		return "heartbeat"
	case KindChanged:
		return "changed"
	default:
		return "unknown"
	}
}

// Event is a notification on a topic. Subject identifies the credential
// record or environmental fact concerned; Reason is free-text diagnostics.
// Origin is empty for locally published events and carries the source node
// name once a Relay has forwarded the event across processes.
type Event struct {
	Topic   string    `json:"topic"`
	Kind    Kind      `json:"kind"`
	Subject string    `json:"subject,omitempty"`
	Reason  string    `json:"reason,omitempty"`
	At      time.Time `json:"at,omitempty"`
	Origin  string    `json:"origin,omitempty"`
}

// Handler consumes events; it is invoked serially per subscription.
type Handler func(Event)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("event broker closed")

// Broker is a topic-based publish/subscribe hub. Publishing never blocks on
// slow subscribers: each subscription owns a goroutine draining an
// unbounded FIFO queue. Quiesce waits for all queues to drain, giving tests
// and the experiment harness a deterministic "after the revocation event
// storm has settled" point.
type Broker struct {
	mu     sync.Mutex
	topics map[string]map[int]*Subscription
	nextID int
	closed bool
	wg     sync.WaitGroup

	pendingMu sync.Mutex
	pending   int
	idle      *sync.Cond

	published uint64
	delivered uint64

	taps []func(Event)
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	b := &Broker{topics: make(map[string]map[int]*Subscription)}
	b.idle = sync.NewCond(&b.pendingMu)
	return b
}

// Subscription is a registration of a handler on one topic.
type Subscription struct {
	broker *Broker
	topic  string
	id     int

	mu     sync.Mutex
	queue  []Event
	wake   chan struct{}
	closed bool
}

// Subscribe registers handler on topic and returns the subscription. The
// handler runs on a dedicated goroutine, one event at a time, in publish
// order for this topic.
func (b *Broker) Subscribe(topic string, handler Handler) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	s := &Subscription{
		broker: b,
		topic:  topic,
		id:     b.nextID,
		wake:   make(chan struct{}, 1),
	}
	b.nextID++
	subs, ok := b.topics[topic]
	if !ok {
		subs = make(map[int]*Subscription)
		b.topics[topic] = subs
	}
	subs[s.id] = s
	b.wg.Add(1)
	go s.run(handler)
	return s, nil
}

func (s *Subscription) run(handler Handler) {
	defer s.broker.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.wake
			continue
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		handler(ev)
		s.broker.taskDone()
	}
}

// Cancel removes the subscription; queued events already assigned to it
// are still delivered before its goroutine exits.
func (s *Subscription) Cancel() {
	s.broker.mu.Lock()
	if subs, ok := s.broker.topics[s.topic]; ok {
		delete(subs, s.id)
		if len(subs) == 0 {
			delete(s.broker.topics, s.topic)
		}
	}
	s.broker.mu.Unlock()

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Topic returns the topic this subscription listens on.
func (s *Subscription) Topic() string { return s.topic }

func (s *Subscription) enqueue(ev Event) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// Publish delivers ev to every current subscriber of ev.Topic. It returns
// the number of subscribers the event was queued for.
func (b *Broker) Publish(ev Event) (int, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	subs := b.topics[ev.Topic]
	targets := make([]*Subscription, 0, len(subs))
	for _, s := range subs {
		targets = append(targets, s)
	}
	taps := make([]func(Event), len(b.taps))
	copy(taps, b.taps)
	b.published++
	b.mu.Unlock()

	for _, tap := range taps {
		tap(ev)
	}
	n := 0
	for _, s := range targets {
		b.taskAdd()
		if s.enqueue(ev) {
			n++
		} else {
			b.taskDone()
		}
	}
	return n, nil
}

func (b *Broker) taskAdd() {
	b.pendingMu.Lock()
	b.pending++
	b.pendingMu.Unlock()
}

func (b *Broker) taskDone() {
	b.pendingMu.Lock()
	b.pending--
	b.delivered++
	if b.pending == 0 {
		b.idle.Broadcast()
	}
	b.pendingMu.Unlock()
}

// Quiesce blocks until every queued event (including events published by
// handlers while draining) has been handled.
func (b *Broker) Quiesce() {
	b.pendingMu.Lock()
	for b.pending > 0 {
		b.idle.Wait()
	}
	b.pendingMu.Unlock()
}

// Stats reports the total events published and handler deliveries completed.
func (b *Broker) Stats() (published, delivered uint64) {
	b.mu.Lock()
	p := b.published
	b.mu.Unlock()
	b.pendingMu.Lock()
	d := b.delivered
	b.pendingMu.Unlock()
	return p, d
}

// SubscriberCount reports the number of live subscriptions on a topic.
func (b *Broker) SubscriberCount(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.topics[topic])
}

// Close cancels all subscriptions and waits for their goroutines to exit.
// Pending events are delivered first.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	var all []*Subscription
	for _, subs := range b.topics {
		for _, s := range subs {
			all = append(all, s)
		}
	}
	b.topics = make(map[string]map[int]*Subscription)
	b.mu.Unlock()

	for _, s := range all {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	b.wg.Wait()
}
