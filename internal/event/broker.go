// Package event implements the active, event-based middleware platform that
// OASIS depends on (paper Sect. 1 and ref [2]): services protected by OASIS
// communicate asynchronously so that one service can be notified of a
// change of state at another without periodic polling. Event channels carry
// certificate invalidation (Fig. 1, Fig. 5) and heartbeats.
package event

import (
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies events on OASIS channels.
type Kind int

// Event kinds used by the OASIS engine.
const (
	// KindRevoked announces that a credential record has become invalid;
	// dependants must deactivate roles whose membership rules relied on
	// it (Sect. 4).
	KindRevoked Kind = iota + 1
	// KindHeartbeat is a liveness signal on a credential channel
	// (Fig. 5 "heartbeats or change events").
	KindHeartbeat
	// KindChanged announces that environmental state referenced by a
	// membership rule changed and must be re-checked.
	KindChanged
	// KindGap is a synthetic marker on an edge feed stream: events were
	// lost between the broker and this subscriber (queue overflow under
	// backpressure), so the subscriber can no longer assume it has seen
	// every revocation. It is never published on broker topics — the
	// Feed injects it directly into a subscriber's stream, and an
	// EdgeCache receiving it must flush before trusting any entry again.
	KindGap
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindRevoked:
		return "revoked"
	case KindHeartbeat:
		return "heartbeat"
	case KindChanged:
		return "changed"
	case KindGap:
		return "gap"
	default:
		return "unknown"
	}
}

// Event is a notification on a topic. Subject identifies the credential
// record or environmental fact concerned; Reason is free-text diagnostics.
// Origin is empty for locally published events and carries the source node
// name once a Relay has forwarded the event across processes.
//
// Corr and Depth thread revocation-cascade provenance through the event
// fabric for the observability layer: the root revocation of a cascade
// stamps a correlation id that every dependent revocation inherits, and
// Depth counts the hops from that root, so a trace consumer can
// reconstruct the whole collapse (and its end-to-end latency) from the
// per-hop trace events sharing one Corr.
type Event struct {
	Topic   string    `json:"topic"`
	Kind    Kind      `json:"kind"`
	Subject string    `json:"subject,omitempty"`
	Reason  string    `json:"reason,omitempty"`
	At      time.Time `json:"at,omitempty"`
	Origin  string    `json:"origin,omitempty"`
	Corr    string    `json:"corr,omitempty"`
	Depth   int       `json:"depth,omitempty"`
}

// Handler consumes events; it is invoked serially per subscription.
type Handler func(Event)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("event broker closed")

// topicShards is the shard count of the subscriber table. Topics hash to
// shards, so revocation fan-out on one credential channel does not block
// subscribes or publishes on unrelated channels.
const topicShards = 16

var topicSeed = maphash.MakeSeed()

// Broker is a topic-based publish/subscribe hub. Publishing never blocks on
// slow subscribers: each subscription owns a goroutine draining an
// unbounded FIFO queue. Quiesce waits for all queues to drain, giving tests
// and the experiment harness a deterministic "after the revocation event
// storm has settled" point.
//
// The subscriber table is sharded by topic hash and all counters are
// atomics; the only broker-wide synchronisation points are Close and the
// idle condition used by Quiesce.
type Broker struct {
	shards [topicShards]topicShard
	nextID atomic.Int64
	closed atomic.Bool
	wg     sync.WaitGroup

	pending   atomic.Int64
	delivered atomic.Uint64
	published atomic.Uint64
	idleMu    sync.Mutex
	idle      *sync.Cond

	tapMu sync.Mutex
	taps  atomic.Value // []*tapFn
}

type topicShard struct {
	mu     sync.Mutex
	topics map[string]map[int]*Subscription
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	b := &Broker{}
	for i := range b.shards {
		b.shards[i].topics = make(map[string]map[int]*Subscription)
	}
	b.idle = sync.NewCond(&b.idleMu)
	b.taps.Store([]*tapFn{})
	return b
}

func (b *Broker) shard(topic string) *topicShard {
	return &b.shards[maphash.String(topicSeed, topic)%topicShards]
}

// Subscription is a registration of a handler on one topic.
type Subscription struct {
	broker *Broker
	topic  string
	id     int

	mu     sync.Mutex
	queue  []Event
	wake   chan struct{}
	closed bool
}

// Subscribe registers handler on topic and returns the subscription. The
// handler runs on a dedicated goroutine, one event at a time, in publish
// order for this topic.
func (b *Broker) Subscribe(topic string, handler Handler) (*Subscription, error) {
	s := &Subscription{
		broker: b,
		topic:  topic,
		id:     int(b.nextID.Add(1)),
		wake:   make(chan struct{}, 1),
	}
	sh := b.shard(topic)
	sh.mu.Lock()
	// The closed check must happen under the shard lock: Close drains
	// every shard under its lock after setting the flag, so a subscribe
	// either lands before the drain (and is cancelled by it) or observes
	// the flag and is refused.
	if b.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	subs, ok := sh.topics[topic]
	if !ok {
		subs = make(map[int]*Subscription)
		sh.topics[topic] = subs
	}
	subs[s.id] = s
	b.wg.Add(1)
	sh.mu.Unlock()
	go s.run(handler)
	return s, nil
}

func (s *Subscription) run(handler Handler) {
	defer s.broker.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.wake
			continue
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		handler(ev)
		s.broker.taskDone()
	}
}

// Cancel removes the subscription; queued events already assigned to it
// are still delivered before its goroutine exits.
func (s *Subscription) Cancel() {
	sh := s.broker.shard(s.topic)
	sh.mu.Lock()
	if subs, ok := sh.topics[s.topic]; ok {
		delete(subs, s.id)
		if len(subs) == 0 {
			delete(sh.topics, s.topic)
		}
	}
	sh.mu.Unlock()

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Topic returns the topic this subscription listens on.
func (s *Subscription) Topic() string { return s.topic }

func (s *Subscription) enqueue(ev Event) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// Publish delivers ev to every current subscriber of ev.Topic. It returns
// the number of subscribers the event was queued for.
func (b *Broker) Publish(ev Event) (int, error) {
	if b.closed.Load() {
		return 0, ErrClosed
	}
	return b.publishOne(ev, b.taps.Load().([]*tapFn)), nil
}

// PublishBatch delivers evs in order, amortising the closed check and
// tap-list snapshot across the batch. Taps observe the events in slice
// order from the caller's goroutine, and per-topic subscription queues
// receive them in slice order — this is the sequencer's publish edge,
// where batch order is journal order. Returns the total number of
// subscriber enqueues.
func (b *Broker) PublishBatch(evs []Event) (int, error) {
	if len(evs) == 0 {
		return 0, nil
	}
	if b.closed.Load() {
		return 0, ErrClosed
	}
	taps := b.taps.Load().([]*tapFn)
	n := 0
	for _, ev := range evs {
		n += b.publishOne(ev, taps)
	}
	return n, nil
}

func (b *Broker) publishOne(ev Event, taps []*tapFn) int {
	sh := b.shard(ev.Topic)
	sh.mu.Lock()
	subs := sh.topics[ev.Topic]
	targets := make([]*Subscription, 0, len(subs))
	for _, s := range subs {
		targets = append(targets, s)
	}
	sh.mu.Unlock()
	b.published.Add(1)

	for _, tap := range taps {
		tap.f(ev)
	}
	n := 0
	for _, s := range targets {
		b.pending.Add(1)
		if s.enqueue(ev) {
			n++
		} else {
			b.taskDone()
		}
	}
	return n
}

func (b *Broker) taskDone() {
	b.delivered.Add(1)
	if b.pending.Add(-1) == 0 {
		b.idleMu.Lock()
		b.idle.Broadcast()
		b.idleMu.Unlock()
	}
}

// Quiesce blocks until every queued event (including events published by
// handlers while draining) has been handled.
func (b *Broker) Quiesce() {
	b.idleMu.Lock()
	for b.pending.Load() > 0 {
		b.idle.Wait()
	}
	b.idleMu.Unlock()
}

// Stats reports the total events published and handler deliveries completed.
func (b *Broker) Stats() (published, delivered uint64) {
	return b.published.Load(), b.delivered.Load()
}

// Pending reports the number of queued deliveries not yet handled — the
// broker's backlog gauge for the observability layer.
func (b *Broker) Pending() int64 {
	return b.pending.Load()
}

// SubscriberCount reports the number of live subscriptions on a topic.
func (b *Broker) SubscriberCount(topic string) int {
	sh := b.shard(topic)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.topics[topic])
}

// Close cancels all subscriptions and waits for their goroutines to exit.
// Pending events are delivered first.
func (b *Broker) Close() {
	if b.closed.Swap(true) {
		b.wg.Wait()
		return
	}
	var all []*Subscription
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for _, subs := range sh.topics {
			for _, s := range subs {
				all = append(all, s)
			}
		}
		sh.topics = make(map[string]map[int]*Subscription)
		sh.mu.Unlock()
	}
	for _, s := range all {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	b.wg.Wait()
}
