package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var got atomic.Int64
	if _, err := b.Subscribe("t1", func(ev Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(Event{Topic: "t1", Kind: KindRevoked, Subject: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Publish queued for %d subscribers, want 1", n)
	}
	b.Quiesce()
	if got.Load() != 1 {
		t.Errorf("handler ran %d times, want 1", got.Load())
	}
}

func TestPublishNoSubscribers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	n, err := b.Publish(Event{Topic: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("queued for %d, want 0", n)
	}
}

func TestTopicIsolation(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var aCount, bCount atomic.Int64
	if _, err := b.Subscribe("a", func(Event) { aCount.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("b", func(Event) { bCount.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(Event{Topic: "a"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if aCount.Load() != 1 || bCount.Load() != 0 {
		t.Errorf("a=%d b=%d, want 1,0", aCount.Load(), bCount.Load())
	}
}

func TestOrderingPerSubscription(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var mu sync.Mutex
	var seen []string
	if _, err := b.Subscribe("t", func(ev Event) {
		mu.Lock()
		seen = append(seen, ev.Subject)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"1", "2", "3", "4", "5"} {
		if _, err := b.Publish(Event{Topic: "t", Subject: s}); err != nil {
			t.Fatal(err)
		}
	}
	b.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	want := "12345"
	got := ""
	for _, s := range seen {
		got += s
	}
	if got != want {
		t.Errorf("delivery order %q, want %q", got, want)
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var got atomic.Int64
	sub, err := b.Subscribe("t", func(Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	sub.Cancel()
	n, err := b.Publish(Event{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("post-cancel publish queued for %d", n)
	}
	b.Quiesce()
	if got.Load() != 1 {
		t.Errorf("handler ran %d times, want 1", got.Load())
	}
	if b.SubscriberCount("t") != 0 {
		t.Error("subscriber count nonzero after cancel")
	}
}

func TestHandlerMayPublish(t *testing.T) {
	// A revocation handler publishing follow-on revocations (the cascade
	// of Fig. 5) must not deadlock, and Quiesce must wait for the whole
	// cascade.
	b := NewBroker()
	defer b.Close()
	var depth3 atomic.Int64
	if _, err := b.Subscribe("d1", func(Event) {
		b.Publish(Event{Topic: "d2"}) //nolint:errcheck
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("d2", func(Event) {
		b.Publish(Event{Topic: "d3"}) //nolint:errcheck
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("d3", func(Event) { depth3.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(Event{Topic: "d1"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if depth3.Load() != 1 {
		t.Errorf("cascade did not reach depth 3 before Quiesce returned: %d", depth3.Load())
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	b := NewBroker()
	b.Close()
	if _, err := b.Publish(Event{Topic: "t"}); err != ErrClosed {
		t.Errorf("Publish after Close: %v", err)
	}
	if _, err := b.Subscribe("t", func(Event) {}); err != ErrClosed {
		t.Errorf("Subscribe after Close: %v", err)
	}
	// Double close is safe.
	b.Close()
}

func TestCloseDeliversPending(t *testing.T) {
	b := NewBroker()
	var got atomic.Int64
	if _, err := b.Subscribe("t", func(Event) {
		time.Sleep(time.Millisecond)
		got.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := b.Publish(Event{Topic: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if got.Load() != 10 {
		t.Errorf("Close dropped events: handled %d of 10", got.Load())
	}
}

func TestStats(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if _, err := b.Subscribe("t", func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("t", func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	pub, del := b.Stats()
	if pub != 1 || del != 2 {
		t.Errorf("Stats = (%d,%d), want (1,2)", pub, del)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var got atomic.Int64
	if _, err := b.Subscribe("t", func(Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const publishers, perPublisher = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(Event{Topic: "t"}) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	b.Quiesce()
	if got.Load() != publishers*perPublisher {
		t.Errorf("handled %d, want %d", got.Load(), publishers*perPublisher)
	}
}

func TestSubscriptionTopic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub, err := b.Subscribe("my/topic", func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Topic() != "my/topic" {
		t.Errorf("Topic = %q", sub.Topic())
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindRevoked, "revoked"},
		{KindHeartbeat, "heartbeat"},
		{KindChanged, "changed"},
		{Kind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}
