package event

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Feed fans the local broker's revocation events out to edge subscribers
// (oasisgw instances running an event-invalidated verdict cache). Each
// subscriber gets its own PeerQueue between the broker tap and its wire
// send, so a slow or stalled edge can never stall Publish — the queue
// drops oldest under backpressure.
//
// A drop is a loss the edge cannot otherwise detect: the stream stays
// live, so without a signal the EdgeCache would keep serving a cached
// positive whose revocation was the dropped event. The feed therefore
// makes every loss in-band: when a subscriber's queue overflows (or a
// send fails while the stream may still be live), the next event
// delivered to that subscriber is preceded by a synthetic KindGap
// marker, which the EdgeCache treats as "flush everything before
// trusting any entry again". The drop-notify hook runs under the
// queue's mutex, before the worker can dequeue anything enqueued after
// the drop, so the marker always reaches the edge before any post-gap
// event — no stale positive can survive a drop. Overflow is guaranteed
// to be followed by deliveries (a queue only drops when full), so the
// marker is never stranded waiting for traffic.
//
// Only KindRevoked events are forwarded (plus the synthetic KindGap
// markers above, which originate in the feed itself). That includes the heartbeat
// monitor's synthetic revocations (issuer silence past the deadline
// publishes KindRevoked on the affected credential topics), so an edge
// subscriber inherits the same fail-safe liveness semantics as a local
// Service without seeing raw heartbeat traffic.
//
// The service/method names below are the wire identity of the stream
// endpoint; the daemon adapts Subscribe to rpc.StreamHandler (the event
// package stays transport-free).
const (
	// FeedService is the OW2 service name the event feed registers under.
	FeedService = "_events"
	// FeedMethod is the stream-open method name.
	FeedMethod = "subscribe_events"
)

// Feed is the server-side fan-out of revocation events to edge
// subscribers.
type Feed struct {
	broker   *Broker
	queueCap int

	gaps atomic.Uint64 // KindGap markers delivered to subscribers

	mu      sync.Mutex
	subs    map[*feedSub]struct{}
	closed  bool
	retired PeerQueueStats // accumulated counters of ended subscriptions
}

type feedSub struct {
	q      *PeerQueue
	cancel func()
	once   sync.Once
	gap    atomic.Bool // events lost since the last delivered marker
}

// NewFeed creates a feed on b. queueCap bounds each subscriber's backlog
// (<=0 selects the PeerQueue default).
func NewFeed(b *Broker, queueCap int) *Feed {
	return &Feed{broker: b, queueCap: queueCap, subs: make(map[*feedSub]struct{})}
}

// Subscribe attaches one edge subscriber: every KindRevoked event the
// local broker publishes from now on is encoded with MarshalEvent and
// handed to send, in order, decoupled through a bounded PeerQueue. The
// returned stop func (idempotent) detaches the tap and drains the queue.
// The signature matches the tail of rpc.StreamHandler so a daemon adapts
// it with a one-line closure.
func (f *Feed) Subscribe(send func([]byte) error) (stop func(), err error) {
	sub := &feedSub{}
	sub.q = NewPeerQueue(f.queueCap, func(ev Event) error {
		// A pending gap marker departs before the event, so the edge
		// flushes before it sees anything newer than the loss. If the
		// marker itself fails to go out, the flag is restored and the
		// next delivery retries it.
		if sub.gap.Swap(false) {
			gb, err := MarshalEvent(Event{Kind: KindGap, Reason: "edge feed overflow: events lost"})
			if err == nil {
				err = send(gb)
			}
			if err != nil {
				sub.gap.Store(true)
				return err
			}
			f.gaps.Add(1)
		}
		b, err := MarshalEvent(ev)
		if err == nil {
			err = send(b)
		}
		if err != nil {
			// The event is lost; should the stream survive (send errors
			// normally mean a dead connection, but that is the
			// transport's business), the edge must flush first.
			sub.gap.Store(true)
			return err
		}
		return nil
	})
	sub.q.OnDrop(func(int) { sub.gap.Store(true) })
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		sub.q.Close()
		return nil, ErrClosed
	}
	sub.cancel = f.broker.Tap(func(ev Event) {
		if ev.Kind != KindRevoked {
			return
		}
		sub.q.Enqueue(ev)
	})
	f.subs[sub] = struct{}{}
	f.mu.Unlock()
	return func() { f.end(sub) }, nil
}

// end tears one subscription down: tap first (no new enqueues), then the
// queue (drains what's buffered), then fold its counters into retired.
func (f *Feed) end(sub *feedSub) {
	sub.once.Do(func() {
		sub.cancel()
		sub.q.Close()
		st := sub.q.Stats()
		f.mu.Lock()
		f.retired.Enqueued += st.Enqueued
		f.retired.Sent += st.Sent
		f.retired.Failed += st.Failed
		f.retired.Dropped += st.Dropped
		delete(f.subs, sub)
		f.mu.Unlock()
	})
}

// Close ends every live subscription and refuses new ones.
func (f *Feed) Close() {
	f.mu.Lock()
	f.closed = true
	subs := make([]*feedSub, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	f.mu.Unlock()
	for _, s := range subs {
		f.end(s)
	}
}

// FeedStats is a point-in-time snapshot across live and ended
// subscriptions.
type FeedStats struct {
	Subscribers uint64 // currently attached edges
	Forwarded   uint64 // events delivered to subscriber sends
	Failed      uint64 // sends that returned an error
	Dropped     uint64 // events evicted by subscriber backpressure
	Gaps        uint64 // loss markers delivered after drops/failures
}

// Stats snapshots the feed's counters.
func (f *Feed) Stats() FeedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FeedStats{
		Subscribers: uint64(len(f.subs)),
		Forwarded:   f.retired.Sent,
		Failed:      f.retired.Failed,
		Dropped:     f.retired.Dropped,
		Gaps:        f.gaps.Load(),
	}
	for s := range f.subs {
		qs := s.q.Stats()
		st.Forwarded += qs.Sent
		st.Failed += qs.Failed
		st.Dropped += qs.Dropped
	}
	return st
}

// Instrument exposes the feed's gauges/counters
// (event_feed_subscribers, event_feed_forwarded_total,
// event_feed_dropped_total, event_feed_send_failures_total,
// event_feed_gaps_total) in reg.
func (f *Feed) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("event_feed_subscribers", func() uint64 { return f.Stats().Subscribers })
	reg.Func("event_feed_forwarded_total", func() uint64 { return f.Stats().Forwarded })
	reg.Func("event_feed_dropped_total", func() uint64 { return f.Stats().Dropped })
	reg.Func("event_feed_send_failures_total", func() uint64 { return f.Stats().Failed })
	reg.Func("event_feed_gaps_total", f.gaps.Load)
}
