package event

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collectFeed subscribes a recording sink to f.
func collectFeed(t *testing.T, f *Feed) (stop func(), got func() []Event) {
	t.Helper()
	var mu sync.Mutex
	var evs []Event
	stop, err := f.Subscribe(func(b []byte) error {
		ev, err := UnmarshalEvent(b)
		if err != nil {
			return err
		}
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return stop, func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func waitForFeed(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFeedForwardsOnlyRevocations(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 16)
	defer f.Close()
	stop, got := collectFeed(t, f)
	defer stop()

	pubs := []Event{
		{Topic: "cr/login#1", Kind: KindRevoked, Subject: "login#1"},
		{Topic: "hb/login", Kind: KindHeartbeat, Subject: "login"},
		{Topic: "appt/h#appt#1", Kind: KindRevoked, Subject: "h#appt#1"},
	}
	for _, ev := range pubs {
		if _, err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	b.Quiesce()
	waitForFeed(t, "2 revocations", func() bool { return len(got()) == 2 })
	for _, ev := range got() {
		if ev.Kind != KindRevoked {
			t.Errorf("forwarded non-revocation event %+v", ev)
		}
	}
	if st := f.Stats(); st.Subscribers != 1 || st.Forwarded != 2 {
		t.Errorf("stats = %+v, want 1 subscriber / 2 forwarded", st)
	}
}

func TestFeedStopDetaches(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 16)
	defer f.Close()
	stop, got := collectFeed(t, f)
	if _, err := b.Publish(Event{Topic: "cr/x#1", Kind: KindRevoked}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	waitForFeed(t, "first event", func() bool { return len(got()) == 1 })
	stop()
	stop() // idempotent
	if st := f.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers after stop = %d", st.Subscribers)
	}
	if _, err := b.Publish(Event{Topic: "cr/x#2", Kind: KindRevoked}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	time.Sleep(10 * time.Millisecond)
	if n := len(got()); n != 1 {
		t.Errorf("stopped subscriber saw %d events, want 1", n)
	}
	// Retired counters survive the subscription.
	if st := f.Stats(); st.Forwarded != 1 {
		t.Errorf("retired Forwarded = %d, want 1", st.Forwarded)
	}
}

func TestFeedSlowSubscriberDoesNotStallPublish(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 4)
	defer f.Close()
	release := make(chan struct{})
	var once sync.Once
	stop, err := f.Subscribe(func([]byte) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	defer once.Do(func() { close(release) })

	// Far more events than queue capacity: Publish must never block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(Event{Topic: "cr/x#1", Kind: KindRevoked}) //nolint:errcheck
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish stalled behind a slow feed subscriber")
	}
	b.Quiesce()
	once.Do(func() { close(release) })
	waitForFeed(t, "drops recorded", func() bool { return f.Stats().Dropped > 0 })
}

// TestFeedDropInjectsGapMarker pins the feed's loss protocol: when a
// subscriber's queue overflows, the dropped revocation must not vanish
// silently on a live stream — a KindGap marker must precede the next
// delivered event so the edge flushes before trusting anything newer
// than the loss.
func TestFeedDropInjectsGapMarker(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 1) // capacity 1: the third publish must drop the second
	defer f.Close()

	entered := make(chan struct{})
	gate := make(chan struct{})
	first := true // touched only by the queue's single worker
	var mu sync.Mutex
	var evs []Event
	stop, err := f.Subscribe(func(bs []byte) error {
		if first {
			first = false
			close(entered)
			<-gate // hold the worker mid-send while the queue overflows
		}
		ev, err := UnmarshalEvent(bs)
		if err != nil {
			return err
		}
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if _, err := b.Publish(Event{Topic: "cr/x#1", Kind: KindRevoked, Subject: "1"}); err != nil {
		t.Fatal(err)
	}
	<-entered // worker is now blocked sending #1; the queue buffer is empty
	for _, s := range []string{"2", "3"} {
		if _, err := b.Publish(Event{Topic: "cr/x#" + s, Kind: KindRevoked, Subject: s}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	b.Quiesce()

	got := func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
	waitForFeed(t, "post-drop delivery", func() bool { return len(got()) == 3 })
	seq := got()
	if seq[0].Subject != "1" || seq[1].Kind != KindGap || seq[2].Subject != "3" {
		t.Fatalf("delivery order = %+v, want [#1, gap, #3]", seq)
	}
	st := f.Stats()
	if st.Dropped != 1 || st.Gaps != 1 {
		t.Errorf("stats = %+v, want 1 dropped / 1 gap marker", st)
	}
}

func TestFeedCloseRefusesNewSubscribers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 4)
	stop, _ := collectFeed(t, f)
	_ = stop
	f.Close()
	if st := f.Stats(); st.Subscribers != 0 {
		t.Errorf("subscribers after Close = %d", st.Subscribers)
	}
	if _, err := f.Subscribe(func([]byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after Close = %v, want ErrClosed", err)
	}
}

func TestFeedCountsSendFailures(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	f := NewFeed(b, 16)
	defer f.Close()
	stop, err := f.Subscribe(func([]byte) error { return errors.New("edge gone") })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := b.Publish(Event{Topic: "cr/x#1", Kind: KindRevoked}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	waitForFeed(t, "failure counted", func() bool { return f.Stats().Failed == 1 })
}
