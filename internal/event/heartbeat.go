package event

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// HeartbeatMonitor watches credential channels for liveness (Fig. 5:
// "heartbeats or change events"). A service that caches the validity of a
// certificate issued elsewhere registers the certificate's subject here;
// if the issuer's heartbeats stop arriving within the timeout, the monitor
// publishes a synthetic revocation so that cached validity is discarded
// fail-safe rather than trusted indefinitely.
type HeartbeatMonitor struct {
	broker  *Broker
	clk     clock.Clock
	timeout time.Duration

	mu       sync.Mutex
	lastSeen map[string]time.Time // subject -> last heartbeat
	topics   map[string]string    // subject -> revocation topic
	subs     []*Subscription
	closed   bool
}

// NewHeartbeatMonitor creates a monitor that declares a subject dead when
// no heartbeat arrives for timeout.
func NewHeartbeatMonitor(broker *Broker, clk clock.Clock, timeout time.Duration) *HeartbeatMonitor {
	return &HeartbeatMonitor{
		broker:   broker,
		clk:      clk,
		timeout:  timeout,
		lastSeen: make(map[string]time.Time),
		topics:   make(map[string]string),
	}
}

// Watch starts monitoring heartbeats for subject on heartbeatTopic; on
// silence it publishes KindRevoked on revocationTopic.
func (m *HeartbeatMonitor) Watch(subject, heartbeatTopic, revocationTopic string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.lastSeen[subject] = m.clk.Now()
	m.topics[subject] = revocationTopic
	m.mu.Unlock()

	sub, err := m.broker.Subscribe(heartbeatTopic, func(ev Event) {
		if ev.Kind != KindHeartbeat || ev.Subject != subject {
			return
		}
		m.mu.Lock()
		if _, ok := m.lastSeen[subject]; ok {
			m.lastSeen[subject] = m.clk.Now()
		}
		m.mu.Unlock()
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.subs = append(m.subs, sub)
	m.mu.Unlock()
	return nil
}

// Unwatch stops monitoring a subject.
func (m *HeartbeatMonitor) Unwatch(subject string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.lastSeen, subject)
	delete(m.topics, subject)
}

// Sweep checks all watched subjects against the timeout and publishes
// revocations for silent ones. It returns the subjects declared dead.
// Callers drive Sweep from a ticker (production) or directly (tests and the
// deterministic experiment harness).
func (m *HeartbeatMonitor) Sweep() []string {
	now := m.clk.Now()
	var dead []string
	type revocation struct{ topic, subject string }
	var toPublish []revocation

	m.mu.Lock()
	for subject, last := range m.lastSeen {
		if now.Sub(last) > m.timeout {
			dead = append(dead, subject)
			toPublish = append(toPublish, revocation{m.topics[subject], subject})
			delete(m.lastSeen, subject)
			delete(m.topics, subject)
		}
	}
	m.mu.Unlock()

	for _, r := range toPublish {
		m.broker.Publish(Event{ //nolint:errcheck // best-effort on shutdown
			Topic:   r.topic,
			Kind:    KindRevoked,
			Subject: r.subject,
			Reason:  "heartbeat timeout",
			At:      now,
		})
	}
	return dead
}

// WatchedCount reports how many subjects are currently monitored.
func (m *HeartbeatMonitor) WatchedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lastSeen)
}

// Close cancels all broker subscriptions held by the monitor.
func (m *HeartbeatMonitor) Close() {
	m.mu.Lock()
	subs := m.subs
	m.subs = nil
	m.closed = true
	m.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}
