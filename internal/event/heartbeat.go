package event

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// HeartbeatMonitor watches credential channels for liveness (Fig. 5:
// "heartbeats or change events"). A service that caches the validity of a
// certificate issued elsewhere registers the certificate's subject here;
// if the issuer's heartbeats stop arriving within the timeout, the monitor
// publishes a synthetic revocation so that cached validity is discarded
// fail-safe rather than trusted indefinitely.
//
// Every watched subject owns exactly one broker subscription, keyed by
// subject: Unwatch, Sweep and Close cancel it, and re-watching a subject
// replaces (never stacks) the previous subscription. An earlier version
// kept subscriptions in an append-only slice and cancelled them only on
// Close, so every dead or unwatched issuer leaked a live callback for the
// monitor's whole lifetime — the regression tests in heartbeat_test.go
// pin the broker's subscriber count back to baseline.
type HeartbeatMonitor struct {
	broker  *Broker
	clk     clock.Clock
	timeout time.Duration

	mu       sync.Mutex
	lastSeen map[string]time.Time     // subject -> last heartbeat
	topics   map[string]string        // subject -> revocation topic
	subs     map[string]*Subscription // subject -> heartbeat subscription
	closed   bool

	tracer *obs.Tracer // set by Instrument before traffic; nil = no tracing
	sweeps atomic.Uint64
	dead   atomic.Uint64
}

// NewHeartbeatMonitor creates a monitor that declares a subject dead when
// no heartbeat arrives for timeout.
func NewHeartbeatMonitor(broker *Broker, clk clock.Clock, timeout time.Duration) *HeartbeatMonitor {
	return &HeartbeatMonitor{
		broker:   broker,
		clk:      clk,
		timeout:  timeout,
		lastSeen: make(map[string]time.Time),
		topics:   make(map[string]string),
		subs:     make(map[string]*Subscription),
	}
}

// Instrument attaches the monitor to the observability layer: watched
// count, sweep and death totals land in reg, and every sweep that
// declares subjects dead records a liveness trace event. Call it once,
// before the monitor sees traffic.
func (m *HeartbeatMonitor) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	m.mu.Lock()
	m.tracer = tracer
	m.mu.Unlock()
	if reg == nil {
		return
	}
	reg.Func("event_hb_watched", func() uint64 { return uint64(m.WatchedCount()) })
	reg.Func("event_hb_sweeps_total", m.sweeps.Load)
	reg.Func("event_hb_dead_total", m.dead.Load)
}

// Watch starts monitoring heartbeats for subject on heartbeatTopic; on
// silence it publishes KindRevoked on revocationTopic. Watching an
// already-watched subject refreshes its deadline and replaces its
// subscription.
func (m *HeartbeatMonitor) Watch(subject, heartbeatTopic, revocationTopic string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.lastSeen[subject] = m.clk.Now()
	m.topics[subject] = revocationTopic
	m.mu.Unlock()

	sub, err := m.broker.Subscribe(heartbeatTopic, func(ev Event) {
		if ev.Kind != KindHeartbeat || ev.Subject != subject {
			return
		}
		m.mu.Lock()
		if _, ok := m.lastSeen[subject]; ok {
			m.lastSeen[subject] = m.clk.Now()
		}
		m.mu.Unlock()
	})
	if err != nil {
		m.mu.Lock()
		delete(m.lastSeen, subject)
		delete(m.topics, subject)
		m.mu.Unlock()
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		sub.Cancel()
		return ErrClosed
	}
	prev := m.subs[subject]
	m.subs[subject] = sub
	m.mu.Unlock()
	if prev != nil {
		prev.Cancel()
	}
	return nil
}

// Unwatch stops monitoring a subject and cancels its subscription.
func (m *HeartbeatMonitor) Unwatch(subject string) {
	m.mu.Lock()
	delete(m.lastSeen, subject)
	delete(m.topics, subject)
	sub := m.subs[subject]
	delete(m.subs, subject)
	m.mu.Unlock()
	if sub != nil {
		sub.Cancel()
	}
}

// Sweep checks all watched subjects against the timeout and publishes
// revocations for silent ones, cancelling their heartbeat subscriptions.
// It returns the subjects declared dead. Callers drive Sweep from a
// ticker (production) or directly (tests and the deterministic experiment
// harness).
func (m *HeartbeatMonitor) Sweep() []string {
	now := m.clk.Now()
	var dead []string
	type revocation struct{ topic, subject string }
	var toPublish []revocation
	var toCancel []*Subscription

	m.mu.Lock()
	tracer := m.tracer
	for subject, last := range m.lastSeen {
		if now.Sub(last) > m.timeout {
			dead = append(dead, subject)
			toPublish = append(toPublish, revocation{m.topics[subject], subject})
			if sub := m.subs[subject]; sub != nil {
				toCancel = append(toCancel, sub)
			}
			delete(m.lastSeen, subject)
			delete(m.topics, subject)
			delete(m.subs, subject)
		}
	}
	m.mu.Unlock()

	for _, sub := range toCancel {
		sub.Cancel()
	}
	for _, r := range toPublish {
		m.broker.Publish(Event{ //nolint:errcheck // best-effort on shutdown
			Topic:   r.topic,
			Kind:    KindRevoked,
			Subject: r.subject,
			Reason:  "heartbeat timeout",
			At:      now,
		})
	}
	m.sweeps.Add(1)
	if len(dead) > 0 {
		m.dead.Add(uint64(len(dead)))
		tracer.Record(obs.TraceEvent{
			Kind:    "liveness",
			Outcome: "dead",
			Subject: strings.Join(capStrings(dead, 10), ","),
			Detail:  fmt.Sprintf("%d subject(s) missed the heartbeat deadline, synthetically revoked", len(dead)),
		})
	}
	return dead
}

// capStrings bounds a string list for trace detail fields.
func capStrings(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return append(append([]string(nil), s[:n]...), fmt.Sprintf("(+%d more)", len(s)-n))
}

// WatchedCount reports how many subjects are currently monitored.
func (m *HeartbeatMonitor) WatchedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lastSeen)
}

// Close cancels all broker subscriptions held by the monitor.
func (m *HeartbeatMonitor) Close() {
	m.mu.Lock()
	subs := m.subs
	m.subs = make(map[string]*Subscription)
	m.closed = true
	m.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}
