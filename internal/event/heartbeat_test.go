package event

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestHeartbeatKeepsSubjectAlive(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()

	if err := m.Watch("cr-1", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	var revoked atomic.Int64
	if _, err := b.Subscribe("revoke", func(ev Event) {
		if ev.Kind == KindRevoked {
			revoked.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		clk.Advance(5 * time.Second)
		if _, err := b.Publish(Event{Topic: "hb", Kind: KindHeartbeat, Subject: "cr-1"}); err != nil {
			t.Fatal(err)
		}
		b.Quiesce()
		if dead := m.Sweep(); len(dead) != 0 {
			t.Fatalf("healthy subject declared dead at round %d: %v", i, dead)
		}
	}
	b.Quiesce()
	if revoked.Load() != 0 {
		t.Errorf("revocations published for healthy subject: %d", revoked.Load())
	}
}

func TestHeartbeatTimeoutRevokes(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()

	var revokedSubject atomic.Value
	if _, err := b.Subscribe("revoke", func(ev Event) {
		if ev.Kind == KindRevoked {
			revokedSubject.Store(ev.Subject)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Watch("cr-2", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}

	clk.Advance(11 * time.Second)
	dead := m.Sweep()
	if len(dead) != 1 || dead[0] != "cr-2" {
		t.Fatalf("Sweep = %v, want [cr-2]", dead)
	}
	b.Quiesce()
	if got, _ := revokedSubject.Load().(string); got != "cr-2" {
		t.Errorf("revocation subject = %q", got)
	}
	if m.WatchedCount() != 0 {
		t.Error("dead subject still watched")
	}
	// Sweep is idempotent: subject already removed.
	if dead := m.Sweep(); len(dead) != 0 {
		t.Errorf("second Sweep = %v", dead)
	}
}

func TestHeartbeatIgnoresOtherSubjects(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()
	if err := m.Watch("cr-a", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	// Heartbeats for a different subject on the same topic must not
	// refresh cr-a.
	clk.Advance(8 * time.Second)
	if _, err := b.Publish(Event{Topic: "hb", Kind: KindHeartbeat, Subject: "cr-b"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	clk.Advance(8 * time.Second)
	if dead := m.Sweep(); len(dead) != 1 {
		t.Errorf("cr-a should be dead, Sweep = %v", dead)
	}
}

func TestHeartbeatNonHeartbeatKindIgnored(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()
	if err := m.Watch("cr-a", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if _, err := b.Publish(Event{Topic: "hb", Kind: KindChanged, Subject: "cr-a"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	clk.Advance(8 * time.Second)
	if dead := m.Sweep(); len(dead) != 1 {
		t.Errorf("KindChanged refreshed liveness, Sweep = %v", dead)
	}
}

func TestUnwatch(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, time.Second)
	defer m.Close()
	if err := m.Watch("cr-x", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	m.Unwatch("cr-x")
	clk.Advance(time.Hour)
	if dead := m.Sweep(); len(dead) != 0 {
		t.Errorf("unwatched subject declared dead: %v", dead)
	}
}

func TestWatchAfterCloseFails(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	m := NewHeartbeatMonitor(b, clock.NewSimulated(time.Unix(0, 0)), time.Second)
	m.Close()
	if err := m.Watch("s", "hb", "revoke"); err != ErrClosed {
		t.Errorf("Watch after Close: %v", err)
	}
}
