package event

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestHeartbeatKeepsSubjectAlive(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()

	if err := m.Watch("cr-1", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	var revoked atomic.Int64
	if _, err := b.Subscribe("revoke", func(ev Event) {
		if ev.Kind == KindRevoked {
			revoked.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		clk.Advance(5 * time.Second)
		if _, err := b.Publish(Event{Topic: "hb", Kind: KindHeartbeat, Subject: "cr-1"}); err != nil {
			t.Fatal(err)
		}
		b.Quiesce()
		if dead := m.Sweep(); len(dead) != 0 {
			t.Fatalf("healthy subject declared dead at round %d: %v", i, dead)
		}
	}
	b.Quiesce()
	if revoked.Load() != 0 {
		t.Errorf("revocations published for healthy subject: %d", revoked.Load())
	}
}

func TestHeartbeatTimeoutRevokes(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()

	var revokedSubject atomic.Value
	if _, err := b.Subscribe("revoke", func(ev Event) {
		if ev.Kind == KindRevoked {
			revokedSubject.Store(ev.Subject)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Watch("cr-2", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}

	clk.Advance(11 * time.Second)
	dead := m.Sweep()
	if len(dead) != 1 || dead[0] != "cr-2" {
		t.Fatalf("Sweep = %v, want [cr-2]", dead)
	}
	b.Quiesce()
	if got, _ := revokedSubject.Load().(string); got != "cr-2" {
		t.Errorf("revocation subject = %q", got)
	}
	if m.WatchedCount() != 0 {
		t.Error("dead subject still watched")
	}
	// Sweep is idempotent: subject already removed.
	if dead := m.Sweep(); len(dead) != 0 {
		t.Errorf("second Sweep = %v", dead)
	}
}

func TestHeartbeatIgnoresOtherSubjects(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()
	if err := m.Watch("cr-a", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	// Heartbeats for a different subject on the same topic must not
	// refresh cr-a.
	clk.Advance(8 * time.Second)
	if _, err := b.Publish(Event{Topic: "hb", Kind: KindHeartbeat, Subject: "cr-b"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	clk.Advance(8 * time.Second)
	if dead := m.Sweep(); len(dead) != 1 {
		t.Errorf("cr-a should be dead, Sweep = %v", dead)
	}
}

func TestHeartbeatNonHeartbeatKindIgnored(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()
	if err := m.Watch("cr-a", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if _, err := b.Publish(Event{Topic: "hb", Kind: KindChanged, Subject: "cr-a"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	clk.Advance(8 * time.Second)
	if dead := m.Sweep(); len(dead) != 1 {
		t.Errorf("KindChanged refreshed liveness, Sweep = %v", dead)
	}
}

func TestUnwatch(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, time.Second)
	defer m.Close()
	if err := m.Watch("cr-x", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	m.Unwatch("cr-x")
	clk.Advance(time.Hour)
	if dead := m.Sweep(); len(dead) != 0 {
		t.Errorf("unwatched subject declared dead: %v", dead)
	}
}

// TestWatchSubscriptionLifecycle is the regression test for the
// heartbeat-subscription leak: Watch used to append subscriptions to a
// flat slice that only Close ever cancelled, so Unwatch and Sweep left a
// live broker callback behind forever and re-watching a subject stacked
// duplicates. The broker's subscriber count must return to baseline.
func TestWatchSubscriptionLifecycle(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	clk := clock.NewSimulated(time.Unix(0, 0))
	m := NewHeartbeatMonitor(b, clk, 10*time.Second)
	defer m.Close()

	base := b.SubscriberCount("hb")

	// Re-watching a subject replaces its subscription, never stacks.
	for i := 0; i < 5; i++ {
		if err := m.Watch("cr-1", "hb", "revoke"); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.SubscriberCount("hb"); got != base+1 {
		t.Fatalf("after 5x Watch of one subject: %d subscriptions on hb, want %d", got, base+1)
	}

	// Unwatch cancels the subject's subscription.
	m.Unwatch("cr-1")
	if got := b.SubscriberCount("hb"); got != base {
		t.Fatalf("after Unwatch: %d subscriptions on hb, want baseline %d", got, base)
	}

	// Sweep cancels the subscriptions of subjects it declares dead.
	for i := 0; i < 3; i++ {
		if err := m.Watch(fmt.Sprintf("cr-%d", i), "hb", "revoke"); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.SubscriberCount("hb"); got != base+3 {
		t.Fatalf("3 watched subjects: %d subscriptions, want %d", got, base+3)
	}
	clk.Advance(time.Hour)
	if dead := m.Sweep(); len(dead) != 3 {
		t.Fatalf("Sweep = %v, want 3 dead", dead)
	}
	if got := b.SubscriberCount("hb"); got != base {
		t.Fatalf("after Sweep: %d subscriptions on hb, want baseline %d", got, base)
	}

	// A dead subject's heartbeats no longer invoke any callback: watch
	// again, let it die, then publish — WatchedCount must stay zero
	// (a leaked callback would refresh lastSeen for a forgotten subject).
	if err := m.Watch("cr-9", "hb", "revoke"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	m.Sweep()
	if _, err := b.Publish(Event{Topic: "hb", Kind: KindHeartbeat, Subject: "cr-9"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if got := m.WatchedCount(); got != 0 {
		t.Errorf("dead subject resurrected by stale callback: watched = %d", got)
	}
}

func TestWatchAfterCloseFails(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	m := NewHeartbeatMonitor(b, clock.NewSimulated(time.Unix(0, 0)), time.Second)
	m.Close()
	if err := m.Watch("s", "hb", "revoke"); err != ErrClosed {
		t.Errorf("Watch after Close: %v", err)
	}
}
