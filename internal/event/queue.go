package event

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// PeerQueue is a bounded, drop-oldest dispatch queue in front of a relay
// peer transport. oasisd's event relay used to spawn one goroutine per
// forwarded event (`go caller.Call(...)`): with a peer down and the
// resilient caller inside its retry/backoff, a heavy publisher
// accumulated unbounded goroutines and every failure vanished. A
// PeerQueue runs exactly one sender goroutine per peer, bounds the
// backlog to a fixed capacity (newest events win — a revocation that
// overwrites an older one is strictly fresher information), and counts
// enqueues, sends, failures and drops so the loss is visible in /metrics
// instead of silent.
type PeerQueue struct {
	send     func(Event) error
	capacity int
	onDrop   func(n int) // nil unless set by OnDrop before traffic

	mu     sync.Mutex
	buf    []Event
	closed bool
	wake   chan struct{}
	wg     sync.WaitGroup

	enqueued atomic.Uint64
	sent     atomic.Uint64
	failed   atomic.Uint64
	dropped  atomic.Uint64
}

// PeerQueueStats is a snapshot of a queue's counters.
type PeerQueueStats struct {
	Enqueued uint64 // events accepted by Enqueue
	Sent     uint64 // events delivered by send
	Failed   uint64 // events whose send returned an error
	Dropped  uint64 // events evicted by drop-oldest backpressure
	Depth    int    // events currently buffered
}

// NewPeerQueue starts a queue whose single worker delivers events through
// send in order. capacity bounds the backlog (<=0 selects 256).
func NewPeerQueue(capacity int, send func(Event) error) *PeerQueue {
	if capacity <= 0 {
		capacity = 256
	}
	q := &PeerQueue{
		send:     send,
		capacity: capacity,
		wake:     make(chan struct{}, 1),
	}
	q.wg.Add(1)
	go q.run()
	return q
}

// OnDrop installs a callback invoked with the number of events evicted
// by each drop-oldest overflow. It runs under the queue's mutex — before
// the worker can dequeue anything enqueued after the drop — so a
// consumer that turns drops into in-band loss markers (the edge feed's
// gap protocol) is guaranteed the marker precedes every post-drop
// event. The callback must be fast and must not call back into the
// queue. Set it right after NewPeerQueue, before any Enqueue.
func (q *PeerQueue) OnDrop(fn func(n int)) { q.onDrop = fn }

// Instrument registers the queue's counters and depth gauge under the
// peer's name (relay_* series) in reg.
func (q *PeerQueue) Instrument(reg *obs.Registry, peer string) {
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{peer=%q}", peer)
	reg.Func("relay_enqueued_total"+label, q.enqueued.Load)
	reg.Func("relay_sent_total"+label, q.sent.Load)
	reg.Func("relay_failed_total"+label, q.failed.Load)
	reg.Func("relay_dropped_total"+label, q.dropped.Load)
	reg.Func("relay_depth"+label, func() uint64 { return uint64(q.Stats().Depth) })
}

// Enqueue adds an event for delivery, evicting the oldest buffered events
// when the queue is full. It reports false (and discards the event) after
// Close.
func (q *PeerQueue) Enqueue(ev Event) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if drop := len(q.buf) + 1 - q.capacity; drop > 0 {
		q.buf = q.buf[drop:]
		q.dropped.Add(uint64(drop))
		if q.onDrop != nil {
			q.onDrop(drop)
		}
	}
	q.buf = append(q.buf, ev)
	q.mu.Unlock()
	q.enqueued.Add(1)
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

func (q *PeerQueue) run() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		if len(q.buf) == 0 {
			if q.closed {
				q.mu.Unlock()
				return
			}
			q.mu.Unlock()
			<-q.wake
			continue
		}
		ev := q.buf[0]
		q.buf = q.buf[1:]
		q.mu.Unlock()

		if err := q.send(ev); err != nil {
			q.failed.Add(1)
		} else {
			q.sent.Add(1)
		}
	}
}

// Stats returns a snapshot of the queue's counters.
func (q *PeerQueue) Stats() PeerQueueStats {
	q.mu.Lock()
	depth := len(q.buf)
	q.mu.Unlock()
	return PeerQueueStats{
		Enqueued: q.enqueued.Load(),
		Sent:     q.sent.Load(),
		Failed:   q.failed.Load(),
		Dropped:  q.dropped.Load(),
		Depth:    depth,
	}
}

// Close stops accepting events, lets the worker drain what is already
// buffered (each attempt still bounded by the transport's own deadline),
// and waits for it to exit.
func (q *PeerQueue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	q.wg.Wait()
}
