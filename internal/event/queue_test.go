package event

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestPeerQueueDeliversInOrder(t *testing.T) {
	var got []string
	done := make(chan struct{})
	q := NewPeerQueue(16, func(ev Event) error {
		got = append(got, ev.Subject) // worker goroutine only; read after Close
		if len(got) == 3 {
			close(done)
		}
		return nil
	})
	for i := 0; i < 3; i++ {
		if !q.Enqueue(Event{Subject: fmt.Sprintf("e%d", i)}) {
			t.Fatal("enqueue refused")
		}
	}
	<-done
	q.Close()
	if want := []string{"e0", "e1", "e2"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivered %v, want %v", got, want)
	}
	st := q.Stats()
	if st.Sent != 3 || st.Enqueued != 3 || st.Dropped != 0 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if q.Enqueue(Event{}) {
		t.Error("Enqueue accepted after Close")
	}
}

// TestPeerQueueBackpressureBoundsGoroutines is the regression test for
// the relay goroutine leak: oasisd used to `go caller.Call(...)` per
// event, so a partitioned peer under heavy publish load accumulated one
// goroutine per event inside retry/backoff. With a PeerQueue the worker
// count stays exactly one per peer no matter how many events arrive while
// the peer is down, the backlog stays bounded at the queue capacity, and
// every loss is counted instead of silent.
func TestPeerQueueBackpressureBoundsGoroutines(t *testing.T) {
	const capacity = 64
	const events = 10_000

	gate := make(chan struct{})
	var inFlight atomic.Int64
	q := NewPeerQueue(capacity, func(Event) error {
		inFlight.Add(1)
		<-gate // a partitioned peer: the send hangs
		return errors.New("peer unreachable")
	})

	before := runtime.NumGoroutine()
	for i := 0; i < events; i++ {
		q.Enqueue(Event{Subject: fmt.Sprintf("e%d", i)})
	}
	after := runtime.NumGoroutine()
	// One worker goroutine total — not one per event. Allow slack for
	// unrelated runtime goroutines.
	if after-before > 3 {
		t.Errorf("goroutines grew by %d while peer partitioned (leak)", after-before)
	}
	st := q.Stats()
	if st.Depth > capacity {
		t.Errorf("backlog depth %d exceeds capacity %d", st.Depth, capacity)
	}
	// Conservation: everything enqueued is buffered, in flight, or was
	// dropped by backpressure — and the drops are counted.
	if st.Enqueued != events {
		t.Errorf("enqueued = %d, want %d", st.Enqueued, events)
	}
	accounted := uint64(st.Depth) + st.Dropped + st.Sent + st.Failed + uint64(inFlight.Load())
	if accounted != events {
		t.Errorf("event accounting: depth %d + dropped %d + sent %d + failed %d + inflight %d = %d, want %d",
			st.Depth, st.Dropped, st.Sent, st.Failed, inFlight.Load(), accounted, events)
	}
	if st.Dropped == 0 {
		t.Error("no drops counted despite overload")
	}

	close(gate) // heal the partition; Close drains the rest
	q.Close()
	st = q.Stats()
	if st.Depth != 0 {
		t.Errorf("depth %d after Close, want 0", st.Depth)
	}
	if st.Failed == 0 {
		t.Error("send failures not counted")
	}
}

func TestPeerQueueDropsOldestFirst(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	q := NewPeerQueue(2, func(ev Event) error {
		started <- ev.Subject
		<-gate
		return nil
	})
	// Let the worker pick up e0, then overflow the 2-slot buffer.
	q.Enqueue(Event{Subject: "e0"})
	if got := <-started; got != "e0" {
		t.Fatalf("first delivered = %q, want e0", got)
	}
	for i := 1; i <= 5; i++ {
		q.Enqueue(Event{Subject: fmt.Sprintf("e%d", i)})
	}
	st := q.Stats()
	if st.Dropped != 3 || st.Depth != 2 {
		t.Errorf("dropped %d depth %d, want 3 dropped, 2 buffered", st.Dropped, st.Depth)
	}
	close(gate)
	q.Close()
	// The two newest (e4, e5) survive the eviction alongside e0.
	if st := q.Stats(); st.Sent != 3 {
		t.Errorf("sent = %d, want 3", st.Sent)
	}
	close(started)
	var order []string
	for s := range started {
		order = append(order, s)
	}
	// e0 was consumed above; the survivors of the eviction follow in order.
	if want := "[e4 e5]"; fmt.Sprint(order) != want {
		t.Errorf("delivery order after e0 = %v, want %s", order, want)
	}
}

func TestPeerQueueInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	q := NewPeerQueue(4, func(Event) error { return nil })
	q.Instrument(reg, "nodeB")
	q.Enqueue(Event{Subject: "x"})
	q.Close()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`relay_enqueued_total{peer="nodeB"} 1`,
		`relay_sent_total{peer="nodeB"} 1`,
		`relay_dropped_total{peer="nodeB"} 0`,
		`relay_depth{peer="nodeB"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
