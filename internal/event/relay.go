package event

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// tapFn wraps a tap callback in a pointer so a registration has an
// identity: cancellation removes exactly the tap it was returned for,
// even when the same func value was registered twice.
type tapFn struct{ f func(Event) }

// Tap registers a function invoked synchronously for every event accepted
// by Publish (before Quiesce accounting completes). Taps are the hook for
// cross-node relays, edge feeds and diagnostics; they must be fast and
// must not publish to the same broker synchronously.
//
// The returned cancel func removes the registration (idempotent). Earlier
// versions had no cancel, so every reconnecting subscriber leaked a dead
// tap that still ran on every publish for the broker's lifetime.
func (b *Broker) Tap(f func(Event)) (cancel func()) {
	t := &tapFn{f: f}
	b.tapMu.Lock()
	old := b.taps.Load().([]*tapFn)
	next := make([]*tapFn, len(old), len(old)+1)
	copy(next, old)
	b.taps.Store(append(next, t))
	b.tapMu.Unlock()
	return func() {
		b.tapMu.Lock()
		defer b.tapMu.Unlock()
		cur := b.taps.Load().([]*tapFn)
		next := make([]*tapFn, 0, len(cur))
		for _, x := range cur {
			if x != t {
				next = append(next, x)
			}
		}
		b.taps.Store(next)
	}
}

// Relay bridges brokers across nodes so that revocation events reach
// services in other processes (extending Fig. 5's event channels across a
// deployment). Topology is a full mesh of single hops: each relay forwards
// events that originated on its own node to every peer, and injects events
// received from peers into the local broker exactly once. The Origin tag
// prevents echo and loops.
type Relay struct {
	broker    *Broker
	node      string
	cancelTap func()
	closeOnce sync.Once

	sendFailures atomic.Uint64

	mu    sync.RWMutex
	reg   *obs.Registry
	peers map[string]*relayPeer
}

// relayPeer is one registered transport plus its failure counter (nil
// until Instrument; obs handles are nil-safe).
type relayPeer struct {
	send  func(Event) error
	fails *obs.Counter
}

// NewRelay attaches a relay to a broker under a unique node name.
func NewRelay(b *Broker, node string) *Relay {
	r := &Relay{broker: b, node: node, peers: make(map[string]*relayPeer)}
	r.cancelTap = b.Tap(r.forward)
	return r
}

// Node returns the relay's node name.
func (r *Relay) Node() string { return r.node }

// Instrument registers per-peer send-failure counters
// (event_relay_send_failures_total{peer=...}) with reg, covering peers
// already added and peers added later.
func (r *Relay) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
	for node, p := range r.peers {
		p.fails = peerFailCounter(reg, node)
	}
}

func peerFailCounter(reg *obs.Registry, node string) *obs.Counter {
	return reg.Counter(fmt.Sprintf("event_relay_send_failures_total{peer=%q}", node))
}

// AddPeer registers a transport to another node's relay. send delivers a
// wire event to the peer's Receive.
func (r *Relay) AddPeer(node string, send func(Event) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &relayPeer{send: send}
	if r.reg != nil {
		p.fails = peerFailCounter(r.reg, node)
	}
	r.peers[node] = p
}

// RemovePeer drops a peer.
func (r *Relay) RemovePeer(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.peers, node)
}

// SendFailures reports how many peer sends have failed since the relay
// was created (across all peers).
func (r *Relay) SendFailures() uint64 { return r.sendFailures.Load() }

// Close detaches the relay from its broker's tap list. A relay used to
// stay tapped forever; a daemon cycling relays leaked them all.
func (r *Relay) Close() {
	r.closeOnce.Do(r.cancelTap)
}

// forward ships locally originated events to every peer. Events that
// arrived from another node carry that node's Origin and are not
// re-forwarded (single-hop mesh). Send failures are counted — delivery
// stays best-effort (peers re-validate by callback), but a partitioned
// peer used to lose revocation events with zero signal.
func (r *Relay) forward(ev Event) {
	if ev.Origin != "" {
		return
	}
	ev.Origin = r.node
	type peerSend struct {
		send  func(Event) error
		fails *obs.Counter
	}
	r.mu.RLock()
	sends := make([]peerSend, 0, len(r.peers))
	for _, p := range r.peers {
		sends = append(sends, peerSend{p.send, p.fails})
	}
	r.mu.RUnlock()
	for _, s := range sends {
		if err := s.send(ev); err != nil {
			r.sendFailures.Add(1)
			s.fails.Inc()
		}
	}
}

// Receive injects an event that arrived from a peer into the local broker.
// Events claiming to originate here (echo) or carrying no origin are
// dropped.
func (r *Relay) Receive(ev Event) error {
	if ev.Origin == "" || ev.Origin == r.node {
		return nil
	}
	_, err := r.broker.Publish(ev)
	return err
}

// MarshalEvent encodes an event for a relay transport.
func MarshalEvent(ev Event) ([]byte, error) { return json.Marshal(wireEvent(ev)) }

// UnmarshalEvent decodes a relayed event.
func UnmarshalEvent(b []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return Event{}, fmt.Errorf("decode event: %w", err)
	}
	return Event(w), nil
}

// wireEvent mirrors Event with JSON tags for the relay wire format.
type wireEvent Event
