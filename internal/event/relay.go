package event

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Tap registers a function invoked synchronously for every event accepted
// by Publish (before Quiesce accounting completes). Taps are the hook for
// cross-node relays and diagnostics; they must be fast and must not
// publish to the same broker synchronously.
func (b *Broker) Tap(f func(Event)) {
	b.tapMu.Lock()
	defer b.tapMu.Unlock()
	old := b.taps.Load().([]func(Event))
	next := make([]func(Event), len(old), len(old)+1)
	copy(next, old)
	b.taps.Store(append(next, f))
}

// Relay bridges brokers across nodes so that revocation events reach
// services in other processes (extending Fig. 5's event channels across a
// deployment). Topology is a full mesh of single hops: each relay forwards
// events that originated on its own node to every peer, and injects events
// received from peers into the local broker exactly once. The Origin tag
// prevents echo and loops.
type Relay struct {
	broker *Broker
	node   string

	mu    sync.RWMutex
	peers map[string]func(Event) error
}

// NewRelay attaches a relay to a broker under a unique node name.
func NewRelay(b *Broker, node string) *Relay {
	r := &Relay{broker: b, node: node, peers: make(map[string]func(Event) error)}
	b.Tap(r.forward)
	return r
}

// Node returns the relay's node name.
func (r *Relay) Node() string { return r.node }

// AddPeer registers a transport to another node's relay. send delivers a
// wire event to the peer's Receive.
func (r *Relay) AddPeer(node string, send func(Event) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers[node] = send
}

// RemovePeer drops a peer.
func (r *Relay) RemovePeer(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.peers, node)
}

// forward ships locally originated events to every peer. Events that
// arrived from another node carry that node's Origin and are not
// re-forwarded (single-hop mesh).
func (r *Relay) forward(ev Event) {
	if ev.Origin != "" {
		return
	}
	ev.Origin = r.node
	r.mu.RLock()
	sends := make([]func(Event) error, 0, len(r.peers))
	for _, s := range r.peers {
		sends = append(sends, s)
	}
	r.mu.RUnlock()
	for _, send := range sends {
		send(ev) //nolint:errcheck // relay delivery is best-effort; peers re-validate by callback
	}
}

// Receive injects an event that arrived from a peer into the local broker.
// Events claiming to originate here (echo) or carrying no origin are
// dropped.
func (r *Relay) Receive(ev Event) error {
	if ev.Origin == "" || ev.Origin == r.node {
		return nil
	}
	_, err := r.broker.Publish(ev)
	return err
}

// MarshalEvent encodes an event for a relay transport.
func MarshalEvent(ev Event) ([]byte, error) { return json.Marshal(wireEvent(ev)) }

// UnmarshalEvent decodes a relayed event.
func UnmarshalEvent(b []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return Event{}, fmt.Errorf("decode event: %w", err)
	}
	return Event(w), nil
}

// wireEvent mirrors Event with JSON tags for the relay wire format.
type wireEvent Event
