package event

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// linkRelays wires two relays directly (in-process transport).
func linkRelays(a, b *Relay) {
	a.AddPeer(b.Node(), func(ev Event) error { return b.Receive(ev) })
	b.AddPeer(a.Node(), func(ev Event) error { return a.Receive(ev) })
}

func TestRelayForwardsAcrossBrokers(t *testing.T) {
	b1 := NewBroker()
	defer b1.Close()
	b2 := NewBroker()
	defer b2.Close()
	r1 := NewRelay(b1, "node1")
	r2 := NewRelay(b2, "node2")
	linkRelays(r1, r2)

	var got atomic.Int64
	if _, err := b2.Subscribe("cr/login#1", func(ev Event) {
		if ev.Kind == KindRevoked && ev.Origin == "node1" {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Publish(Event{Topic: "cr/login#1", Kind: KindRevoked, Subject: "login#1"}); err != nil {
		t.Fatal(err)
	}
	b1.Quiesce()
	b2.Quiesce()
	if got.Load() != 1 {
		t.Errorf("remote subscriber saw %d events, want 1", got.Load())
	}
}

func TestRelayNoEcho(t *testing.T) {
	b1 := NewBroker()
	defer b1.Close()
	b2 := NewBroker()
	defer b2.Close()
	r1 := NewRelay(b1, "node1")
	r2 := NewRelay(b2, "node2")
	linkRelays(r1, r2)

	var local atomic.Int64
	if _, err := b1.Subscribe("t", func(Event) { local.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b1.Quiesce()
	b2.Quiesce()
	b1.Quiesce()
	// The event crossed to node2 and must NOT come back: exactly one
	// local delivery.
	if local.Load() != 1 {
		t.Errorf("local subscriber saw %d events (echo loop?)", local.Load())
	}
}

func TestRelayReceiveDropsEchoAndGarbage(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	r := NewRelay(b, "me")
	var got atomic.Int64
	if _, err := b.Subscribe("t", func(Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	// Own origin: dropped.
	if err := r.Receive(Event{Topic: "t", Origin: "me"}); err != nil {
		t.Fatal(err)
	}
	// No origin: dropped.
	if err := r.Receive(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	// Genuine remote event: delivered.
	if err := r.Receive(Event{Topic: "t", Origin: "them"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if got.Load() != 1 {
		t.Errorf("delivered %d, want 1", got.Load())
	}
}

func TestRelayRemovePeer(t *testing.T) {
	b1 := NewBroker()
	defer b1.Close()
	b2 := NewBroker()
	defer b2.Close()
	r1 := NewRelay(b1, "n1")
	r2 := NewRelay(b2, "n2")
	linkRelays(r1, r2)
	r1.RemovePeer("n2")
	var got atomic.Int64
	if _, err := b2.Subscribe("t", func(Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b1.Quiesce()
	b2.Quiesce()
	if got.Load() != 0 {
		t.Errorf("removed peer still received %d events", got.Load())
	}
}

func TestRelayThreeNodeMesh(t *testing.T) {
	brokers := make([]*Broker, 3)
	relays := make([]*Relay, 3)
	for i := range brokers {
		brokers[i] = NewBroker()
		defer brokers[i].Close()
		relays[i] = NewRelay(brokers[i], []string{"a", "b", "c"}[i])
	}
	for i := range relays {
		for j := range relays {
			if i != j {
				peer := relays[j]
				relays[i].AddPeer(peer.Node(), func(ev Event) error { return peer.Receive(ev) })
			}
		}
	}
	counts := make([]atomic.Int64, 3)
	for i := range brokers {
		idx := i
		if _, err := brokers[i].Subscribe("t", func(Event) { counts[idx].Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := brokers[0].Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	for _, b := range brokers {
		b.Quiesce()
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Errorf("node %d saw %d events, want exactly 1", i, counts[i].Load())
		}
	}
}

func TestEventWireRoundTrip(t *testing.T) {
	ev := Event{
		Topic: "cr/x#1", Kind: KindRevoked, Subject: "x#1",
		Reason: "logout", At: time.Unix(100, 0).UTC(), Origin: "node9",
	}
	b, err := MarshalEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Errorf("round trip: %+v vs %+v", back, ev)
	}
	if _, err := UnmarshalEvent([]byte("{bad")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestTapCancelRemovesRegistration(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var n1, n2 atomic.Int64
	cancel1 := b.Tap(func(Event) { n1.Add(1) })
	cancel2 := b.Tap(func(Event) { n2.Add(1) })
	if _, err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	cancel1()
	cancel1() // idempotent
	if _, err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if n1.Load() != 1 {
		t.Errorf("cancelled tap ran %d times, want 1", n1.Load())
	}
	if n2.Load() != 2 {
		t.Errorf("surviving tap ran %d times, want 2", n2.Load())
	}
	cancel2()
}

func TestRelayCloseDetachesTap(t *testing.T) {
	b1 := NewBroker()
	defer b1.Close()
	b2 := NewBroker()
	defer b2.Close()
	r1 := NewRelay(b1, "n1")
	r2 := NewRelay(b2, "n2")
	linkRelays(r1, r2)
	var got atomic.Int64
	if _, err := b2.Subscribe("t", func(Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	r1.Close() // idempotent
	if _, err := b1.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b1.Quiesce()
	b2.Quiesce()
	if got.Load() != 0 {
		t.Errorf("closed relay still forwarded %d events", got.Load())
	}
}

func TestRelayCountsSendFailures(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	r := NewRelay(b, "n1")
	defer r.Close()
	reg := obs.NewRegistry()
	r.Instrument(reg)
	r.AddPeer("dead", func(Event) error { return errors.New("partitioned") })
	r.AddPeer("alive", func(Event) error { return nil })
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Event{Topic: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Quiesce()
	if got := r.SendFailures(); got != 3 {
		t.Errorf("SendFailures = %d, want 3", got)
	}
	if got := reg.Value(`event_relay_send_failures_total{peer="dead"}`); got != 3 {
		t.Errorf("dead peer counter = %d, want 3", got)
	}
	if got := reg.Value(`event_relay_send_failures_total{peer="alive"}`); got != 0 {
		t.Errorf("alive peer counter = %d, want 0", got)
	}
}

func TestRelayInstrumentCoversExistingPeers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	r := NewRelay(b, "n1")
	defer r.Close()
	r.AddPeer("dead", func(Event) error { return errors.New("partitioned") })
	reg := obs.NewRegistry()
	r.Instrument(reg) // after AddPeer: counter must be retrofitted
	if _, err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if got := reg.Value(`event_relay_send_failures_total{peer="dead"}`); got != 1 {
		t.Errorf("retrofitted counter = %d, want 1", got)
	}
}
