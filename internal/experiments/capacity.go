package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E16 — million-principal capacity: compact resident state under churn.
//
// The paper sizes OASIS for wide distribution — services whose credential
// population is the user base of a public infrastructure, not a department.
// E16 measures what one resident principal costs: the harness
// (workload.Churn) drives a large synthetic population through a login
// storm and role-activation burst, then a skewed validation workload with
// revoke/re-login churn and appointment-expiry waves, and finally collapses
// a deep dependency tree with a single revocation. Every phase runs twice
// in the same process: once against the compact resident layout (value
// records, interned terms, bounded second-chance ECR cache) and once
// against the pre-capacity baseline (pointer-per-record store, no
// interning, unbounded cache), so the headline bytes-per-principal
// improvement is measured inside one harness, not across commits.
// ---------------------------------------------------------------------------

// CapacityResidentRow is the resident-state footprint of one variant after
// the population settles.
type CapacityResidentRow struct {
	Variant           string  `json:"variant"` // "baseline" or "compact"
	Principals        int     `json:"principals"`
	ResidentBytes     int64   `json:"resident_bytes"`
	BytesPerPrincipal float64 `json:"bytes_per_principal"`
	ResidentCRs       int64   `json:"resident_crs"`
	CachedValidations int64   `json:"cached_validations"`
	InternEntries     int64   `json:"intern_entries"`
	InternBytes       int64   `json:"intern_bytes"`
	PopulateMs        float64 `json:"populate_ms"`
}

// CapacityChurnRow is one variant's validation profile under churn.
type CapacityChurnRow struct {
	Variant     string  `json:"variant"`
	Ops         int     `json:"ops"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Authorized  int     `json:"authorized"`
	Denied      int     `json:"denied"`
	Revocations int     `json:"revocations"`
	ApptExpired int     `json:"appt_expired"`
}

// CapacityCascadeRow is one variant's cascade-collapse measurement.
type CapacityCascadeRow struct {
	Variant    string  `json:"variant"`
	Certs      int     `json:"certs"`
	CollapseMs float64 `json:"collapse_ms"`
	Collapsed  bool    `json:"collapsed"`
}

// CapacityResult bundles E16: per-variant resident footprint, churn
// latency and cascade collapse, plus the headline improvement.
type CapacityResult struct {
	Principals int `json:"principals"`
	// ImprovementPct is the bytes-per-principal reduction of the compact
	// layout against the baseline, in percent.
	ImprovementPct float64               `json:"bytes_per_principal_improvement_pct"`
	Resident       []CapacityResidentRow `json:"resident"`
	Churn          []CapacityChurnRow    `json:"churn"`
	Cascade        []CapacityCascadeRow  `json:"cascade"`
	Violations     []string              `json:"violations,omitempty"`
}

// RunCapacity runs the E16 harness at the given population, churn-op count
// and cascade size, compact and baseline back to back.
func RunCapacity(principals, ops, cascade int) (CapacityResult, error) {
	// The compact variant bounds the ECR cache to a tenth of the
	// population (the hot working set the churn phase actually touches),
	// floored so small smoke runs still exercise eviction.
	cacheMax := principals / 10
	if cacheMax < 1024 {
		cacheMax = 1024
	}
	res := CapacityResult{Principals: principals}
	// Baseline first: it leaves no intern-table residue for the compact
	// run to inherit (interning is off while it runs).
	for _, variant := range []string{"baseline", "compact"} {
		cfg := workload.ChurnConfig{
			Seed:            1,
			Principals:      principals,
			Ops:             ops,
			HotFrac:         0.1,
			RevokeEvery:     50,
			ApptWaves:       3,
			ApptsPerWave:    64,
			CascadeCerts:    cascade,
			CacheMaxEntries: cacheMax,
			Baseline:        variant == "baseline",
		}
		r, err := workload.Churn(cfg)
		if err != nil {
			return CapacityResult{}, fmt.Errorf("capacity %s: %w", variant, err)
		}
		for _, v := range r.Violations {
			res.Violations = append(res.Violations, variant+": "+v)
		}
		res.Resident = append(res.Resident, CapacityResidentRow{
			Variant:           variant,
			Principals:        r.Principals,
			ResidentBytes:     r.ResidentBytes,
			BytesPerPrincipal: r.BytesPerPrincipal,
			ResidentCRs:       r.ResidentCRs,
			CachedValidations: r.CachedValidations,
			InternEntries:     r.InternEntries,
			InternBytes:       r.InternBytes,
			PopulateMs:        float64(r.PopulateElapsed.Nanoseconds()) / 1e6,
		})
		res.Churn = append(res.Churn, CapacityChurnRow{
			Variant:     variant,
			Ops:         r.Ops,
			P50Ns:       r.P50Ns,
			P99Ns:       r.P99Ns,
			AllocsPerOp: r.AllocsPerOp,
			Authorized:  r.Authorized,
			Denied:      r.Denied,
			Revocations: r.Revocations,
			ApptExpired: r.ApptExpired,
		})
		res.Cascade = append(res.Cascade, CapacityCascadeRow{
			Variant:    variant,
			Certs:      r.CascadeCerts,
			CollapseMs: float64(r.CascadeCollapseNs) / 1e6,
			Collapsed:  r.CascadeOK,
		})
	}
	base, compact := res.Resident[0], res.Resident[1]
	if base.BytesPerPrincipal > 0 {
		res.ImprovementPct = (base.BytesPerPrincipal - compact.BytesPerPrincipal) /
			base.BytesPerPrincipal * 100
	}
	return res, nil
}
