package experiments

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// ---------------------------------------------------------------------------
// E18 — event-fed edge verdict cache: what the EdgeCache buys an edge
// tier over PR 7's always-callback behavior, and proof that its verdicts
// die by revocation event, not by TTL.
//
// Three sections:
//
//   latency        the same sequential verdict three ways — a local
//                  in-process validator (loopback, the lower bound), an
//                  uncached edge over TCP (PR 7), and a cached edge hit.
//                  Acceptance: cached p50 within 2x of local in-process.
//   kill-the-cert  revoke at the issuer with NO validate traffic flowing
//                  and time how long until the edge cache kills the
//                  verdict — event-bound invalidation, with the next
//                  validation the issuer's authoritative refusal.
//   severed        cut the feed listener mid-traffic: the cache must
//                  detach and flush, a revocation missed during the
//                  outage must never surface as a stale positive, and
//                  caching must resume by itself once the feed port
//                  comes back.
// ---------------------------------------------------------------------------

// EdgecacheLatencyRow is one sequential verdict-latency measurement.
type EdgecacheLatencyRow struct {
	Mode     string  `json:"mode"` // "local_inproc", "edge_uncached", "edge_cached"
	Ops      int     `json:"ops"`
	MedianNs float64 `json:"median_ns"`
	P99Ns    float64 `json:"p99_ns"`
}

// EdgecacheKillRow is the kill-the-cert measurement.
type EdgecacheKillRow struct {
	// InvalidateNs is revoke-to-invalidation as seen at the edge, with no
	// validate traffic in flight — the event propagation bound.
	InvalidateNs float64 `json:"invalidate_ns"`
	// RefusedAfter reports the post-kill validation was an authoritative
	// refusal (and not served from cache).
	RefusedAfter bool `json:"refused_after"`
	// IssuerCallsDuringKill counts validator traffic between the revoke
	// and the observed invalidation; 0 proves the verdict died by event.
	IssuerCallsDuringKill uint64 `json:"issuer_calls_during_kill"`
}

// EdgecacheSeveredRow is the subscription-loss measurement.
type EdgecacheSeveredRow struct {
	// DetachNs is sever-to-detach as seen at the edge.
	DetachNs float64 `json:"detach_ns"`
	// BypassedDuringOutage counts validations that went straight to the
	// issuer while the feed was down.
	BypassedDuringOutage uint64 `json:"bypassed_during_outage"`
	// StalePositive reports whether a verdict revoked during the outage
	// was ever served as valid. Must be false.
	StalePositive bool `json:"stale_positive"`
	// ResumedHits counts cache hits after the feed reconnected.
	ResumedHits uint64 `json:"resumed_hits"`
}

// EdgecacheResult bundles the E18 sections (the BENCH_edgecache.json
// shape).
type EdgecacheResult struct {
	Latency []EdgecacheLatencyRow `json:"latency"`
	// CachedOverLocal is cached-edge p50 over local in-process p50; the
	// acceptance ceiling is 2.0 (a hit is a fingerprint compare, so in
	// practice this lands well under 1).
	CachedOverLocal float64             `json:"cached_over_local"`
	Kill            EdgecacheKillRow    `json:"kill_the_cert"`
	Severed         EdgecacheSeveredRow `json:"severed"`
	// Violations lists broken invariants; the run fails if any appear.
	Violations []string `json:"violations,omitempty"`
}

// edgecacheWorld is one issuer with its validate server and its feed
// server on separate listeners (so the feed can be severed alone), plus
// a cached edge subscribed through a real EdgeFeed.
type edgecacheWorld struct {
	svc      *core.Service
	broker   *event.Broker
	feed     *event.Feed
	feedAddr string
	feedSrv  *rpc.TCPServer

	cli       *rpc.TCPClient
	validator *core.RemoteValidator
	cache     *core.EdgeCache
	edgeFeed  *gateway.EdgeFeed
	shutdown  func()
}

func startEdgecacheWorld() (*edgecacheWorld, error) {
	broker := event.NewBroker()
	svc, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(`login.user <- env ok.`),
		Broker: broker,
	})
	if err != nil {
		broker.Close()
		return nil, err
	}
	AlwaysTrue(svc, "ok")

	addr, stopSrv, err := startWireServer(map[string]rpc.Handler{"login": svc.Handler()})
	if err != nil {
		svc.Close()
		broker.Close()
		return nil, err
	}

	w := &edgecacheWorld{svc: svc, broker: broker}
	w.feed = event.NewFeed(broker, 256)
	if err := w.startFeedServer("127.0.0.1:0"); err != nil {
		stopSrv()
		svc.Close()
		broker.Close()
		return nil, err
	}

	w.cli, err = rpc.DialTCP(addr, 5*time.Second)
	if err != nil {
		w.feedSrv.Close()
		stopSrv()
		svc.Close()
		broker.Close()
		return nil, err
	}
	w.validator = core.NewRemoteValidator("edge", w.cli, -1, nil)
	w.cache = core.NewEdgeCache(w.validator, 65536)
	w.edgeFeed = gateway.NewEdgeFeed(w.cache, []string{w.feedAddr}, 5*time.Second, nil)
	w.edgeFeed.Run()
	w.shutdown = func() {
		w.edgeFeed.Close()
		w.cli.Close() //nolint:errcheck
		w.feedSrv.Close()
		w.feed.Close()
		stopSrv()
		svc.Close()
		broker.Close()
	}
	return w, nil
}

func (w *edgecacheWorld) startFeedServer(addr string) error {
	srv := rpc.NewTCPServer()
	srv.RegisterStream(event.FeedService, event.FeedMethod,
		func(method string, body []byte, send func([]byte) error) (func(), error) {
			return w.feed.Subscribe(send)
		})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the world
	w.feedSrv = srv
	w.feedAddr = ln.Addr().String()
	return nil
}

// waitCache polls the cache until cond holds.
func (w *edgecacheWorld) waitCache(what string, cond func(core.EdgeCacheStats) bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(w.cache.Stats()) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s (cache %+v)", what, w.cache.Stats())
}

func (w *edgecacheWorld) activate(principal string) (cert.RMC, error) {
	return w.svc.Activate(principal, Role("login", "user"), core.Presented{})
}

// RunEdgecache runs all three E18 sections with latencyOps measured
// verdicts per latency mode.
func RunEdgecache(latencyOps int) (EdgecacheResult, error) {
	var res EdgecacheResult
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	w, err := startEdgecacheWorld()
	if err != nil {
		return EdgecacheResult{}, err
	}
	defer w.shutdown()
	if err := w.waitCache("feed live", func(s core.EdgeCacheStats) bool { return s.Live }); err != nil {
		return EdgecacheResult{}, err
	}

	// -------- latency --------
	// Local in-process lower bound: the validator over a loopback bus.
	local := rpc.NewLoopback()
	local.Register("login", w.svc.Handler())
	localVal := core.NewRemoteValidator("local", local, -1, nil)

	sess := NewSession()
	rmc, err := w.activate(sess.PrincipalID())
	if err != nil {
		return EdgecacheResult{}, err
	}
	measure := func(mode string, validate func() error) (EdgecacheLatencyRow, error) {
		for i := 0; i < 50; i++ { // warm
			if err := validate(); err != nil {
				return EdgecacheLatencyRow{}, fmt.Errorf("%s warm: %w", mode, err)
			}
		}
		lat := make([]float64, latencyOps)
		for i := range lat {
			start := time.Now()
			if err := validate(); err != nil {
				return EdgecacheLatencyRow{}, fmt.Errorf("%s: %w", mode, err)
			}
			lat[i] = float64(time.Since(start).Nanoseconds())
		}
		p50, p99 := quantiles(lat)
		return EdgecacheLatencyRow{Mode: mode, Ops: latencyOps, MedianNs: p50, P99Ns: p99}, nil
	}
	principal := sess.PrincipalID()
	for _, m := range []struct {
		mode     string
		validate func() error
	}{
		{"local_inproc", func() error { return localVal.ValidateRMC(rmc, principal) }},
		{"edge_uncached", func() error { return w.validator.ValidateRMC(rmc, principal) }},
		{"edge_cached", func() error { return w.cache.ValidateRMC(rmc, principal) }},
	} {
		row, err := measure(m.mode, m.validate)
		if err != nil {
			return EdgecacheResult{}, err
		}
		res.Latency = append(res.Latency, row)
	}
	res.CachedOverLocal = res.Latency[2].MedianNs / res.Latency[0].MedianNs
	if res.CachedOverLocal > 2 {
		violate("cached-edge p50 %.0fns is %.2fx local in-process p50 %.0fns (ceiling 2x)",
			res.Latency[2].MedianNs, res.CachedOverLocal, res.Latency[0].MedianNs)
	}
	if hits := w.cache.Stats().Hits; hits == 0 {
		violate("edge_cached section recorded no cache hits")
	}

	// -------- kill-the-cert --------
	// The verdict for rmc is resident from the latency section. Revoke it
	// at the issuer with no validate traffic flowing; the invalidation
	// must arrive by event.
	callsBefore := w.validator.Stats().Validations
	invBefore := w.cache.Stats().Invalidations
	killStart := time.Now()
	w.svc.Deactivate(rmc.Ref.Serial, "kill the cert")
	if err := w.waitCache("event invalidation",
		func(s core.EdgeCacheStats) bool { return s.Invalidations > invBefore }); err != nil {
		return EdgecacheResult{}, err
	}
	res.Kill.InvalidateNs = float64(time.Since(killStart).Nanoseconds())
	res.Kill.IssuerCallsDuringKill = w.validator.Stats().Validations - callsBefore
	if res.Kill.IssuerCallsDuringKill != 0 {
		violate("invalidation required %d issuer calls; it must be event-bound", res.Kill.IssuerCallsDuringKill)
	}
	hitsBefore := w.cache.Stats().Hits
	err = w.cache.ValidateRMC(rmc, principal)
	res.Kill.RefusedAfter = errors.Is(err, core.ErrRevoked)
	if !res.Kill.RefusedAfter {
		violate("post-kill validation = %v, want authoritative refusal", err)
	}
	if w.cache.Stats().Hits != hitsBefore {
		violate("post-kill validation was served from cache")
	}

	// -------- severed feed --------
	sess2 := NewSession()
	rmc2, err := w.activate(sess2.PrincipalID())
	if err != nil {
		return EdgecacheResult{}, err
	}
	principal2 := sess2.PrincipalID()
	for i := 0; i < 2; i++ { // fill, then hit
		if err := w.cache.ValidateRMC(rmc2, principal2); err != nil {
			return EdgecacheResult{}, err
		}
	}
	severStart := time.Now()
	w.feedSrv.Close()
	if err := w.waitCache("detach on sever",
		func(s core.EdgeCacheStats) bool { return !s.Live && s.Entries == 0 }); err != nil {
		return EdgecacheResult{}, err
	}
	res.Severed.DetachNs = float64(time.Since(severStart).Nanoseconds())

	// Revoke during the outage: the event is lost; the verdict must come
	// authoritatively from the issuer, never from a stale cache entry.
	w.svc.Deactivate(rmc2.Ref.Serial, "revoked during outage")
	bypassedBefore := w.cache.Stats().Bypassed
	err = w.cache.ValidateRMC(rmc2, principal2)
	res.Severed.StalePositive = err == nil
	if res.Severed.StalePositive {
		violate("stale cached positive served while the feed was down")
	} else if !errors.Is(err, core.ErrRevoked) {
		return EdgecacheResult{}, fmt.Errorf("feed-down validation: %w", err)
	}
	res.Severed.BypassedDuringOutage = w.cache.Stats().Bypassed - bypassedBefore
	if res.Severed.BypassedDuringOutage == 0 {
		violate("feed-down validation did not bypass the cache")
	}

	// Reconnect: rebind the freed port; the edge resubscribes and caching
	// resumes without intervention.
	if err := w.startFeedServer(w.feedAddr); err != nil {
		return EdgecacheResult{}, fmt.Errorf("rebind feed port: %w", err)
	}
	if err := w.waitCache("reattach after reconnect",
		func(s core.EdgeCacheStats) bool { return s.Live }); err != nil {
		return EdgecacheResult{}, err
	}
	sess3 := NewSession()
	rmc3, err := w.activate(sess3.PrincipalID())
	if err != nil {
		return EdgecacheResult{}, err
	}
	resumeHitsBefore := w.cache.Stats().Hits
	for i := 0; i < 3; i++ {
		if err := w.cache.ValidateRMC(rmc3, sess3.PrincipalID()); err != nil {
			return EdgecacheResult{}, fmt.Errorf("post-reconnect validation: %w", err)
		}
	}
	res.Severed.ResumedHits = w.cache.Stats().Hits - resumeHitsBefore
	if res.Severed.ResumedHits == 0 {
		violate("caching did not resume after the feed reconnected")
	}
	return res, nil
}
