package experiments

import "testing"

// TestEdgecacheShape pins E18's qualitative claims: a cached-edge hit is
// not slower than 2x local in-process validation, the kill-the-cert run
// invalidates by event with zero issuer traffic, and the severed-feed
// run never serves a stale positive.
func TestEdgecacheShape(t *testing.T) {
	res, err := RunEdgecache(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("E18 invariant violations: %v", res.Violations)
	}
	if len(res.Latency) != 3 {
		t.Fatalf("latency rows = %d, want 3", len(res.Latency))
	}
	if !res.Kill.RefusedAfter || res.Kill.IssuerCallsDuringKill != 0 {
		t.Errorf("kill-the-cert row %+v: want event-bound refusal", res.Kill)
	}
	if res.Severed.StalePositive || res.Severed.BypassedDuringOutage == 0 || res.Severed.ResumedHits == 0 {
		t.Errorf("severed row %+v: want bypass during outage and resumed hits after", res.Severed)
	}
}
