// Package experiments implements the reproduction harness for every figure
// and scenario in the paper's evaluation (see DESIGN.md's experiment
// index). Each experiment builds the workload with the real OASIS engine,
// runs it, and returns measured rows; cmd/benchtab prints them as tables
// and bench_test.go wraps the same code in testing.B benchmarks.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// World bundles the shared infrastructure for one experiment run.
type World struct {
	Broker *event.Broker
	Bus    *rpc.Loopback
	Clock  *clock.Simulated
	// Obs and Trace, when set, are threaded into every service the world
	// creates — the E13 overhead experiment runs the same workloads with
	// and without them.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Journal, when set, is threaded into every service the world creates
	// — the E14 durability experiment runs the same workloads with and
	// without it.
	Journal core.Journal
	// OnClose hooks run when the world closes (after the broker), letting
	// experiments attach per-world resources like a journal directory.
	OnClose []func()
}

// NewWorld creates a fresh world with a simulated clock.
func NewWorld() *World {
	return &World{
		Broker: event.NewBroker(),
		Bus:    rpc.NewLoopback(),
		Clock:  clock.NewSimulated(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC)),
	}
}

// Close tears the world down.
func (w *World) Close() {
	w.Broker.Close()
	for _, f := range w.OnClose {
		f()
	}
}

// Service builds a service in this world and registers its handler.
func (w *World) Service(name, policyText string, cache bool) (*core.Service, error) {
	svc, err := core.NewService(core.Config{
		Name:             name,
		Policy:           policy.MustParse(policyText),
		Broker:           w.Broker,
		Caller:           w.Bus,
		Clock:            w.Clock,
		CacheValidations: cache,
		Obs:              w.Obs,
		Trace:            w.Trace,
		Journal:          w.Journal,
	})
	if err != nil {
		return nil, err
	}
	w.Bus.Register(name, svc.Handler())
	return svc, nil
}

// AlwaysTrue registers an env predicate that always succeeds.
func AlwaysTrue(svc *core.Service, name string) {
	svc.Env().Register(name, func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
}

// Role is a fixture helper.
func Role(service, name string, params ...names.Term) names.Role {
	return names.MustRole(names.MustRoleName(service, name, len(params)), params...)
}

// NewSession creates a session or panics (experiment setup only).
func NewSession() *core.Session {
	s, err := core.NewSession(nil)
	if err != nil {
		panic(err)
	}
	return s
}

// ---------------------------------------------------------------------------
// E1 — Fig. 1: role dependency through prerequisite roles.
// ---------------------------------------------------------------------------

// Fig1Row is one measurement of a prerequisite chain activation.
type Fig1Row struct {
	Depth        int
	Fanout       int
	CertsIssued  int
	Validations  uint64 // callback validations performed across services
	ActivateTime time.Duration
}

// RunFig1 builds a chain of services s0..s(depth-1); each service's role
// requires `fanout` RMCs from the previous layer (fanout==1 is the pure
// chain of Fig. 1). It measures the wall time to build the full session
// tree and the certificates issued.
func RunFig1(depth, fanout int) (Fig1Row, error) {
	w := NewWorld()
	defer w.Close()

	services := make([]*core.Service, depth)
	for layer := 0; layer < depth; layer++ {
		name := fmt.Sprintf("s%d", layer)
		var pol string
		if layer == 0 {
			pol = fmt.Sprintf("%s.r <- env ok.", name)
		} else {
			// Prerequisites: `fanout` roles from the previous layer
			// (the same role presented via distinct certificates
			// counts once, so we model fanout by requiring the single
			// previous role; fanout>1 widens each layer instead).
			pol = fmt.Sprintf("%s.r <- s%d.r keep [1].", name, layer-1)
		}
		svc, err := w.Service(name, pol, false)
		if err != nil {
			return Fig1Row{}, err
		}
		if layer == 0 {
			AlwaysTrue(svc, "ok")
		}
		services[layer] = svc
	}

	row := Fig1Row{Depth: depth, Fanout: fanout}
	start := time.Now()
	certs := 0
	for f := 0; f < fanout; f++ {
		sess := NewSession()
		for layer := 0; layer < depth; layer++ {
			rmc, err := services[layer].Activate(sess.PrincipalID(),
				Role(fmt.Sprintf("s%d", layer), "r"), sess.Credentials())
			if err != nil {
				return Fig1Row{}, fmt.Errorf("layer %d: %w", layer, err)
			}
			sess.AddRMC(rmc)
			certs++
		}
	}
	row.ActivateTime = time.Since(start)
	row.CertsIssued = certs
	row.Validations = w.Bus.Calls()
	return row, nil
}

// ---------------------------------------------------------------------------
// E2 — Fig. 2: role entry and service use, callback vs cached validation.
// ---------------------------------------------------------------------------

// Fig2Row measures the two paths of Fig. 2 under a validation mode.
type Fig2Row struct {
	Mode        string // "callback" or "cached"
	Invocations int
	Callbacks   uint64
	CacheHits   uint64
	EntryTime   time.Duration // paths 1-2 (one role entry)
	InvokeTime  time.Duration // paths 3-4 (all invocations)
	PerInvoke   time.Duration
}

// RunFig2 performs one role entry and n invocations presenting a foreign
// RMC, with or without the ECR validation cache.
func RunFig2(n int, cached bool) (Fig2Row, error) {
	w := NewWorld()
	defer w.Close()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		return Fig2Row{}, err
	}
	AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `
guard.inside <- login.user keep [1].
auth enter <- login.user.
`, cached)
	if err != nil {
		return Fig2Row{}, err
	}

	sess := NewSession()
	before := w.Bus.Calls() // count every callback across entry and use
	start := time.Now()
	rmc, err := login.Activate(sess.PrincipalID(), Role("login", "user"), core.Presented{})
	if err != nil {
		return Fig2Row{}, err
	}
	sess.AddRMC(rmc)
	if _, err := guard.Activate(sess.PrincipalID(), Role("guard", "inside"), sess.Credentials()); err != nil {
		return Fig2Row{}, err
	}
	entry := time.Since(start)

	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := guard.Invoke(sess.PrincipalID(), "enter", nil, sess.Credentials()); err != nil {
			return Fig2Row{}, err
		}
	}
	invoke := time.Since(start)

	mode := "callback"
	if cached {
		mode = "cached"
	}
	stats := guard.Stats()
	return Fig2Row{
		Mode:        mode,
		Invocations: n,
		Callbacks:   w.Bus.Calls() - before,
		CacheHits:   stats.CacheHits,
		EntryTime:   entry,
		InvokeTime:  invoke,
		PerInvoke:   invoke / time.Duration(n),
	}, nil
}

// ---------------------------------------------------------------------------
// E5 — Fig. 5: active security via the event infrastructure.
// ---------------------------------------------------------------------------

// Fig5Row measures a revocation cascade over a dependency tree.
type Fig5Row struct {
	Roles           int // total dependent roles
	Shape           string
	Target          string        // "root" or "leaf"
	RevokeLatency   time.Duration // from Deactivate to full collapse
	EventsDelivered uint64
	AllCollapsed    bool // target's dependent set collapsed, nothing else
}

// RunFig5 revokes the root of the dependency tree; see RunFig5Target.
func RunFig5(n int, shape string) (Fig5Row, error) {
	return RunFig5Target(n, shape, "root")
}

// RunFig5Target builds a dependency tree of n roles, revokes either the
// root (collapsing everything) or a leaf (collapsing only itself), and
// measures the cascade. The contrast shows that revocation cost follows
// the dependent subtree, not the session size.
func RunFig5Target(n int, shape, target string) (Fig5Row, error) {
	w := NewWorld()
	defer w.Close()

	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		return Fig5Row{}, err
	}
	AlwaysTrue(login, "ok")
	sess := NewSession()
	rootRMC, err := login.Activate(sess.PrincipalID(), Role("login", "user"), core.Presented{})
	if err != nil {
		return Fig5Row{}, err
	}
	sess.AddRMC(rootRMC)

	type node struct {
		svc    *core.Service
		serial uint64
	}
	var nodes []node
	switch shape {
	case "chain":
		prevService := "login"
		prevWallet := sess.Credentials()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("c%d", i)
			svc, err := w.Service(name, fmt.Sprintf("%s.r <- %s.%s keep [1].",
				name, prevService, roleNameOf(prevService)), false)
			if err != nil {
				return Fig5Row{}, err
			}
			rmc, err := svc.Activate(sess.PrincipalID(), Role(name, "r"), prevWallet)
			if err != nil {
				return Fig5Row{}, err
			}
			nodes = append(nodes, node{svc, rmc.Ref.Serial})
			prevService = name
			prevWallet = core.Presented{RMCs: []cert.RMC{rmc}}
		}
	case "star":
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("c%d", i)
			svc, err := w.Service(name, fmt.Sprintf("%s.r <- login.user keep [1].", name), false)
			if err != nil {
				return Fig5Row{}, err
			}
			rmc, err := svc.Activate(sess.PrincipalID(), Role(name, "r"), sess.Credentials())
			if err != nil {
				return Fig5Row{}, err
			}
			nodes = append(nodes, node{svc, rmc.Ref.Serial})
		}
	default:
		return Fig5Row{}, fmt.Errorf("unknown shape %q", shape)
	}

	_, deliveredBefore := w.Broker.Stats()
	start := time.Now()
	switch target {
	case "root":
		login.Deactivate(rootRMC.Ref.Serial, "logout")
	case "leaf":
		leaf := nodes[len(nodes)-1]
		leaf.svc.Deactivate(leaf.serial, "leaf revoked")
	default:
		return Fig5Row{}, fmt.Errorf("unknown target %q", target)
	}
	w.Broker.Quiesce()
	latency := time.Since(start)
	_, deliveredAfter := w.Broker.Stats()

	ok := true
	switch target {
	case "root":
		// Everything must be gone.
		for _, nd := range nodes {
			if valid, _ := nd.svc.CRStatus(nd.serial); valid {
				ok = false
			}
		}
	case "leaf":
		// Only the leaf is gone; every other role (and the root)
		// survives.
		for i, nd := range nodes {
			valid, _ := nd.svc.CRStatus(nd.serial)
			if i == len(nodes)-1 && valid {
				ok = false
			}
			if i < len(nodes)-1 && !valid {
				ok = false
			}
		}
		if valid, _ := login.CRStatus(rootRMC.Ref.Serial); !valid {
			ok = false
		}
	}
	return Fig5Row{
		Roles:           n,
		Shape:           shape,
		Target:          target,
		RevokeLatency:   latency,
		EventsDelivered: deliveredAfter - deliveredBefore,
		AllCollapsed:    ok,
	}, nil
}

func roleNameOf(service string) string {
	if service == "login" {
		return "user"
	}
	return "r"
}
