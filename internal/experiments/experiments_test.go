package experiments

import (
	"testing"
	"time"
)

// These tests pin the qualitative shapes recorded in EXPERIMENTS.md: if a
// refactor breaks one of the paper's claims, they fail.

func TestFig1ShapeOneCertPerLayer(t *testing.T) {
	for _, depth := range []int{1, 3, 5} {
		row, err := RunFig1(depth, 1)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if row.CertsIssued != depth {
			t.Errorf("depth %d: certs = %d", depth, row.CertsIssued)
		}
		// Presenting the whole wallet to each deeper layer costs
		// sum_{k=1}^{depth-1} k callbacks.
		wantCallbacks := uint64(depth * (depth - 1) / 2)
		if row.Validations != wantCallbacks {
			t.Errorf("depth %d: callbacks = %d, want %d", depth, row.Validations, wantCallbacks)
		}
	}
}

func TestFig2ShapeCachingAmortisesCallback(t *testing.T) {
	const n = 200
	callback, err := RunFig2(n, false)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunFig2(n, true)
	if err != nil {
		t.Fatal(err)
	}
	// Role entry itself costs one callback (the guard validating the
	// login RMC); every use costs another without caching.
	if callback.Callbacks != n+1 {
		t.Errorf("callback mode: %d callbacks, want %d", callback.Callbacks, n+1)
	}
	if cached.Callbacks != 1 {
		t.Errorf("cached mode: %d callbacks, want 1", cached.Callbacks)
	}
	if cached.CacheHits < n-1 {
		t.Errorf("cached mode: %d hits, want >= %d", cached.CacheHits, n-1)
	}
	if cached.PerInvoke >= callback.PerInvoke {
		t.Errorf("caching did not reduce per-invoke latency: %v vs %v",
			cached.PerInvoke, callback.PerInvoke)
	}
}

func TestFig3ShapeAuditComplete(t *testing.T) {
	row, err := RunFig3(3, 50, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !row.AuditOK {
		t.Errorf("audit incomplete: %d records for 120 ops", row.AuditRecords)
	}
	if row.Requests+row.Appends != 120 {
		t.Errorf("ops = %d + %d", row.Requests, row.Appends)
	}
}

func TestFig4ShapeNoAttacksAccepted(t *testing.T) {
	adv, err := RunFig4Adversarial(300)
	if err != nil {
		t.Fatal(err)
	}
	if adv.TamperAccepted != 0 || adv.TheftAccepted != 0 ||
		adv.ForgeryAccepted != 0 || adv.ApptTheftAccepted != 0 {
		t.Errorf("attacks accepted: %+v", adv)
	}
}

func TestFig4ShapeCostGrowsWithParams(t *testing.T) {
	small, err := RunFig4(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunFig4(16, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// More protected fields cannot be cheaper by a wide margin; allow
	// generous noise but catch inversions.
	if big.ValidateNs*2 < small.ValidateNs {
		t.Errorf("16-param validate (%v) implausibly cheaper than 0-param (%v)",
			big.ValidateNs, small.ValidateNs)
	}
}

func TestFig5ShapeCompleteCollapse(t *testing.T) {
	for _, shape := range []string{"chain", "star"} {
		row, err := RunFig5(50, shape)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if !row.AllCollapsed {
			t.Errorf("%s: roles survived the cascade", shape)
		}
		if row.EventsDelivered != 50 {
			t.Errorf("%s: %d events, want exactly one per dependent role",
				shape, row.EventsDelivered)
		}
	}
	if _, err := RunFig5(1, "pentagram"); err == nil {
		t.Error("unknown shape accepted")
	}
	if _, err := RunFig5Target(1, "star", "trunk"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestFig5LeafRevocationIsLocal(t *testing.T) {
	for _, shape := range []string{"chain", "star"} {
		row, err := RunFig5Target(30, shape, "leaf")
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if !row.AllCollapsed {
			t.Errorf("%s: leaf revocation damaged the wrong subtree", shape)
		}
		if row.EventsDelivered != 0 {
			// The leaf has no dependants, so its revocation event has
			// no subscribers.
			t.Errorf("%s: leaf revocation delivered %d events, want 0",
				shape, row.EventsDelivered)
		}
	}
}

func TestAuthShape(t *testing.T) {
	row, err := RunAuth(50)
	if err != nil {
		t.Fatal(err)
	}
	if !row.AllPassed {
		t.Error("honest rounds failed")
	}
	if row.WrongKeyOK != 0 {
		t.Errorf("%d wrong-key responses accepted", row.WrongKeyOK)
	}
}

func TestSect5ShapeSLAGate(t *testing.T) {
	row, err := RunSect5(25)
	if err != nil {
		t.Fatal(err)
	}
	if row.RefusedNoSLA != 25 {
		t.Errorf("refused without SLA = %d, want all 25", row.RefusedNoSLA)
	}
	if row.Activated != 25 {
		t.Errorf("activated under SLA = %d, want all 25", row.Activated)
	}
}

func TestSect6ShapeCollusionDefence(t *testing.T) {
	row, err := RunSect6(40, 0.25, 15)
	if err != nil {
		t.Fatal(err)
	}
	if row.NaiveAcceptBad != row.BadTotal {
		t.Errorf("naive policy accepted %d/%d colluders; the attack should fully succeed",
			row.NaiveAcceptBad, row.BadTotal)
	}
	if row.WaryAcceptBad != 0 {
		t.Errorf("domain-aware policy accepted %d colluders", row.WaryAcceptBad)
	}
	if row.HonestAcceptedOK != row.HonestTotal {
		t.Errorf("honest acceptance %d/%d", row.HonestAcceptedOK, row.HonestTotal)
	}
}

func TestPolicySizeShape(t *testing.T) {
	small := RunPolicySize(5, 4)
	large := RunPolicySize(50, 40)
	if small.OASISRules != large.OASISRules {
		t.Error("OASIS policy size should be constant in the population")
	}
	if large.RBAC0Roles != 50*40 {
		t.Errorf("RBAC0 roles = %d, want one per patient", large.RBAC0Roles)
	}
	if large.ACLEntries != 50*40 {
		t.Errorf("ACL entries = %d", large.ACLEntries)
	}
	if large.OASISFactRows != 50*40 {
		t.Errorf("fact rows = %d", large.OASISFactRows)
	}
}

func TestRevocationComparisonShape(t *testing.T) {
	row, err := RunRevocationComparison(50, 10*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Polling latency is interval/2 at phase 0.5; active latency is
	// wall-clock microseconds, orders of magnitude below.
	if row.PollingLatency != 5*time.Second {
		t.Errorf("polling latency = %v, want 5s", row.PollingLatency)
	}
	if row.ActiveLatency >= time.Second {
		t.Errorf("active latency = %v, implausibly slow", row.ActiveLatency)
	}
	if row.PollMessages == 0 {
		t.Error("no poll traffic counted")
	}
	if row.ActiveEvents != 50 {
		t.Errorf("active events = %d", row.ActiveEvents)
	}
}

func TestDelegationComparisonShape(t *testing.T) {
	row := RunDelegationComparison(10)
	if row.AppointmentRevokes != 1 {
		t.Errorf("appointment revokes = %d", row.AppointmentRevokes)
	}
	if row.DelegationCascadeOps != 11 {
		t.Errorf("cascade ops = %d, want chain+root = 11", row.DelegationCascadeOps)
	}
	if row.DanglingWithoutCascade != 10 {
		t.Errorf("dangling = %d", row.DanglingWithoutCascade)
	}
}

func TestTrustThroughput(t *testing.T) {
	row, err := RunTrustThroughput(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if row.PerDecide <= 0 {
		t.Errorf("PerDecide = %v", row.PerDecide)
	}
}
