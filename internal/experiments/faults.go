package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// ---------------------------------------------------------------------------
// E12 — fault injection: resilient RPC and fail-safe degraded validation.
//
// The deployment shape is two OASIS domains without an event relay (the
// worst case for cached trust): issuer and consumer on separate brokers,
// the consumer validating by callback through a ResilientCaller over the
// fault-injectable loopback transport. Faults are injected per scenario
// (drop-N, full partition, added latency) and the rows measure what the
// resilience layer does: retries recovering transient faults, the breaker
// opening and fast-failing, degraded stale-grace validation, and the
// heartbeat deadline cutting degraded operation short.
// ---------------------------------------------------------------------------

// FaultRow is one E12 scenario measurement (also serialised into
// BENCH_faults.json by cmd/benchtab).
type FaultRow struct {
	Scenario        string        `json:"scenario"`
	Authorized      bool          `json:"authorized"`     // the probe invocation's outcome
	TransportCalls  uint64        `json:"transportCalls"` // calls that reached the wire
	Retries         uint64        `json:"retries"`        // resilience-layer retries
	FastFails       uint64        `json:"fastFails"`      // calls rejected by an open breaker
	Breaker         string        `json:"breaker"`        // breaker state after the scenario
	DegradedHits    uint64        `json:"degradedHits"`   // validations served stale-under-grace
	RecoveryLatency time.Duration `json:"recoveryLatencyNs"`
	Note            string        `json:"note"`
}

// faultWorld is the E12 fixture.
type faultWorld struct {
	w        *World
	issuerBr *event.Broker
	rc       *rpc.ResilientCaller
	hb       *event.HeartbeatMonitor
	login    *core.Service
	guard    *core.Service

	principal string
	creds     core.Presented
}

const (
	e12RevalidateAfter = time.Minute
	e12StaleGrace      = 5 * time.Minute
	e12HeartbeatDeadln = 2 * time.Minute
	e12Cooldown        = 30 * time.Second
)

// newFaultWorld builds the two-domain fixture and warms one credential
// through activation (and optionally through a first cached validation).
func newFaultWorld(warmCache bool) (*faultWorld, error) {
	f := &faultWorld{w: NewWorld(), issuerBr: event.NewBroker()}
	f.hb = event.NewHeartbeatMonitor(f.w.Broker, f.w.Clock, e12HeartbeatDeadln)
	f.rc = rpc.NewResilientCaller(f.w.Bus, rpc.ResilientConfig{
		MaxAttempts:      3,
		FailureThreshold: 3,
		Cooldown:         e12Cooldown,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       4 * time.Millisecond,
		Now:              f.w.Clock.Now,
	})

	login, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(`login.user <- env ok.`),
		Broker: f.issuerBr,
		Clock:  f.w.Clock,
	})
	if err != nil {
		return nil, err
	}
	AlwaysTrue(login, "ok")
	f.w.Bus.Register("login", login.Handler())
	f.login = login

	guard, err := core.NewService(core.Config{
		Name:             "guard",
		Policy:           policy.MustParse(`auth enter <- login.user.`),
		Broker:           f.w.Broker,
		Caller:           f.rc,
		Clock:            f.w.Clock,
		CacheValidations: true,
		RevalidateAfter:  e12RevalidateAfter,
		StaleGrace:       e12StaleGrace,
		Heartbeats:       f.hb,
	})
	if err != nil {
		return nil, err
	}
	f.guard = guard

	sess := NewSession()
	rmc, err := login.Activate(sess.PrincipalID(), Role("login", "user"), core.Presented{})
	if err != nil {
		return nil, err
	}
	sess.AddRMC(rmc)
	f.principal, f.creds = sess.PrincipalID(), sess.Credentials()

	if warmCache {
		if _, err := guard.Invoke(f.principal, "enter", nil, f.creds); err != nil {
			return nil, fmt.Errorf("warm validation: %w", err)
		}
	}
	return f, nil
}

func (f *faultWorld) close() {
	f.guard.Close()
	f.login.Close()
	f.hb.Close()
	f.issuerBr.Close()
	f.w.Close()
}

// invoke runs the probe invocation, reporting whether it was authorized.
func (f *faultWorld) invoke() bool {
	_, err := f.guard.Invoke(f.principal, "enter", nil, f.creds)
	return err == nil
}

// RunFaults executes every E12 scenario and returns one row per scenario.
func RunFaults() ([]FaultRow, error) {
	var rows []FaultRow

	// Scenario 1 — transient drop: the issuer drops the first two
	// callback frames; bounded retries recover within the call.
	{
		f, err := newFaultWorld(false)
		if err != nil {
			return nil, err
		}
		f.w.Bus.SetFault(rpc.FailNTimes("login", 2))
		before := f.w.Bus.Calls()
		start := time.Now()
		ok := f.invoke()
		rows = append(rows, FaultRow{
			Scenario:        "transient-drop(2)",
			Authorized:      ok,
			TransportCalls:  f.w.Bus.Calls() - before,
			Retries:         f.rc.Metrics().Retries,
			Breaker:         f.rc.BreakerState("login").String(),
			RecoveryLatency: time.Since(start),
			Note:            "retry with backoff recovers inside one validation",
		})
		f.close()
	}

	// Scenario 2 — injected latency: the transport is slow but healthy;
	// calls succeed without retries and the breaker stays closed.
	{
		f, err := newFaultWorld(false)
		if err != nil {
			return nil, err
		}
		f.w.Bus.SetLatency(2 * time.Millisecond)
		before := f.w.Bus.Calls()
		start := time.Now()
		ok := f.invoke()
		rows = append(rows, FaultRow{
			Scenario:        "latency(2ms)",
			Authorized:      ok,
			TransportCalls:  f.w.Bus.Calls() - before,
			Retries:         f.rc.Metrics().Retries,
			Breaker:         f.rc.BreakerState("login").String(),
			RecoveryLatency: time.Since(start),
			Note:            "slow-but-up issuer: no retries, breaker closed",
		})
		f.close()
	}

	// Scenario 3 — partition, cold cache: persistent failure opens the
	// breaker; later presentations fail fast without touching the wire.
	{
		f, err := newFaultWorld(false)
		if err != nil {
			return nil, err
		}
		f.w.Bus.SetFault(rpc.FailAll("login"))
		f.invoke() // burns through retries, opens the breaker
		before := f.w.Bus.Calls()
		for i := 0; i < 5; i++ {
			f.invoke()
		}
		m := f.rc.Metrics()
		rows = append(rows, FaultRow{
			Scenario:       "partition-cold-cache",
			Authorized:     false,
			TransportCalls: f.w.Bus.Calls() - before,
			Retries:        m.Retries,
			FastFails:      m.FastFails,
			Breaker:        f.rc.BreakerState("login").String(),
			Note:           "unconfirmed cert denied; breaker fast-fails follow-ups",
		})
		f.close()
	}

	// Scenario 4 — partition, warm cache: inside the stale-grace window
	// a previously confirmed certificate keeps validating (degraded
	// availability); past the grace deadline it is denied, and the
	// heartbeat deadline cuts the window short via synthetic revocation
	// (never degraded safety).
	{
		f, err := newFaultWorld(true)
		if err != nil {
			return nil, err
		}
		f.w.Bus.SetFault(rpc.FailAll("login"))
		f.w.Clock.Advance(e12RevalidateAfter + time.Second)
		okDegraded := f.invoke() // within grace AND within heartbeat deadline

		f.w.Clock.Advance(e12HeartbeatDeadln) // issuer silent past its deadline
		f.hb.Sweep()                          // synthetic revocation
		f.w.Broker.Quiesce()
		okPastDeadline := f.invoke() // must be denied

		rows = append(rows, FaultRow{
			Scenario:     "partition-warm-cache",
			Authorized:   okDegraded && !okPastDeadline,
			DegradedHits: f.guard.Stats().DegradedHits,
			Breaker:      f.rc.BreakerState("login").String(),
			Note: fmt.Sprintf("degraded-in-grace=%v denied-past-heartbeat-deadline=%v",
				okDegraded, !okPastDeadline),
		})
		if okPastDeadline {
			f.close()
			return nil, fmt.Errorf("E12 safety violation: authorization granted past the heartbeat deadline")
		}
		f.close()
	}

	// Scenario 5 — recovery: the partition heals; after the breaker
	// cooldown a half-open probe closes the circuit and validation
	// round-trips again. RecoveryLatency is the wall time of the first
	// successful post-heal validation.
	{
		f, err := newFaultWorld(false)
		if err != nil {
			return nil, err
		}
		f.w.Bus.SetFault(rpc.FailAll("login"))
		f.invoke() // open the breaker
		f.w.Bus.SetFault(nil)
		f.w.Clock.Advance(e12Cooldown)
		start := time.Now()
		ok := f.invoke()
		rows = append(rows, FaultRow{
			Scenario:        "recovery-after-partition",
			Authorized:      ok,
			Retries:         f.rc.Metrics().Retries,
			FastFails:       f.rc.Metrics().FastFails,
			Breaker:         f.rc.BreakerState("login").String(),
			RecoveryLatency: time.Since(start),
			Note:            "half-open probe closes the breaker after cooldown",
		})
		f.close()
	}

	return rows, nil
}
