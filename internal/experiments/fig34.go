package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/sign"
)

// ---------------------------------------------------------------------------
// E3 — Fig. 3: cross-domain EHR session.
// ---------------------------------------------------------------------------

// Fig3Row measures the four-path EHR workflow at scale.
type Fig3Row struct {
	Hospitals    int
	Patients     int
	Requests     int // request-EHR operations completed
	Appends      int // append-to-EHR operations completed
	AuditRecords int
	AuditOK      bool // every op left exactly one validated audit record
	TotalTime    time.Duration
	PerOp        time.Duration
}

// RunFig3 builds H hospital domains and one national EHR domain, runs
// `ops` alternating request/append operations spread over hospitals and
// patients, and verifies invariant I10 (audit completeness).
func RunFig3(hospitals, patients, ops int) (Fig3Row, error) {
	w := NewWorld()
	defer w.Close()
	fed := domain.NewFederation()
	fed.AddDomain("national_domain")
	fed.AddDomain("nha_domain")

	nha, err := w.Service("nha", `
nha.registrar <- env anyone.
auth appoint_accredited_hospital(H) <- nha.registrar.
`, false)
	if err != nil {
		return Fig3Row{}, err
	}
	AlwaysTrue(nha, "anyone")
	if err := fed.AddService("nha_domain", nha); err != nil {
		return Fig3Row{}, err
	}

	national, err := w.Service("national", `
national.hospital(H) <- appt nha.accredited_hospital(H) keep [1].
auth request_ehr(D, P) <- national.hospital(H).
auth append_ehr(D, P) <- national.hospital(H).
`, true)
	if err != nil {
		return Fig3Row{}, err
	}
	national.Bind("request_ehr", func(args []names.Term) ([]byte, error) {
		return []byte("ehr"), nil
	})
	national.Bind("append_ehr", func(args []names.Term) ([]byte, error) {
		return []byte("done"), nil
	})
	if err := fed.AddService("national_domain", national); err != nil {
		return Fig3Row{}, err
	}

	authority, err := audit.NewAuthority("national_civ", w.Clock)
	if err != nil {
		return Fig3Row{}, err
	}
	ledger := audit.NewLedger()
	audit.AttachTo(national, authority, ledger, nil)

	if err := fed.Agree(domain.SLA{
		IssuerDomain:   "nha_domain",
		ConsumerDomain: "national_domain",
		Appointments:   []domain.ApptRef{{Issuer: "nha", Kind: "accredited_hospital"}},
	}); err != nil {
		return Fig3Row{}, err
	}

	// Accredit each hospital and activate its national role.
	registrar := NewSession()
	regRMC, err := nha.Activate(registrar.PrincipalID(), Role("nha", "registrar"), core.Presented{})
	if err != nil {
		return Fig3Row{}, err
	}
	registrar.AddRMC(regRMC)

	type hospitalCtx struct {
		principal string
		wallet    core.Presented
	}
	hctx := make([]hospitalCtx, hospitals)
	for h := 0; h < hospitals; h++ {
		principal := fmt.Sprintf("hospital_%d_service_key", h)
		appt, err := nha.Appoint(registrar.PrincipalID(), core.AppointmentRequest{
			Kind:   "accredited_hospital",
			Holder: principal,
			Params: []names.Term{names.Atom(fmt.Sprintf("hosp%d", h))},
		}, registrar.Credentials())
		if err != nil {
			return Fig3Row{}, err
		}
		rmc, err := fed.Activate("national", principal,
			Role("national", "hospital", names.Var("H")),
			core.Presented{Appointments: []cert.AppointmentCertificate{appt}})
		if err != nil {
			return Fig3Row{}, err
		}
		hctx[h] = hospitalCtx{principal: principal,
			wallet: core.Presented{RMCs: []cert.RMC{rmc}}}
	}

	row := Fig3Row{Hospitals: hospitals, Patients: patients}
	start := time.Now()
	for i := 0; i < ops; i++ {
		h := hctx[i%hospitals]
		doctor := names.Atom(fmt.Sprintf("dr_%d", i%17))
		patient := names.Atom(fmt.Sprintf("p_%d", i%patients))
		method := "request_ehr"
		if i%2 == 1 {
			method = "append_ehr"
		}
		if _, err := fed.Invoke("national", h.principal, method,
			[]names.Term{doctor, patient}, h.wallet); err != nil {
			return Fig3Row{}, fmt.Errorf("op %d: %w", i, err)
		}
		if method == "request_ehr" {
			row.Requests++
		} else {
			row.Appends++
		}
	}
	row.TotalTime = time.Since(start)
	if ops > 0 {
		row.PerOp = row.TotalTime / time.Duration(ops)
	}

	// Audit completeness: one validated record per op.
	total := 0
	ok := true
	for _, h := range hctx {
		hist := ledger.HistoryOf(h.principal)
		total += len(hist)
		for _, c := range hist {
			if err := authority.Validate(c); err != nil {
				ok = false
			}
		}
	}
	row.AuditRecords = total
	row.AuditOK = ok && total == ops
	return row, nil
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: RMC design and security properties.
// ---------------------------------------------------------------------------

// Fig4Row measures RMC issue/validate cost by parameter count.
type Fig4Row struct {
	Params     int
	IssueNs    time.Duration
	ValidateNs time.Duration
}

// RunFig4 measures the cryptographic cost of the Fig. 4 certificate design
// as the number of protected parameters grows.
func RunFig4(params, iters int) (Fig4Row, error) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return Fig4Row{}, err
	}
	terms := make([]names.Term, params)
	for i := range terms {
		terms[i] = names.Atom(fmt.Sprintf("param_%d", i))
	}
	role := names.MustRole(names.MustRoleName("svc", "r", params), terms...)
	ref := cert.CRR{Issuer: "svc", Serial: 1}

	start := time.Now()
	var rmc cert.RMC
	for i := 0; i < iters; i++ {
		rmc, err = cert.IssueRMC(ring, "principal", role, ref)
		if err != nil {
			return Fig4Row{}, err
		}
	}
	issue := time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := rmc.Verify(ring, "principal"); err != nil {
			return Fig4Row{}, err
		}
	}
	validate := time.Since(start) / time.Duration(iters)
	return Fig4Row{Params: params, IssueNs: issue, ValidateNs: validate}, nil
}

// Fig4Adversarial reports the outcome of adversarial trials against the
// certificate design: every count must be zero for the security properties
// of Sect. 4.1 to hold.
type Fig4Adversarial struct {
	Trials            int
	TamperAccepted    int // mutated protected fields that still verified
	TheftAccepted     int // wrong-principal presentations that verified
	ForgeryAccepted   int // adversary-signed certificates that verified
	ApptTheftAccepted int // holder-rewritten appointments that verified
}

// RunFig4Adversarial mounts `trials` of each attack class from Sect. 4.1
// against freshly issued certificates.
func RunFig4Adversarial(trials int) (Fig4Adversarial, error) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return Fig4Adversarial{}, err
	}
	adversaryRing, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return Fig4Adversarial{}, err
	}
	res := Fig4Adversarial{Trials: trials}
	ref := cert.CRR{Issuer: "svc", Serial: 1}
	for i := 0; i < trials; i++ {
		role := names.MustRole(names.MustRoleName("svc", "r", 2),
			names.Int(int64(i)), names.Atom("x"))
		rmc, err := cert.IssueRMC(ring, "alice", role, ref)
		if err != nil {
			return Fig4Adversarial{}, err
		}

		// Tampering: rewrite a protected parameter.
		tampered := rmc
		tampered.Role = names.MustRole(rmc.Role.Name, names.Int(int64(i)+1), names.Atom("x"))
		if tampered.Verify(ring, "alice") == nil {
			res.TamperAccepted++
		}
		// Theft: present under another principal.
		if rmc.Verify(ring, randomPrincipal()) == nil {
			res.TheftAccepted++
		}
		// Forgery: sign with a key the issuer never had.
		forged, err := cert.IssueRMC(adversaryRing, "alice", role, ref)
		if err != nil {
			return Fig4Adversarial{}, err
		}
		if forged.Verify(ring, "alice") == nil {
			res.ForgeryAccepted++
		}
		// Appointment theft: rebind the holder.
		appt, err := cert.IssueAppointment(ring, cert.AppointmentCertificate{
			Issuer: "svc", Serial: uint64(i), Kind: "k", Holder: "alice",
		})
		if err != nil {
			return Fig4Adversarial{}, err
		}
		appt.Holder = "mallory"
		if appt.Verify(ring, time.Time{}) == nil {
			res.ApptTheftAccepted++
		}
	}
	return res, nil
}

func randomPrincipal() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "fallback-principal"
	}
	return fmt.Sprintf("mallory-%x", b)
}
