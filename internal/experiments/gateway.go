package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// ---------------------------------------------------------------------------
// E17 — HTTP edge gateway: what the warden-style HTTP/JSON edge costs
// against raw OW2, and what its admission control buys under overload.
//
// Three sections, the backend always a real core service behind TCP:
//
//   latency   sequential /validate verdicts: raw binary per-call protocol
//             vs the same verdict through HTTP — the edge tax per call.
//   fanin     N workers hammering verdicts concurrently: raw per-call vs
//             HTTP through the gateway's validate_batch coalescing. The
//             HTTP herd must stay within ~2x of raw per-call throughput.
//   overload  a serialized ~2ms backend and far more demand than it can
//             serve: admission off (every request queues, p99 melts) vs
//             on (inflight cap + per-principal rate limit shed with
//             503/429 while the accepted requests' p99 holds).
// ---------------------------------------------------------------------------

// GatewayLatencyRow is one sequential verdict-latency measurement.
type GatewayLatencyRow struct {
	Mode     string  `json:"mode"` // "raw_ow2" or "http_gateway"
	Ops      int     `json:"ops"`
	MedianNs float64 `json:"median_ns"`
	P99Ns    float64 `json:"p99_ns"`
}

// GatewayFaninRow is one concurrent verdict-throughput measurement.
// IssuerUs is the serialized per-wire-call overhead at the issuer for
// the row's regime: 0 is the loopback free-CPU regime where the HTTP
// tax dominates; a positive value models an issuer whose wire calls are
// the scarce resource, the regime coalescing exists for.
type GatewayFaninRow struct {
	Mode               string  `json:"mode"` // "raw_per_call", "http_per_call", "http_batched"
	IssuerUs           float64 `json:"issuer_us"`
	Workers            int     `json:"workers"`
	Requests           int64   `json:"requests"`
	OpsPerSec          float64 `json:"ops_per_sec"`
	BatchesSent        uint64  `json:"batches_sent"`
	BatchedValidations uint64  `json:"batched_validations"`
}

// GatewayOverloadRow is one overload measurement: what admitted requests
// experienced and how much was shed to protect them.
type GatewayOverloadRow struct {
	Admission     string  `json:"admission"` // "off" or "on"
	Workers       int     `json:"workers"`
	Accepted      int64   `json:"accepted"`
	Shed503       int64   `json:"shed_503"`
	Shed429       int64   `json:"shed_429"`
	AcceptedP50Ns float64 `json:"accepted_p50_ns"`
	AcceptedP99Ns float64 `json:"accepted_p99_ns"`
}

// GatewayResult bundles the E17 sections (the BENCH_gateway.json shape).
type GatewayResult struct {
	Latency []GatewayLatencyRow `json:"latency"`
	// EdgeTaxNs is the median HTTP verdict latency minus the median raw
	// one: what a caller pays for speaking JSON over HTTP instead of OW2.
	EdgeTaxNs float64           `json:"edge_tax_ns"`
	Fanin     []GatewayFaninRow `json:"fanin"`
	// FaninHTTPOverRaw is http_batched throughput over raw_per_call
	// throughput in the issuer-bound regime (positive IssuerUs rows);
	// the gateway's acceptance floor is 0.5 (within 2x). The free-CPU
	// rows are reported too but not held to the floor: on a small host
	// they measure the HTTP stack's CPU tax, which no amount of
	// coalescing can pay down.
	FaninHTTPOverRaw float64              `json:"fanin_http_over_raw"`
	Overload         []GatewayOverloadRow `json:"overload"`
}

// gatewayBackend is one login issuer behind TCP with per-worker
// credentials pre-activated.
type gatewayBackend struct {
	svc        *core.Service
	addr       string
	principals []string
	rmcs       []cert.RMC
	shutdown   func()
}

func startGatewayBackend(workers int, wrap func(rpc.Handler) rpc.Handler) (*gatewayBackend, error) {
	broker := event.NewBroker()
	svc, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(`login.user <- env ok.`),
		Broker: broker,
	})
	if err != nil {
		broker.Close()
		return nil, err
	}
	AlwaysTrue(svc, "ok")

	h := rpc.Handler(svc.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	addr, stopSrv, err := startWireServer(map[string]rpc.Handler{"login": h})
	if err != nil {
		svc.Close()
		broker.Close()
		return nil, err
	}

	b := &gatewayBackend{
		svc:  svc,
		addr: addr,
		shutdown: func() {
			stopSrv()
			svc.Close()
			broker.Close()
		},
	}
	b.principals = make([]string, workers)
	b.rmcs = make([]cert.RMC, workers)
	for w := 0; w < workers; w++ {
		sess := NewSession()
		b.principals[w] = sess.PrincipalID()
		rmc, err := svc.Activate(b.principals[w], Role("login", "user"), core.Presented{})
		if err != nil {
			b.shutdown()
			return nil, err
		}
		b.rmcs[w] = rmc
	}
	return b, nil
}

// startGatewayHTTP serves a gateway over the backend and returns its base
// URL, a keep-alive client sized for the worker count, and the validator
// whose stats expose the coalescing.
func startGatewayHTTP(b *gatewayBackend, window time.Duration, workers int,
	mutate func(*gateway.Config)) (string, *http.Client, *core.RemoteValidator, func(), error) {
	dir := rpc.NewDirectoryPool(5*time.Second, 4)
	dir.Add("login", b.addr)
	validator := core.NewRemoteValidator("e17", dir, window, nil)
	cfg := gateway.Config{Caller: dir, Validator: validator, Services: []string{"login"}}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		dir.Close()
		return "", nil, nil, nil, err
	}
	ts := httptest.NewServer(gw.Handler())
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers + 4,
		MaxIdleConnsPerHost: workers + 4,
	}}
	stop := func() {
		client.CloseIdleConnections()
		ts.Close()
		dir.Close()
	}
	return ts.URL, client, validator, stop, nil
}

// postValidate posts one prebuilt /validate body and checks the verdict.
// The response is drained to EOF — not just decoded — so the transport
// can reuse the connection; without the drain every request pays a fresh
// TCP handshake and the measurement is of connection churn, not verdicts.
func postValidate(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url+"/validate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var v gateway.ValidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || !v.Valid {
		return fmt.Errorf("verdict %d %+v", resp.StatusCode, v)
	}
	return nil
}

func validateBody(b *gatewayBackend, w int) []byte {
	body, err := json.Marshal(gateway.ValidateRequest{Principal: b.principals[w], RMC: &b.rmcs[w]})
	if err != nil {
		panic(err) // fixture marshaling cannot fail
	}
	return body
}

// RunGateway runs all three sections: latencyOps sequential verdicts per
// mode, then each fan-in mode for one window with the given worker
// count, then the overload comparison.
func RunGateway(latencyOps int, window time.Duration, workers int) (GatewayResult, error) {
	var res GatewayResult
	lat, err := runGatewayLatency(latencyOps)
	if err != nil {
		return GatewayResult{}, fmt.Errorf("latency: %w", err)
	}
	res.Latency = lat
	res.EdgeTaxNs = lat[1].MedianNs - lat[0].MedianNs

	var rawBound, batchedBound float64
	for _, issuer := range []time.Duration{0, faninIssuerDelay} {
		for _, mode := range []string{"raw_per_call", "http_per_call", "http_batched"} {
			row, err := runGatewayFanin(mode, workers, window, issuer)
			if err != nil {
				return GatewayResult{}, fmt.Errorf("fanin %s issuer=%v: %w", mode, issuer, err)
			}
			res.Fanin = append(res.Fanin, row)
			if issuer > 0 {
				switch mode {
				case "raw_per_call":
					rawBound = row.OpsPerSec
				case "http_batched":
					batchedBound = row.OpsPerSec
				}
			}
		}
	}
	res.FaninHTTPOverRaw = batchedBound / rawBound

	for _, admission := range []string{"off", "on"} {
		row, err := runGatewayOverload(admission, workers, window)
		if err != nil {
			return GatewayResult{}, fmt.Errorf("overload admission=%s: %w", admission, err)
		}
		res.Overload = append(res.Overload, row)
	}
	return res, nil
}

func quantiles(lat []float64) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Float64s(lat)
	return lat[len(lat)/2], lat[len(lat)*99/100]
}

// runGatewayLatency measures the same sequential verdict through both
// faces: the raw binary per-call protocol and HTTP POST /validate.
func runGatewayLatency(ops int) ([]GatewayLatencyRow, error) {
	b, err := startGatewayBackend(1, nil)
	if err != nil {
		return nil, err
	}
	defer b.shutdown()

	// Raw OW2: a per-call validator (window < 0) over one TCP connection.
	cli, err := rpc.DialTCP(b.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer cli.Close() //nolint:errcheck
	raw := core.NewRemoteValidator("raw", cli, -1, nil)
	for i := 0; i < 50; i++ { // warm
		if err := raw.ValidateRMC(b.rmcs[0], b.principals[0]); err != nil {
			return nil, err
		}
	}
	rawLat := make([]float64, ops)
	for i := range rawLat {
		start := time.Now()
		if err := raw.ValidateRMC(b.rmcs[0], b.principals[0]); err != nil {
			return nil, err
		}
		rawLat[i] = float64(time.Since(start).Nanoseconds())
	}

	url, client, _, stop, err := startGatewayHTTP(b, -1, 1, nil)
	if err != nil {
		return nil, err
	}
	defer stop()
	body := validateBody(b, 0)
	post := func() error { return postValidate(client, url, body) }
	for i := 0; i < 50; i++ { // warm
		if err := post(); err != nil {
			return nil, err
		}
	}
	httpLat := make([]float64, ops)
	for i := range httpLat {
		start := time.Now()
		if err := post(); err != nil {
			return nil, err
		}
		httpLat[i] = float64(time.Since(start).Nanoseconds())
	}

	rows := make([]GatewayLatencyRow, 0, 2)
	for _, m := range []struct {
		mode string
		lat  []float64
	}{{"raw_ow2", rawLat}, {"http_gateway", httpLat}} {
		p50, p99 := quantiles(m.lat)
		rows = append(rows, GatewayLatencyRow{Mode: m.mode, Ops: ops, MedianNs: p50, P99Ns: p99})
	}
	return rows, nil
}

// faninIssuerDelay is the serialized per-wire-call overhead for the
// issuer-bound fan-in regime: each wire call — single or batch — costs
// the issuer this long of exclusive time, so verdict throughput is set
// by how many verdicts ride each call.
const faninIssuerDelay = 200 * time.Microsecond

// serializedDelay wraps a handler so every wire call holds the issuer
// exclusively for d. Zero or negative d wraps nothing.
func serializedDelay(d time.Duration) func(rpc.Handler) rpc.Handler {
	if d <= 0 {
		return nil
	}
	var mu sync.Mutex
	return func(h rpc.Handler) rpc.Handler {
		return func(method string, body []byte) ([]byte, error) {
			mu.Lock()
			time.Sleep(d)
			mu.Unlock()
			return h(method, body)
		}
	}
}

// runGatewayFanin measures concurrent verdict throughput for one mode
// against an issuer with the given serialized per-wire-call overhead.
func runGatewayFanin(mode string, workers int, window, issuer time.Duration) (GatewayFaninRow, error) {
	b, err := startGatewayBackend(workers, serializedDelay(issuer))
	if err != nil {
		return GatewayFaninRow{}, err
	}
	defer b.shutdown()

	var validate func(w int) error
	var validator *core.RemoteValidator
	switch mode {
	case "raw_per_call":
		dir := rpc.NewDirectoryPool(5*time.Second, 4)
		defer dir.Close()
		dir.Add("login", b.addr)
		validator = core.NewRemoteValidator("raw", dir, -1, nil)
		validate = func(w int) error { return validator.ValidateRMC(b.rmcs[w], b.principals[w]) }
	case "http_per_call", "http_batched":
		batchWindow := time.Duration(0)
		if mode == "http_per_call" {
			batchWindow = -1
		}
		url, client, v, stop, err := startGatewayHTTP(b, batchWindow, workers, nil)
		if err != nil {
			return GatewayFaninRow{}, err
		}
		defer stop()
		validator = v
		bodies := make([][]byte, workers)
		for w := range bodies {
			bodies[w] = validateBody(b, w)
		}
		validate = func(w int) error { return postValidate(client, url, bodies[w]) }
	default:
		return GatewayFaninRow{}, fmt.Errorf("unknown mode %q", mode)
	}

	if err := validate(0); err != nil {
		return GatewayFaninRow{}, err
	}
	var stop atomic.Bool
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.AfterFunc(window, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				if err := validate(w); err != nil {
					firstErr.CompareAndSwap(nil, err)
					break
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return GatewayFaninRow{}, err
	}
	st := validator.Stats()
	return GatewayFaninRow{
		Mode:               mode,
		IssuerUs:           float64(issuer) / float64(time.Microsecond),
		Workers:            workers,
		Requests:           total.Load(),
		OpsPerSec:          float64(total.Load()) / elapsed.Seconds(),
		BatchesSent:        st.BatchesSent,
		BatchedValidations: st.BatchedValidations,
	}, nil
}

// overloadBackendDelay serializes the overload backend at ~this long per
// wire call, so demand beyond 1/delay must queue or be shed.
const overloadBackendDelay = 2 * time.Millisecond

// shedBackoff is how long an overload client waits after a 429/503
// before retrying, honoring the shed in miniature (the gateway's
// Retry-After says 1s; a 2s measurement window needs a shorter nod).
// Without it the workers spin on cheap shed responses and the
// measurement drowns in client-side retry CPU.
const shedBackoff = 2 * time.Millisecond

// runGatewayOverload drives far more demand than the serialized backend
// can serve and measures what the admitted requests experienced.
func runGatewayOverload(admission string, workers int, window time.Duration) (GatewayOverloadRow, error) {
	b, err := startGatewayBackend(workers, serializedDelay(overloadBackendDelay))
	if err != nil {
		return GatewayOverloadRow{}, err
	}
	defer b.shutdown()

	// Per-call validation (window < 0) so admission, not coalescing, is
	// the only defense under test.
	// The inflight cap sheds 503 before any principal's bucket is
	// consulted, so the rate limit only bites requests that won a slot —
	// it must sit below the per-principal accepted rate (backend
	// capacity / workers) to contribute 429s alongside the 503s.
	mutate := func(cfg *gateway.Config) {}
	if admission == "on" {
		mutate = func(cfg *gateway.Config) {
			cfg.MaxInflight = 8
			cfg.RatePerSec = 5
			cfg.Burst = 5
		}
	}
	url, client, _, stopGW, err := startGatewayHTTP(b, -1, workers, mutate)
	if err != nil {
		return GatewayOverloadRow{}, err
	}
	defer stopGW()

	bodies := make([][]byte, workers)
	for w := range bodies {
		bodies[w] = validateBody(b, w)
	}
	var stop atomic.Bool
	var accepted, shed503, shed429 atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	lats := make([][]float64, workers)
	timer := time.AfterFunc(window, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				start := time.Now()
				resp, err := client.Post(url+"/validate", "application/json", bytes.NewReader(bodies[w]))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
					lats[w] = append(lats[w], float64(time.Since(start).Nanoseconds()))
				case http.StatusServiceUnavailable:
					shed503.Add(1)
					time.Sleep(shedBackoff)
				case http.StatusTooManyRequests:
					shed429.Add(1)
					time.Sleep(shedBackoff)
				default:
					firstErr.CompareAndSwap(nil, fmt.Errorf("unexpected status %d", resp.StatusCode))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return GatewayOverloadRow{}, err
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	p50, p99 := quantiles(all)
	return GatewayOverloadRow{
		Admission:     admission,
		Workers:       workers,
		Accepted:      accepted.Load(),
		Shed503:       shed503.Load(),
		Shed429:       shed429.Load(),
		AcceptedP50Ns: p50,
		AcceptedP99Ns: p99,
	}, nil
}
