package experiments

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// E13 — observability overhead.
//
// The observability layer promises to be cheap enough to leave on: the
// hot-path counters are the pre-existing lock-free stat atomics exported
// at scrape time, and histograms/trace events attach only to
// state-changing operations. This harness verifies the promise by running
// the E11 hot-path workloads twice — once with a bare world and once with
// a registry and tracer threaded through every service — and reporting the
// relative slowdown. Each variant takes the best of `reps` windows so a
// scheduler hiccup in one window does not masquerade as overhead.
// ---------------------------------------------------------------------------

// ObsRow compares one workload's throughput with and without the
// observability layer attached.
type ObsRow struct {
	Benchmark   string  `json:"benchmark"`
	Procs       int     `json:"procs"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	ObsNsPerOp  float64 `json:"obs_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
	// TraceEvents is how many trace events the instrumented run recorded
	// (proof the layer was actually live, not optimised away).
	TraceEvents uint64 `json:"trace_events"`
}

// obsWorkloads are the E11 workloads the overhead is measured on: the
// cache-hit invoke steady state (the tightest loop in the engine), the
// parametrised authorization check, and the session-churn mix whose
// activations and revocations exercise the histograms and the tracer.
func obsWorkloads() []parallelWorkload {
	keep := map[string]bool{
		"invoke_cached":          true,
		"authorize_parametrised": true,
		"mixed_session_churn":    true,
	}
	var out []parallelWorkload
	for _, wl := range parallelWorkloads() {
		if keep[wl.name] {
			out = append(out, wl)
		}
	}
	return out
}

// RunObsOverhead measures every obs workload at each GOMAXPROCS value,
// bare versus instrumented. The two variants run in alternation (bare,
// instrumented, bare, ...) so background load during the run hits both
// equally, and each side keeps the fastest of its reps windows — the
// variance of a shared machine shows up as noise around zero instead of
// biasing one variant.
func RunObsOverhead(procs []int, window time.Duration, reps int) ([]ObsRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []ObsRow
	for _, wl := range obsWorkloads() {
		for _, p := range procs {
			var tracer *obs.Tracer
			instrumented := func() *World {
				w := NewWorld()
				w.Obs = obs.NewRegistry()
				w.Trace = obs.NewTracer(4096)
				tracer = w.Trace
				return w
			}
			var base, inst float64
			var traced uint64
			for i := 0; i < reps; i++ {
				b, err := runParallelPoint(wl, p, window, NewWorld)
				if err != nil {
					return nil, fmt.Errorf("%s bare at procs=%d: %w", wl.name, p, err)
				}
				o, err := runParallelPoint(wl, p, window, instrumented)
				if err != nil {
					return nil, fmt.Errorf("%s instrumented at procs=%d: %w", wl.name, p, err)
				}
				if base == 0 || b.NsPerOp < base {
					base = b.NsPerOp
				}
				if inst == 0 || o.NsPerOp < inst {
					inst = o.NsPerOp
					traced = tracer.Total()
				}
			}
			rows = append(rows, ObsRow{
				Benchmark:   wl.name,
				Procs:       p,
				BaseNsPerOp: base,
				ObsNsPerOp:  inst,
				OverheadPct: (inst - base) / base * 100,
				TraceEvents: traced,
			})
		}
	}
	return rows, nil
}
