package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/names"
	"repro/internal/sign"
	"repro/internal/store"
)

// ---------------------------------------------------------------------------
// E11 — multi-core scaling of the authorization hot path.
//
// Each workload drives one of the engine's hot operations from `procs`
// goroutines at once for a fixed wall-clock window and reports aggregate
// throughput. The same operations exist as -cpu-parametrised testing.B
// benchmarks in bench_test.go; this harness produces the machine-readable
// rows for `benchtab -exp parallel` and BENCH_parallel.json.
// ---------------------------------------------------------------------------

// ParallelRow is one throughput measurement of a hot-path operation at a
// given GOMAXPROCS.
type ParallelRow struct {
	Benchmark string  `json:"benchmark"`
	Procs     int     `json:"procs"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// parallelWorkload builds one measurable operation. setup constructs a
// fresh world and returns the per-worker loop body; cleanup tears the
// world down after the window closes.
type parallelWorkload struct {
	name  string
	setup func(newWorld func() *World) (op func(worker int) error, cleanup func(), err error)
}

// RunParallelScaling measures every hot-path workload at each GOMAXPROCS
// value for one window apiece. Each (workload, procs) point gets a fresh
// world so no point inherits the previous point's cache or record state.
func RunParallelScaling(procs []int, window time.Duration) ([]ParallelRow, error) {
	var rows []ParallelRow
	for _, wl := range parallelWorkloads() {
		for _, p := range procs {
			row, err := runParallelPoint(wl, p, window, NewWorld)
			if err != nil {
				return nil, fmt.Errorf("%s at procs=%d: %w", wl.name, p, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runParallelPoint runs one workload with `procs` workers (and GOMAXPROCS
// pinned to match) for the window and reports aggregate throughput.
// newWorld builds the workload's world, letting the E13 overhead harness
// substitute an instrumented one.
func runParallelPoint(wl parallelWorkload, procs int, window time.Duration, newWorld func() *World) (ParallelRow, error) {
	op, cleanup, err := wl.setup(newWorld)
	if err != nil {
		return ParallelRow{}, err
	}
	defer cleanup()

	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	var stop atomic.Bool
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.AfterFunc(window, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				if err := op(worker); err != nil {
					firstErr.CompareAndSwap(nil, err)
					break
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err, ok := firstErr.Load().(error); ok {
		return ParallelRow{}, err
	}
	ops := total.Load()
	if ops == 0 {
		return ParallelRow{}, fmt.Errorf("no operations completed in %v", window)
	}
	return ParallelRow{
		Benchmark: wl.name,
		Procs:     procs,
		Ops:       ops,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec: float64(ops) / elapsed.Seconds(),
	}, nil
}

func parallelWorkloads() []parallelWorkload {
	return []parallelWorkload{
		{name: "invoke_cached", setup: setupInvokeCached},
		{name: "rmc_validate", setup: setupRMCValidate},
		{name: "authorize_parametrised", setup: setupAuthorizeParametrised},
		{name: "mixed_session_churn", setup: setupMixedChurn},
		{name: "end_session_1000_residents", setup: setupEndSession},
	}
}

// setupInvokeCached is the Fig. 2 steady state: every worker re-presents
// the same warm-cached foreign RMC at the guard.
func setupInvokeCached(newWorld func() *World) (func(int) error, func(), error) {
	w := newWorld()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `auth enter <- login.user.`, true)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	sess := NewSession()
	principal := sess.PrincipalID()
	rmc, err := login.Activate(principal, Role("login", "user"), core.Presented{})
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	if _, err := guard.Invoke(principal, "enter", nil, creds); err != nil {
		w.Close()
		return nil, nil, err
	}
	op := func(int) error {
		_, err := guard.Invoke(principal, "enter", nil, creds)
		return err
	}
	return op, w.Close, nil
}

// setupRMCValidate is pure certificate verification (Fig. 4): no service
// state at all, so it bounds what the crypto alone allows per core.
func setupRMCValidate(newWorld func() *World) (func(int) error, func(), error) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return nil, nil, err
	}
	role := names.MustRole(names.MustRoleName("svc", "r", 2),
		names.Atom("d1"), names.Int(42))
	rmc, err := cert.IssueRMC(ring, "principal", role, cert.CRR{Issuer: "svc", Serial: 1})
	if err != nil {
		return nil, nil, err
	}
	op := func(int) error { return rmc.Verify(ring, "principal") }
	return op, func() {}, nil
}

// setupAuthorizeParametrised is the E9 OASIS check: one parametrised auth
// rule resolved against a 100x100 registration fact store per call.
func setupAuthorizeParametrised(newWorld func() *World) (func(int) error, func(), error) {
	w := newWorld()
	svc, err := w.Service("h", `
h.doctor(D) <- env is_doctor(D).
auth read_record(D, P) <- h.doctor(D), env registered(D, P).
`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	db := store.New()
	for d := 0; d < 100; d++ {
		for p := 0; p < 100; p++ {
			if _, err := db.Assert("registered",
				names.Atom(fmt.Sprintf("dr_%d", d)),
				names.Atom(fmt.Sprintf("p_%d_%d", d, p))); err != nil {
				w.Close()
				return nil, nil, err
			}
		}
	}
	svc.Env().RegisterStore("registered", db, "registered")
	AlwaysTrue(svc, "is_doctor")
	sess := NewSession()
	principal := sess.PrincipalID()
	rmc, err := svc.Activate(principal, Role("h", "doctor", names.Atom("dr_50")), core.Presented{})
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	sess.AddRMC(rmc)
	creds := sess.Credentials()
	args := []names.Term{names.Atom("dr_50"), names.Atom("p_50_50")}
	op := func(int) error {
		_, err := svc.Invoke(principal, "read_record", args, creds)
		return err
	}
	return op, w.Close, nil
}

// setupMixedChurn runs full session lifecycles — activate, four cached
// invocations, revoke — so activation writes, cache fills, revocation
// fan-out and invoke reads all contend on the same two services.
func setupMixedChurn(newWorld func() *World) (func(int) error, func(), error) {
	w := newWorld()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `auth enter <- login.user.`, true)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	roleUser := Role("login", "user")
	op := func(worker int) error {
		principal := fmt.Sprintf("worker_%d", worker)
		rmc, err := login.Activate(principal, roleUser, core.Presented{})
		if err != nil {
			return err
		}
		creds := core.Presented{RMCs: []cert.RMC{rmc}}
		for k := 0; k < 4; k++ {
			if _, err := guard.Invoke(principal, "enter", nil, creds); err != nil {
				return err
			}
		}
		login.Deactivate(rmc.Ref.Serial, "logout")
		return nil
	}
	return op, w.Close, nil
}

// setupEndSession measures session teardown against a resident population
// of 1000 live credential records: each op activates one role for a fresh
// principal and immediately ends that principal's session.
func setupEndSession(newWorld func() *World) (func(int) error, func(), error) {
	w := newWorld()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	AlwaysTrue(login, "ok")
	roleUser := Role("login", "user")
	for i := 0; i < 1000; i++ {
		if _, err := login.Activate(fmt.Sprintf("resident_%d", i), roleUser, core.Presented{}); err != nil {
			w.Close()
			return nil, nil, err
		}
	}
	var visitor atomic.Int64
	op := func(int) error {
		p := fmt.Sprintf("visitor_%d", visitor.Add(1))
		if _, err := login.Activate(p, roleUser, core.Presented{}); err != nil {
			return err
		}
		if got := login.EndSession(p); got != 1 {
			return fmt.Errorf("ended %d sessions for %s, want 1", got, p)
		}
		return nil
	}
	return op, w.Close, nil
}
