package experiments

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/sign"
)

// ---------------------------------------------------------------------------
// E14 — durability: steady-state journaling overhead and recovery time.
//
// The journal promises to stay off the hot paths: validation journals
// nothing, and credential-record issues are asynchronous appends absorbed
// by the group-commit window (revocations and appointment issues block on
// the batch fsync deliberately — durability before publication — and are
// not part of the steady-state budget). This harness verifies the promise
// the same way E13 does for observability: the workloads run bare and
// journaled in alternating back-to-back pairs, and the reported overhead
// is the median of the per-pair ratios (robust against machine drift).
// It then measures the other half of the durability story: how long
// recovery takes as a function of journal size, with and without a
// compacting snapshot.
// ---------------------------------------------------------------------------

// RecoverOverheadRow compares one workload's throughput with and without
// a journal attached. BaseNsPerOp and DurableNsPerOp are each side's best
// window; OverheadPct is the median of the per-rep paired ratios (each
// bare/journaled pair runs back to back, so slow machine drift hits both
// sides of a ratio instead of skewing a best-vs-best comparison).
type RecoverOverheadRow struct {
	Benchmark      string  `json:"benchmark"`
	Procs          int     `json:"procs"`
	BaseNsPerOp    float64 `json:"base_ns_per_op"`
	DurableNsPerOp float64 `json:"durable_ns_per_op"`
	OverheadPct    float64 `json:"overhead_pct"`
	// Appended is how many records the journaled run wrote (proof the
	// journal was live, not optimised away).
	Appended uint64 `json:"appended"`
}

// RecoverTimeRow is one recovery-time measurement: reopen a state
// directory holding `Records` journaled mutations and time the replay.
type RecoverTimeRow struct {
	Records      int     `json:"records"`
	JournalBytes int64   `json:"journal_bytes"`
	Compacted    bool    `json:"compacted"`
	Replayed     int     `json:"replayed"`
	RecoverMs    float64 `json:"recover_ms"`
}

// RecoverResult bundles both halves of E14.
type RecoverResult struct {
	Overhead []RecoverOverheadRow `json:"overhead"`
	Recovery []RecoverTimeRow     `json:"recovery"`
}

// recoverWorkloads are the workloads the steady-state budget applies to:
// the cache-hit validation loop (journals nothing) and the role-entry
// loop (one asynchronous issue append per entry).
func recoverWorkloads() []parallelWorkload {
	return []parallelWorkload{
		{name: "invoke_cached", setup: setupInvokeCached},
		{name: "activate_entry", setup: setupActivateEntry},
	}
}

// maxEntryWorkers bounds the per-worker credentials setupActivateEntry
// prepares; runParallelPoint never exceeds GOMAXPROCS values this large.
const maxEntryWorkers = 64

// setupActivateEntry measures the paper's role-entry hot path (Fig. 2
// paths 1-2): each op enters guard.inside presenting a prerequisite login
// RMC, which guard validates by callback to login before issuing its own
// RMC. With a journal attached, every entry lands as one asynchronous
// issue append; nothing in the loop blocks on an fsync.
func setupActivateEntry(newWorld func() *World) (func(int) error, func(), error) {
	w := newWorld()
	login, err := w.Service("login", `login.user <- env ok.`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	AlwaysTrue(login, "ok")
	guard, err := w.Service("guard", `guard.inside <- login.user keep [1].`, false)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	roleInside := Role("guard", "inside")
	principals := make([]string, maxEntryWorkers)
	creds := make([]core.Presented, maxEntryWorkers)
	for i := range creds {
		principals[i] = fmt.Sprintf("worker_%d", i)
		rmc, err := login.Activate(principals[i], Role("login", "user"), core.Presented{})
		if err != nil {
			w.Close()
			return nil, nil, err
		}
		creds[i] = core.Presented{RMCs: []cert.RMC{rmc}}
	}
	op := func(worker int) error {
		_, err := guard.Activate(principals[worker], roleInside, creds[worker])
		return err
	}
	return op, w.Close, nil
}

// RunRecoverOverhead measures the journaling overhead on each workload at
// each GOMAXPROCS value, bare versus journaled, alternating variants so
// machine noise hits both equally (the E13 protocol). Pass procs >= 2:
// the journal's committer is a background goroutine by design, so the
// hot-path overhead is defined with a core available for it to run on —
// at GOMAXPROCS=1 the number would instead measure the whole durability
// subsystem time-slicing the foreground core.
func RunRecoverOverhead(procs []int, window time.Duration, reps int) ([]RecoverOverheadRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []RecoverOverheadRow
	for _, wl := range recoverWorkloads() {
		for _, p := range procs {
			var appended uint64
			var reg *obs.Registry
			journaled := func() *World {
				w := NewWorld()
				dir, err := os.MkdirTemp("", "e14-journal-*")
				if err != nil {
					panic(err)
				}
				reg = obs.NewRegistry() // private: services stay uninstrumented on both sides
				l, err := durable.Open(durable.Options{Dir: dir, Obs: reg})
				if err != nil {
					panic(err)
				}
				w.Journal = l
				w.OnClose = append(w.OnClose, func() {
					l.Close()         //nolint:errcheck
					os.RemoveAll(dir) //nolint:errcheck
				})
				return w
			}
			var base, dur float64
			ratios := make([]float64, 0, reps)
			for i := 0; i < reps; i++ {
				// Swap which side runs first each rep so slow drift in
				// machine load cancels instead of biasing one side.
				var b, d ParallelRow
				var err error
				if i%2 == 0 {
					b, err = runParallelPoint(wl, p, window, NewWorld)
					if err == nil {
						d, err = runParallelPoint(wl, p, window, journaled)
					}
				} else {
					d, err = runParallelPoint(wl, p, window, journaled)
					if err == nil {
						b, err = runParallelPoint(wl, p, window, NewWorld)
					}
				}
				if err != nil {
					return nil, fmt.Errorf("%s at procs=%d: %w", wl.name, p, err)
				}
				ratios = append(ratios, d.NsPerOp/b.NsPerOp)
				if base == 0 || b.NsPerOp < base {
					base = b.NsPerOp
				}
				if dur == 0 || d.NsPerOp < dur {
					dur = d.NsPerOp
					appended = reg.Value("durable_append_records_total")
				}
			}
			sort.Float64s(ratios)
			med := ratios[len(ratios)/2]
			if len(ratios)%2 == 0 {
				med = (med + ratios[len(ratios)/2-1]) / 2
			}
			rows = append(rows, RecoverOverheadRow{
				Benchmark:      wl.name,
				Procs:          p,
				BaseNsPerOp:    base,
				DurableNsPerOp: dur,
				OverheadPct:    (med - 1) * 100,
				Appended:       appended,
			})
		}
	}
	return rows, nil
}

// RunRecoverTime builds state directories holding `sizes[i]` journaled
// mutations and times recovery from each, journal-only and compacted.
func RunRecoverTime(sizes []int) ([]RecoverTimeRow, error) {
	var rows []RecoverTimeRow
	for _, n := range sizes {
		for _, compacted := range []bool{false, true} {
			row, err := recoverTimePoint(n, compacted)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func recoverTimePoint(n int, compacted bool) (RecoverTimeRow, error) {
	dir, err := os.MkdirTemp("", "e14-recover-*")
	if err != nil {
		return RecoverTimeRow{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	// NoSync while building the corpus: we are measuring replay, not the
	// build, and the file contents are identical either way.
	l, err := durable.Open(durable.Options{Dir: dir, NoSync: true, GroupWindow: -1})
	if err != nil {
		return RecoverTimeRow{}, err
	}
	if err := l.AppendWait(durable.Record{
		Op: durable.OpKeys, Service: "login", Retain: 1,
		Secrets: []sign.Secret{{KeyID: 1}},
	}); err != nil {
		return RecoverTimeRow{}, err
	}
	for i := 0; i < n; i++ {
		serial := uint64(i + 1)
		l.Append(durable.Record{
			Op: durable.OpCRIssue, Service: "login", Serial: serial,
			Subject: "login.user", Holder: fmt.Sprintf("p_%d", i%1000),
		})
		if i%5 == 0 {
			l.Append(durable.Record{
				Op: durable.OpCRRevoke, Service: "login", Serial: serial, Reason: "logout",
			})
		}
		if i%10 == 0 {
			l.Append(durable.Record{
				Op: durable.OpFactAssert, Relation: "registered",
				Tuple: []names.Term{names.Atom(fmt.Sprintf("d_%d", i%100)), names.Atom(fmt.Sprintf("p_%d", i))},
			})
		}
	}
	if err := l.Sync(); err != nil {
		return RecoverTimeRow{}, err
	}
	if compacted {
		if err := l.Compact(); err != nil {
			return RecoverTimeRow{}, err
		}
	}
	size := l.JournalSize()
	if err := l.Close(); err != nil {
		return RecoverTimeRow{}, err
	}
	if compacted {
		// The active journal is empty after compaction; report the
		// snapshot size instead so the row reflects bytes read at boot.
		if fis, err := os.ReadDir(dir); err == nil {
			size = 0
			for _, fi := range fis {
				if info, err := fi.Info(); err == nil {
					size += info.Size()
				}
			}
		}
	}

	start := time.Now()
	l2, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		return RecoverTimeRow{}, err
	}
	elapsed := time.Since(start)
	rs := l2.ReplayStats()
	l2.Close() //nolint:errcheck
	return RecoverTimeRow{
		Records:      n,
		JournalBytes: size,
		Compacted:    compacted,
		Replayed:     rs.Records,
		RecoverMs:    float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}
