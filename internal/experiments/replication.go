package experiments

// E19 — journal replication: read replicas fed by the leader's own
// journal stream (internal/replica).
//
// Three sections:
//
//   - failover: a replica is killed in the middle of a revocation burst
//     and a replacement attaches afterwards. The invariant is zero lost
//     revocations — every serial the leader revoked must deny on the
//     replacement once it converges, and its mirrored state must hash
//     equal to a full replay of the leader's on-disk journal.
//   - throughput: aggregate validation read throughput of one node vs a
//     leader plus two followers. Per-node capacity is modeled with the
//     same serializedDelay used by E17 (each call holds the node
//     exclusively for a fixed cost), so the section measures protocol
//     scaling rather than the host's core count.
//   - staleness: the leader is severed and the follower must fail
//     closed — reads refused (ErrStale) once the staleness bound
//     passes, writes refused (ErrNoLease) once the lease expires.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// ReplicationConfig sizes one E19 run.
type ReplicationConfig struct {
	Credentials int           // failover population (half is revoked)
	Window      time.Duration // throughput measurement window
	PerCall     time.Duration // modeled exclusive per-node cost per validation
	Workers     int           // concurrent clients in the throughput section
	StaleAfter  time.Duration // follower staleness bound in the staleness section
	LeaseTTL    time.Duration // leader lease TTL in the staleness section
}

// ReplFailover is the kill-mid-burst section: revocations lost to the
// replica crash must be zero after the replacement converges.
type ReplFailover struct {
	Issued          int     `json:"issued"`
	Revoked         int     `json:"revoked"`
	KillAfter       int     `json:"kill_after"` // revocations applied before the replica died
	LostRevocations int     `json:"lost_revocations"`
	FalseDenials    int     `json:"false_denials"`
	ReconvergeMs    float64 `json:"reconverge_ms"`
	HashConverged   bool    `json:"hash_converged"`
}

// ReplThroughputRow is one cluster size in the read-scaling section.
type ReplThroughputRow struct {
	Nodes     int     `json:"nodes"`
	PerCallUs float64 `json:"per_call_us"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	WindowMs  float64 `json:"window_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// ReplStaleness is the fail-closed section after the leader dies.
type ReplStaleness struct {
	StaleAfterMs    float64 `json:"stale_after_ms"`
	ServedFresh     int     `json:"served_fresh"` // reads answered between sever and the bound
	SeverToStaleMs  float64 `json:"sever_to_stale_ms"`
	ReadFailClosed  bool    `json:"read_fail_closed"`
	WriteFailClosed bool    `json:"write_fail_closed"`
}

// ReplicationResult bundles every E19 row plus invariant violations.
type ReplicationResult struct {
	Failover   ReplFailover        `json:"failover"`
	Throughput []ReplThroughputRow `json:"throughput"`
	ScaleX     float64             `json:"scale_3x_over_1x"`
	Staleness  ReplStaleness       `json:"staleness"`
	Violations []string            `json:"violations,omitempty"`
}

// replLeader is a journaling oasisd-in-miniature: one service backed by
// a durable log, a journal shipper, and a wire listener.
type replLeader struct {
	dir    string
	log    *durable.Log
	broker *event.Broker
	svc    *core.Service
	ship   *replica.Shipper
	addr   string
	stop   func()
}

func startReplLeader(leaseTTL time.Duration) (*replLeader, error) {
	dir, err := os.MkdirTemp("", "e19-leader-*")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*replLeader, error) {
		os.RemoveAll(dir) //nolint:errcheck
		return nil, err
	}
	dlog, err := durable.Open(durable.Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		return fail(err)
	}
	broker := event.NewBroker()
	svc, err := core.NewService(core.Config{
		Name:             "login",
		Policy:           policy.MustParse(`login.user <- env ok.`),
		Broker:           broker,
		Journal:          dlog,
		CacheValidations: true,
	})
	if err != nil {
		broker.Close()
		dlog.Close() //nolint:errcheck
		return fail(err)
	}
	AlwaysTrue(svc, "ok")
	if err := svc.InstallKeys(); err != nil {
		svc.Close()
		broker.Close()
		dlog.Close() //nolint:errcheck
		return fail(err)
	}
	ship := replica.NewShipper(replica.ShipperConfig{
		Log: dlog, Node: "leader", LeaseTTL: leaseTTL, Heartbeat: 20 * time.Millisecond,
	})
	srv := rpc.NewTCPServer()
	ship.Register(srv)
	srv.Register("login", svc.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		broker.Close()
		dlog.Close() //nolint:errcheck
		return fail(err)
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the experiment
	l := &replLeader{dir: dir, log: dlog, broker: broker, svc: svc, ship: ship, addr: ln.Addr().String()}
	l.stop = func() {
		srv.Close()
		svc.Close()
		broker.Close()
		dlog.Close()      //nolint:errcheck
		os.RemoveAll(dir) //nolint:errcheck
	}
	return l, nil
}

func (l *replLeader) activate() (cert.RMC, string, error) {
	sess := NewSession()
	rmc, err := l.svc.Activate(sess.PrincipalID(), Role("login", "user"), core.Presented{})
	return rmc, sess.PrincipalID(), err
}

// startReplFollower attaches a read replica to the leader and returns it
// with its teardown.
func startReplFollower(leaderAddr string, staleAfter time.Duration) (*replica.Follower, func(), error) {
	broker := event.NewBroker()
	pool := rpc.NewDirectoryPool(2*time.Second, 1)
	pool.Add(replica.Service, leaderAddr)
	pool.Add("login", leaderAddr)
	f, err := replica.NewFollower(replica.FollowerConfig{
		Leader:      leaderAddr,
		Broker:      broker,
		Caller:      pool,
		StaleAfter:  staleAfter,
		DialTimeout: time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
	})
	if err != nil {
		pool.Close()
		broker.Close()
		return nil, nil, err
	}
	f.Run()
	return f, func() {
		f.Close()
		pool.Close()
		broker.Close()
	}, nil
}

// waitReplConverged blocks until the follower's mirror hashes equal to a
// full replay of the leader's journal.
func waitReplConverged(l *replLeader, f *replica.Follower, timeout time.Duration) error {
	if err := l.log.Sync(); err != nil {
		return err
	}
	disk, err := durable.ReadState(l.dir)
	if err != nil {
		return err
	}
	want := replica.StateHash(disk)
	deadline := time.Now().Add(timeout)
	for f.StateHash() != want {
		if time.Now().After(deadline) {
			return fmt.Errorf("follower never converged: %s want %s (cursor %+v)", f.StateHash(), want, f.Cursor())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func replValidateBody(rmc cert.RMC, principal string) []byte {
	b, err := json.Marshal(struct {
		RMC       cert.RMC `json:"rmc"`
		Principal string   `json:"principal"`
	}{rmc, principal})
	if err != nil {
		panic(err) // fixture marshal cannot fail
	}
	return b
}

func replValidate(h rpc.Handler, body []byte) (bool, error) {
	out, err := h("validate_rmc", body)
	if err != nil {
		return false, err
	}
	var resp struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return false, err
	}
	return resp.Valid, nil
}

// RunReplication runs all three E19 sections.
func RunReplication(cfg ReplicationConfig) (ReplicationResult, error) {
	if cfg.Credentials <= 0 {
		cfg.Credentials = 400
	}
	if cfg.Window <= 0 {
		cfg.Window = 1500 * time.Millisecond
	}
	if cfg.PerCall <= 0 {
		cfg.PerCall = 400 * time.Microsecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 6
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 400 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 300 * time.Millisecond
	}
	var res ReplicationResult
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	if err := runReplFailover(cfg, &res, violate); err != nil {
		return res, fmt.Errorf("failover: %w", err)
	}
	if err := runReplThroughput(cfg, &res, violate); err != nil {
		return res, fmt.Errorf("throughput: %w", err)
	}
	if err := runReplStaleness(cfg, &res, violate); err != nil {
		return res, fmt.Errorf("staleness: %w", err)
	}
	return res, nil
}

// runReplFailover kills a replica mid-revocation-burst and requires the
// replacement to converge with zero lost revocations.
func runReplFailover(cfg ReplicationConfig, res *ReplicationResult, violate func(string, ...any)) error {
	l, err := startReplLeader(cfg.LeaseTTL)
	if err != nil {
		return err
	}
	defer l.stop()

	type cred struct {
		rmc       cert.RMC
		principal string
	}
	creds := make([]cred, cfg.Credentials)
	for i := range creds {
		rmc, p, err := l.activate()
		if err != nil {
			return err
		}
		creds[i] = cred{rmc, p}
	}

	// First replica attaches and fully catches up before the burst.
	f1, stop1, err := startReplFollower(l.addr, time.Minute)
	if err != nil {
		return err
	}
	defer stop1()
	if err := waitReplConverged(l, f1, 30*time.Second); err != nil {
		return err
	}

	// Revocation burst over half the population; the replica dies after
	// a third of it has been streamed (SIGKILL analog: no goodbye, no
	// cursor handoff — the replacement starts cold from a snapshot).
	revoked := cfg.Credentials / 2
	kill := revoked / 3
	res.Failover = ReplFailover{Issued: cfg.Credentials, Revoked: revoked, KillAfter: kill}
	for i := 0; i < revoked; i++ {
		if i == kill {
			stop1()
		}
		if !l.svc.Revoke(creds[i].rmc.Ref.Serial, "burst") {
			return fmt.Errorf("leader revoke %d failed", i)
		}
	}

	f2, stop2, err := startReplFollower(l.addr, time.Minute)
	if err != nil {
		return err
	}
	defer stop2()
	start := time.Now()
	if err := waitReplConverged(l, f2, 30*time.Second); err != nil {
		return err
	}
	res.Failover.ReconvergeMs = float64(time.Since(start).Nanoseconds()) / 1e6
	res.Failover.HashConverged = true

	h := f2.Handler("login")
	for i, c := range creds {
		valid, err := replValidate(h, replValidateBody(c.rmc, c.principal))
		if err != nil {
			return fmt.Errorf("replacement validate %d: %w", i, err)
		}
		if i < revoked && valid {
			res.Failover.LostRevocations++
		}
		if i >= revoked && !valid {
			res.Failover.FalseDenials++
		}
	}
	if res.Failover.LostRevocations != 0 {
		violate("failover lost %d of %d revocations", res.Failover.LostRevocations, revoked)
	}
	if res.Failover.FalseDenials != 0 {
		violate("failover denied %d live credentials", res.Failover.FalseDenials)
	}
	return nil
}

// runReplThroughput measures aggregate validation reads over one node
// vs three (leader + two followers), each node's capacity modeled by
// serializedDelay so the comparison is host-independent.
func runReplThroughput(cfg ReplicationConfig, res *ReplicationResult, violate func(string, ...any)) error {
	l, err := startReplLeader(cfg.LeaseTTL)
	if err != nil {
		return err
	}
	defer l.stop()
	rmc, principal, err := l.activate()
	if err != nil {
		return err
	}
	body := replValidateBody(rmc, principal)

	f1, stop1, err := startReplFollower(l.addr, time.Minute)
	if err != nil {
		return err
	}
	defer stop1()
	f2, stop2, err := startReplFollower(l.addr, time.Minute)
	if err != nil {
		return err
	}
	defer stop2()
	if err := waitReplConverged(l, f1, 30*time.Second); err != nil {
		return err
	}
	if err := waitReplConverged(l, f2, 30*time.Second); err != nil {
		return err
	}

	// Each node gets its own serializedDelay instance: one mutex per
	// node, so a three-node cluster has three independent capacities.
	node := func(h rpc.Handler) rpc.Handler { return serializedDelay(cfg.PerCall)(h) }
	single := []rpc.Handler{node(l.svc.Handler())}
	cluster := []rpc.Handler{node(l.svc.Handler()), node(f1.Handler("login")), node(f2.Handler("login"))}

	var rates []float64
	for _, nodes := range [][]rpc.Handler{single, cluster} {
		ops, window, err := replDrive(nodes, body, cfg.Workers, cfg.Window)
		if err != nil {
			return err
		}
		rate := float64(ops) / window.Seconds()
		rates = append(rates, rate)
		res.Throughput = append(res.Throughput, ReplThroughputRow{
			Nodes:     len(nodes),
			PerCallUs: float64(cfg.PerCall.Nanoseconds()) / 1e3,
			Workers:   cfg.Workers,
			Ops:       ops,
			WindowMs:  float64(window.Nanoseconds()) / 1e6,
			OpsPerSec: rate,
		})
	}
	if rates[0] > 0 {
		res.ScaleX = rates[1] / rates[0]
	}
	if res.ScaleX < 2 {
		violate("3-node aggregate read throughput %.2fx single node, want >= 2x", res.ScaleX)
	}
	return nil
}

// replDrive round-robins workers across the given node handlers for one
// window and returns verified ops and the actual elapsed time.
func replDrive(nodes []rpc.Handler, body []byte, workers int, window time.Duration) (int, time.Duration, error) {
	counts := make([]int, workers)
	errs := make([]error, workers)
	done := make(chan struct{})
	start := time.Now()
	deadline := start.Add(window)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			h := nodes[w%len(nodes)]
			for time.Now().Before(deadline) {
				valid, err := replValidate(h, body)
				if err != nil {
					errs[w] = err
					return
				}
				if !valid {
					errs[w] = errors.New("live credential denied during throughput drive")
					return
				}
				counts[w]++
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	elapsed := time.Since(start)
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, 0, errs[w]
		}
		total += counts[w]
	}
	return total, elapsed, nil
}

// runReplStaleness severs the leader and requires the follower to fail
// closed on both paths.
func runReplStaleness(cfg ReplicationConfig, res *ReplicationResult, violate func(string, ...any)) error {
	l, err := startReplLeader(cfg.LeaseTTL)
	if err != nil {
		return err
	}
	defer l.stop()
	rmc, principal, err := l.activate()
	if err != nil {
		return err
	}
	body := replValidateBody(rmc, principal)

	f, stop, err := startReplFollower(l.addr, cfg.StaleAfter)
	if err != nil {
		return err
	}
	defer stop()
	if err := waitReplConverged(l, f, 30*time.Second); err != nil {
		return err
	}
	h := f.Handler("login")
	if valid, err := replValidate(h, body); err != nil || !valid {
		return fmt.Errorf("pre-sever read: valid=%v err=%v", valid, err)
	}

	res.Staleness.StaleAfterMs = float64(cfg.StaleAfter.Nanoseconds()) / 1e6
	sever := time.Now()
	l.stop()

	// Reads keep serving inside the bound, then must fail closed.
	deadline := sever.Add(cfg.StaleAfter*4 + 10*time.Second)
	for {
		_, err := replValidate(h, body)
		if errors.Is(err, replica.ErrStale) {
			res.Staleness.SeverToStaleMs = float64(time.Since(sever).Nanoseconds()) / 1e6
			res.Staleness.ReadFailClosed = true
			break
		}
		if err != nil {
			return fmt.Errorf("severed read failed with %w, want ErrStale", err)
		}
		res.Staleness.ServedFresh++
		if time.Now().After(deadline) {
			violate("reads never failed closed %v past the sever", time.Since(sever))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Writes must fail closed once the lease is gone.
	wbody, err := json.Marshal(core.RemoteRevokeRequest{Serial: rmc.Ref.Serial, Reason: "severed"})
	if err != nil {
		return err
	}
	for {
		_, err := h("revoke", wbody)
		if errors.Is(err, replica.ErrNoLease) {
			res.Staleness.WriteFailClosed = true
			break
		}
		if time.Now().After(deadline) {
			violate("writes never failed closed after the lease expired (last err %v)", err)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
