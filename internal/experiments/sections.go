package experiments

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/baseline"
	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/sign"
	"repro/internal/trust"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E6 — Sect. 4.1: ISO/9798 challenge-response session binding.
// ---------------------------------------------------------------------------

// AuthRow measures the challenge-response protocol.
type AuthRow struct {
	Rounds     int
	PerRound   time.Duration
	AllPassed  bool
	WrongKeyOK int // rounds where a wrong key was (incorrectly) accepted
}

// RunAuth performs `rounds` issue/respond/check cycles, interleaving
// wrong-key responses that must all be rejected.
func RunAuth(rounds int) (AuthRow, error) {
	key, err := sign.NewSessionKey(nil)
	if err != nil {
		return AuthRow{}, err
	}
	wrongKey, err := sign.NewSessionKey(nil)
	if err != nil {
		return AuthRow{}, err
	}
	challenger := sign.NewChallenger(time.Minute, nil, nil)

	row := AuthRow{Rounds: rounds, AllPassed: true}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		ch, err := challenger.Issue(key.Public)
		if err != nil {
			return AuthRow{}, err
		}
		if err := challenger.Check(key.Respond(ch)); err != nil {
			row.AllPassed = false
		}
		// Adversarial round: the wrong key answers.
		ch2, err := challenger.Issue(key.Public)
		if err != nil {
			return AuthRow{}, err
		}
		if challenger.Check(wrongKey.Respond(ch2)) == nil {
			row.WrongKeyOK++
		}
	}
	row.PerRound = time.Since(start) / time.Duration(rounds)
	return row, nil
}

// ---------------------------------------------------------------------------
// E7 — Sect. 5: multi-domain scenarios (visiting doctor throughput).
// ---------------------------------------------------------------------------

// Sect5Row measures cross-domain activation under an SLA.
type Sect5Row struct {
	Doctors       int
	Activated     int
	RefusedNoSLA  int // activations attempted before the SLA exists
	PerActivation time.Duration
}

// RunSect5 appoints `doctors` doctors at a hospital and has each activate
// visiting_doctor at a research institute, first without the SLA (all
// screened out), then with it (all succeed).
func RunSect5(doctors int) (Sect5Row, error) {
	w := NewWorld()
	defer w.Close()
	fed := domain.NewFederation()
	fed.AddDomain("hd")
	fed.AddDomain("rd")

	admin, err := w.Service("hospital_admin", `
hospital_admin.officer <- env anyone.
auth appoint_employed_as_doctor(H) <- hospital_admin.officer.
`, false)
	if err != nil {
		return Sect5Row{}, err
	}
	AlwaysTrue(admin, "anyone")
	institute, err := w.Service("institute",
		`institute.visiting_doctor <- appt hospital_admin.employed_as_doctor(H) keep [1].`, false)
	if err != nil {
		return Sect5Row{}, err
	}
	if err := fed.AddService("hd", admin); err != nil {
		return Sect5Row{}, err
	}
	if err := fed.AddService("rd", institute); err != nil {
		return Sect5Row{}, err
	}

	officer := NewSession()
	officerRMC, err := admin.Activate(officer.PrincipalID(),
		Role("hospital_admin", "officer"), core.Presented{})
	if err != nil {
		return Sect5Row{}, err
	}
	officer.AddRMC(officerRMC)

	appts := make([]cert.AppointmentCertificate, doctors)
	for d := 0; d < doctors; d++ {
		appts[d], err = admin.Appoint(officer.PrincipalID(), core.AppointmentRequest{
			Kind:   "employed_as_doctor",
			Holder: fmt.Sprintf("doctor_%d_key", d),
			Params: []names.Term{names.Atom("st_marys")},
		}, officer.Credentials())
		if err != nil {
			return Sect5Row{}, err
		}
	}

	row := Sect5Row{Doctors: doctors}
	// Phase 1: no SLA yet — screening refuses every activation.
	for d := 0; d < doctors; d++ {
		_, err := fed.Activate("institute", fmt.Sprintf("doctor_%d_key", d),
			Role("institute", "visiting_doctor"),
			core.Presented{Appointments: []cert.AppointmentCertificate{appts[d]}})
		if err != nil {
			row.RefusedNoSLA++
		}
	}
	// Phase 2: the agreement is signed.
	if err := fed.Agree(domain.SLA{
		IssuerDomain:   "hd",
		ConsumerDomain: "rd",
		Appointments:   []domain.ApptRef{{Issuer: "hospital_admin", Kind: "employed_as_doctor"}},
	}); err != nil {
		return Sect5Row{}, err
	}
	start := time.Now()
	for d := 0; d < doctors; d++ {
		if _, err := fed.Activate("institute", fmt.Sprintf("doctor_%d_key", d),
			Role("institute", "visiting_doctor"),
			core.Presented{Appointments: []cert.AppointmentCertificate{appts[d]}}); err == nil {
			row.Activated++
		}
	}
	if doctors > 0 {
		row.PerActivation = time.Since(start) / time.Duration(doctors)
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// E8 — Sect. 6: audit certificates and the web of trust.
// ---------------------------------------------------------------------------

// Sect6Row reports trust-decision quality at one byzantine fraction.
type Sect6Row struct {
	Population       int
	ByzantineFrac    float64
	NaiveAcceptBad   int // colluders accepted by the naive policy
	WaryAcceptBad    int // colluders accepted by the domain-aware policy
	HonestAcceptedOK int // honest parties accepted by the wary policy
	HonestTotal      int
	BadTotal         int
	DecideTime       time.Duration
}

// RunSect6 builds a population with the given byzantine fraction,
// evaluates every party under both policies, and reports acceptance
// counts.
func RunSect6(population int, byzantineFrac float64, historyLen int) (Sect6Row, error) {
	sim, err := trust.NewSimulation(7)
	if err != nil {
		return Sect6Row{}, err
	}
	naive := trust.NewEngine(trust.DefaultPolicy(), sim.Directory.Validate)
	wary := trust.NewEngine(trust.DomainAwarePolicy(0), sim.Directory.Validate)

	bad := int(float64(population) * byzantineFrac)
	honest := population - bad
	row := Sect6Row{Population: population, ByzantineFrac: byzantineFrac,
		HonestTotal: honest, BadTotal: bad}

	ring := make([]string, 0, bad)
	for i := 0; i < bad; i++ {
		ring = append(ring, fmt.Sprintf("byz_%d", i))
	}

	start := time.Now()
	for i := 0; i < honest; i++ {
		party := fmt.Sprintf("honest_%d", i)
		hist := sim.HonestHistory(party, historyLen, 0.92)
		if wary.Decide(party, hist).Proceed {
			row.HonestAcceptedOK++
		}
	}
	for _, party := range ring {
		hist := sim.CollusionHistory(party, ring, historyLen)
		if naive.Decide(party, hist).Proceed {
			row.NaiveAcceptBad++
		}
		if wary.Decide(party, hist).Proceed {
			row.WaryAcceptBad++
		}
	}
	row.DecideTime = time.Since(start)
	return row, nil
}

// ---------------------------------------------------------------------------
// E9 — comparative baselines.
// ---------------------------------------------------------------------------

// PolicySizeRow compares administrative policy size for the paper's
// "doctors may access the records of patients registered with them, with
// per-patient exceptions" requirement.
type PolicySizeRow struct {
	Doctors           int
	PatientsPerDoctor int
	OASISRules        int // parametrised activation+auth rules
	RBAC0Roles        int
	RBAC0Assignments  int
	ACLEntries        int
	OASISFactRows     int // data rows (registrations), not policy
}

// RunPolicySize builds the same healthcare policy in OASIS, RBAC0 and
// ACLs and reports the administratively managed sizes.
func RunPolicySize(doctors, patientsPerDoctor int) PolicySizeRow {
	registrations := make(map[string][]string, doctors)
	for d := 0; d < doctors; d++ {
		doctor := fmt.Sprintf("dr_%d", d)
		for p := 0; p < patientsPerDoctor; p++ {
			registrations[doctor] = append(registrations[doctor],
				fmt.Sprintf("p_%d_%d", d, p))
		}
	}

	// OASIS: one activation rule + one auth rule, any number of
	// doctors/patients — the registrations are data, not policy.
	const oasisRules = 2
	factRows := doctors * patientsPerDoctor

	rbac := baseline.BuildPatientAccess(registrations)

	acl := baseline.NewACLService()
	for doctor, patients := range registrations {
		for _, p := range patients {
			acl.Grant("record_"+p, doctor, baseline.RightRead)
		}
	}
	return PolicySizeRow{
		Doctors:           doctors,
		PatientsPerDoctor: patientsPerDoctor,
		OASISRules:        oasisRules,
		RBAC0Roles:        rbac.Roles(),
		RBAC0Assignments:  rbac.Assignments(),
		ACLEntries:        acl.Entries(),
		OASISFactRows:     factRows,
	}
}

// RevocationRow compares active (event-driven) revocation against polling.
type RevocationRow struct {
	Certificates   int
	PollInterval   time.Duration
	ActiveLatency  time.Duration // measured wall time for the event cascade
	PollingLatency time.Duration // simulated notice latency
	PollMessages   uint64        // poll traffic over the observation window
	ActiveEvents   uint64        // events delivered for the same revocation
}

// RunRevocationComparison revokes one certificate watched by `certs`
// relying parties under both regimes. The polling side runs on a simulated
// clock: revocation happens uniformly at interval*phase after a tick, and
// the window covers one hour of polling traffic for all certificates.
func RunRevocationComparison(certs int, pollInterval time.Duration, phase float64) (RevocationRow, error) {
	// Active side: a star of dependent roles collapses via events.
	fig5, err := RunFig5(certs, "star")
	if err != nil {
		return RevocationRow{}, err
	}

	// Polling side.
	clk := clock.NewSimulated(time.Unix(0, 0))
	poller := baseline.NewPollingRevoker(clk, pollInterval)
	for i := 0; i < certs; i++ {
		poller.Watch(fmt.Sprintf("cert%d", i))
	}
	offset := time.Duration(phase * float64(pollInterval))
	clk.Advance(offset)
	poller.Revoke("cert0")
	clk.Advance(pollInterval) // guarantee at least one tick passes
	poller.Tick()
	lat, ok := poller.NoticeLatency("cert0")
	if !ok {
		return RevocationRow{}, fmt.Errorf("poller never noticed revocation")
	}
	// Traffic over an hour window.
	clk.Advance(time.Hour)
	poller.Tick()

	return RevocationRow{
		Certificates:   certs,
		PollInterval:   pollInterval,
		ActiveLatency:  fig5.RevokeLatency,
		PollingLatency: lat,
		PollMessages:   poller.Polls(),
		ActiveEvents:   fig5.EventsDelivered,
	}, nil
}

// DelegationRow compares appointment-based stand-in against
// delegation-chain revocation bookkeeping.
type DelegationRow struct {
	ChainLen               int
	AppointmentRevokes     int // operations to end the stand-in via appointment
	DelegationCascadeOps   int
	DanglingWithoutCascade int
}

// RunDelegationComparison builds a delegation chain of length n in the
// Barka-Sandhu baseline and the equivalent single appointment in OASIS,
// then revokes at the root.
func RunDelegationComparison(n int) DelegationRow {
	d := baseline.NewDelegationService()
	d.AddMember("doctor", "dr_root")
	prev := "dr_root"
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("locum_%d", i)
		if err := d.Delegate("doctor", prev, next); err != nil {
			// Cannot happen: prev always holds the role.
			panic(err)
		}
		prev = next
	}
	cascadeOps := d.RevokeMember("doctor", "dr_root", true)

	d2 := baseline.NewDelegationService()
	d2.AddMember("doctor", "dr_root")
	prev = "dr_root"
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("locum_%d", i)
		if err := d2.Delegate("doctor", prev, next); err != nil {
			panic(err)
		}
		prev = next
	}
	d2.RevokeMember("doctor", "dr_root", false)
	dangling := d2.Delegations("doctor")

	return DelegationRow{
		ChainLen: n,
		// In OASIS the stand-in holds ONE appointment certificate;
		// revoking it is one operation and the event channel collapses
		// every dependent role (cf. TestAppointmentRevocationCascades).
		AppointmentRevokes:     1,
		DelegationCascadeOps:   cascadeOps,
		DanglingWithoutCascade: dangling,
	}
}

// SoakRow reports an invariant-checked churn run (the synthetic healthcare
// workload of DESIGN.md Sect. 4, exercised end to end).
type SoakRow struct {
	Doctors     int
	Patients    int
	Ops         int
	Reads       int
	Denied      int
	Revocations int
	Churns      int
	Violations  int
	PerOp       time.Duration
}

// RunSoak executes the workload at the given scale with churn every 6 ops.
func RunSoak(doctors, patients, ops int, seed int64) (SoakRow, error) {
	res, err := workload.Run(workload.Config{
		Seed:       seed,
		Doctors:    doctors,
		Patients:   patients,
		Ops:        ops,
		ChurnEvery: 6,
	})
	if err != nil {
		return SoakRow{}, err
	}
	row := SoakRow{
		Doctors: doctors, Patients: patients, Ops: ops,
		Reads: res.Reads, Denied: res.Denied,
		Revocations: res.Revocations, Churns: res.Churns,
		Violations: len(res.Violations),
	}
	if ops > 0 {
		row.PerOp = res.Elapsed / time.Duration(ops)
	}
	return row, nil
}

// TrustThroughputRow measures trust-decision cost for bench E8.
type TrustThroughputRow struct {
	HistoryLen int
	PerDecide  time.Duration
}

// RunTrustThroughput times Decide over a fixed history.
func RunTrustThroughput(historyLen, iters int) (TrustThroughputRow, error) {
	sim, err := trust.NewSimulation(11)
	if err != nil {
		return TrustThroughputRow{}, err
	}
	engine := trust.NewEngine(trust.DomainAwarePolicy(0.1), sim.Directory.Validate)
	hist := sim.HonestHistory("alice", historyLen, 0.9)
	start := time.Now()
	for i := 0; i < iters; i++ {
		engine.Decide("alice", hist)
	}
	return TrustThroughputRow{
		HistoryLen: historyLen,
		PerDecide:  time.Since(start) / time.Duration(iters),
	}, nil
}

// auditUnused silences the import when builds prune code paths.
var _ = audit.OutcomeFulfilled
