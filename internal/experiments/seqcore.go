package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/policy"
)

// ---------------------------------------------------------------------------
// E20 — per-shard sequencer core: sustained mixed issue/revoke throughput
// against a real journal, sequenced apply loop vs the direct inline path.
//
// The direct variant (SeqMailbox < 0) is the pre-sequencer write path:
// every revocation journals through its own AppendWait, paying a full
// group-commit window and fsync. The sequencer variant drains each serial
// shard's mailbox into one ordered batch, journals it as a single
// multi-record frame group (skipping the window via the committer's
// urgent wake), and publishes from the same ordered stream. Because a
// revocation's event is published before Deactivate returns in both
// variants, the per-op revoke latency distribution bounds the revocation
// publish latency — its p99 must not regress.
// ---------------------------------------------------------------------------

// SeqcoreConfig sizes the E20 run.
type SeqcoreConfig struct {
	// Procs are the GOMAXPROCS points to measure (workers == procs).
	Procs []int
	// Window is the wall-clock measurement window per (variant, procs)
	// point.
	Window time.Duration
}

// SeqcoreRow is one (variant, procs) throughput measurement.
type SeqcoreRow struct {
	Variant     string  `json:"variant"` // "direct" or "sequencer"
	Procs       int     `json:"procs"`
	Ops         int64   `json:"ops"` // issue+revoke pairs completed
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	RevokeP50Ms float64 `json:"revoke_p50_ms"` // Deactivate call latency
	RevokeP99Ms float64 `json:"revoke_p99_ms"`
}

// SeqcoreResult is the full E20 outcome.
type SeqcoreResult struct {
	Rows []SeqcoreRow `json:"rows"`
	// SpeedupAtMax is sequencer / direct pair throughput at the highest
	// measured proc count (the headline: floor 1.3x).
	SpeedupAtMax float64 `json:"speedup_at_max_procs"`
	// DirectP99Ms / SeqP99Ms are the revoke-latency p99s at the highest
	// proc count; the sequencer must not regress revocation publish
	// latency.
	DirectP99Ms float64 `json:"direct_p99_ms"`
	SeqP99Ms    float64 `json:"seq_p99_ms"`
	// Violations are invariant breaches observed during the run (lost
	// mutations, count mismatches). Must be empty.
	Violations []string `json:"violations,omitempty"`
}

// seqcorePoint measures one variant at one proc count on a fresh world:
// a journaled single service, workers running activate+deactivate pairs.
func seqcorePoint(variant string, mailbox, procs int, window time.Duration) (SeqcoreRow, []string, error) {
	row := SeqcoreRow{Variant: variant, Procs: procs}
	dir, err := os.MkdirTemp("", "e20-seqcore-*")
	if err != nil {
		return row, nil, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck

	dlog, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		return row, nil, err
	}
	defer dlog.Close() //nolint:errcheck
	broker := event.NewBroker()
	defer broker.Close()
	svc, err := core.NewService(core.Config{
		Name:       "login",
		Policy:     policy.MustParse(`login.user <- env ok.`),
		Broker:     broker,
		Journal:    dlog,
		SeqMailbox: mailbox,
	})
	if err != nil {
		return row, nil, err
	}
	defer svc.Close()
	AlwaysTrue(svc, "ok")
	roleUser := Role("login", "user")

	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	var stop atomic.Bool
	var firstErr atomic.Value
	var wg sync.WaitGroup
	lats := make([][]time.Duration, procs)
	counts := make([]int64, procs)
	start := time.Now()
	timer := time.AfterFunc(window, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			principal := fmt.Sprintf("worker_%d", worker)
			for !stop.Load() {
				rmc, err := svc.Activate(principal, roleUser, core.Presented{})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				t0 := time.Now()
				svc.Deactivate(rmc.Ref.Serial, "logout")
				lats[worker] = append(lats[worker], time.Since(t0))
				counts[worker]++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return row, nil, err
	}

	var ops int64
	var all []time.Duration
	for w := 0; w < procs; w++ {
		ops += counts[w]
		all = append(all, lats[w]...)
	}
	if ops == 0 {
		return row, nil, fmt.Errorf("%s at procs=%d: no pairs completed in %v", variant, procs, window)
	}
	row.Ops = ops
	row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	row.OpsPerSec = float64(ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row.RevokeP50Ms = float64(all[len(all)/2].Nanoseconds()) / 1e6
	row.RevokeP99Ms = float64(all[len(all)*99/100].Nanoseconds()) / 1e6

	// Invariants: nothing lost — every pair accounted for in the service
	// stats, and the synced journal replays to exactly the revoked set.
	var violations []string
	st := svc.Stats()
	if st.Activations != uint64(ops) || st.Revocations != uint64(ops) {
		violations = append(violations,
			fmt.Sprintf("%s procs=%d: stats %d/%d activations/revocations, want %d pairs",
				variant, procs, st.Activations, st.Revocations, ops))
	}
	if err := dlog.Sync(); err != nil {
		return row, violations, err
	}
	state, err := durable.ReadState(dir)
	if err != nil {
		return row, violations, err
	}
	ss := state.Services["login"]
	if ss == nil {
		violations = append(violations, fmt.Sprintf("%s procs=%d: journal lost the service", variant, procs))
	} else {
		live, revoked := 0, 0
		for _, cr := range ss.CRs {
			if cr.Revoked {
				revoked++
			} else {
				live++
			}
		}
		if int64(revoked) != ops || live != 0 {
			violations = append(violations,
				fmt.Sprintf("%s procs=%d: journal replay has %d revoked / %d live CRs, want %d / 0",
					variant, procs, revoked, live, ops))
		}
	}
	return row, violations, nil
}

// RunSeqcore measures both variants at every proc point and computes the
// headline speedup and p99 comparison at the highest proc count.
func RunSeqcore(cfg SeqcoreConfig) (*SeqcoreResult, error) {
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1, 8}
	}
	if cfg.Window <= 0 {
		cfg.Window = 1500 * time.Millisecond
	}
	res := &SeqcoreResult{}
	variants := []struct {
		name    string
		mailbox int
	}{
		{"direct", -1},
		{"sequencer", 0},
	}
	best := make(map[string]SeqcoreRow)
	maxProcs := cfg.Procs[len(cfg.Procs)-1]
	for _, v := range variants {
		for _, p := range cfg.Procs {
			row, violations, err := seqcorePoint(v.name, v.mailbox, p, cfg.Window)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			res.Violations = append(res.Violations, violations...)
			if p == maxProcs {
				best[v.name] = row
			}
		}
	}
	d, s := best["direct"], best["sequencer"]
	if d.OpsPerSec > 0 {
		res.SpeedupAtMax = s.OpsPerSec / d.OpsPerSec
	}
	res.DirectP99Ms, res.SeqP99Ms = d.RevokeP99Ms, s.RevokeP99Ms
	return res, nil
}
