package experiments

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/sign"
)

// ---------------------------------------------------------------------------
// E15 — wire hot path: pipelined binary framing, batched callback
// validation, and zero-copy certificate codecs.
//
// Three sections, all over real TCP on the loopback interface:
//
//   single_call_latency  sequential request/response latency of the legacy
//                        lockstep gob protocol vs the pipelined binary
//                        framing (the framing must not tax a lone caller).
//   fanin_validation     authorization throughput when N workers hammer a
//                        guard whose every invocation needs a callback
//                        validation at one issuer — per-call vs batched.
//   codec_bytes          encode+decode cost of the certificate wire codecs,
//                        JSON vs hand-rolled binary: bytes, allocs, ns.
// ---------------------------------------------------------------------------

// WireLatencyRow is one single-call latency measurement.
type WireLatencyRow struct {
	Mode     string  `json:"mode"` // "gob" or "binary"
	Ops      int     `json:"ops"`
	MedianNs float64 `json:"median_ns"`
	P99Ns    float64 `json:"p99_ns"`
}

// WireFaninRow is one fan-in validation throughput measurement.
type WireFaninRow struct {
	Mode               string  `json:"mode"` // "per_call" or "batched"
	Procs              int     `json:"procs"`
	Workers            int     `json:"workers"`
	Invocations        int64   `json:"invocations"`
	OpsPerSec          float64 `json:"ops_per_sec"`
	BatchesSent        uint64  `json:"batches_sent"`
	BatchedValidations uint64  `json:"batched_validations"`
	BytesSentPerOp     float64 `json:"bytes_sent_per_op"` // client->issuer wire bytes per invocation
}

// WireCodecRow is one codec cost measurement.
type WireCodecRow struct {
	Codec       string  `json:"codec"`   // "json" or "binary"
	Payload     string  `json:"payload"` // "rmc" or "appointment"
	BytesPerOp  int     `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// WireResult bundles the three E15 sections (the BENCH_wire.json shape).
type WireResult struct {
	Latency []WireLatencyRow `json:"latency"`
	Fanin   []WireFaninRow   `json:"fanin"`
	Codec   []WireCodecRow   `json:"codec"`
}

// RunWire runs all three sections: latencyOps sequential calls per
// protocol, then the fan-in workload for one window at each GOMAXPROCS
// value, then the codec micro-measurements.
func RunWire(procs []int, latencyOps int, window time.Duration) (WireResult, error) {
	var res WireResult
	for _, mode := range []string{"gob", "binary"} {
		row, err := runWireLatency(mode, latencyOps)
		if err != nil {
			return WireResult{}, fmt.Errorf("latency %s: %w", mode, err)
		}
		res.Latency = append(res.Latency, row)
	}
	for _, p := range procs {
		for _, mode := range []string{"per_call", "batched"} {
			row, err := runWireFanin(mode, p, window, 0)
			if err != nil {
				return WireResult{}, fmt.Errorf("fanin %s procs=%d: %w", mode, p, err)
			}
			res.Fanin = append(res.Fanin, row)
		}
	}
	codec, err := runWireCodec()
	if err != nil {
		return WireResult{}, fmt.Errorf("codec: %w", err)
	}
	res.Codec = codec
	return res, nil
}

// startWireServer serves the given handlers on a loopback listener and
// returns the address and a shutdown func.
func startWireServer(handlers map[string]rpc.Handler) (string, func(), error) {
	srv := rpc.NewTCPServer()
	for name, h := range handlers {
		srv.Register(name, h)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the test server
	return ln.Addr().String(), srv.Close, nil
}

// runWireLatency measures sequential single-call latency over one
// protocol. The payload is sized like a typical certificate validation
// body so framing overhead is measured against realistic traffic.
func runWireLatency(mode string, ops int) (WireLatencyRow, error) {
	addr, shutdown, err := startWireServer(map[string]rpc.Handler{
		"wire": func(method string, body []byte) ([]byte, error) { return body, nil },
	})
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer shutdown()

	dial := rpc.DialTCP
	if mode == "gob" {
		dial = rpc.DialTCPGob
	}
	cli, err := dial(addr, 5*time.Second)
	if err != nil {
		return WireLatencyRow{}, err
	}
	defer cli.Close() //nolint:errcheck

	payload := bytes.Repeat([]byte{0x42}, 300)
	for i := 0; i < 50; i++ { // warm the connection and the runtime
		if _, err := cli.Call("wire", "echo", payload); err != nil {
			return WireLatencyRow{}, err
		}
	}
	lat := make([]float64, ops)
	for i := range lat {
		start := time.Now()
		if _, err := cli.Call("wire", "echo", payload); err != nil {
			return WireLatencyRow{}, err
		}
		lat[i] = float64(time.Since(start).Nanoseconds())
	}
	sort.Float64s(lat)
	return WireLatencyRow{
		Mode:     mode,
		Ops:      ops,
		MedianNs: lat[len(lat)/2],
		P99Ns:    lat[len(lat)*99/100],
	}, nil
}

// runWireFanin measures authorization throughput with every invocation
// requiring a callback validation at a TCP-remote issuer. "per_call"
// disables coalescing (BatchWindow < 0); "batched" uses batchWindow (0
// selects the default), so concurrent misses ride validate_batch frames.
func runWireFanin(mode string, procs int, window, batchWindow time.Duration) (WireFaninRow, error) {
	broker := event.NewBroker()
	defer broker.Close()
	clk := clock.NewSimulated(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC))

	login, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(`login.user <- env ok.`),
		Broker: broker,
		Clock:  clk,
	})
	if err != nil {
		return WireFaninRow{}, err
	}
	defer login.Close()
	AlwaysTrue(login, "ok")

	addr, shutdown, err := startWireServer(map[string]rpc.Handler{"login": login.Handler()})
	if err != nil {
		return WireFaninRow{}, err
	}
	defer shutdown()

	reg := obs.NewRegistry()
	dir := rpc.NewDirectory(5 * time.Second)
	defer dir.Close()
	dir.Add("login", addr)
	dir.Instrument(reg)

	if mode == "per_call" {
		batchWindow = -1
	}
	guard, err := core.NewService(core.Config{
		Name:        "guard",
		Policy:      policy.MustParse(`auth enter <- login.user.`),
		Broker:      broker,
		Caller:      dir,
		Clock:       clk,
		BatchWindow: batchWindow,
	})
	if err != nil {
		return WireFaninRow{}, err
	}
	defer guard.Close()

	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	workers := 64 * procs

	// One session per worker: a fan-in storm is many distinct sessions
	// (re)validating against one issuer at once, not one session in a
	// loop — and distinct principals also spread the guard's sharded
	// session state the way real traffic does.
	principals := make([]string, workers)
	credentials := make([]core.Presented, workers)
	for w := 0; w < workers; w++ {
		sess := NewSession()
		principals[w] = sess.PrincipalID()
		rmc, err := login.Activate(principals[w], Role("login", "user"), core.Presented{})
		if err != nil {
			return WireFaninRow{}, err
		}
		sess.AddRMC(rmc)
		credentials[w] = sess.Credentials()
	}
	if _, err := guard.Invoke(principals[0], "enter", nil, credentials[0]); err != nil {
		return WireFaninRow{}, err
	}

	var stop atomic.Bool
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	bytesBefore := reg.Counter(`rpc_bytes_sent_total{side="client"}`).Value()
	start := time.Now()
	timer := time.AfterFunc(window, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				if _, err := guard.Invoke(principals[w], "enter", nil, credentials[w]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					break
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return WireFaninRow{}, err
	}
	ops := total.Load()
	if ops == 0 {
		return WireFaninRow{}, fmt.Errorf("no invocations completed in %v", window)
	}
	stats := guard.Stats()
	bytesSent := reg.Counter(`rpc_bytes_sent_total{side="client"}`).Value() - bytesBefore
	return WireFaninRow{
		Mode:               mode,
		Procs:              procs,
		Workers:            workers,
		Invocations:        ops,
		OpsPerSec:          float64(ops) / elapsed.Seconds(),
		BatchesSent:        stats.BatchesSent,
		BatchedValidations: stats.BatchedValidations,
		BytesSentPerOp:     float64(bytesSent) / float64(ops),
	}, nil
}

// runWireCodec measures encode+decode round trips of the certificate wire
// codecs. Fixtures carry a parametrised role / parameters so the codec
// exercises strings, ints and times, not just the fixed fields.
func runWireCodec() ([]WireCodecRow, error) {
	ring, err := sign.NewKeyRing(2, nil)
	if err != nil {
		return nil, err
	}
	role := names.MustRole(names.MustRoleName("hospital", "doctor", 2),
		names.Atom("cardiology"), names.Int(4))
	rmc, err := cert.IssueRMC(ring, "dr_jones", role, cert.CRR{Issuer: "hospital", Serial: 87})
	if err != nil {
		return nil, err
	}
	appt, err := cert.IssueAppointment(ring, cert.AppointmentCertificate{
		Issuer:      "hospital",
		Serial:      12,
		Kind:        "locum",
		Params:      []names.Term{names.Atom("ward9")},
		Holder:      "dr_smith",
		AppointedBy: "dr_jones",
		IssuedAt:    time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC),
		ExpiresAt:   time.Date(2001, 11, 13, 9, 0, 0, 0, time.UTC),
	})
	if err != nil {
		return nil, err
	}

	type codecOp struct {
		codec, payload string
		size           func() (int, error)
		op             func() error
	}
	ops := []codecOp{
		{"json", "rmc",
			func() (int, error) { b, err := cert.MarshalRMC(rmc); return len(b), err },
			func() error {
				b, err := cert.MarshalRMC(rmc)
				if err != nil {
					return err
				}
				_, err = cert.UnmarshalRMC(b)
				return err
			}},
		{"binary", "rmc",
			func() (int, error) { return len(cert.EncodeRMCBinary(rmc)), nil },
			func() error {
				_, err := cert.DecodeRMCBinary(cert.EncodeRMCBinary(rmc))
				return err
			}},
		{"json", "appointment",
			func() (int, error) { b, err := cert.MarshalAppointment(appt); return len(b), err },
			func() error {
				b, err := cert.MarshalAppointment(appt)
				if err != nil {
					return err
				}
				_, err = cert.UnmarshalAppointment(b)
				return err
			}},
		{"binary", "appointment",
			func() (int, error) { return len(cert.EncodeAppointmentBinary(appt)), nil },
			func() error {
				_, err := cert.DecodeAppointmentBinary(cert.EncodeAppointmentBinary(appt))
				return err
			}},
	}

	var rows []WireCodecRow
	for _, c := range ops {
		size, err := c.size()
		if err != nil {
			return nil, err
		}
		if err := c.op(); err != nil {
			return nil, err
		}
		allocs := testing.AllocsPerRun(2000, func() {
			if err := c.op(); err != nil {
				panic(err)
			}
		})
		const iters = 20000
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.op(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, WireCodecRow{
			Codec:       c.codec,
			Payload:     c.payload,
			BytesPerOp:  size,
			AllocsPerOp: allocs,
			NsPerOp:     float64(time.Since(start).Nanoseconds()) / iters,
		})
	}
	return rows, nil
}
