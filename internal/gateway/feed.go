package gateway

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// EdgeFeed maintains the revocation-event subscriptions that make an
// EdgeCache safe to serve hits from. It opens one subscribe_events
// stream per backend address on a dedicated single-connection client
// (so Close tears exactly that connection down, which is what triggers
// the server-side stop func) and drives the cache's fail-closed
// lifecycle:
//
//   - the cache is Attached only while ALL backends' streams are live —
//     a cached verdict may cover a credential issued by any backend, so
//     one dead stream means events can be missed for some keys;
//   - the moment any stream drops, the cache is Detached (hits stop,
//     full flush) and stays bypassing to the issuer until every stream
//     is re-established, at which point Attach flushes again and
//     re-enables caching.
//
// Reconnection is per-address with exponential backoff. The feed never
// fails permanently: an edge outliving a backend restart resubscribes
// and resumes caching by itself.
type EdgeFeed struct {
	cache   *core.EdgeCache
	addrs   []string
	timeout time.Duration

	// backoff bounds for the per-address reconnect loop; tests shrink
	// them.
	baseBackoff time.Duration
	maxBackoff  time.Duration

	connects    *obs.Counter
	disconnects *obs.Counter
	events      *obs.Counter

	mu sync.Mutex
	up map[string]bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewEdgeFeed builds (without starting) a feed that keeps cache attached
// to the revocation streams of addrs. timeout is the per-connection
// dial/subscribe budget. reg may be nil.
func NewEdgeFeed(cache *core.EdgeCache, addrs []string, timeout time.Duration, reg *obs.Registry) *EdgeFeed {
	// Deduplicate: the up-set is keyed by address, so a repeated address
	// would make the all-streams-up count unreachable (and one of its
	// loops would double-subscribe for no coverage gain).
	uniq := make([]string, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			uniq = append(uniq, a)
		}
	}
	return &EdgeFeed{
		cache:       cache,
		addrs:       uniq,
		timeout:     timeout,
		baseBackoff: 100 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		connects:    reg.Counter("gw_feed_connects_total"),
		disconnects: reg.Counter("gw_feed_disconnects_total"),
		events:      reg.Counter("gw_feed_events_total"),
		up:          make(map[string]bool),
		stop:        make(chan struct{}),
	}
}

// Run starts the per-address subscription loops. Call once.
func (f *EdgeFeed) Run() {
	for _, addr := range f.addrs {
		f.wg.Add(1)
		go f.runAddr(addr)
	}
}

// Close ends every subscription (tearing their dedicated connections
// down, which runs the server-side stops) and leaves the cache detached.
func (f *EdgeFeed) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	f.cache.Detach()
}

// runAddr is one address's connect → subscribe → wait → backoff loop.
func (f *EdgeFeed) runAddr(addr string) {
	defer f.wg.Done()
	backoff := f.baseBackoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		st, cli, err := f.subscribe(addr)
		if err != nil {
			if !f.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > f.maxBackoff {
				backoff = f.maxBackoff
			}
			continue
		}
		backoff = f.baseBackoff
		f.connects.Inc()
		f.markUp(addr)
		select {
		case <-st.Done():
			// Stream died under us: fail closed before reconnecting.
			f.disconnects.Inc()
			f.markDown(addr)
			cli.Close()
		case <-f.stop:
			f.markDown(addr)
			cli.Close()
			return
		}
	}
}

// subscribe dials addr on a fresh single-connection client and opens the
// event stream on it. Event payloads flow straight into the cache; a
// payload that fails to decode is counted nowhere and ignored — the
// cache stays safe because unseen events only ever mean a missed
// invalidation for an entry the stream's death will flush anyway, and a
// corrupt frame kills the connection at the rpc layer regardless.
func (f *EdgeFeed) subscribe(addr string) (*rpc.ClientStream, *rpc.TCPClient, error) {
	cli, err := rpc.DialTCP(addr, f.timeout)
	if err != nil {
		return nil, nil, err
	}
	st, err := cli.Stream(event.FeedService, event.FeedMethod, nil, func(b []byte) {
		ev, err := event.UnmarshalEvent(b)
		if err != nil {
			return
		}
		f.events.Inc()
		f.cache.HandleEvent(ev)
	})
	if err != nil {
		cli.Close()
		return nil, nil, err
	}
	return st, cli, nil
}

// markUp records addr's stream as live; when that completes the set the
// cache attaches (flushing first — anything filled while detached
// predates full subscription coverage).
//
// The up-set decision and the cache transition happen atomically under
// f.mu: deciding "all up" and then attaching outside the lock would let
// a concurrent markDown's Detach land in the window, after which the
// delayed Attach would re-enable hits with a backend stream down.
// EdgeCache never calls back into the feed, so holding f.mu across the
// cache call cannot deadlock.
func (f *EdgeFeed) markUp(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.up[addr] = true
	if len(f.up) == len(f.addrs) {
		f.cache.Attach()
	}
}

// markDown records addr's stream as dead and detaches the cache — one
// missing subscription is enough to make any hit unsafe. Atomic under
// f.mu for the same reason as markUp.
func (f *EdgeFeed) markDown(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.up[addr] {
		delete(f.up, addr)
		f.cache.Detach()
	}
}

// sleep waits d or until Close; false means the feed is stopping.
func (f *EdgeFeed) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return false
	}
}
