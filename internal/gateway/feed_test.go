package gateway

// End-to-end tests of the event-fed edge verdict cache: the full
// cmd/oasisgw topology with caching on — HTTP -> gateway -> EdgeCache
// -> pooled TCP -> core service, with an EdgeFeed subscribed to the
// backend's revocation stream on a separate listener so the feed can be
// severed without touching the validate path.

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// feedBackend is a backend with its revocation feed served on a second
// listener, mirroring oasisd (one process, the feed stream registered
// alongside the service) while letting tests kill the feed alone.
type feedBackend struct {
	svc      *core.Service
	broker   *event.Broker
	feed     *event.Feed
	addr     string // validate/activate server
	feedAddr string // subscribe_events server
	feedSrv  *rpc.TCPServer
}

func startFeedBackend(t *testing.T) *feedBackend {
	t.Helper()
	broker := event.NewBroker()
	t.Cleanup(broker.Close)
	svc, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(`login.user <- env ok.`),
		Broker: broker,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})

	srv := rpc.NewTCPServer()
	srv.Register("login", svc.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the test server
	t.Cleanup(srv.Close)

	fb := &feedBackend{svc: svc, broker: broker, addr: ln.Addr().String()}
	fb.feed = event.NewFeed(broker, 64)
	t.Cleanup(fb.feed.Close)
	fb.startFeedServer(t, "127.0.0.1:0")
	return fb
}

// startFeedServer serves the subscribe_events stream on addr, exactly as
// cmd/oasisd registers it.
func (fb *feedBackend) startFeedServer(t *testing.T, addr string) {
	t.Helper()
	srv := rpc.NewTCPServer()
	srv.RegisterStream(event.FeedService, event.FeedMethod,
		func(method string, body []byte, send func([]byte) error) (func(), error) {
			return fb.feed.Subscribe(send)
		})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the test server
	t.Cleanup(srv.Close)
	fb.feedSrv = srv
	fb.feedAddr = ln.Addr().String()
}

// severFeed kills the feed listener and every live stream on it; the
// validate path stays up.
func (fb *feedBackend) severFeed() { fb.feedSrv.Close() }

// restoreFeed rebinds the freed feed port so the edge's reconnect loop
// finds the backend again at the address it was configured with.
func (fb *feedBackend) restoreFeed(t *testing.T) { fb.startFeedServer(t, fb.feedAddr) }

// cachedEdge is an edge with the verdict cache and its feed running.
type cachedEdge struct {
	*edge
	cache *core.EdgeCache
	feed  *EdgeFeed
}

func startCachedEdge(t *testing.T, fb *feedBackend) *cachedEdge {
	t.Helper()
	dir := rpc.NewDirectoryPool(5*time.Second, 2)
	t.Cleanup(dir.Close)
	dir.Add("login", fb.addr)
	reg := obs.NewRegistry()
	validator := core.NewRemoteValidator("edge", dir, 0, reg)
	cache := core.NewEdgeCache(validator, 1024)
	feed := NewEdgeFeed(cache, []string{fb.feedAddr}, 2*time.Second, reg)
	feed.baseBackoff = 5 * time.Millisecond
	feed.maxBackoff = 50 * time.Millisecond
	feed.Run()
	t.Cleanup(feed.Close)

	gw, err := New(Config{
		Caller:    dir,
		Validator: validator,
		Cache:     cache,
		Services:  []string{"login"},
		Obs:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &cachedEdge{
		edge:  &edge{gw: gw, validator: validator, reg: reg, url: ts.URL, client: ts.Client()},
		cache: cache,
		feed:  feed,
	}
}

func waitForCache(t *testing.T, what string, cond func(core.EdgeCacheStats) bool, cache *core.EdgeCache) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(cache.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; cache stats %+v", what, cache.Stats())
}

// TestEdgeFeedAttachDetachAtomic hammers the up/down transitions. They
// used to decide "all streams up" under the lock but call Attach after
// releasing it, so a concurrent markDown's Detach could land in the
// window and be overtaken by the delayed Attach — hits re-enabled with a
// backend stream down. Every goroutine ends on markDown, so once they
// join the cache must not be live, whatever the interleaving was.
func TestEdgeFeedAttachDetachAtomic(t *testing.T) {
	cache := core.NewEdgeCache(nil, 0)
	f := NewEdgeFeed(cache, []string{"a", "b"}, time.Second, nil)
	f.markUp("a")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.markUp("b")
				f.markDown("b")
			}
		}()
	}
	wg.Wait()
	if cache.Stats().Live {
		t.Fatal("cache live after final markDown — an Attach overtook a Detach")
	}
	f.markUp("b")
	if !cache.Stats().Live {
		t.Fatal("cache not live with every stream up")
	}
}

// TestEdgeFeedDedupesAddrs: a repeated backend address must not make the
// all-streams-up count unreachable (the up-set is keyed by address).
func TestEdgeFeedDedupesAddrs(t *testing.T) {
	f := NewEdgeFeed(core.NewEdgeCache(nil, 0), []string{"a", "b", "a"}, time.Second, nil)
	if len(f.addrs) != 2 {
		t.Fatalf("addrs = %v, want deduplicated to 2", f.addrs)
	}
	f.markUp("a")
	f.markUp("b")
	if !f.cache.Stats().Live {
		t.Fatal("cache not live with both unique addresses up")
	}
}

// TestGatewayCacheKillTheCert is the kill-the-cert e2e: a cached verdict
// must die by revocation event, not by TTL, and the next introspection
// must be the issuer's authoritative refusal.
func TestGatewayCacheKillTheCert(t *testing.T) {
	fb := startFeedBackend(t)
	e := startCachedEdge(t, fb)
	waitForCache(t, "feed live", func(s core.EdgeCacheStats) bool { return s.Live }, e.cache)

	rmc := activateAt(t, &backend{svc: fb.svc}, "alice-key")
	req := ValidateRequest{Principal: "alice-key", RMC: &rmc}
	var verdict ValidateResponse
	for i := 0; i < 3; i++ {
		if code := e.post(t, "/validate", req, &verdict); code != http.StatusOK || !verdict.Valid {
			t.Fatalf("validate %d: status %d, verdict %+v", i, code, verdict)
		}
	}
	if st := e.cache.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache stats after 3 validations = %+v, want 1 miss / 2 hits", st)
	}
	if e.reg.Value("gw_cache_hits_total") != 2 {
		t.Errorf("gw_cache_hits_total = %d, want 2", e.reg.Value("gw_cache_hits_total"))
	}

	// Kill the cert at the issuer. No validate traffic flows; the verdict
	// must die from the event alone.
	fb.svc.Deactivate(rmc.Ref.Serial, "kill the cert")
	waitForCache(t, "event invalidation",
		func(s core.EdgeCacheStats) bool { return s.Invalidations >= 1 }, e.cache)

	if code := e.post(t, "/validate", req, &verdict); code != http.StatusOK {
		t.Fatalf("validate after revocation: status %d", code)
	}
	if verdict.Valid || verdict.Reason == "" {
		t.Fatalf("revoked cert verdict = %+v, want authoritative refusal", verdict)
	}
	if st := e.cache.Stats(); st.Hits != 2 {
		t.Errorf("revoked cert served from cache: %+v", st)
	}
}

// TestGatewayCacheSubscriptionLossFlushes severs the feed mid-traffic: the
// cache must fail closed — flush, stop hitting, answer from the issuer —
// and a revocation missed during the outage must never surface as a stale
// cached positive, before or after the feed reconnects.
func TestGatewayCacheSubscriptionLossFlushes(t *testing.T) {
	fb := startFeedBackend(t)
	e := startCachedEdge(t, fb)
	waitForCache(t, "feed live", func(s core.EdgeCacheStats) bool { return s.Live }, e.cache)

	rmc := activateAt(t, &backend{svc: fb.svc}, "alice-key")
	req := ValidateRequest{Principal: "alice-key", RMC: &rmc}
	var verdict ValidateResponse
	for i := 0; i < 2; i++ {
		if code := e.post(t, "/validate", req, &verdict); code != http.StatusOK || !verdict.Valid {
			t.Fatalf("warm-up validate %d: status %d, verdict %+v", i, code, verdict)
		}
	}
	if st := e.cache.Stats(); st.Hits != 1 {
		t.Fatalf("cache not serving before the cut: %+v", st)
	}

	fb.severFeed()
	waitForCache(t, "detach on stream loss",
		func(s core.EdgeCacheStats) bool { return !s.Live && s.Entries == 0 }, e.cache)

	// Revoke while the feed is down: the event is lost, and must not
	// matter — every validation now bypasses to the issuer.
	fb.svc.Deactivate(rmc.Ref.Serial, "revoked during outage")
	hitsBefore := e.cache.Stats().Hits
	if code := e.post(t, "/validate", req, &verdict); code != http.StatusOK {
		t.Fatalf("validate with feed down: status %d", code)
	}
	if verdict.Valid {
		t.Fatal("stale cached positive served while the feed was down")
	}
	st := e.cache.Stats()
	if st.Hits != hitsBefore || st.Bypassed == 0 {
		t.Fatalf("feed-down validation did not bypass: %+v", st)
	}

	// A still-valid cert also answers from the issuer, uncached.
	bob := activateAt(t, &backend{svc: fb.svc}, "bob-key")
	bobReq := ValidateRequest{Principal: "bob-key", RMC: &bob}
	if code := e.post(t, "/validate", bobReq, &verdict); code != http.StatusOK || !verdict.Valid {
		t.Fatalf("feed-down validate of valid cert: status %d, verdict %+v", code, verdict)
	}
	if e.cache.Stats().Hits != hitsBefore {
		t.Fatal("cache hit while detached")
	}

	// Reconnect: the feed loop finds the rebound port, resubscribes, and
	// Attach flushes before re-enabling — the revoked cert stays refused.
	fb.restoreFeed(t)
	waitForCache(t, "reattach after reconnect",
		func(s core.EdgeCacheStats) bool { return s.Live }, e.cache)
	if code := e.post(t, "/validate", req, &verdict); code != http.StatusOK || verdict.Valid {
		t.Fatalf("revoked cert after reconnect: status %d, verdict %+v", code, verdict)
	}
	// Caching resumes for live certificates.
	for i := 0; i < 2; i++ {
		if code := e.post(t, "/validate", bobReq, &verdict); code != http.StatusOK || !verdict.Valid {
			t.Fatalf("post-reconnect validate %d: status %d, verdict %+v", i, code, verdict)
		}
	}
	if e.cache.Stats().Hits <= hitsBefore {
		t.Errorf("caching did not resume after reconnect: %+v", e.cache.Stats())
	}
}
