// Package gateway is the HTTP/JSON edge of the OASIS reproduction: a
// warden-style validation API (token-introspection shaped, after Ory
// Hydra's warden endpoints) that lets anything speaking HTTP — browsers,
// microservices, load balancers — use the paper's operations without
// the binary OW2 protocol. cmd/oasisgw serves it as a standalone edge
// tier; oasisd mounts the same handler in-process under -http-addr.
//
//	POST /validate   RMC / appointment introspection -> {"valid":bool}
//	POST /activate   role activation -> the issued RMC
//	POST /appoint    appointment issuance -> the issued certificate
//	POST /revoke     credential-record revocation by serial
//	GET  /healthz    liveness + per-backend circuit state
//	GET  /metrics    the obs registry, when one is configured
//
// Trust model: the gateway translates and admits, it does not
// authenticate. Certificates validate end-to-end (signatures are
// checked by the issuing service), so a forged /validate body gains
// nothing; but /activate, /appoint and /revoke reach the same trusted
// methods a Go peer could call, so the gateway belongs behind the same
// boundary as oasisd itself (see THREATMODEL.md).
//
// Edge concerns live here, not in the core: per-principal token-bucket
// rate limiting (429), an inflight admission cap (503) so overload
// sheds instead of queueing without bound, body-size limits, and
// per-endpoint latency/outcome metrics. Backend traffic rides the
// PR 5 hot path: concurrent /validate requests coalesce into
// validate_batch flights through core.RemoteValidator, over whatever
// pooled transport the caller was built on.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// DefaultMaxBodyBytes caps request bodies; every request here is a small
// JSON document (a certificate is ~300 bytes on the wire).
const DefaultMaxBodyBytes = 1 << 20

// BreakerReporter is the slice of rpc.ResilientCaller the health
// endpoint uses; any caller that tracks per-service circuit state fits.
type BreakerReporter interface {
	BreakerState(service string) rpc.BreakerState
}

// Config assembles a Gateway.
type Config struct {
	// Caller carries activate/appoint/revoke calls to the backends
	// (normally a ResilientCaller over a pooled TCP directory).
	Caller rpc.Caller
	// Validator coalesces /validate traffic into validate_batch
	// flights. Required; build it over the same transport as Caller.
	Validator *core.RemoteValidator
	// Cache, when set, serves /validate through an event-invalidated
	// EdgeCache wrapping Validator. The gateway only routes through it;
	// lifecycle (Attach on subscription, Detach on stream loss) belongs
	// to whoever owns the event feed (EdgeFeed in cmd/oasisgw, a direct
	// broker tap in oasisd's embedded mode). Detached, the cache
	// bypasses itself to the validator — PR 7 behavior.
	Cache *core.EdgeCache
	// Services names the backends this gateway fronts, for /healthz.
	Services []string
	// Breaker, when set, reports per-backend circuit state on /healthz.
	Breaker BreakerReporter

	// RatePerSec and Burst shape the per-principal token bucket
	// (requests/second sustained, bucket capacity). 0 disables rate
	// limiting.
	RatePerSec float64
	Burst      int
	// MaxInflight caps concurrently processed requests; excess is shed
	// with 503 before any backend work. 0 disables the cap.
	MaxInflight int
	// MaxBodyBytes caps request bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64

	// Obs, when set, records per-endpoint latency histograms, outcome
	// counters and admission drops, and serves /metrics.
	Obs *obs.Registry
	// Now is the clock (tests); nil selects time.Now.
	Now func() time.Time
}

// Gateway translates HTTP edge traffic into the binary backend protocol.
type Gateway struct {
	caller    rpc.Caller
	validator *core.RemoteValidator
	cache     *core.EdgeCache
	services  []string
	breaker   BreakerReporter

	limiter  *limiter
	inflight chan struct{}
	maxBody  int64

	reg          *obs.Registry
	inflightG    *obs.Gauge
	dropOverload *obs.Counter
	dropRate     *obs.Counter
}

// New builds a Gateway from cfg. Caller and Validator are required.
func New(cfg Config) (*Gateway, error) {
	if cfg.Caller == nil {
		return nil, errors.New("gateway: Config.Caller is required")
	}
	if cfg.Validator == nil {
		return nil, errors.New("gateway: Config.Validator is required")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	g := &Gateway{
		caller:    cfg.Caller,
		validator: cfg.Validator,
		cache:     cfg.Cache,
		services:  append([]string(nil), cfg.Services...),
		breaker:   cfg.Breaker,
		limiter:   newLimiter(cfg.RatePerSec, cfg.Burst, now),
		maxBody:   cfg.MaxBodyBytes,
		reg:       cfg.Obs,
	}
	if g.maxBody <= 0 {
		g.maxBody = DefaultMaxBodyBytes
	}
	if cfg.MaxInflight > 0 {
		g.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	g.inflightG = cfg.Obs.Gauge("gw_inflight")
	g.dropOverload = cfg.Obs.Counter(`gw_admission_dropped_total{reason="overload"}`)
	g.dropRate = cfg.Obs.Counter(`gw_admission_dropped_total{reason="ratelimit"}`)
	if g.cache != nil && cfg.Obs != nil {
		for _, m := range []struct {
			name string
			load func(core.EdgeCacheStats) uint64
		}{
			{"gw_cache_hits_total", func(s core.EdgeCacheStats) uint64 { return s.Hits }},
			{"gw_cache_misses_total", func(s core.EdgeCacheStats) uint64 { return s.Misses }},
			{"gw_cache_bypassed_total", func(s core.EdgeCacheStats) uint64 { return s.Bypassed }},
			{"gw_cache_invalidations_total", func(s core.EdgeCacheStats) uint64 { return s.Invalidations }},
			{"gw_cache_flushes_total", func(s core.EdgeCacheStats) uint64 { return s.Flushes }},
			{"gw_cache_evictions_total", func(s core.EdgeCacheStats) uint64 { return s.Evictions }},
			{"gw_cache_entries", func(s core.EdgeCacheStats) uint64 { return uint64(s.Entries) }},
			{"gw_cache_live", func(s core.EdgeCacheStats) uint64 {
				if s.Live {
					return 1
				}
				return 0
			}},
		} {
			load := m.load
			cfg.Obs.Func(m.name, func() uint64 { return load(g.cache.Stats()) })
		}
	}
	return g, nil
}

// ValidateRequest asks for an authoritative verdict on exactly one
// certificate — an RMC with its presenting principal, or an appointment.
type ValidateRequest struct {
	Principal   string                       `json:"principal,omitempty"`
	RMC         *cert.RMC                    `json:"rmc,omitempty"`
	Appointment *cert.AppointmentCertificate `json:"appointment,omitempty"`
}

// ValidateResponse is the introspection verdict. Invalid certificates
// answer 200 with Valid=false — a refusal is a successful introspection,
// exactly as in OAuth token introspection.
type ValidateResponse struct {
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

// ActivateRequest wraps the core activation request with the target
// service (the role's issuer).
type ActivateRequest struct {
	Service string `json:"service"`
	core.RemoteActivateRequest
}

// AppointRequest wraps the core appointment request with the target
// service (the appointment's issuer).
type AppointRequest struct {
	Service string `json:"service"`
	core.RemoteAppointRequest
}

// RevokeRequest names a credential record at a service.
type RevokeRequest struct {
	Service string `json:"service"`
	Serial  uint64 `json:"serial"`
	Reason  string `json:"reason,omitempty"`
}

// errorResponse is the JSON error envelope for non-2xx answers.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler builds the gateway's HTTP mux.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/validate", g.endpoint("validate", g.handleValidate))
	mux.Handle("/activate", g.endpoint("activate", g.handleActivate))
	mux.Handle("/appoint", g.endpoint("appoint", g.handleAppoint))
	mux.Handle("/revoke", g.endpoint("revoke", g.handleRevoke))
	mux.HandleFunc("/healthz", g.handleHealthz)
	if g.reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := g.reg.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "oasis edge gateway:\n  POST /validate\n  POST /activate\n  POST /appoint\n  POST /revoke\n  GET /healthz\n  GET /metrics\n")
	})
	return mux
}

// endpointFunc handles one parsed request and returns the HTTP status it
// wrote (for the outcome counters).
type endpointFunc func(w http.ResponseWriter, r *http.Request) int

// endpoint wraps a handler with the edge pipeline: method check,
// admission (inflight cap), latency histogram and outcome counters. Rate
// limiting happens inside the handlers, after the principal is parsed.
func (g *Gateway) endpoint(name string, h endpointFunc) http.Handler {
	hist := g.reg.Histogram(`gw_request_ns{endpoint="`+name+`"}`, nil)
	codes := make(map[int]*obs.Counter)
	for _, c := range []int{
		http.StatusOK, http.StatusBadRequest, http.StatusForbidden,
		http.StatusNotFound, http.StatusTooManyRequests,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusMethodNotAllowed,
	} {
		codes[c] = g.reg.Counter(fmt.Sprintf(`gw_requests_total{endpoint=%q,code="%d"}`, name, c))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := g.admit(w, r, func() int { return h(w, r) })
		hist.ObserveSince(start)
		if c, ok := codes[code]; ok {
			c.Inc()
		} else {
			g.reg.Counter(fmt.Sprintf(`gw_requests_total{endpoint=%q,code="%d"}`, name, code)).Inc()
		}
	})
}

// admit runs the request through method and overload admission.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, run func() int) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
	}
	if g.inflight != nil {
		select {
		case g.inflight <- struct{}{}:
			g.inflightG.Add(1)
			defer func() { <-g.inflight; g.inflightG.Add(-1) }()
		default:
			// Shed, don't queue: under overload a bounded 503 rate keeps
			// the admitted requests' latency flat (E17 measures this)
			// where queueing would melt every caller's deadline.
			g.dropOverload.Inc()
			w.Header().Set("Retry-After", "1")
			return writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "gateway overloaded"})
		}
	}
	return run()
}

// ratelimit enforces the per-principal bucket; it reports whether the
// request may proceed and writes the 429 if not. The Retry-After header
// is computed from the key's actual token deficit, not a fixed guess.
func (g *Gateway) ratelimit(w http.ResponseWriter, key string) (ok bool, code int) {
	admitted, retryAfter := g.limiter.allow(key)
	if admitted {
		return true, 0
	}
	g.dropRate.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	return false, writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "rate limit exceeded for " + key})
}

// decode reads one JSON request body within the size cap.
func (g *Gateway) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, g.maxBody)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

func (g *Gateway) handleValidate(w http.ResponseWriter, r *http.Request) int {
	var req ValidateRequest
	if err := g.decode(w, r, &req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
	}
	if (req.RMC == nil) == (req.Appointment == nil) {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "exactly one of rmc or appointment is required"})
	}
	key := req.Principal
	if key == "" && req.Appointment != nil {
		key = req.Appointment.Holder
	}
	if ok, code := g.ratelimit(w, key); !ok {
		return code
	}
	var err error
	switch {
	case g.cache != nil && req.RMC != nil:
		err = g.cache.ValidateRMC(*req.RMC, req.Principal)
	case g.cache != nil:
		err = g.cache.ValidateAppointment(*req.Appointment)
	case req.RMC != nil:
		err = g.validator.ValidateRMC(*req.RMC, req.Principal)
	default:
		err = g.validator.ValidateAppointment(*req.Appointment)
	}
	switch {
	case err == nil:
		return writeJSON(w, http.StatusOK, ValidateResponse{Valid: true})
	case errors.Is(err, core.ErrRevoked):
		return writeJSON(w, http.StatusOK, ValidateResponse{Valid: false, Reason: err.Error()})
	default:
		return g.upstreamError(w, err)
	}
}

func (g *Gateway) handleActivate(w http.ResponseWriter, r *http.Request) int {
	var req ActivateRequest
	if err := g.decode(w, r, &req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
	}
	if req.Service == "" || req.Principal == "" {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "service and principal are required"})
	}
	if ok, code := g.ratelimit(w, req.Principal); !ok {
		return code
	}
	return g.forward(w, req.Service, "activate", req.RemoteActivateRequest)
}

func (g *Gateway) handleAppoint(w http.ResponseWriter, r *http.Request) int {
	var req AppointRequest
	if err := g.decode(w, r, &req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
	}
	if req.Service == "" || req.Principal == "" {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "service and principal are required"})
	}
	if ok, code := g.ratelimit(w, req.Principal); !ok {
		return code
	}
	return g.forward(w, req.Service, "appoint", req.RemoteAppointRequest)
}

func (g *Gateway) handleRevoke(w http.ResponseWriter, r *http.Request) int {
	var req RevokeRequest
	if err := g.decode(w, r, &req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
	}
	if req.Service == "" {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "service is required"})
	}
	// Revocation has no principal; the bucket key is the target service,
	// which bounds revocation storms per backend.
	if ok, code := g.ratelimit(w, "svc:"+req.Service); !ok {
		return code
	}
	return g.forward(w, req.Service, "revoke", core.RemoteRevokeRequest{Serial: req.Serial, Reason: req.Reason})
}

// forward marshals a backend request, performs the call, and relays the
// backend's JSON response verbatim.
func (g *Gateway) forward(w http.ResponseWriter, service, method string, req any) int {
	body, err := json.Marshal(req)
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{Error: "encode: " + err.Error()})
	}
	out, err := g.caller.Call(service, method, body)
	if err != nil {
		return g.upstreamError(w, err)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(out) //nolint:errcheck // client gone; nothing to do
	return http.StatusOK
}

// upstreamError maps a backend error onto an edge status: a RemoteError
// proves the backend ran and refused (403, or 400 for a body it could
// not decode), unknown services are 404, timeouts 504, and everything
// else that kept the call from completing is 502.
func (g *Gateway) upstreamError(w http.ResponseWriter, err error) int {
	var re *rpc.RemoteError
	switch {
	case errors.As(err, &re):
		code := http.StatusForbidden
		if strings.HasPrefix(re.Msg, "decode:") {
			code = http.StatusBadRequest
		}
		return writeJSON(w, code, errorResponse{Error: re.Error()})
	case errors.Is(err, rpc.ErrUnknownService):
		return writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case errors.Is(err, rpc.ErrCallTimeout):
		return writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	default:
		return writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
	}
}

// healthzResponse reports liveness and per-backend circuit state.
type healthzResponse struct {
	Status   string            `json:"status"`
	Backends map[string]string `json:"backends,omitempty"`
}

// handleHealthz is exempt from admission: a load balancer must be able
// to probe an overloaded gateway and see it alive (shedding is not
// dead). A partial backend outage still answers 200 "ok" — the gateway
// can serve the surviving services, and pulling it from rotation would
// only shrink capacity further — but when EVERY backend breaker is open
// the gateway cannot do useful work at all, and it reports 503
// "degraded" so the balancer routes probes elsewhere.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok"}
	code := http.StatusOK
	if len(g.services) > 0 {
		resp.Backends = make(map[string]string, len(g.services))
		allOpen := g.breaker != nil
		for _, svc := range g.services {
			state := "unknown"
			if g.breaker != nil {
				bs := g.breaker.BreakerState(svc)
				state = bs.String()
				if bs != rpc.BreakerOpen {
					allOpen = false
				}
			}
			resp.Backends[svc] = state
		}
		if allOpen {
			resp.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, resp)
}

// writeJSON writes v with the given status and returns the status.
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
	return code
}
