package gateway

// End-to-end tests of the HTTP edge: every request travels
// HTTP -> gateway -> pooled TCP -> core service handler, the cmd/oasisgw
// deployment topology, so the tests cover the full translation including
// coalescing into validate_batch flights and the 429/503 admission paths.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// hookHandler wraps a backend handler with a swappable pre-call hook, so
// tests can block the backend mid-flight.
type hookHandler struct {
	inner rpc.Handler
	mu    sync.Mutex
	hook  func(method string)
}

func (h *hookHandler) set(hook func(method string)) {
	h.mu.Lock()
	h.hook = hook
	h.mu.Unlock()
}

func (h *hookHandler) call(method string, body []byte) ([]byte, error) {
	h.mu.Lock()
	hook := h.hook
	h.mu.Unlock()
	if hook != nil {
		hook(method)
	}
	return h.inner(method, body)
}

// backend is one issuing service behind a real TCP listener.
type backend struct {
	svc  *core.Service
	hook *hookHandler
	addr string
}

func startBackend(t *testing.T, policyText string) *backend {
	t.Helper()
	broker := event.NewBroker()
	t.Cleanup(broker.Close)
	svc, err := core.NewService(core.Config{
		Name:   "login",
		Policy: policy.MustParse(policyText),
		Broker: broker,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})

	hook := &hookHandler{inner: svc.Handler()}
	srv := rpc.NewTCPServer()
	srv.Register("login", hook.call)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the test server
	t.Cleanup(srv.Close)
	return &backend{svc: svc, hook: hook, addr: ln.Addr().String()}
}

// edge assembles a gateway over the backend and serves it via httptest.
type edge struct {
	gw        *Gateway
	validator *core.RemoteValidator
	reg       *obs.Registry
	url       string
	client    *http.Client
}

func startEdge(t *testing.T, b *backend, mutate func(*Config)) *edge {
	t.Helper()
	dir := rpc.NewDirectoryPool(5*time.Second, 2)
	t.Cleanup(dir.Close)
	dir.Add("login", b.addr)
	reg := obs.NewRegistry()
	validator := core.NewRemoteValidator("edge", dir, 0, reg)
	cfg := Config{
		Caller:    dir,
		Validator: validator,
		Services:  []string{"login"},
		Obs:       reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &edge{gw: gw, validator: validator, reg: reg, url: ts.URL, client: ts.Client()}
}

// post sends one JSON request and decodes the JSON response into out
// (skipped when out is nil), returning the status code.
func (e *edge) post(t *testing.T, path string, req, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.client.Post(e.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response (status %d): %v", path, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func activateAt(t *testing.T, b *backend, principal string) cert.RMC {
	t.Helper()
	rmc, err := b.svc.Activate(principal,
		names.MustRole(names.MustRoleName("login", "user", 0)), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	return rmc
}

func TestValidateEndToEnd(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	e := startEdge(t, b, nil)

	rmc := activateAt(t, b, "alice-key")
	var verdict ValidateResponse
	if code := e.post(t, "/validate", ValidateRequest{Principal: "alice-key", RMC: &rmc}, &verdict); code != http.StatusOK {
		t.Fatalf("validate status = %d", code)
	}
	if !verdict.Valid {
		t.Fatalf("fresh RMC judged invalid: %+v", verdict)
	}

	// Revocation flips the verdict to an authoritative 200/invalid, not
	// an error: a refusal is a successful introspection.
	b.svc.Deactivate(rmc.Ref.Serial, "logout")
	if code := e.post(t, "/validate", ValidateRequest{Principal: "alice-key", RMC: &rmc}, &verdict); code != http.StatusOK {
		t.Fatalf("validate status after revocation = %d", code)
	}
	if verdict.Valid || verdict.Reason == "" {
		t.Fatalf("revoked RMC verdict = %+v, want invalid with a reason", verdict)
	}

	st := e.validator.Stats()
	if st.Valid != 1 || st.Invalid != 1 {
		t.Errorf("validator stats = %+v, want 1 valid / 1 invalid", st)
	}
}

func TestValidateBadRequests(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	e := startEdge(t, b, nil)
	rmc := activateAt(t, b, "alice-key")

	if code := e.post(t, "/validate", ValidateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty validate request: status = %d, want 400", code)
	}
	appt := cert.AppointmentCertificate{Issuer: "login", Holder: "h"}
	if code := e.post(t, "/validate", ValidateRequest{RMC: &rmc, Appointment: &appt}, nil); code != http.StatusBadRequest {
		t.Errorf("both certificates: status = %d, want 400", code)
	}
	resp, err := e.client.Post(e.url+"/validate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp.StatusCode)
	}
	if code := e.post(t, "/validate", "null", nil); code != http.StatusBadRequest {
		t.Errorf("null request: status = %d, want 400", code)
	}

	// GET on a POST endpoint.
	getResp, err := e.client.Get(e.url + "/validate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /validate: status = %d, want 405", getResp.StatusCode)
	}

	// An issuer the directory has never heard of is the edge's 404.
	stray := rmc
	stray.Ref.Issuer = "nowhere"
	if code := e.post(t, "/validate", ValidateRequest{Principal: "alice-key", RMC: &stray}, nil); code != http.StatusNotFound {
		t.Errorf("unknown issuer: status = %d, want 404", code)
	}
}

// TestValidateCoalescesIntoBatches holds the backend's two allowed
// in-flight wire calls open while more HTTP validations arrive; when
// released, the parked herd must depart as validate_batch flights, not
// one wire call each — the reason the gateway exists.
func TestValidateCoalescesIntoBatches(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	e := startEdge(t, b, nil)

	const herd = 18
	principals := make([]string, herd)
	rmcs := make([]cert.RMC, herd)
	for i := range principals {
		principals[i] = fmt.Sprintf("p%02d-key", i)
		rmcs[i] = activateAt(t, b, principals[i])
	}
	// Prewarm the connection (and the binary-protocol handshake).
	var warm ValidateResponse
	if code := e.post(t, "/validate", ValidateRequest{Principal: principals[0], RMC: &rmcs[0]}, &warm); code != http.StatusOK || !warm.Valid {
		t.Fatalf("prewarm: status %d, verdict %+v", code, warm)
	}

	release := make(chan struct{})
	var held atomic.Int32
	b.hook.set(func(method string) {
		held.Add(1)
		<-release
	})

	var wg sync.WaitGroup
	codes := make([]int, herd)
	verdicts := make([]ValidateResponse, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = e.post(t, "/validate", ValidateRequest{Principal: principals[i], RMC: &rmcs[i]}, &verdicts[i])
		}(i)
	}

	// Wait for the coalescer's two in-flight slots to block at the
	// backend, then give the rest of the herd time to park in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for held.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if held.Load() < 2 {
		t.Fatalf("only %d wire calls in flight, want the 2-slot gate filled", held.Load())
	}
	time.Sleep(100 * time.Millisecond)
	b.hook.set(nil)
	close(release)
	wg.Wait()

	for i := range codes {
		if codes[i] != http.StatusOK || !verdicts[i].Valid {
			t.Fatalf("request %d: status %d, verdict %+v", i, codes[i], verdicts[i])
		}
	}
	st := e.validator.Stats()
	if st.BatchesSent == 0 || st.BatchedValidations < 2 {
		t.Errorf("no coalescing observed: %+v", st)
	}
	wireCalls := st.CallbackValidations - st.BatchedValidations + st.BatchesSent
	if wireCalls >= st.Validations {
		t.Errorf("~%d wire calls for %d validations: the herd did not batch (%+v)", wireCalls, st.Validations, st)
	}
}

func TestRateLimitAnswers429(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	e := startEdge(t, b, func(cfg *Config) {
		cfg.RatePerSec = 0.01 // effectively no refill within the test
		cfg.Burst = 2
	})
	rmc := activateAt(t, b, "alice-key")
	bobRMC := activateAt(t, b, "bob-key")

	req := ValidateRequest{Principal: "alice-key", RMC: &rmc}
	for i := 0; i < 2; i++ {
		if code := e.post(t, "/validate", req, nil); code != http.StatusOK {
			t.Fatalf("request %d inside burst: status = %d", i, code)
		}
	}
	body, _ := json.Marshal(req)
	resp, err := e.client.Post(e.url+"/validate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The bucket is per principal: bob is unaffected by alice's storm.
	if code := e.post(t, "/validate", ValidateRequest{Principal: "bob-key", RMC: &bobRMC}, nil); code != http.StatusOK {
		t.Errorf("other principal rate-limited too: status = %d", code)
	}
	if got := e.reg.Value(`gw_admission_dropped_total{reason="ratelimit"}`); got != 1 {
		t.Errorf("ratelimit drop counter = %d, want 1", got)
	}
}

// TestOverloadSheds503 wedges the single inflight slot in the backend and
// checks the next request is shed at admission — and that /healthz still
// answers, because a shedding gateway is alive, not dead.
func TestOverloadSheds503(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	e := startEdge(t, b, func(cfg *Config) { cfg.MaxInflight = 1 })
	rmc := activateAt(t, b, "alice-key")

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	b.hook.set(func(string) {
		entered <- struct{}{}
		<-release
	})
	defer close(release)

	// The wedged request's own outcome is not asserted (it unblocks when
	// release closes at test end), so errors are ignored here — and
	// t.Fatal must not be called off the test goroutine anyway.
	go func() {
		wedged, _ := json.Marshal(ValidateRequest{Principal: "alice-key", RMC: &rmc})
		resp, err := e.client.Post(e.url+"/validate", "application/json", bytes.NewReader(wedged))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is taken and wedged at the backend

	body, _ := json.Marshal(ValidateRequest{Principal: "bob-key", RMC: &rmc})
	resp, err := e.client.Post(e.url+"/validate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request with the slot wedged: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := e.reg.Value(`gw_admission_dropped_total{reason="overload"}`); got != 1 {
		t.Errorf("overload drop counter = %d, want 1", got)
	}

	hresp, err := e.client.Get(e.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz during overload: status = %d, want 200", hresp.StatusCode)
	}
	b.hook.set(nil)
}

// TestActivateRevokeOverHTTP drives the full certificate lifecycle from
// the HTTP side: activate a role, introspect it, revoke it by serial,
// introspect again.
func TestActivateRevokeOverHTTP(t *testing.T) {
	b := startBackend(t, `
login.user <- env ok.
auth appoint_badge(K) <- login.user.
`)
	e := startEdge(t, b, nil)

	// Activate over HTTP; the response body is the issued RMC.
	areq := ActivateRequest{Service: "login"}
	areq.Principal = "alice-key"
	areq.Role = names.MustRole(names.MustRoleName("login", "user", 0))
	body, err := json.Marshal(areq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.client.Post(e.url+"/activate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate: status = %d, body %s", resp.StatusCode, raw.Bytes())
	}
	rmc, err := cert.UnmarshalRMC(raw.Bytes())
	if err != nil {
		t.Fatalf("activate response is not an RMC: %v", err)
	}

	var verdict ValidateResponse
	if code := e.post(t, "/validate", ValidateRequest{Principal: "alice-key", RMC: &rmc}, &verdict); code != http.StatusOK || !verdict.Valid {
		t.Fatalf("introspecting the issued RMC: status %d, verdict %+v", code, verdict)
	}

	// Appoint over HTTP, presenting the RMC just issued.
	preq := AppointRequest{Service: "login"}
	preq.Principal = "alice-key"
	preq.Kind = "badge"
	preq.Holder = "contractor-key"
	preq.Params = []names.Term{names.Atom("gate3")}
	preq.RMCs = []cert.RMC{rmc}
	body, err = json.Marshal(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := e.client.Post(e.url+"/appoint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	praw := new(bytes.Buffer)
	if _, err := praw.ReadFrom(presp.Body); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("appoint: status = %d, body %s", presp.StatusCode, praw.Bytes())
	}
	badge, err := cert.UnmarshalAppointment(praw.Bytes())
	if err != nil {
		t.Fatalf("appoint response is not an appointment: %v", err)
	}
	if code := e.post(t, "/validate", ValidateRequest{Appointment: &badge}, &verdict); code != http.StatusOK || !verdict.Valid {
		t.Fatalf("introspecting the appointment: status %d, verdict %+v", code, verdict)
	}

	// Revoke the RMC by serial; the verdict must flip.
	var rev core.RemoteRevokeResponse
	if code := e.post(t, "/revoke", RevokeRequest{Service: "login", Serial: rmc.Ref.Serial, Reason: "offboarded"}, &rev); code != http.StatusOK {
		t.Fatalf("revoke: status = %d", code)
	}
	if !rev.Revoked {
		t.Fatal("revoke acknowledged nothing")
	}
	if code := e.post(t, "/validate", ValidateRequest{Principal: "alice-key", RMC: &rmc}, &verdict); code != http.StatusOK {
		t.Fatalf("validate after revoke: status = %d", code)
	}
	if verdict.Valid {
		t.Error("RMC still valid after HTTP revocation")
	}
	// Revoking again is idempotent and acknowledged false.
	if code := e.post(t, "/revoke", RevokeRequest{Service: "login", Serial: rmc.Ref.Serial}, &rev); code != http.StatusOK || rev.Revoked {
		t.Errorf("second revoke: status %d, revoked %v, want 200/false", code, rev.Revoked)
	}

	// A denied activation is the backend's refusal: 403, not a gateway
	// failure.
	dreq := ActivateRequest{Service: "login"}
	dreq.Principal = "mallory-key"
	dreq.Role = names.MustRole(names.MustRoleName("login", "admin", 0))
	if code := e.post(t, "/activate", dreq, nil); code != http.StatusForbidden {
		t.Errorf("undefined role activation: status = %d, want 403", code)
	}
}

func TestHealthzReportsBreakers(t *testing.T) {
	b := startBackend(t, `login.user <- env ok.`)
	dir := rpc.NewDirectoryPool(5*time.Second, 2)
	t.Cleanup(dir.Close)
	dir.Add("login", b.addr)
	caller := rpc.NewResilientCaller(dir, rpc.ResilientConfig{})
	validator := core.NewRemoteValidator("edge", caller, 0, nil)
	gw, err := New(Config{
		Caller:    caller,
		Validator: validator,
		Services:  []string{"login"},
		Breaker:   caller,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string            `json:"status"`
		Backends map[string]string `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Backends["login"] != "closed" {
		t.Errorf("healthz = %+v, want ok with login breaker closed", health)
	}
}

// stubBreaker reports a fixed per-service circuit state.
type stubBreaker map[string]rpc.BreakerState

func (b stubBreaker) BreakerState(service string) rpc.BreakerState { return b[service] }

// TestHealthzDegradedWhenAllBackendsDown pins the load-balancer contract:
// every backend breaker open means the gateway can do no useful work and
// must answer 503 "degraded"; a partial outage keeps answering 200 "ok"
// (pulling a still-useful gateway from rotation only shrinks capacity).
func TestHealthzDegradedWhenAllBackendsDown(t *testing.T) {
	probe := func(t *testing.T, breaker stubBreaker) (int, string) {
		t.Helper()
		dir := rpc.NewDirectoryPool(time.Second, 1)
		t.Cleanup(dir.Close)
		caller := rpc.NewResilientCaller(dir, rpc.ResilientConfig{})
		gw, err := New(Config{
			Caller:    caller,
			Validator: core.NewRemoteValidator("edge", caller, 0, nil),
			Services:  []string{"login", "files"},
			Breaker:   breaker,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(gw.Handler())
		t.Cleanup(ts.Close)
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var health struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, health.Status
	}

	if code, status := probe(t, stubBreaker{
		"login": rpc.BreakerOpen, "files": rpc.BreakerOpen,
	}); code != http.StatusServiceUnavailable || status != "degraded" {
		t.Errorf("all breakers open: %d %q, want 503 degraded", code, status)
	}
	if code, status := probe(t, stubBreaker{
		"login": rpc.BreakerOpen, "files": rpc.BreakerClosed,
	}); code != http.StatusOK || status != "ok" {
		t.Errorf("partial outage: %d %q, want 200 ok", code, status)
	}
	if code, status := probe(t, stubBreaker{
		"login": rpc.BreakerOpen, "files": rpc.BreakerHalfOpen,
	}); code != http.StatusOK || status != "ok" {
		t.Errorf("half-open probe window: %d %q, want 200 ok", code, status)
	}
}
