package gateway

import (
	"hash/maphash"
	"sync"
	"time"
)

// limiterShards spreads principals over independent mutexes so hot
// /validate traffic from many principals doesn't serialize on one lock.
const limiterShards = 16

// shardSweepSize is the per-shard bucket count past which allow() sweeps
// out idle buckets while it already holds the shard lock. It bounds
// memory against principal churn (every request with a fresh key —
// honest or abusive — otherwise grows the map forever).
const shardSweepSize = 8192

// limiter is a sharded per-key token bucket: each key accrues rate
// tokens per second up to burst, and a request spends one. A nil
// limiter admits everything (rate limiting disabled).
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time
	seed  maphash.Seed
	shard [limiterShards]limiterShard
}

type limiterShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter admitting rate requests/second sustained
// with bursts of burst per key. rate <= 0 returns nil (disabled); a
// burst below 1 is raised to 1 so a conforming key can ever succeed.
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	l := &limiter{rate: rate, burst: float64(burst), now: now, seed: maphash.MakeSeed()}
	for i := range l.shard {
		l.shard[i].buckets = make(map[string]*bucket)
	}
	return l
}

// allow spends one token from key's bucket, reporting whether one was
// available.
func (l *limiter) allow(key string) bool {
	if l == nil {
		return true
	}
	now := l.now()
	s := &l.shard[maphash.String(l.seed, key)%limiterShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[key]
	if b == nil {
		if len(s.buckets) >= shardSweepSize {
			l.sweep(s, now)
		}
		s.buckets[key] = &bucket{tokens: l.burst - 1, last: now}
		return true
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweep drops buckets idle long enough to have refilled completely —
// indistinguishable from fresh ones, so forgetting them changes no
// verdict. Called with the shard lock held.
func (l *limiter) sweep(s *limiterShard, now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range s.buckets {
		if now.Sub(b.last) >= idle {
			delete(s.buckets, key)
		}
	}
}
